(* blobcr-cli: drive the reproduction from the command line.

     blobcr_cli list                         available experiments
     blobcr_cli run fig2a --scale quick      run one experiment
     blobcr_cli run all --csv results/       run everything, write CSVs
     blobcr_cli calibration                  show the simulated testbed *)

open Cmdliner

let scale_arg =
  let parse s =
    match Experiments.Scale.find s with
    | Some scale -> Ok (s, scale)
    | None -> Error (`Msg (Fmt.str "unknown scale %S (expected: paper, quick)" s))
  in
  let print ppf (name, _) = Fmt.string ppf name in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg ("paper", Experiments.Scale.paper)
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: $(b,paper) (published testbed shape) or $(b,quick) (smoke run).")

let csv_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each output table as CSV under $(docv).")

let quiet_term =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-point progress lines.")

let obs_term =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Run under the observability layer: print the metrics table and the \
           per-phase checkpoint/restart breakdown after the experiment tables.")

let timeline_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome-trace JSON timeline of the run to $(docv) (open with \
           chrome://tracing or https://ui.perfetto.dev). Implies $(b,--obs) recording; \
           with several experiments the file is suffixed with the experiment id.")

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Fmt.pr "%-8s %-28s %s@." e.Experiments.Registry.id e.Experiments.Registry.paper_ref
          e.Experiments.Registry.description)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible experiments (one per paper figure/table).")
    Term.(const run $ const ())

let write_timeline run ~path =
  let json = Obs.Export.chrome_trace run in
  match Obs.Export.validate_json json with
  | Error msg -> Fmt.epr "internal error: timeline JSON invalid (%s)@." msg
  | Ok () ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Fmt.pr "(timeline written to %s)@." path

let run_one (_, scale) csv_dir quiet obs timeline id =
  match Experiments.Registry.find id with
  | None -> Fmt.epr "unknown experiment %S; try `blobcr_cli list'@." id
  | Some e ->
      let progress line = if not quiet then Fmt.epr "    %s@." line in
      Fmt.pr "### %s — %s@.@." e.Experiments.Registry.id e.Experiments.Registry.paper_ref;
      if obs || timeline <> None then begin
        let rendered, run =
          Experiments.Registry.run_observed e scale ?csv_dir:csv_dir ~progress ()
        in
        Fmt.pr "%s@." rendered;
        if obs then Fmt.pr "%s@." (Experiments.Registry.render_observability run);
        Option.iter (fun path -> write_timeline run ~path) timeline
      end
      else
        Fmt.pr "%s@."
          (Experiments.Registry.run_and_render e scale ?csv_dir:csv_dir ~progress ())

let run_cmd =
  let ids_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment ids (see $(b,list)), or $(b,all) for every one.")
  in
  let run scale csv quiet obs timeline ids =
    let ids =
      if List.mem "all" ids then Experiments.Registry.ids else ids
    in
    (* One timeline file per experiment: suffix with the id when several run. *)
    let timeline_for id =
      match timeline with
      | Some path when List.length ids > 1 ->
          let base, ext =
            match Filename.chop_suffix_opt ~suffix:".json" path with
            | Some base -> (base, ".json")
            | None -> (path, "")
          in
          Some (Fmt.str "%s.%s%s" base id ext)
      | other -> other
    in
    List.iter (fun id -> run_one scale csv quiet obs (timeline_for id) id) ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print the paper-figure tables.")
    Term.(const run $ scale_term $ csv_term $ quiet_term $ obs_term $ timeline_term $ ids_term)

let calibration_cmd =
  let run () =
    let c = Blobcr.Calibration.default in
    let mb v = v /. float_of_int Simcore.Size.mib in
    Fmt.pr "Simulated testbed (defaults follow Section 4.1 of the paper):@.";
    Fmt.pr "  compute nodes        %d@." c.compute_nodes;
    Fmt.pr "  local disk           %.1f MB/s, %.1f ms/op, %.0f ms seek@." (mb c.disk_rate)
      (c.disk_per_op *. 1e3)
      (8.0);
    Fmt.pr "  network              %.1f MB/s, %.2f ms latency@." (mb c.net_bandwidth)
      (c.net_latency *. 1e3);
    Fmt.pr "  disk image           %a@." Simcore.Size.pp c.image_capacity;
    Fmt.pr "  guest RAM            %a (+%a full-snapshot overhead)@." Simcore.Size.pp
      c.guest_ram Simcore.Size.pp c.os_ram_overhead;
    Fmt.pr "  BlobSeer             stripe %a, %d metadata providers, window %d@."
      Simcore.Size.pp c.blobseer.Blobseer.Types.stripe_size c.metadata_providers
      c.blobseer.Blobseer.Types.write_window;
    Fmt.pr "  PVFS                 stripe %a, %.0f ms metadata op, window %d@."
      Simcore.Size.pp c.pvfs.Pvfs.stripe_size
      (c.pvfs.Pvfs.metadata_op_cost *. 1e3)
      c.pvfs.Pvfs.write_window;
    Fmt.pr "  savevm rate          %.0f MB/s; loadvm record %a@." (mb c.savevm_rate)
      Simcore.Size.pp c.loadvm_record
  in
  Cmd.v
    (Cmd.info "calibration" ~doc:"Print the simulated testbed constants.")
    Term.(const run $ const ())

let () =
  let doc = "BlobCR (SC'11) reproduction: experiments and tools" in
  let info = Cmd.info "blobcr_cli" ~doc ~version:"1.0.0" in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; calibration_cmd ]))
