(* blobcr_lint: static analysis and state auditing for the reproduction.

     blobcr_lint lint [--root DIR] [DIR...]     source lint (determinism hazards)
     blobcr_lint docs [--root DIR]              doc coverage, markdown links, CHANGES log
     blobcr_lint invariants                     structural audits over a live scenario
     blobcr_lint determinism --exp fig2a        replay-divergence check
     blobcr_lint durability                     corruption-chaos durability invariant
     blobcr_lint fuzz [--seed N]                schedule-fuzzing race detector / seed replay
     blobcr_lint all                            everything; exit 0 = clean *)

open Cmdliner
open Analysis

let default_dirs = [ "lib"; "bin"; "bench"; "examples" ]

(* ------------------------------------------------------------------ *)
(* lint *)

let run_lint root dirs =
  let dirs = if dirs = [] then default_dirs else dirs in
  let dirs = List.filter (fun d -> Sys.file_exists (Filename.concat root d)) dirs in
  let findings = Lint.scan_tree ~root dirs in
  List.iter (fun f -> Fmt.pr "%a@." Lint.pp_finding f) findings;
  match findings with
  | [] ->
      Fmt.pr "lint: clean (%s)@." (String.concat " " dirs);
      0
  | fs ->
      Fmt.pr "lint: %d finding(s)@." (List.length fs);
      1

let root_term =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Directory the scanned paths are relative to.")

let dirs_term =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"DIR" ~doc:"Directories to scan (default: lib bin bench examples).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"Scan the source tree for determinism and correctness hazards.")
    Term.(const run_lint $ root_term $ dirs_term)

(* ------------------------------------------------------------------ *)
(* docs *)

let run_docs root =
  let findings = Doc_lint.scan_repo ~root in
  List.iter (fun f -> Fmt.pr "%a@." Lint.pp_finding f) findings;
  match findings with
  | [] ->
      Fmt.pr "docs: clean@.";
      0
  | fs ->
      Fmt.pr "docs: %d finding(s)@." (List.length fs);
      1

let docs_cmd =
  Cmd.v
    (Cmd.info "docs"
       ~doc:
         "Check documentation health: doc comments on every public val, resolvable \
          markdown links, and a well-formed CHANGES.md log.")
    Term.(const run_docs $ root_term)

(* ------------------------------------------------------------------ *)
(* invariants: run a scenario that exercises every audited structure, then
   audit the quiesced state. *)

let run_invariants () =
  Invariants.install ();
  let scale = Experiments.Scale.quick in
  let cluster = Blobcr.Cluster.build ~seed:scale.Experiments.Scale.seed scale.Experiments.Scale.cal in
  let engine = cluster.Blobcr.Cluster.engine in
  Blobcr.Cluster.run cluster (fun () ->
      (* BlobCR path: mirror over the base blob, dirty chunks, checkpoint
         twice — exercises mirror COW state, the version manager and its
         segment trees. *)
      let node = Blobcr.Cluster.node cluster 0 in
      let inst = Blobcr.Approach.deploy cluster Blobcr.Approach.Blobcr ~node ~id:"audit-vm" in
      let bench = Workloads.Synthetic.start inst ~buffer_bytes:(Simcore.Size.mib_n 1) in
      Workloads.Synthetic.dump_app bench;
      ignore (Blobcr.Approach.request_checkpoint cluster inst);
      Workloads.Synthetic.refill bench;
      Workloads.Synthetic.dump_app bench;
      ignore (Blobcr.Approach.request_checkpoint cluster inst);
      (* Partial-chunk COW write + commit: the mirror's dirty-region digest
         cache must invalidate the overwritten chunk, which the teardown
         audit cross-checks by recomputing sampled digests from bytes. *)
      (match inst.Blobcr.Approach.stack with
      | Blobcr.Approach.Mirror_stack mirror ->
          let csize = Vdisk.Mirror.chunk_size mirror in
          Vdisk.Mirror.write mirror ~offset:(csize / 2)
            (Simcore.Payload.pattern ~seed:0xC0FFEEL (csize / 4));
          ignore (Vdisk.Mirror.commit mirror)
      | Blobcr.Approach.Qcow2_stack _ -> ());
      (* qcow2 baseline path: COW writes around an internal snapshot —
         exercises the refcount machinery. *)
      let qnode = Blobcr.Cluster.node cluster 1 in
      let qinst = Blobcr.Approach.deploy cluster Blobcr.Approach.Qcow2_full ~node:qnode ~id:"audit-qcow2" in
      let qbench = Workloads.Synthetic.start qinst ~buffer_bytes:(Simcore.Size.mib_n 1) in
      Workloads.Synthetic.dump_app qbench;
      ignore (Blobcr.Approach.request_checkpoint cluster qinst);
      Workloads.Synthetic.refill qbench;
      Workloads.Synthetic.dump_app qbench);
  (* Supervised chaos path on its own cluster: a scripted node crash
     forces detection, rollback and re-deploy — exercises the
     supervisor's dead-instance accounting audit. *)
  let chaos_cluster =
    Blobcr.Cluster.build ~seed:scale.Experiments.Scale.seed
      {
        scale.Experiments.Scale.cal with
        Blobcr.Calibration.blobseer =
          {
            scale.Experiments.Scale.cal.Blobcr.Calibration.blobseer with
            Blobseer.Types.replication = 2;
          };
      }
  in
  Blobcr.Cluster.run chaos_cluster (fun () ->
      let workload =
        Workloads.Cm1.supervised_workload chaos_cluster scale.Experiments.Scale.cm1_config
          ~iters_per_unit:1
      in
      let injector = ref None in
      let report =
        Blobcr.Supervisor.run chaos_cluster ~kind:Blobcr.Approach.Blobcr
          ~policy:{ Blobcr.Supervisor.default_policy with checkpoint_interval = 2 }
          ~on_ready:(fun sup ->
            injector :=
              Some
                (Faults.start chaos_cluster.Blobcr.Cluster.engine
                   ~script:[ { Faults.at = 6.0; action = Faults.Crash_host 0 } ]
                   ~handlers:(Blobcr.Supervisor.fault_handlers sup)))
          ~id:"audit-sup" ~gang:2 ~units:6 ~workload ()
      in
      (match !injector with Some inj -> Faults.stop inj | None -> ());
      if not (report.Blobcr.Supervisor.finished && report.Blobcr.Supervisor.recoveries > 0)
      then
        Fmt.epr "warning: chaos scenario finished=%b recoveries=%d@."
          report.Blobcr.Supervisor.finished report.Blobcr.Supervisor.recoveries);
  let violations =
    Invariants.audit_engine engine
    @ Invariants.audit_engine chaos_cluster.Blobcr.Cluster.engine
  in
  List.iter (fun x -> Fmt.pr "%a@." Invariants.pp_violation x) violations;
  match violations with
  | [] ->
      Fmt.pr "invariants: clean (%d subjects audited)@."
        (List.length (Simcore.Engine.audit_subjects engine)
        + List.length (Simcore.Engine.audit_subjects chaos_cluster.Blobcr.Cluster.engine));
      0
  | vs ->
      Fmt.pr "invariants: %d violation(s)@." (List.length vs);
      1

let invariants_cmd =
  Cmd.v
    (Cmd.info "invariants"
       ~doc:
         "Run a representative scenario and audit qcow2/BlobSeer/mirror state, \
          including the sampled digest-cache coherence check (cached chunk digests \
          must match digests recomputed from current bytes).")
    Term.(const run_invariants $ const ())

(* ------------------------------------------------------------------ *)
(* determinism *)

let scale_arg =
  let parse s =
    match Experiments.Scale.find s with
    | Some scale -> Ok (s, scale)
    | None -> Error (`Msg (Fmt.str "unknown scale %S (expected: paper, quick)" s))
  in
  let print ppf (name, _) = Fmt.string ppf name in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg ("quick", Experiments.Scale.quick)
    & info [ "s"; "scale" ] ~docv:"SCALE" ~doc:"Experiment scale: $(b,quick) or $(b,paper).")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Engine seed for both runs.")

let exp_term =
  Arg.(
    value & opt string "fig5a"
    & info [ "exp" ] ~docv:"NAME" ~doc:"Experiment id from the registry (see blobcr_cli list).")

let schedule_arg =
  let parse s =
    match Simcore.Event_queue.schedule_of_string s with
    | Ok schedule -> Ok schedule
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Simcore.Event_queue.pp_schedule)

let schedule_term =
  Arg.(
    value
    & opt schedule_arg Simcore.Event_queue.Fifo
    & info [ "schedule" ] ~docv:"POLICY"
        ~doc:
          "Event-queue tie-break policy for both runs: $(b,fifo) (default, \
           bit-identical to the historical behavior), $(b,lifo), or \
           $(b,shuffle:<seed>).")

let run_determinism (_, scale) seed exp_id schedule =
  match Experiments.Registry.find exp_id with
  | None ->
      Fmt.epr "unknown experiment %S; try `blobcr_cli list'@." exp_id;
      2
  | Some exp ->
      let scale = { scale with Experiments.Scale.schedule } in
      let report = Determinism.check_experiment ~exp ~scale ~seed in
      Fmt.pr "@[<v>%a@]@." Determinism.pp_report report;
      if Determinism.identical report then 0 else 1

let determinism_cmd =
  Cmd.v
    (Cmd.info "determinism"
       ~doc:"Run an experiment twice with the same seed and diff the traces.")
    Term.(const run_determinism $ scale_term $ seed_term $ exp_term $ schedule_term)

(* ------------------------------------------------------------------ *)
(* durability: corruption chaos must end in a byte-identical restart or a
   typed, classified error — never an untyped [Failure _]/[Not_found]
   escape — and the scrub/repair log must replay identically. *)

let run_durability (_, scale) seed =
  Invariants.install ();
  let scale = { scale with Experiments.Scale.seed } in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  (* Chaos run: silent corruption + crash mid-COMMIT + host crash. Either
     the run completes — in which case its final application state must be
     byte-identical to a fault-free run — or it surfaces a typed error. *)
  let run label script =
    match Experiments.Durability.chaos_run scale ?script () with
    | chaos ->
        if chaos.Experiments.Durability.audit <> [] then
          fail "%s: supervisor accounting violated: %s" label
            (String.concat "; " chaos.Experiments.Durability.audit);
        Some chaos
    | exception e ->
        (match Blobcr.Protocol.error_class e with
        | `Transient | `Unavailable | `Service_crash | `Cancelled ->
            Fmt.pr "%s: failed with typed error %a (acceptable)@." label
              Blobcr.Protocol.pp_error_class (Blobcr.Protocol.error_class e)
        | `Fatal -> fail "%s: untyped escape: %s" label (Printexc.to_string e));
        None
  in
  (match (run "chaos" None, run "fault-free" (Some (fun _ -> []))) with
  | Some chaos, Some clean ->
      if not chaos.Experiments.Durability.report.Blobcr.Supervisor.finished then
        fail "chaos run neither finished nor raised a typed error";
      if
        chaos.Experiments.Durability.report.Blobcr.Supervisor.finished
        && List.map snd chaos.Experiments.Durability.digests
           <> List.map snd clean.Experiments.Durability.digests
      then fail "restart state diverged from the fault-free run (not byte-identical)";
      Fmt.pr
        "chaos: finished=%b recoveries=%d repairs=%d failovers=%d — state matches \
         fault-free run@."
        chaos.Experiments.Durability.report.Blobcr.Supervisor.finished
        chaos.Experiments.Durability.report.Blobcr.Supervisor.recoveries
        chaos.Experiments.Durability.scrub_stats.Blobseer.Scrubber.repairs
        chaos.Experiments.Durability.integrity_failures
  | _ -> ());
  (* Replay determinism of the scrub/repair log. *)
  let replay = Determinism.check_scrub_replay ~scale ~seed () in
  Fmt.pr "@[<v>%a@]@." Determinism.pp_report replay;
  if not (Determinism.identical replay) then fail "scrub/repair log is not replay-identical";
  match List.rev !failures with
  | [] ->
      Fmt.pr "durability: clean@.";
      0
  | fs ->
      List.iter (Fmt.pr "durability: %s@.") fs;
      Fmt.pr "durability: %d failure(s)@." (List.length fs);
      1

let durability_cmd =
  Cmd.v
    (Cmd.info "durability"
       ~doc:
         "Corruption chaos: every supervised restart must restore byte-identical state or \
          fail with a typed error, and the scrub/repair log must replay identically.")
    Term.(const run_durability $ scale_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* fuzz: the schedule-fuzzing race detector. Default mode samples a
   (fault stream x schedule) grid; --seed replays one reported sample
   byte-for-byte. *)

let rounds_term =
  Arg.(
    value & opt int 25
    & info [ "rounds" ] ~docv:"N"
        ~doc:
          "Total (schedule x fault) samples to aim for; the grid uses 5 schedules \
           per fault stream, so N is rounded up to a multiple of 5.")

let replay_seed_term =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Replay one sample reported by a finding instead of sampling a grid: runs \
           the exact (schedule, fault stream) pair twice, requires byte-identical \
           traces, and re-checks invariants and FIFO result parity.")

let master_seed_term =
  Arg.(
    value & opt int 42
    & info [ "master-seed" ] ~docv:"N" ~doc:"Seed the sampling grid is derived from.")

let scenario_term =
  Arg.(
    value & opt string "chaos"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "$(b,chaos) (the durability chaos harness under MTBF fault scripts), \
           $(b,precopy) (the chaos harness with the live pre-copy + \
           background-commit checkpoint policy and crashes armed mid-COMMIT), \
           $(b,dr) (a site disaster with standby promotion at a fuzzed crash time \
           and window), $(b,chains) (the snapshot-chain compactor under compaction \
           crash points, service crashes and transient disk errors, checked against \
           the settled retention fixed point), or $(b,exp:<id>) for any registry \
           experiment.")

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every sample as it runs.")

(* Failing seeds are preserved as a per-scenario artifact file so CI can
   upload them: the report embeds each finding's replay command, letting a
   red fuzz stage be reproduced byte-for-byte without rerunning the grid.
   A clean grid removes any stale artifact from a previous run. *)
let fuzz_artifact_path scenario_name =
  let safe = String.map (fun c -> if c = ':' then '-' else c) scenario_name in
  Fmt.str "FUZZ_FAILURES.%s.txt" safe

let write_fuzz_artifact scenario_name report =
  let path = fuzz_artifact_path scenario_name in
  if Schedule_fuzz.clean report then begin
    if Sys.file_exists path then Sys.remove path
  end
  else begin
    let oc = open_out path in
    let ppf = Format.formatter_of_out_channel oc in
    Fmt.pf ppf "@[<v>%a@]@." Schedule_fuzz.pp_report report;
    Format.pp_print_flush ppf ();
    close_out oc;
    Fmt.pr "failing seeds written to %s@." path
  end

let run_fuzz (_, scale) scenario_name rounds master_seed replay_seed verbose =
  match Schedule_fuzz.find_scenario scenario_name with
  | None ->
      Fmt.epr "unknown scenario %S (expected chaos, precopy, dr, chains or exp:<id>)@."
        scenario_name;
      2
  | Some scenario -> (
      match replay_seed with
      | Some seed ->
          let sample = Schedule_fuzz.sample_of_seed seed in
          Fmt.pr "replaying %s %a@." scenario_name Schedule_fuzz.pp_sample sample;
          let outcome, findings = Schedule_fuzz.replay ~scale ~seed scenario in
          Fmt.pr "trace: %d lines; results:@.%s@." (List.length outcome.Schedule_fuzz.trace)
            outcome.Schedule_fuzz.results;
          if findings = [] then begin
            Fmt.pr "fuzz replay: clean (trace byte-identical across reruns)@.";
            0
          end
          else begin
            List.iter (fun f -> Fmt.pr "@[<v>%a@]@." Schedule_fuzz.pp_finding f) findings;
            Fmt.pr "fuzz replay: %d finding(s)@." (List.length findings);
            1
          end
      | None ->
          let schedules = 5 in
          let fault_streams = max 1 ((rounds + schedules - 1) / schedules) in
          let progress = if verbose then fun s -> Fmt.pr "%s@." s else fun _ -> () in
          let report =
            Schedule_fuzz.run ~scale ~fault_streams ~schedules ~master_seed ~progress
              scenario
          in
          Fmt.pr "@[<v>%a@]@." Schedule_fuzz.pp_report report;
          write_fuzz_artifact scenario_name report;
          if Schedule_fuzz.clean report then 0 else 1)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Schedule-fuzzing race detector: sample event-queue tie-break policies x \
          fault scripts, check invariants and schedule-independence of results, and \
          report replayable failing seeds.")
    Term.(
      const run_fuzz $ scale_term $ scenario_term $ rounds_term $ master_seed_term
      $ replay_seed_term $ verbose_term)

(* ------------------------------------------------------------------ *)
(* all *)

let run_all root seed =
  let stage name code =
    Fmt.pr "--- %s ---@." name;
    code ()
  in
  let lint = stage "lint" (fun () -> run_lint root []) in
  let docs = stage "docs" (fun () -> run_docs root) in
  let inv = stage "invariants" (fun () -> run_invariants ()) in
  let det =
    stage "determinism" (fun () ->
        let fifo = Simcore.Event_queue.Fifo in
        let fig = run_determinism ("quick", Experiments.Scale.quick) seed "fig5a" fifo in
        let ded = run_determinism ("quick", Experiments.Scale.quick) seed "dedup" fifo in
        let dr = run_determinism ("quick", Experiments.Scale.quick) seed "dr" fifo in
        if fig = 0 && ded = 0 && dr = 0 then 0 else 1)
  in
  let dur =
    stage "durability" (fun () -> run_durability ("quick", Experiments.Scale.quick) seed)
  in
  let fuzz =
    stage "fuzz" (fun () ->
        run_fuzz ("quick", Experiments.Scale.quick) "chaos" 25 seed None false)
  in
  let dr_fuzz =
    stage "fuzz-dr" (fun () ->
        run_fuzz ("quick", Experiments.Scale.quick) "dr" 5 seed None false)
  in
  let chains_fuzz =
    stage "fuzz-chains" (fun () ->
        run_fuzz ("quick", Experiments.Scale.quick) "chains" 5 seed None false)
  in
  let precopy_fuzz =
    stage "fuzz-precopy" (fun () ->
        run_fuzz ("quick", Experiments.Scale.quick) "precopy" 5 seed None false)
  in
  if lint = 0 && docs = 0 && inv = 0 && det = 0 && dur = 0 && fuzz = 0 && dr_fuzz = 0
     && chains_fuzz = 0 && precopy_fuzz = 0
  then begin
    Fmt.pr "--- all clean ---@.";
    0
  end
  else 1

let all_cmd =
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run lint, docs, invariants, determinism (including the DR sweep's replay \
          check), durability and the bounded schedule-fuzz smoke passes (chaos, \
          site-disaster, snapshot-chain and live-checkpoint scenarios); exit 0 when \
          all clean.")
    Term.(const run_all $ root_term $ seed_term)

let () =
  let doc = "BlobCR determinism lint, invariant audit and replay checking" in
  let info = Cmd.info "blobcr_lint" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            lint_cmd; docs_cmd; invariants_cmd; determinism_cmd; durability_cmd; fuzz_cmd;
            all_cmd;
          ]))
