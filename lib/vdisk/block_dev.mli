(** Block-device interface a hypervisor exposes to its guest.

    Both the BlobCR mirroring module and qcow2 images implement this
    interface, so the VM, guest file system and checkpoint protocols are
    agnostic of the image format underneath — exactly the compatibility
    property the paper's FUSE-based mirroring module provides by exposing a
    raw POSIX file. *)

type t = {
  capacity : int;
  read : offset:int -> len:int -> Simcore.Payload.t;
  write : offset:int -> Simcore.Payload.t -> unit;
  flush : unit -> unit;  (** barrier: all acknowledged writes are durable *)
}

val read : t -> offset:int -> len:int -> Simcore.Payload.t
(** Bounds-checked wrapper. *)

val write : t -> offset:int -> Simcore.Payload.t -> unit
(** Bounds-checked wrapper. *)

val flush : t -> unit
(** Durability barrier (delegates to the implementation). *)

val in_memory : capacity:int -> t
(** Cost-free in-memory device for tests. *)
