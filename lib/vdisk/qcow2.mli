(** qcow2-style copy-on-write disk images (the paper's baseline).

    A qcow2 image stores only the clusters its VM has written, backed by a
    read-only {e backing image} for everything else. Internal snapshots
    ([savevm]) freeze the current cluster table inside the same file —
    later writes copy-on-write within the file — and can store the full VM
    state (RAM, devices) alongside.

    What qcow2 {e cannot} do (and the reason BlobCR wins Figure 5) is
    transparent incremental {e disk} snapshots: taking a disk snapshot means
    copying the whole current image file to the parallel file system with
    {!export}, and successive snapshots re-copy everything accumulated so
    far.

    Images live on a compute node's local disk; exported images live in
    PVFS and can serve as backing for freshly created images on other
    nodes. *)

open Simcore
open Netsim
open Storage

type t
type remote_image

type backing =
  | No_backing
  | Raw_pvfs of Pvfs.file  (** raw base image shared through PVFS *)
  | Qcow2_remote of remote_image  (** exported snapshot chain in PVFS *)

val create :
  Engine.t ->
  host:Net.host ->
  local_disk:Disk.t ->
  ?cluster_size:int ->
  capacity:int ->
  backing:backing ->
  name:string ->
  unit ->
  t
(** Fresh image with no allocated clusters. Default cluster size 64 KiB.
    [host] is the compute node, used for remote backing reads. *)

val name : t -> string
(** The name passed at creation (for traces). *)

val capacity : t -> int
(** Guest-visible byte capacity. *)

val cluster_size : t -> int
(** Allocation and copy-on-write granularity. *)

val read : t -> offset:int -> len:int -> Payload.t
(** Allocated clusters read from the local disk; anything else falls
    through the backing chain (remote I/O through PVFS). *)

val write : t -> offset:int -> Payload.t -> unit
(** Copy-on-write at cluster granularity: first write to a cluster fetches
    its backing content (for partial writes), and writes to snapshot-frozen
    clusters allocate fresh ones. *)

val device : t -> Block_dev.t
(** The raw block-device view handed to the hypervisor. *)

val file_size : t -> int
(** Bytes the image file occupies locally: header and lookup tables,
    allocated clusters, plus internal-snapshot tables and VM states. This
    is what a disk snapshot must copy to PVFS. *)

val data_bytes : t -> int
(** Allocated cluster bytes only. *)

val allocated_clusters : t -> int
(** Number of physically allocated clusters. *)

val drop_local : t -> unit
(** Release the image's local-disk footprint (instance terminated, node
    space reclaimed). The image must not be used afterwards. *)

(** {1 Internal snapshots (savevm)} *)

val savevm : t -> snapshot_name:string -> vm_state:Payload.t -> unit
(** Freeze the current cluster table under [snapshot_name] and store the VM
    state in the image (charged as a local disk write). *)

val snapshot_names : t -> string list
(** Internal snapshots, oldest first. *)

(** {1 Audit views}

    Read-only structural views for the invariant auditor
    ([Analysis.Invariants]); none of these charge simulated I/O. Images
    register themselves with their engine as {!Audit_image} subjects so
    teardown audits (see {!Engine.audits_enabled}) cover them. *)

type Engine.audit_subject += Audit_image of t

val table_view : t -> (int * int) list
(** Live [guest cluster -> physical cluster] mappings, sorted by guest
    index. *)

val snapshot_table_views : t -> (string * (int * int) list) list
(** Frozen per-snapshot tables, oldest snapshot first. *)

val refcount_view : t -> (int * int) list
(** [physical cluster -> table references], sorted by physical index. *)

val data_phys_view : t -> int list
(** Physical clusters holding content, ascending. *)

val unsafe_set_refcount : t -> phys:int -> int -> unit
(** Corrupt a refcount in place. Test-only: exists so tests can prove the
    refcount auditor catches seeded defects. *)

(** {1 Export / remote images} *)

val export : t -> Pvfs.t -> from:Net.host -> path:string -> remote_image
(** The disk-snapshot operation: read the whole local image file and write
    it to PVFS as a standalone file (replacing any previous file at
    [path]). The result can back new images and serve VM states. *)

val remote_file_size : remote_image -> int
(** Size of the exported file on PVFS. *)

val remote_capacity : remote_image -> int
(** Guest-visible capacity recorded in the exported image. *)

val remote_vm_state : remote_image -> from:Net.host -> snapshot_name:string -> Payload.t
(** Fetch a stored VM state from the exported image (full-snapshot
    restart). Raises [Not_found] if there is no such snapshot. *)

val remote_vm_state_streamed :
  remote_image -> from:Net.host -> snapshot_name:string -> record:int -> Payload.t
(** Like {!remote_vm_state} but reading the state the way a resuming
    hypervisor does: sequentially, [record] bytes per request, paying the
    file-system request path on each record. *)

val remote_table_of_snapshot : remote_image -> snapshot_name:string -> remote_image
(** View of the exported image as of an internal snapshot: reads resolve
    through that snapshot's cluster table (used to resume a VM from a full
    snapshot without rebooting). *)

(** {1 Incremental exports and chain collapse}

    The delta-chain workaround for qcow2's full-copy snapshots:
    {!export_incremental} ships only clusters whose content changed since
    a previous export and backs the result onto it, forming a {e chain}.
    Restart reads that miss a delta level pay a per-level table probe
    before falling through, so restart latency grows with chain depth —
    the read amplification {!collapse_chain} removes by merging the chain
    back into one standalone file and retiring the deltas. This is the
    baseline counterpart of BlobSeer-side chain compaction. *)

val export_incremental :
  t -> Pvfs.t -> from:Net.host -> path:string -> base:remote_image -> remote_image
(** Delta disk snapshot against [base] (typically the previous export of
    the same image): detects changed clusters by content digest against
    the {e effective} content of [base]'s whole chain, ships only those
    (plus tables and any stored VM states), and returns an image backed
    by [base]. Raises [Invalid_argument] when [base]'s capacity or
    cluster size differ. *)

val remote_is_delta : remote_image -> bool
(** Whether the image is an incremental export (its table covers only the
    clusters changed relative to its backing). *)

val remote_chain_depth : remote_image -> int
(** Number of qcow2 levels a miss-everything read walks: 1 for a
    standalone export, one more per delta in the backing chain. *)

type collapse_stats = {
  levels_collapsed : int;  (** qcow2 levels merged into the result *)
  clusters_unique : int;  (** distinct guest clusters materialized *)
  bytes_shipped : int;  (** bytes written to the standalone file *)
  bytes_reclaimed : int;  (** bytes of retired level files deleted *)
}

val collapse_chain :
  remote_image -> from:Net.host -> path:string -> remote_image * collapse_stats
(** Merge the image's whole qcow2 chain (top level down, newest cluster
    wins) into one standalone file at [path], delete every chain level
    and return the collapsed image. The caller must ensure no other
    image still backs onto the retired levels; internal-snapshot VM
    states are not carried over (collapse is a disk-data operation).
    Raises [Invalid_argument] when [path] names one of the chain's own
    files. *)
