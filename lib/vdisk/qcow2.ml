open Simcore
open Netsim
open Storage

type remote_image = {
  rfs : Pvfs.t;
  rfile : Pvfs.file;
  rcapacity : int;
  rcluster_size : int;
  rmeta_bytes : int;
  rtable : (int, int) Hashtbl.t; (* guest cluster -> physical cluster *)
  rsnapshots : (string * (int, int) Hashtbl.t * (int * int)) list;
      (* name, table, (vm_state offset, len) in file *)
  rbacking : backing;
  rdelta : bool; (* incremental export: rtable covers only changed clusters *)
  rdigests : (int, int64) Hashtbl.t;
      (* guest cluster -> effective content digest through the chain, for
         delta detection by the next export_incremental *)
}

and backing = No_backing | Raw_pvfs of Pvfs.file | Qcow2_remote of remote_image

type snapshot = {
  stable : (int, int) Hashtbl.t;
  svm_state : Payload.t;
}

type t = {
  engine : Engine.t;
  host : Net.host;
  local_disk : Disk.t;
  qname : string;
  qcapacity : int;
  qcluster_size : int;
  backing : backing;
  data : (int, Payload.t) Hashtbl.t; (* physical cluster -> content *)
  mutable table : (int, int) Hashtbl.t; (* guest cluster -> physical *)
  refcounts : (int, int) Hashtbl.t; (* physical -> table references *)
  (* Padded-content digest of each locally allocated guest cluster,
     invalidated on writes and refilled lazily by exports — so per-export
     digest work is proportional to clusters written since the last
     export, not to allocated image size. *)
  gdigests : (int, int64) Hashtbl.t;
  mutable snapshots : (string * snapshot) list; (* newest first *)
  mutable next_phys : int;
  mutable snapshot_meta_bytes : int; (* stored tables + vm states *)
}

type Engine.audit_subject += Audit_image of t

let default_cluster_size = 64 * Size.kib

let table_bytes ~capacity ~cluster_size =
  (* L1/L2/refcount entries: ~16 bytes of metadata per addressable
     cluster, rounded up to a cluster. *)
  let entries = Size.div_ceil capacity cluster_size in
  Size.round_up (16 * entries) cluster_size

let header_bytes ~capacity ~cluster_size =
  cluster_size + table_bytes ~capacity ~cluster_size

let create engine ~host ~local_disk ?(cluster_size = default_cluster_size) ~capacity
    ~backing ~name () =
  if capacity <= 0 || cluster_size <= 0 then invalid_arg "Qcow2.create";
  (match backing with
  | Qcow2_remote r when r.rcapacity <> capacity ->
      invalid_arg "Qcow2.create: backing capacity mismatch"
  | _ -> ());
  let t =
    {
      engine;
      host;
      local_disk;
      qname = name;
      qcapacity = capacity;
      qcluster_size = cluster_size;
      backing;
      data = Hashtbl.create 256;
      table = Hashtbl.create 256;
      refcounts = Hashtbl.create 256;
      gdigests = Hashtbl.create 256;
      snapshots = [];
      next_phys = 0;
      snapshot_meta_bytes = 0;
    }
  in
  (* The freshly created file holds header + empty tables. *)
  Disk.reserve local_disk (header_bytes ~capacity ~cluster_size);
  Engine.register_audit_subject engine (Audit_image t);
  t

let name t = t.qname
let capacity t = t.qcapacity
let cluster_size t = t.qcluster_size
let allocated_clusters t = t.next_phys
let data_bytes t = t.next_phys * t.qcluster_size

let file_size t =
  header_bytes ~capacity:t.qcapacity ~cluster_size:t.qcluster_size
  + data_bytes t + t.snapshot_meta_bytes

let drop_local t =
  Disk.free t.local_disk (file_size t);
  Hashtbl.reset t.data;
  Hashtbl.reset t.table;
  Hashtbl.reset t.refcounts;
  Hashtbl.reset t.gdigests;
  t.snapshots <- []

let local_stream t = Net.host_id t.host

let cluster_extent t index = min t.qcapacity ((index + 1) * t.qcluster_size) - (index * t.qcluster_size)

(* ------------------------------------------------------------------ *)
(* Remote (exported) image reads *)

let rec backing_cluster_content ~engine ~from ~backing ~cluster_size ~capacity index =
  let cstart = index * cluster_size in
  let extent = min capacity (cstart + cluster_size) - cstart in
  match backing with
  | No_backing -> Payload.zero extent
  | Raw_pvfs file ->
      let readable = max 0 (min extent (Pvfs.size file - cstart)) in
      if readable <= 0 then Payload.zero extent
      else
        let p = Pvfs.read file ~from ~offset:cstart ~len:readable in
        if readable = extent then p else Payload.concat [ p; Payload.zero (extent - readable) ]
  | Qcow2_remote r -> (
      match Hashtbl.find_opt r.rtable index with
      | Some phys ->
          Pvfs.read r.rfile ~from ~offset:(r.rmeta_bytes + (phys * r.rcluster_size)) ~len:extent
      | None ->
          (* A delta level pays a table-probe request before falling
             through: the per-level read amplification of an incremental
             chain, which [collapse_chain] removes. Full exports resolve
             misses from their in-memory L1 for free, as before. *)
          if r.rdelta then
            ignore
              (Pvfs.read r.rfile ~from
                 ~offset:(min (16 * index) (r.rmeta_bytes - 16))
                 ~len:16);
          backing_cluster_content ~engine ~from ~backing:r.rbacking
            ~cluster_size:r.rcluster_size ~capacity:r.rcapacity index)

(* ------------------------------------------------------------------ *)
(* Local reads and writes *)

let local_cluster t index = Hashtbl.find_opt t.table index

let read_cluster t index =
  let extent = cluster_extent t index in
  match local_cluster t index with
  | Some phys ->
      Disk.read t.local_disk ~stream:(local_stream t) extent;
      let p = Hashtbl.find t.data phys in
      Payload.sub p ~pos:0 ~len:extent
  | None ->
      backing_cluster_content ~engine:t.engine ~from:t.host ~backing:t.backing
        ~cluster_size:t.qcluster_size ~capacity:t.qcapacity index

let read t ~offset ~len =
  if offset < 0 || len < 0 || offset + len > t.qcapacity then
    invalid_arg "Qcow2.read: out of bounds";
  if len = 0 then Payload.zero 0
  else begin
    let cs = t.qcluster_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    let parts = List.init (last - first + 1) (fun k -> read_cluster t (first + k)) in
    Payload.sub (Payload.concat parts) ~pos:(offset - (first * cs)) ~len
  end

let alloc_phys t =
  let phys = t.next_phys in
  t.next_phys <- t.next_phys + 1;
  (* The file grows by one cluster. *)
  Disk.reserve t.local_disk t.qcluster_size;
  phys

let refs t phys = Option.value ~default:0 (Hashtbl.find_opt t.refcounts phys)

let write_cluster t index content =
  let extent = cluster_extent t index in
  assert (Payload.length content = extent);
  Hashtbl.remove t.gdigests index;
  match local_cluster t index with
  | Some phys when refs t phys <= 1 ->
      (* Sole reference: overwrite in place. *)
      Disk.write t.local_disk ~stream:(local_stream t) extent;
      Disk.free t.local_disk extent;
      Hashtbl.replace t.data phys content
  | Some _ | None ->
      (* Unallocated, or frozen by a snapshot: allocate a fresh cluster. *)
      let phys = alloc_phys t in
      Disk.write t.local_disk ~stream:(local_stream t) extent;
      Disk.free t.local_disk extent;
      (match local_cluster t index with
      | Some old -> Hashtbl.replace t.refcounts old (refs t old - 1)
      | None -> ());
      Hashtbl.replace t.data phys content;
      Hashtbl.replace t.table index phys;
      Hashtbl.replace t.refcounts phys 1

let write t ~offset payload =
  let len = Payload.length payload in
  if offset < 0 || offset + len > t.qcapacity then invalid_arg "Qcow2.write: out of bounds";
  if len > 0 then begin
    let cs = t.qcluster_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    for index = first to last do
      let cstart = index * cs in
      let extent = cluster_extent t index in
      let wstart = max cstart offset and wend = min (cstart + extent) (offset + len) in
      let content =
        if wstart = cstart && wend = cstart + extent then
          Payload.sub payload ~pos:(cstart - offset) ~len:extent
        else begin
          (* Partial cluster write: copy-on-write needs the old content. *)
          let old = read_cluster t index in
          Payload.concat
            [
              Payload.sub old ~pos:0 ~len:(wstart - cstart);
              Payload.sub payload ~pos:(wstart - offset) ~len:(wend - wstart);
              Payload.sub old ~pos:(wend - cstart) ~len:(cstart + extent - wend);
            ]
        end
      in
      write_cluster t index content
    done
  end

let device t =
  {
    Block_dev.capacity = t.qcapacity;
    read = (fun ~offset ~len -> read t ~offset ~len);
    write = (fun ~offset payload -> write t ~offset payload);
    flush = (fun () -> ());
  }

(* ------------------------------------------------------------------ *)
(* Internal snapshots *)

let m_savevm_bytes = Obs.Metrics.counter ~component:"qcow2" ~name:"savevm_bytes"
let m_export_bytes = Obs.Metrics.counter ~component:"qcow2" ~name:"export_bytes"

let savevm t ~snapshot_name ~vm_state =
  if List.mem_assoc snapshot_name t.snapshots then
    invalid_arg (Fmt.str "Qcow2.savevm: snapshot %s exists" snapshot_name);
  Obs.Span.with_ t.engine ~component:"qcow2" ~name:"qcow2.savevm"
    ~attrs:[ ("bytes", Obs.Record.Bytes (Payload.length vm_state)) ]
  @@ fun () ->
  Obs.Metrics.add m_savevm_bytes (float_of_int (Payload.length vm_state));
  let stable = Hashtbl.copy t.table in
  (* lint: allow hashtbl-order — commutative per-cluster increments *)
  Hashtbl.iter (fun _ phys -> Hashtbl.replace t.refcounts phys (refs t phys + 1)) stable;
  let meta =
    Payload.length vm_state
    + table_bytes ~capacity:t.qcapacity ~cluster_size:t.qcluster_size
  in
  (* Dumping the VM state is a local sequential write into the image. *)
  Disk.write t.local_disk ~stream:(local_stream t) (Payload.length vm_state);
  Disk.reserve t.local_disk meta;
  Disk.free t.local_disk (Payload.length vm_state);
  t.snapshot_meta_bytes <- t.snapshot_meta_bytes + meta;
  t.snapshots <- (snapshot_name, { stable; svm_state = vm_state }) :: t.snapshots

let snapshot_names t = List.rev_map fst t.snapshots

(* ------------------------------------------------------------------ *)
(* Read-only audit views *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let table_view t = sorted_bindings t.table

let snapshot_table_views t =
  List.rev_map (fun (sname, s) -> (sname, sorted_bindings s.stable)) t.snapshots

let refcount_view t = sorted_bindings t.refcounts

let data_phys_view t =
  Hashtbl.fold (fun phys _ acc -> phys :: acc) t.data [] |> List.sort compare

let unsafe_set_refcount t ~phys count = Hashtbl.replace t.refcounts phys count

(* ------------------------------------------------------------------ *)
(* Export to PVFS *)

let pad_cluster t p =
  if Payload.length p = t.qcluster_size then p
  else Payload.concat [ p; Payload.zero (t.qcluster_size - Payload.length p) ]

let m_digest_fresh = Obs.Metrics.counter ~component:"qcow2" ~name:"digest_clusters_digested"
let m_digest_cached = Obs.Metrics.counter ~component:"qcow2" ~name:"digest_clusters_cached"

(* Padded-content digest of guest cluster [guest] (mapped to [phys]),
   served from the carried cache when the cluster hasn't been written since
   it was last digested. *)
let guest_digest t guest phys =
  match Hashtbl.find_opt t.gdigests guest with
  | Some d ->
      Obs.Metrics.incr m_digest_cached;
      d
  | None ->
      let d = Payload.digest (pad_cluster t (Hashtbl.find t.data phys)) in
      Obs.Metrics.incr m_digest_fresh;
      Hashtbl.replace t.gdigests guest d;
      d

(* Effective guest-cluster digests of the image as exported: the backing
   chain's digests overlaid with the digests of every locally allocated
   cluster. Digests are always of the cluster-size-padded content, so a
   short tail cluster compares equal across levels. *)
let effective_digests t =
  let digests =
    match t.backing with
    | Qcow2_remote r -> Hashtbl.copy r.rdigests
    | No_backing | Raw_pvfs _ -> Hashtbl.create 256
  in
  (* lint: allow hashtbl-order — independent per-key replaces *)
  Hashtbl.iter
    (fun guest phys -> Hashtbl.replace digests guest (guest_digest t guest phys))
    t.table;
  digests

let export t fs ~from ~path =
  let meta_bytes = header_bytes ~capacity:t.qcapacity ~cluster_size:t.qcluster_size in
  let size = file_size t in
  Obs.Span.with_ t.engine ~component:"qcow2" ~name:"qcow2.export"
    ~attrs:[ ("bytes", Obs.Record.Bytes size) ]
  @@ fun () ->
  Obs.Metrics.add m_export_bytes (float_of_int size);
  (* Read the local file sequentially... *)
  Disk.read t.local_disk ~stream:(local_stream t) size;
  (* ...and stream it into a fresh PVFS file: metadata region, clusters in
     physical order, then snapshot tables and VM states. *)
  if Pvfs.exists fs ~path then Pvfs.delete fs ~from ~path;
  let file = Pvfs.create fs ~from ~path in
  let clusters =
    List.init t.next_phys (fun phys ->
        match Hashtbl.find_opt t.data phys with
        | Some p ->
            if Payload.length p = t.qcluster_size then p
            else Payload.concat [ p; Payload.zero (t.qcluster_size - Payload.length p) ]
        | None -> Payload.zero t.qcluster_size)
  in
  let vm_states = List.rev_map (fun (_, s) -> s.svm_state) t.snapshots in
  let image =
    Payload.concat ((Payload.zero meta_bytes :: clusters) @ vm_states)
  in
  Pvfs.write file ~from ~offset:0 image;
  (* Pad the accounting to the full file size (snapshot tables etc.). *)
  let written = Payload.length image in
  if written < size then Pvfs.write file ~from ~offset:written (Payload.zero (size - written));
  (* VM state offsets within the exported file, oldest snapshot first. *)
  let snap_offsets =
    let base = ref (meta_bytes + (t.next_phys * t.qcluster_size)) in
    List.rev_map
      (fun (sname, s) ->
        let off = !base in
        let len = Payload.length s.svm_state in
        base := !base + len;
        (sname, Hashtbl.copy s.stable, (off, len)))
      t.snapshots
  in
  {
    rfs = fs;
    rfile = file;
    rcapacity = t.qcapacity;
    rcluster_size = t.qcluster_size;
    rmeta_bytes = meta_bytes;
    rtable = Hashtbl.copy t.table;
    rsnapshots = snap_offsets;
    rbacking = t.backing;
    rdelta = false;
    rdigests = effective_digests t;
  }

let remote_file_size r = Pvfs.size r.rfile
let remote_capacity r = r.rcapacity

let remote_vm_state r ~from ~snapshot_name =
  let _, _, (off, len) =
    List.find (fun (n, _, _) -> n = snapshot_name) r.rsnapshots
  in
  Pvfs.read r.rfile ~from ~offset:off ~len

let remote_vm_state_streamed r ~from ~snapshot_name ~record =
  if record <= 0 then invalid_arg "Qcow2.remote_vm_state_streamed: record";
  let _, _, (off, len) =
    List.find (fun (n, _, _) -> n = snapshot_name) r.rsnapshots
  in
  let rec stream pos acc =
    if pos >= len then Payload.concat (List.rev acc)
    else begin
      let n = min record (len - pos) in
      let part = Pvfs.read r.rfile ~from ~offset:(off + pos) ~len:n in
      stream (pos + n) (part :: acc)
    end
  in
  stream 0 []

let remote_table_of_snapshot r ~snapshot_name =
  let _, table, _ = List.find (fun (n, _, _) -> n = snapshot_name) r.rsnapshots in
  { r with rtable = table }

(* ------------------------------------------------------------------ *)
(* Incremental export (delta chains) and chain collapse *)

let m_delta_bytes = Obs.Metrics.counter ~component:"qcow2" ~name:"delta_bytes"
let m_collapse_bytes = Obs.Metrics.counter ~component:"qcow2" ~name:"collapse_bytes"

let remote_is_delta r = r.rdelta

let remote_chain_depth r =
  let rec depth acc r =
    match r.rbacking with Qcow2_remote b -> depth (acc + 1) b | No_backing | Raw_pvfs _ -> acc
  in
  depth 1 r

let export_incremental t fs ~from ~path ~base =
  if base.rcapacity <> t.qcapacity || base.rcluster_size <> t.qcluster_size then
    invalid_arg "Qcow2.export_incremental: base shape mismatch";
  (* Delta detection by content digest against the base chain's effective
     content: a locally allocated cluster ships only when its digest
     differs from what a reader of [base] would already see there. *)
  let changed =
    (* lint: allow hashtbl-order — result sorted by guest index below *)
    Hashtbl.fold
      (fun guest phys acc ->
        if Hashtbl.find_opt base.rdigests guest = Some (guest_digest t guest phys) then acc
        else (guest, pad_cluster t (Hashtbl.find t.data phys)) :: acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let meta_bytes = header_bytes ~capacity:t.qcapacity ~cluster_size:t.qcluster_size in
  let size = meta_bytes + (List.length changed * t.qcluster_size) + t.snapshot_meta_bytes in
  Obs.Span.with_ t.engine ~component:"qcow2" ~name:"qcow2.export_incremental"
    ~attrs:[ ("bytes", Obs.Record.Bytes size) ]
  @@ fun () ->
  Obs.Metrics.add m_delta_bytes (float_of_int size);
  (* Read only what ships: tables plus the changed clusters. *)
  Disk.read t.local_disk ~stream:(local_stream t) size;
  if Pvfs.exists fs ~path then Pvfs.delete fs ~from ~path;
  let file = Pvfs.create fs ~from ~path in
  let vm_states = List.rev_map (fun (_, s) -> s.svm_state) t.snapshots in
  let image =
    Payload.concat ((Payload.zero meta_bytes :: List.map snd changed) @ vm_states)
  in
  Pvfs.write file ~from ~offset:0 image;
  let written = Payload.length image in
  if written < size then Pvfs.write file ~from ~offset:written (Payload.zero (size - written));
  let rtable = Hashtbl.create (List.length changed) in
  List.iteri (fun pos (guest, _) -> Hashtbl.replace rtable guest pos) changed;
  let snap_offsets =
    let pos = ref (meta_bytes + (List.length changed * t.qcluster_size)) in
    List.rev_map
      (fun (sname, s) ->
        let off = !pos in
        let len = Payload.length s.svm_state in
        pos := !pos + len;
        (sname, Hashtbl.copy s.stable, (off, len)))
      t.snapshots
  in
  {
    rfs = fs;
    rfile = file;
    rcapacity = t.qcapacity;
    rcluster_size = t.qcluster_size;
    rmeta_bytes = meta_bytes;
    rtable;
    rsnapshots = snap_offsets;
    rbacking = Qcow2_remote base;
    rdelta = true;
    rdigests = effective_digests t;
  }

type collapse_stats = {
  levels_collapsed : int;
  clusters_unique : int;
  bytes_shipped : int;
  bytes_reclaimed : int;
}

let collapse_chain tip ~from ~path =
  let rec walk acc r =
    match r.rbacking with
    | Qcow2_remote b -> walk (r :: acc) b
    | No_backing | Raw_pvfs _ -> (List.rev (r :: acc), r.rbacking)
  in
  let levels, base_backing = walk [] tip in
  List.iter
    (fun r ->
      if Pvfs.path r.rfile = path then
        invalid_arg "Qcow2.collapse_chain: target path names a chain level")
    levels;
  (* Union of the per-level tables, top (newest) down, first level wins:
     exactly what a reader of [tip] resolves, minus the chain walk. *)
  let union = Hashtbl.create 256 in
  List.iter
    (fun r ->
      (* lint: allow hashtbl-order — first-wins replace, one hit per key per level *)
      Hashtbl.iter
        (fun guest phys -> if not (Hashtbl.mem union guest) then Hashtbl.replace union guest (r, phys))
        r.rtable)
    levels;
  let guests = Hashtbl.fold (fun g _ acc -> g :: acc) union [] |> List.sort compare in
  let fs = tip.rfs in
  let meta_bytes = tip.rmeta_bytes in
  let size = meta_bytes + (List.length guests * tip.rcluster_size) in
  Obs.Span.with_ (Pvfs.engine fs) ~component:"qcow2" ~name:"qcow2.collapse"
    ~attrs:[ ("levels", Obs.Record.Int (List.length levels)); ("bytes", Obs.Record.Bytes size) ]
  @@ fun () ->
  Obs.Metrics.add m_collapse_bytes (float_of_int size);
  (* Read each unique cluster once, from the level that owns it... *)
  let clusters =
    List.map
      (fun guest ->
        let r, phys = Hashtbl.find union guest in
        Pvfs.read r.rfile ~from ~offset:(r.rmeta_bytes + (phys * r.rcluster_size))
          ~len:r.rcluster_size)
      guests
  in
  (* ...write the standalone result, then retire every chain level. *)
  if Pvfs.exists fs ~path then Pvfs.delete fs ~from ~path;
  let file = Pvfs.create fs ~from ~path in
  Pvfs.write file ~from ~offset:0 (Payload.concat (Payload.zero meta_bytes :: clusters));
  let rtable = Hashtbl.create (List.length guests) in
  List.iteri (fun pos guest -> Hashtbl.replace rtable guest pos) guests;
  let reclaimed = List.fold_left (fun acc r -> acc + Pvfs.size r.rfile) 0 levels in
  List.iter (fun r -> Pvfs.delete fs ~from ~path:(Pvfs.path r.rfile)) levels;
  ( {
      rfs = fs;
      rfile = file;
      rcapacity = tip.rcapacity;
      rcluster_size = tip.rcluster_size;
      rmeta_bytes = meta_bytes;
      rtable;
      rsnapshots = [];
      rbacking = base_backing;
      rdelta = false;
      rdigests = Hashtbl.copy tip.rdigests;
    },
    {
      levels_collapsed = List.length levels;
      clusters_unique = List.length guests;
      bytes_shipped = size;
      bytes_reclaimed = reclaimed;
    } )
