(** Adaptive cooperative prefetching for multi-deployment reads.

    When many VM instances boot concurrently from snapshots that share
    content (the common base image), each instance would fetch the same
    physical chunks from the checkpoint repository. The prefetcher exploits
    the execution jitter between instances (Section 3.1.4 / [25] of the
    paper): the {e first} instance to touch a chunk performs the real
    repository read; every other instance either joins the in-flight fetch
    or is served from the already-fetched copy — paying network transfer
    from the chunk's provider but no repeated provider disk I/O.

    Chunks are keyed by physical identity [(provider, chunk_id)], so
    sharing works across distinct per-VM checkpoint images that were cloned
    from the same base. *)

open Simcore
open Netsim

type t

val create : Engine.t -> Net.t -> unit -> t
(** A fresh prefetcher with an empty chunk cache. *)

val fetch :
  t ->
  self:Net.host ->
  key:int * int ->
  provider_host:Net.host ->
  fetch_fn:(unit -> Payload.t) ->
  Payload.t
(** [fetch t ~self ~key ~provider_host ~fetch_fn] returns the chunk
    payload. Exactly one caller per [key] runs [fetch_fn] (the full-cost
    repository read); concurrent callers block on it and then pay only the
    provider → [self] network transfer; later callers pay the transfer
    immediately (a provider-cache hit). *)

val distinct_fetches : t -> int
(** Number of keys fetched at full cost so far. *)

val coalesced_fetches : t -> int
(** Number of calls that were served without a repository disk read. *)
