open Simcore
open Netsim

type state =
  | Fetching of (Payload.t, exn) result Engine.Ivar.t
  | Done of Payload.t

type t = {
  engine : Engine.t;
  net : Net.t;
  table : (int * int, state) Hashtbl.t;
  mutable distinct : int;
  mutable coalesced : int;
}

let m_distinct = Obs.Metrics.counter ~component:"prefetch" ~name:"distinct_fetches"
let m_coalesced = Obs.Metrics.counter ~component:"prefetch" ~name:"coalesced_fetches"

let create engine net () =
  { engine; net; table = Hashtbl.create 1024; distinct = 0; coalesced = 0 }

let serve_cached t ~self ~provider_host payload =
  t.coalesced <- t.coalesced + 1;
  Obs.Metrics.incr m_coalesced;
  Net.transfer t.net ~src:provider_host ~dst:self (Payload.length payload);
  payload

let rec fetch t ~self ~key ~provider_host ~fetch_fn =
  match Hashtbl.find_opt t.table key with
  | Some (Done payload) -> serve_cached t ~self ~provider_host payload
  | Some (Fetching ivar) -> (
      match Engine.Ivar.read ivar with
      | Ok payload -> serve_cached t ~self ~provider_host payload
      | Error _ ->
          (* The fetching instance died (e.g. was killed mid-read); retry
             the fetch ourselves. *)
          fetch t ~self ~key ~provider_host ~fetch_fn)
  | None ->
      let ivar = Engine.Ivar.create t.engine in
      Hashtbl.replace t.table key (Fetching ivar);
      t.distinct <- t.distinct + 1;
      Obs.Metrics.incr m_distinct;
      let result = try Ok (fetch_fn ()) with exn -> Error exn in
      (match result with
      | Ok payload -> Hashtbl.replace t.table key (Done payload)
      | Error _ -> Hashtbl.remove t.table key);
      Engine.Ivar.fill ivar result;
      (match result with Ok payload -> payload | Error exn -> raise exn)

let distinct_fetches t = t.distinct
let coalesced_fetches t = t.coalesced
