(** The BlobCR mirroring module.

    Sits between the hypervisor and the checkpoint repository, exposing a
    BlobSeer snapshot as a plain raw block device (the paper implements
    this over FUSE). Internally it:

    - {e lazily fetches} chunks of the backing snapshot on first access and
      caches them on the compute node's local disk (optionally coalescing
      fetches of shared chunks through a {!Prefetch.t});
    - keeps {e local modifications} as copy-on-write differences on the
      local disk, never touching the repository during normal execution;
    - implements the two ioctl primitives of the paper: {!clone} (derive
      the per-VM checkpoint image from the base image, zero-copy) and
      {!commit} (push the accumulated differences into the checkpoint image
      as one incremental snapshot and return its version). *)

open Simcore
open Netsim
open Storage
open Blobseer

type t

val create :
  Engine.t ->
  host:Net.host ->
  local_disk:Disk.t ->
  base:Client.blob ->
  base_version:int ->
  ?prefetch:Prefetch.t ->
  name:string ->
  unit ->
  t
(** A mirror of snapshot [base_version] of [base]. On restart, pass the
    checkpoint image and the snapshot version to roll back to. *)

val name : t -> string
(** The name passed at creation (for traces). *)

val capacity : t -> int
(** Byte capacity of the mirrored image. *)

val chunk_size : t -> int
(** Equals the repository stripe size: COW granularity. *)

val device : t -> Block_dev.t
(** The raw block-device view handed to the hypervisor. *)

val read : t -> offset:int -> len:int -> Payload.t
(** Read through the cache, lazily fetching missing chunks from the base
    snapshot. *)

val write : t -> offset:int -> Payload.t -> unit
(** Copy-on-write update kept on the local disk; partial chunk writes
    fetch the old content first. *)

val clone : t -> unit
(** The [CLONE] ioctl: create this instance's checkpoint image as a clone
    of the base snapshot. Idempotent; {!commit} calls it on demand. *)

val commit : t -> int
(** The [COMMIT] ioctl: write every chunk dirtied since the previous commit
    into the checkpoint image as one incremental snapshot; returns the
    published version. A commit with no dirty chunks still publishes (an
    empty incremental snapshot).

    The push is pipelined through {!Client.write_chunks}: per-chunk
    local-disk reads, digests and repository writes overlap under the
    client write window. Chunks rewritten with content identical to the
    base version are suppressed (ship nothing, publish no descriptor),
    and content already stored anywhere in the repository dedups against
    it. *)

val freeze : t -> unit
(** Capture the current dirty set as a {e frozen epoch}, copy-on-write —
    the live-checkpointing half of the CLONE primitive (DESIGN.md §17).
    Metadata-only and instantaneous: the dirty set moves into the frozen
    pending set (with its cached digests), the live dirty set restarts
    empty, and guest writes keep flowing. The first guest write to a
    frozen-pending chunk copies the frozen bytes into a node-local diff
    log before the overwrite lands (charging the extra local-disk I/O to
    the guest — the interference cost of checkpointing live). Raises
    [Invalid_argument] if a frozen epoch is already active. *)

val commit_frozen : ?label:string -> t -> int
(** Ship the frozen epoch into the checkpoint image as one incremental
    snapshot and return the published version, like {!commit} but reading
    each chunk's {e frozen} content: from the diff log when the guest
    overwrote it, from the live store otherwise (where both are identical).
    Digest hints captured at freeze time keep suppression and dedup exact
    even while the guest mutates the live bytes mid-commit. On success the
    frozen epoch is released (its diff log freed). On failure the frozen
    epoch stays intact so the caller can retry (transient error) or
    {!abort_frozen}. [label] names the emitted span (default
    ["ckpt.commit"]). *)

val abort_frozen : t -> unit
(** Roll a frozen epoch back: fold every unshipped frozen chunk into the
    live dirty set and drop the diff log, so the last fully committed
    snapshot stays the rollback target and the next commit ships the
    chunks' current bytes. No-op without an active frozen epoch. *)

val frozen_active : t -> bool
(** Whether a frozen epoch is currently pending. *)

val frozen_chunks : t -> int
(** Chunks in the active frozen epoch (0 when none). *)

val frozen_bytes : t -> int
(** Byte size of the active frozen epoch (chunk-granular; 0 when none). *)

val cow_chunks : t -> int
(** Cumulative frozen-chunk copies made to preserve overwritten frozen
    content — the live-checkpointing interference, in chunks. *)

val cow_bytes : t -> int
(** Cumulative bytes copied into frozen diff logs (interference cost). *)

val last_commit_stats : t -> Client.write_stats
(** Shipped / dedup'd / suppressed accounting of the most recent
    {!commit} ({!Client.empty_write_stats} before the first). *)

val total_commit_stats : t -> Client.write_stats
(** Cumulative accounting over every {!commit} of this mirror. *)

val checkpoint_image : t -> Client.blob option
(** The per-instance checkpoint image; [None] before the first {!clone}. *)

val taint_all : t -> unit
(** Mark every locally present chunk dirty, forcing the next {!commit} to
    re-push the whole local image state — the ablation baseline that
    isolates the value of incremental snapshotting. *)

val dirty_chunks : t -> int
(** Number of chunks modified since the last commit. *)

val dirty_bytes : t -> int
(** Size of the diff the next {!commit} will push (chunk-granular). *)

val cached_chunks : t -> int
(** Chunks fetched from the repository so far (lazy-transfer footprint). *)

val local_bytes : t -> int
(** Local-disk bytes used by cache plus COW differences. *)

val drop_local_state : t -> unit
(** Release the mirror's local-disk footprint (instance terminated and its
    node-local storage reclaimed). *)

(** {1 Audit views}

    Read-only views for [Analysis.Invariants]; no simulated I/O charged.
    Mirrors register themselves with their engine as {!Audit_mirror}
    subjects. *)

type Engine.audit_subject += Audit_mirror of t

val present_view : t -> int list
(** Locally cached chunk indices, ascending. *)

val dirty_view : t -> int list
(** Chunk indices modified since the last commit, ascending. The COW
    invariant is [dirty_view ⊆ present_view]. *)

val unsafe_mark_dirty : t -> chunk:int -> unit
(** Mark a chunk dirty without caching it — breaks the COW invariant.
    Test-only: used to verify the auditor catches corruption. *)

val digest_view : t -> (int * int64) list
(** The carried digest cache [(chunk, digest)], ascending by chunk. The
    invariants are keys ⊆ {!present_view} and every entry equal to the
    digest of the chunk's current local bytes — [Analysis.Invariants]
    samples exactly that at teardown (the digest-cache coherence audit).
    Empty when [params.digest_cache] is off. *)

val peek_chunk_payload : t -> chunk:int -> Payload.t
(** A chunk's current local bytes, free of simulated cost — the coherence
    audit's ground truth for recomputing cached digests. *)

val unsafe_poke_digest : t -> chunk:int -> int64 -> unit
(** Corrupt a digest-cache entry — breaks the coherence invariant.
    Test-only: used to verify the auditor catches it. *)

val frozen_pending_view : t -> int list
(** Chunk indices of the active frozen epoch, ascending (empty when none).
    Invariant: frozen pending ⊆ {!present_view}. *)

val frozen_copied_view : t -> int list
(** Frozen chunks whose bytes were preserved in the diff log, ascending.
    Invariant: copied ⊆ {!frozen_pending_view}. *)

val frozen_digest_view : t -> (int * int64) list
(** Digests captured at freeze time [(chunk, digest)], ascending by chunk.
    Invariants: keys ⊆ {!frozen_pending_view}, and every entry equals the
    digest of the chunk's frozen bytes ({!peek_frozen_payload}) — audited
    at teardown on both forks of the clone boundary. *)

val peek_frozen_payload : t -> chunk:int -> Payload.t
(** A frozen chunk's content as {!commit_frozen} would ship it (diff log
    if preserved, live store otherwise), free of simulated cost — the
    coherence audit's ground truth. Raises [Invalid_argument] without an
    active frozen epoch. *)
