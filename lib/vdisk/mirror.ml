open Simcore
open Netsim
open Storage
open Blobseer

(* A frozen epoch: the dirty set captured copy-on-write at FREEZE time
   (DESIGN.md §17). [f_pending] are the chunks the snapshot must ship;
   their content at freeze time is either still in [local] (untouched
   since) or preserved in [f_store] (the frozen diff log) the first time
   the guest overwrites them. [f_digests] are the frozen chunks' digests
   captured from the live cache, so the background commit can hint the
   client without re-reading guest-mutated bytes. *)
type frozen = {
  f_pending : (int, unit) Hashtbl.t; (* frozen chunks not yet shipped *)
  f_digests : (int, int64) Hashtbl.t; (* digest of frozen content *)
  f_store : Sparse_bytes.t; (* frozen bytes of guest-overwritten chunks *)
  f_copied : (int, unit) Hashtbl.t; (* chunks whose frozen bytes sit in f_store *)
  mutable f_reserved : int; (* local-disk bytes held by f_store *)
  f_skip_chunks : int; (* clean-rewrite absorption carried into the freeze *)
  f_skip_bytes : int;
}

type t = {
  engine : Engine.t;
  host : Net.host;
  local_disk : Disk.t;
  base : Client.blob;
  base_version : int;
  prefetch : Prefetch.t option;
  mname : string;
  capacity : int;
  chunk_size : int;
  local : Sparse_bytes.t; (* chunk cache + COW diffs, chunk-addressed *)
  present : (int, unit) Hashtbl.t; (* chunk locally available *)
  dirty : (int, unit) Hashtbl.t; (* modified since last commit *)
  (* Digest of each present chunk's current local content, carried across
     commit epochs (DESIGN.md §16). Invariants: keys ⊆ present, and every
     entry equals the digest of the chunk's bytes in [local] — audited at
     teardown. Entries are dropped on partial-chunk COW writes (the new
     digest would cost a read-modify-digest) and re-seeded from fetches,
     full-chunk writes and published descriptors. *)
  digests : (int, int64) Hashtbl.t;
  use_cache : bool; (* params.digest_cache: carry digests across epochs *)
  mutable skip_chunks : int; (* clean rewrites absorbed at the device ... *)
  mutable skip_bytes : int; (* ... since the last commit *)
  mutable ckpt : Client.blob option;
  mutable reserved : int; (* local-disk bytes held *)
  mutable last_stats : Client.write_stats; (* most recent commit *)
  mutable total_stats : Client.write_stats; (* cumulative over all commits *)
  mutable frozen : frozen option; (* active frozen epoch, if any *)
  mutable cow_chunks_total : int; (* frozen-chunk copies since creation ... *)
  mutable cow_bytes_total : int; (* ... the live-checkpoint interference cost *)
}

type Engine.audit_subject += Audit_mirror of t

let m_chunks_fetched = Obs.Metrics.counter ~component:"mirror" ~name:"chunks_fetched"
let m_bytes_fetched = Obs.Metrics.counter ~component:"mirror" ~name:"bytes_fetched"
let m_local_bytes = Obs.Metrics.gauge ~component:"mirror" ~name:"local_bytes"
let m_commit_seconds = Obs.Metrics.histogram ~component:"mirror" ~name:"commit_seconds"
let m_frozen_chunks = Obs.Metrics.counter ~component:"mirror" ~name:"frozen_chunks"
let m_cow_chunks = Obs.Metrics.counter ~component:"mirror" ~name:"cow_chunks"
let m_cow_bytes = Obs.Metrics.counter ~component:"mirror" ~name:"cow_bytes"

let create engine ~host ~local_disk ~base ~base_version ?prefetch ~name () =
  let chunk_size = Client.stripe_size base in
  let t = {
    engine;
    host;
    local_disk;
    base;
    base_version;
    prefetch;
    mname = name;
    capacity = Client.capacity base;
    chunk_size;
    local = Sparse_bytes.create ~block_size:chunk_size ();
    present = Hashtbl.create 256;
    dirty = Hashtbl.create 64;
    digests = Hashtbl.create 256;
    use_cache = (Client.params (Client.service base)).Types.digest_cache;
    skip_chunks = 0;
    skip_bytes = 0;
    ckpt = None;
    reserved = 0;
    last_stats = Client.empty_write_stats;
    total_stats = Client.empty_write_stats;
    frozen = None;
    cow_chunks_total = 0;
    cow_bytes_total = 0;
  }
  in
  Engine.register_audit_subject engine (Audit_mirror t);
  t

let name t = t.mname
let capacity t = t.capacity
let chunk_size t = t.chunk_size
let checkpoint_image t = t.ckpt
let dirty_chunks t = Hashtbl.length t.dirty

let chunk_extent t index =
  min t.capacity ((index + 1) * t.chunk_size) - (index * t.chunk_size)

let dirty_bytes t = Hashtbl.fold (fun i () acc -> acc + chunk_extent t i) t.dirty 0 (* lint: allow hashtbl-order — commutative sum *)
let cached_chunks t = Hashtbl.length t.present
let local_bytes t = t.reserved
let frozen_active t = t.frozen <> None
let frozen_chunks t = match t.frozen with None -> 0 | Some f -> Hashtbl.length f.f_pending

let frozen_bytes t =
  match t.frozen with
  | None -> 0
  | Some f -> Hashtbl.fold (fun i () acc -> acc + chunk_extent t i) f.f_pending 0 (* lint: allow hashtbl-order — commutative sum *)

let cow_chunks t = t.cow_chunks_total
let cow_bytes t = t.cow_bytes_total

let sorted_keys tbl = Hashtbl.fold (fun i () acc -> i :: acc) tbl [] |> List.sort compare
let present_view t = sorted_keys t.present
let dirty_view t = sorted_keys t.dirty
let unsafe_mark_dirty t ~chunk = Hashtbl.replace t.dirty chunk ()

let digest_view t =
  (* lint: allow hashtbl-order — sorted below *)
  Hashtbl.fold (fun i d acc -> (i, d) :: acc) t.digests []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let peek_chunk_payload t ~chunk =
  Sparse_bytes.read t.local ~offset:(chunk * t.chunk_size) ~len:(chunk_extent t chunk)

let unsafe_poke_digest t ~chunk digest = Hashtbl.replace t.digests chunk digest

let frozen_pending_view t =
  match t.frozen with None -> [] | Some f -> sorted_keys f.f_pending

let frozen_copied_view t =
  match t.frozen with None -> [] | Some f -> sorted_keys f.f_copied

let frozen_digest_view t =
  match t.frozen with
  | None -> []
  | Some f ->
      (* lint: allow hashtbl-order — sorted below *)
      Hashtbl.fold (fun i d acc -> (i, d) :: acc) f.f_digests []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let peek_frozen_payload t ~chunk =
  match t.frozen with
  | None -> invalid_arg "Mirror.peek_frozen_payload: no frozen epoch"
  | Some f ->
      let store = if Hashtbl.mem f.f_copied chunk then f.f_store else t.local in
      Sparse_bytes.read store ~offset:(chunk * t.chunk_size) ~len:(chunk_extent t chunk)

let local_stream t = Net.host_id t.host

let reserve_local t bytes =
  Disk.reserve t.local_disk bytes;
  t.reserved <- t.reserved + bytes;
  Obs.Metrics.set m_local_bytes t.reserved

let drop_local_state t =
  Disk.free t.local_disk t.reserved;
  t.reserved <- 0;
  Obs.Metrics.set m_local_bytes 0;
  Hashtbl.reset t.present;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.digests;
  t.frozen <- None;
  Sparse_bytes.clear t.local

(* Bring chunk [index] into the local cache, lazily. The fetch is coalesced
   through the prefetcher when the chunk is shared with other instances. *)
let ensure_present t index =
  if not (Hashtbl.mem t.present index) then begin
    let extent = chunk_extent t index in
    let fetch_plain () =
      Client.read_chunk t.base ~from:t.host ~version:t.base_version ~chunk:index
    in
    let payload =
      match (t.prefetch, Client.chunk_identity t.base ~version:t.base_version ~chunk:index) with
      | Some prefetch, Some key ->
          let provider_host =
            Option.get (Client.chunk_host t.base ~version:t.base_version ~chunk:index)
          in
          Prefetch.fetch prefetch ~self:t.host ~key ~provider_host ~fetch_fn:fetch_plain
      | _ -> fetch_plain ()
    in
    assert (Payload.length payload = extent);
    Obs.Metrics.incr m_chunks_fetched;
    Obs.Metrics.add m_bytes_fetched (float_of_int extent);
    (* Cache fill: write-through to the local disk. *)
    reserve_local t extent;
    Disk.write t.local_disk ~stream:(local_stream t) extent;
    Disk.free t.local_disk extent;
    Sparse_bytes.write t.local ~offset:(index * t.chunk_size) payload;
    Hashtbl.replace t.present index ();
    (* Seed the digest cache: the read already verified this digest against
       the descriptor, so it is memoized on the payload — no extra work. *)
    if t.use_cache then Hashtbl.replace t.digests index (Payload.digest payload)
  end

let check_range t offset len =
  if offset < 0 || len < 0 || offset + len > t.capacity then
    invalid_arg "Mirror: range out of bounds"

let read t ~offset ~len =
  check_range t offset len;
  if len = 0 then Payload.zero 0
  else begin
    let cs = t.chunk_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    for index = first to last do
      ensure_present t index
    done;
    Disk.read t.local_disk ~stream:(local_stream t) len;
    Sparse_bytes.read t.local ~offset ~len
  end

(* A guest write is about to land on chunk [index] while a frozen epoch is
   active: if the chunk is frozen-pending and its frozen bytes have not
   been preserved yet, copy them into the frozen diff log first. The extra
   local-disk read + write is charged on the guest's stream — this is the
   application-interference cost of checkpointing live. *)
let preserve_frozen t index =
  match t.frozen with
  | Some f when Hashtbl.mem f.f_pending index && not (Hashtbl.mem f.f_copied index) ->
      let extent = chunk_extent t index in
      Disk.read t.local_disk ~stream:(local_stream t) extent;
      let frozen_bytes =
        Sparse_bytes.read t.local ~offset:(index * t.chunk_size) ~len:extent
      in
      reserve_local t extent;
      Disk.write t.local_disk ~stream:(local_stream t) extent;
      Disk.free t.local_disk extent;
      Sparse_bytes.write f.f_store ~offset:(index * t.chunk_size) frozen_bytes;
      Hashtbl.replace f.f_copied index ();
      f.f_reserved <- f.f_reserved + extent;
      t.cow_chunks_total <- t.cow_chunks_total + 1;
      t.cow_bytes_total <- t.cow_bytes_total + extent;
      Obs.Metrics.incr m_cow_chunks;
      Obs.Metrics.add m_cow_bytes (float_of_int extent)
  | _ -> ()

let write t ~offset payload =
  let len = Payload.length payload in
  check_range t offset len;
  if len > 0 then begin
    let cs = t.chunk_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    (* The device write is charged for the full request regardless of what
       the digest cache absorbs below: the guest cannot know the content was
       unchanged, so the local-disk cost is real either way. *)
    Disk.write t.local_disk ~stream:(local_stream t) len;
    Disk.free t.local_disk len;
    for index = first to last do
      let cstart = index * cs in
      let extent = chunk_extent t index in
      let wstart = max cstart offset and wend = min (cstart + extent) (offset + len) in
      let slice = Payload.sub payload ~pos:(wstart - offset) ~len:(wend - wstart) in
      let covers_whole = wstart = cstart && wend = cstart + extent in
      if covers_whole && t.use_cache then begin
        let d = Payload.digest slice in
        match Hashtbl.find_opt t.digests index with
        | Some cached when cached = d && Hashtbl.mem t.present index ->
            (* Clean rewrite absorbed at the device: the chunk already holds
               exactly these bytes, so it stays out of the dirty set and the
               next commit never reads, digests or ships it. *)
            t.skip_chunks <- t.skip_chunks + 1;
            t.skip_bytes <- t.skip_bytes + extent;
            Client.note_digest_skipped (Client.service t.base) ~chunks:1 ~bytes:extent
        | _ ->
            if not (Hashtbl.mem t.present index) then begin
              reserve_local t extent;
              Hashtbl.replace t.present index ()
            end;
            preserve_frozen t index;
            Hashtbl.replace t.dirty index ();
            Hashtbl.replace t.digests index d;
            Sparse_bytes.write t.local ~offset:wstart slice
      end
      else begin
        (* A partial write to a chunk we do not hold needs its old content
           (copy-on-write); a full overwrite does not. *)
        if not covers_whole then ensure_present t index
        else if not (Hashtbl.mem t.present index) then begin
          reserve_local t extent;
          Hashtbl.replace t.present index ()
        end;
        preserve_frozen t index;
        Hashtbl.replace t.dirty index ();
        (* The chunk's new digest would cost a read-modify-digest here;
           invalidate instead — the commit path re-digests it once. *)
        if not covers_whole then Hashtbl.remove t.digests index;
        Sparse_bytes.write t.local ~offset:wstart slice
      end
    done
  end

let device t =
  {
    Block_dev.capacity = t.capacity;
    read = (fun ~offset ~len -> read t ~offset ~len);
    write = (fun ~offset payload -> write t ~offset payload);
    flush = (fun () -> ());
  }

let taint_all t =
  (* lint: allow hashtbl-order — independent per-key marking *)
  Hashtbl.iter (fun index () -> Hashtbl.replace t.dirty index ()) t.present;
  (* The ablation baseline must pay the full re-digest + re-ship cost:
     carried digests would let the commit path suppress everything from
     cache hits, quietly turning the baseline incremental again. *)
  Hashtbl.reset t.digests

let clone t =
  match t.ckpt with
  | Some _ -> ()
  | None ->
      Trace.emit t.engine ~component:t.mname "CLONE from blob %d v%d"
        (Client.blob_id t.base) t.base_version;
      t.ckpt <- Some (Client.clone t.base ~from:t.host ~version:t.base_version)

(* Shared ship path of {!commit} and {!commit_frozen}: push [indices] into
   the checkpoint image as one incremental snapshot. One job per chunk:
   the local-disk read happens inside the client's write window, so
   reading chunk N+1 off the local disk overlaps with digesting, dedup
   resolution and repository writes of chunk N — no up-front
   materialization of the whole diff. Chunks rewritten with their base
   content are suppressed by digest; [hints] let the client suppress and
   dedup without running the thunk at all. [payload_store] selects where a
   chunk's bytes are read from (the live store, or the frozen diff log for
   guest-overwritten frozen chunks); [reseed_ok] guards which chunks may
   have their live digest-cache entry re-seeded from the descriptors this
   commit minted (unsafe for chunks whose live bytes moved on since). *)
let ship_indices t ~indices ~payload_store ~hints ~skip_chunks ~skip_bytes ~reseed_ok =
  Obs.Span.with_ t.engine ~component:"mirror" ~name:"ckpt.clone" (fun () -> clone t);
  let ckpt = Option.get t.ckpt in
  let jobs =
    List.map
      (fun index ->
        let extent = chunk_extent t index in
        ( index,
          fun () ->
            Disk.read t.local_disk ~stream:(local_stream t) extent;
            Sparse_bytes.read (payload_store index) ~offset:(index * t.chunk_size) ~len:extent
        ))
      indices
  in
  let version, stats = Client.write_chunks ckpt ~from:t.host ~suppress_clean:true ~hints jobs in
  (* Fold the write-time clean skips into the commit accounting: a rewrite
     absorbed at the device is the same event the digest path would have
     suppressed, observed earlier. *)
  let stats =
    if skip_chunks = 0 then stats
    else
      {
        stats with
        Client.chunks_total = stats.Client.chunks_total + skip_chunks;
        chunks_suppressed = stats.Client.chunks_suppressed + skip_chunks;
        bytes_suppressed = stats.Client.bytes_suppressed + skip_bytes;
      }
  in
  (* Re-seed invalidated entries (partial-chunk COW writes) from the
     descriptors this commit just minted — a free metadata peek, so the
     next epoch's hints cover them again. *)
  if t.use_cache then begin
    let tree = Client.tree ckpt ~version in
    List.iter
      (fun index ->
        if reseed_ok index && not (Hashtbl.mem t.digests index) then
          match Segment_tree.get tree index with
          | Some (d : Types.chunk_desc) -> Hashtbl.replace t.digests index d.digest
          | None -> ())
      indices
  end;
  (version, stats)

let finish_commit t ~started ~version ~stats =
  t.last_stats <- stats;
  t.total_stats <- Client.add_write_stats t.total_stats stats;
  Trace.emit t.engine ~component:t.mname
    "COMMIT %d chunks: %d shipped (%d B), %d dedup'd (%d B), %d clean (%d B) -> v%d"
    stats.Client.chunks_total stats.Client.chunks_shipped stats.Client.bytes_shipped
    stats.Client.chunks_deduped stats.Client.bytes_deduped stats.Client.chunks_suppressed
    stats.Client.bytes_suppressed version;
  Obs.Metrics.observe m_commit_seconds (Engine.now t.engine -. started)

let commit t =
  if t.frozen <> None then
    invalid_arg "Mirror.commit: a frozen epoch is active (commit or abort it first)";
  Obs.Span.with_ t.engine ~component:"mirror" ~name:"ckpt.commit"
    ~attrs:[ ("dirty_chunks", Obs.Record.Int (Hashtbl.length t.dirty)) ]
  @@ fun () ->
  let started = Engine.now t.engine in
  let indices = Hashtbl.fold (fun i () acc -> i :: acc) t.dirty [] |> List.sort compare in
  (* Carried digests become hints: the client suppresses clean rewrites and
     resolves dedup from them without running the thunk — a hinted chunk
     that doesn't ship never touches the local disk either. *)
  let hints =
    if not t.use_cache then []
    else
      List.filter_map
        (fun index ->
          Option.map (fun d -> (index, d)) (Hashtbl.find_opt t.digests index))
        indices
  in
  let version, stats =
    ship_indices t ~indices
      ~payload_store:(fun _ -> t.local)
      ~hints ~skip_chunks:t.skip_chunks ~skip_bytes:t.skip_bytes
      ~reseed_ok:(fun _ -> true)
  in
  t.skip_chunks <- 0;
  t.skip_bytes <- 0;
  finish_commit t ~started ~version ~stats;
  Hashtbl.reset t.dirty;
  version

(* ------------------------------------------------------------------ *)
(* Live checkpointing: FREEZE / frozen COMMIT / abort (DESIGN.md §17) *)

let freeze t =
  if t.frozen <> None then invalid_arg "Mirror.freeze: a frozen epoch is already active";
  let f_pending = Hashtbl.copy t.dirty in
  let f_digests = Hashtbl.create (max 16 (Hashtbl.length f_pending)) in
  if t.use_cache then
    (* lint: allow hashtbl-order — independent per-key copy *)
    Hashtbl.iter
      (fun i () ->
        match Hashtbl.find_opt t.digests i with
        | Some d -> Hashtbl.replace f_digests i d
        | None -> ())
      f_pending;
  t.frozen <-
    Some
      {
        f_pending;
        f_digests;
        f_store = Sparse_bytes.create ~block_size:t.chunk_size ();
        f_copied = Hashtbl.create 16;
        f_reserved = 0;
        f_skip_chunks = t.skip_chunks;
        f_skip_bytes = t.skip_bytes;
      };
  Hashtbl.reset t.dirty;
  t.skip_chunks <- 0;
  t.skip_bytes <- 0;
  Obs.Metrics.add m_frozen_chunks (float_of_int (Hashtbl.length f_pending));
  Trace.emit t.engine ~component:t.mname "FREEZE %d dirty chunk(s) copy-on-write"
    (Hashtbl.length f_pending)

let commit_frozen ?(label = "ckpt.commit") t =
  let f =
    match t.frozen with
    | Some f -> f
    | None -> invalid_arg "Mirror.commit_frozen: no frozen epoch"
  in
  Obs.Span.with_ t.engine ~component:"mirror" ~name:label
    ~attrs:[ ("frozen_chunks", Obs.Record.Int (Hashtbl.length f.f_pending)) ]
  @@ fun () ->
  let started = Engine.now t.engine in
  let indices = sorted_keys f.f_pending in
  (* Hints come from the digests captured at freeze time: they describe the
     frozen content even after the guest moved the live bytes on, so the
     client's suppression/dedup resolution stays exact during a background
     commit. *)
  let hints =
    if not t.use_cache then []
    else
      List.filter_map
        (fun index ->
          Option.map (fun d -> (index, d)) (Hashtbl.find_opt f.f_digests index))
        indices
  in
  let version, stats =
    ship_indices t ~indices
      ~payload_store:(fun index ->
        if Hashtbl.mem f.f_copied index then f.f_store else t.local)
      ~hints ~skip_chunks:f.f_skip_chunks ~skip_bytes:f.f_skip_bytes
      ~reseed_ok:(fun index -> not (Hashtbl.mem f.f_copied index))
  in
  (* Success: the repository holds the frozen content, so the diff log's
     preserved copies can go. A failure above leaves the frozen epoch
     intact — the caller either retries (transient) or {!abort_frozen}s. *)
  Disk.free t.local_disk f.f_reserved;
  t.reserved <- t.reserved - f.f_reserved;
  Obs.Metrics.set m_local_bytes t.reserved;
  t.frozen <- None;
  finish_commit t ~started ~version ~stats;
  version

let abort_frozen t =
  match t.frozen with
  | None -> ()
  | Some f ->
      (* Fold the unshipped frozen chunks back into the live dirty set: the
         last fully committed snapshot stays authoritative, and the next
         commit ships the chunks' current bytes. The preserved frozen
         copies are dropped — they described a snapshot that will never be
         completed. *)
      (* lint: allow hashtbl-order — independent per-key marking *)
      Hashtbl.iter (fun i () -> Hashtbl.replace t.dirty i ()) f.f_pending;
      Disk.free t.local_disk f.f_reserved;
      t.reserved <- t.reserved - f.f_reserved;
      Obs.Metrics.set m_local_bytes t.reserved;
      t.skip_chunks <- t.skip_chunks + f.f_skip_chunks;
      t.skip_bytes <- t.skip_bytes + f.f_skip_bytes;
      t.frozen <- None;
      Trace.emit t.engine ~component:t.mname
        "FREEZE aborted: %d chunk(s) folded back into the dirty set"
        (Hashtbl.length f.f_pending)

let last_commit_stats t = t.last_stats
let total_commit_stats t = t.total_stats
