open Simcore
open Netsim
open Storage
open Blobseer

type t = {
  engine : Engine.t;
  host : Net.host;
  local_disk : Disk.t;
  base : Client.blob;
  base_version : int;
  prefetch : Prefetch.t option;
  mname : string;
  capacity : int;
  chunk_size : int;
  local : Sparse_bytes.t; (* chunk cache + COW diffs, chunk-addressed *)
  present : (int, unit) Hashtbl.t; (* chunk locally available *)
  dirty : (int, unit) Hashtbl.t; (* modified since last commit *)
  mutable ckpt : Client.blob option;
  mutable reserved : int; (* local-disk bytes held *)
  mutable last_stats : Client.write_stats; (* most recent commit *)
  mutable total_stats : Client.write_stats; (* cumulative over all commits *)
}

type Engine.audit_subject += Audit_mirror of t

let m_chunks_fetched = Obs.Metrics.counter ~component:"mirror" ~name:"chunks_fetched"
let m_bytes_fetched = Obs.Metrics.counter ~component:"mirror" ~name:"bytes_fetched"
let m_local_bytes = Obs.Metrics.gauge ~component:"mirror" ~name:"local_bytes"
let m_commit_seconds = Obs.Metrics.histogram ~component:"mirror" ~name:"commit_seconds"

let create engine ~host ~local_disk ~base ~base_version ?prefetch ~name () =
  let chunk_size = Client.stripe_size base in
  let t = {
    engine;
    host;
    local_disk;
    base;
    base_version;
    prefetch;
    mname = name;
    capacity = Client.capacity base;
    chunk_size;
    local = Sparse_bytes.create ~block_size:chunk_size ();
    present = Hashtbl.create 256;
    dirty = Hashtbl.create 64;
    ckpt = None;
    reserved = 0;
    last_stats = Client.empty_write_stats;
    total_stats = Client.empty_write_stats;
  }
  in
  Engine.register_audit_subject engine (Audit_mirror t);
  t

let name t = t.mname
let capacity t = t.capacity
let chunk_size t = t.chunk_size
let checkpoint_image t = t.ckpt
let dirty_chunks t = Hashtbl.length t.dirty

let chunk_extent t index =
  min t.capacity ((index + 1) * t.chunk_size) - (index * t.chunk_size)

let dirty_bytes t = Hashtbl.fold (fun i () acc -> acc + chunk_extent t i) t.dirty 0 (* lint: allow hashtbl-order — commutative sum *)
let cached_chunks t = Hashtbl.length t.present
let local_bytes t = t.reserved

let sorted_keys tbl = Hashtbl.fold (fun i () acc -> i :: acc) tbl [] |> List.sort compare
let present_view t = sorted_keys t.present
let dirty_view t = sorted_keys t.dirty
let unsafe_mark_dirty t ~chunk = Hashtbl.replace t.dirty chunk ()

let local_stream t = Net.host_id t.host

let reserve_local t bytes =
  Disk.reserve t.local_disk bytes;
  t.reserved <- t.reserved + bytes;
  Obs.Metrics.set m_local_bytes t.reserved

let drop_local_state t =
  Disk.free t.local_disk t.reserved;
  t.reserved <- 0;
  Obs.Metrics.set m_local_bytes 0;
  Hashtbl.reset t.present;
  Hashtbl.reset t.dirty;
  Sparse_bytes.clear t.local

(* Bring chunk [index] into the local cache, lazily. The fetch is coalesced
   through the prefetcher when the chunk is shared with other instances. *)
let ensure_present t index =
  if not (Hashtbl.mem t.present index) then begin
    let extent = chunk_extent t index in
    let fetch_plain () =
      Client.read_chunk t.base ~from:t.host ~version:t.base_version ~chunk:index
    in
    let payload =
      match (t.prefetch, Client.chunk_identity t.base ~version:t.base_version ~chunk:index) with
      | Some prefetch, Some key ->
          let provider_host =
            Option.get (Client.chunk_host t.base ~version:t.base_version ~chunk:index)
          in
          Prefetch.fetch prefetch ~self:t.host ~key ~provider_host ~fetch_fn:fetch_plain
      | _ -> fetch_plain ()
    in
    assert (Payload.length payload = extent);
    Obs.Metrics.incr m_chunks_fetched;
    Obs.Metrics.add m_bytes_fetched (float_of_int extent);
    (* Cache fill: write-through to the local disk. *)
    reserve_local t extent;
    Disk.write t.local_disk ~stream:(local_stream t) extent;
    Disk.free t.local_disk extent;
    Sparse_bytes.write t.local ~offset:(index * t.chunk_size) payload;
    Hashtbl.replace t.present index ()
  end

let check_range t offset len =
  if offset < 0 || len < 0 || offset + len > t.capacity then
    invalid_arg "Mirror: range out of bounds"

let read t ~offset ~len =
  check_range t offset len;
  if len = 0 then Payload.zero 0
  else begin
    let cs = t.chunk_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    for index = first to last do
      ensure_present t index
    done;
    Disk.read t.local_disk ~stream:(local_stream t) len;
    Sparse_bytes.read t.local ~offset ~len
  end

let write t ~offset payload =
  let len = Payload.length payload in
  check_range t offset len;
  if len > 0 then begin
    let cs = t.chunk_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    for index = first to last do
      let cstart = index * cs in
      let covers_whole =
        offset <= cstart && offset + len >= cstart + chunk_extent t index
      in
      (* A partial write to a chunk we do not hold needs its old content
         (copy-on-write); a full overwrite does not. *)
      if not covers_whole then ensure_present t index
      else if not (Hashtbl.mem t.present index) then begin
        reserve_local t (chunk_extent t index);
        Hashtbl.replace t.present index ()
      end;
      Hashtbl.replace t.dirty index ()
    done;
    Disk.write t.local_disk ~stream:(local_stream t) len;
    Disk.free t.local_disk len;
    Sparse_bytes.write t.local ~offset payload
  end

let device t =
  {
    Block_dev.capacity = t.capacity;
    read = (fun ~offset ~len -> read t ~offset ~len);
    write = (fun ~offset payload -> write t ~offset payload);
    flush = (fun () -> ());
  }

let taint_all t =
  (* lint: allow hashtbl-order — independent per-key marking *)
  Hashtbl.iter (fun index () -> Hashtbl.replace t.dirty index ()) t.present

let clone t =
  match t.ckpt with
  | Some _ -> ()
  | None ->
      Trace.emit t.engine ~component:t.mname "CLONE from blob %d v%d"
        (Client.blob_id t.base) t.base_version;
      t.ckpt <- Some (Client.clone t.base ~from:t.host ~version:t.base_version)

let commit t =
  Obs.Span.with_ t.engine ~component:"mirror" ~name:"ckpt.commit"
    ~attrs:[ ("dirty_chunks", Obs.Record.Int (Hashtbl.length t.dirty)) ]
  @@ fun () ->
  let started = Engine.now t.engine in
  Obs.Span.with_ t.engine ~component:"mirror" ~name:"ckpt.clone" (fun () -> clone t);
  let ckpt = Option.get t.ckpt in
  let indices = Hashtbl.fold (fun i () acc -> i :: acc) t.dirty [] |> List.sort compare in
  (* One job per dirty chunk: the local-disk read happens inside the
     client's write window, so reading chunk N+1 off the local disk
     overlaps with digesting, dedup resolution and repository writes of
     chunk N — no up-front materialization of the whole diff. Chunks
     rewritten with their base content are suppressed by digest. *)
  let jobs =
    List.map
      (fun index ->
        let extent = chunk_extent t index in
        ( index,
          fun () ->
            Disk.read t.local_disk ~stream:(local_stream t) extent;
            Sparse_bytes.read t.local ~offset:(index * t.chunk_size) ~len:extent ))
      indices
  in
  let version, stats = Client.write_chunks ckpt ~from:t.host ~suppress_clean:true jobs in
  t.last_stats <- stats;
  t.total_stats <- Client.add_write_stats t.total_stats stats;
  Trace.emit t.engine ~component:t.mname
    "COMMIT %d chunks: %d shipped (%d B), %d dedup'd (%d B), %d clean (%d B) -> v%d"
    stats.Client.chunks_total stats.Client.chunks_shipped stats.Client.bytes_shipped
    stats.Client.chunks_deduped stats.Client.bytes_deduped stats.Client.chunks_suppressed
    stats.Client.bytes_suppressed version;
  Obs.Metrics.observe m_commit_seconds (Engine.now t.engine -. started);
  Hashtbl.reset t.dirty;
  version

let last_commit_stats t = t.last_stats
let total_commit_stats t = t.total_stats
