open Simcore
open Netsim
open Storage
open Blobseer

type t = {
  engine : Engine.t;
  host : Net.host;
  local_disk : Disk.t;
  base : Client.blob;
  base_version : int;
  prefetch : Prefetch.t option;
  mname : string;
  capacity : int;
  chunk_size : int;
  local : Sparse_bytes.t; (* chunk cache + COW diffs, chunk-addressed *)
  present : (int, unit) Hashtbl.t; (* chunk locally available *)
  dirty : (int, unit) Hashtbl.t; (* modified since last commit *)
  (* Digest of each present chunk's current local content, carried across
     commit epochs (DESIGN.md §16). Invariants: keys ⊆ present, and every
     entry equals the digest of the chunk's bytes in [local] — audited at
     teardown. Entries are dropped on partial-chunk COW writes (the new
     digest would cost a read-modify-digest) and re-seeded from fetches,
     full-chunk writes and published descriptors. *)
  digests : (int, int64) Hashtbl.t;
  use_cache : bool; (* params.digest_cache: carry digests across epochs *)
  mutable skip_chunks : int; (* clean rewrites absorbed at the device ... *)
  mutable skip_bytes : int; (* ... since the last commit *)
  mutable ckpt : Client.blob option;
  mutable reserved : int; (* local-disk bytes held *)
  mutable last_stats : Client.write_stats; (* most recent commit *)
  mutable total_stats : Client.write_stats; (* cumulative over all commits *)
}

type Engine.audit_subject += Audit_mirror of t

let m_chunks_fetched = Obs.Metrics.counter ~component:"mirror" ~name:"chunks_fetched"
let m_bytes_fetched = Obs.Metrics.counter ~component:"mirror" ~name:"bytes_fetched"
let m_local_bytes = Obs.Metrics.gauge ~component:"mirror" ~name:"local_bytes"
let m_commit_seconds = Obs.Metrics.histogram ~component:"mirror" ~name:"commit_seconds"

let create engine ~host ~local_disk ~base ~base_version ?prefetch ~name () =
  let chunk_size = Client.stripe_size base in
  let t = {
    engine;
    host;
    local_disk;
    base;
    base_version;
    prefetch;
    mname = name;
    capacity = Client.capacity base;
    chunk_size;
    local = Sparse_bytes.create ~block_size:chunk_size ();
    present = Hashtbl.create 256;
    dirty = Hashtbl.create 64;
    digests = Hashtbl.create 256;
    use_cache = (Client.params (Client.service base)).Types.digest_cache;
    skip_chunks = 0;
    skip_bytes = 0;
    ckpt = None;
    reserved = 0;
    last_stats = Client.empty_write_stats;
    total_stats = Client.empty_write_stats;
  }
  in
  Engine.register_audit_subject engine (Audit_mirror t);
  t

let name t = t.mname
let capacity t = t.capacity
let chunk_size t = t.chunk_size
let checkpoint_image t = t.ckpt
let dirty_chunks t = Hashtbl.length t.dirty

let chunk_extent t index =
  min t.capacity ((index + 1) * t.chunk_size) - (index * t.chunk_size)

let dirty_bytes t = Hashtbl.fold (fun i () acc -> acc + chunk_extent t i) t.dirty 0 (* lint: allow hashtbl-order — commutative sum *)
let cached_chunks t = Hashtbl.length t.present
let local_bytes t = t.reserved

let sorted_keys tbl = Hashtbl.fold (fun i () acc -> i :: acc) tbl [] |> List.sort compare
let present_view t = sorted_keys t.present
let dirty_view t = sorted_keys t.dirty
let unsafe_mark_dirty t ~chunk = Hashtbl.replace t.dirty chunk ()

let digest_view t =
  (* lint: allow hashtbl-order — sorted below *)
  Hashtbl.fold (fun i d acc -> (i, d) :: acc) t.digests []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let peek_chunk_payload t ~chunk =
  Sparse_bytes.read t.local ~offset:(chunk * t.chunk_size) ~len:(chunk_extent t chunk)

let unsafe_poke_digest t ~chunk digest = Hashtbl.replace t.digests chunk digest

let local_stream t = Net.host_id t.host

let reserve_local t bytes =
  Disk.reserve t.local_disk bytes;
  t.reserved <- t.reserved + bytes;
  Obs.Metrics.set m_local_bytes t.reserved

let drop_local_state t =
  Disk.free t.local_disk t.reserved;
  t.reserved <- 0;
  Obs.Metrics.set m_local_bytes 0;
  Hashtbl.reset t.present;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.digests;
  Sparse_bytes.clear t.local

(* Bring chunk [index] into the local cache, lazily. The fetch is coalesced
   through the prefetcher when the chunk is shared with other instances. *)
let ensure_present t index =
  if not (Hashtbl.mem t.present index) then begin
    let extent = chunk_extent t index in
    let fetch_plain () =
      Client.read_chunk t.base ~from:t.host ~version:t.base_version ~chunk:index
    in
    let payload =
      match (t.prefetch, Client.chunk_identity t.base ~version:t.base_version ~chunk:index) with
      | Some prefetch, Some key ->
          let provider_host =
            Option.get (Client.chunk_host t.base ~version:t.base_version ~chunk:index)
          in
          Prefetch.fetch prefetch ~self:t.host ~key ~provider_host ~fetch_fn:fetch_plain
      | _ -> fetch_plain ()
    in
    assert (Payload.length payload = extent);
    Obs.Metrics.incr m_chunks_fetched;
    Obs.Metrics.add m_bytes_fetched (float_of_int extent);
    (* Cache fill: write-through to the local disk. *)
    reserve_local t extent;
    Disk.write t.local_disk ~stream:(local_stream t) extent;
    Disk.free t.local_disk extent;
    Sparse_bytes.write t.local ~offset:(index * t.chunk_size) payload;
    Hashtbl.replace t.present index ();
    (* Seed the digest cache: the read already verified this digest against
       the descriptor, so it is memoized on the payload — no extra work. *)
    if t.use_cache then Hashtbl.replace t.digests index (Payload.digest payload)
  end

let check_range t offset len =
  if offset < 0 || len < 0 || offset + len > t.capacity then
    invalid_arg "Mirror: range out of bounds"

let read t ~offset ~len =
  check_range t offset len;
  if len = 0 then Payload.zero 0
  else begin
    let cs = t.chunk_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    for index = first to last do
      ensure_present t index
    done;
    Disk.read t.local_disk ~stream:(local_stream t) len;
    Sparse_bytes.read t.local ~offset ~len
  end

let write t ~offset payload =
  let len = Payload.length payload in
  check_range t offset len;
  if len > 0 then begin
    let cs = t.chunk_size in
    let first = offset / cs and last = (offset + len - 1) / cs in
    (* The device write is charged for the full request regardless of what
       the digest cache absorbs below: the guest cannot know the content was
       unchanged, so the local-disk cost is real either way. *)
    Disk.write t.local_disk ~stream:(local_stream t) len;
    Disk.free t.local_disk len;
    for index = first to last do
      let cstart = index * cs in
      let extent = chunk_extent t index in
      let wstart = max cstart offset and wend = min (cstart + extent) (offset + len) in
      let slice = Payload.sub payload ~pos:(wstart - offset) ~len:(wend - wstart) in
      let covers_whole = wstart = cstart && wend = cstart + extent in
      if covers_whole && t.use_cache then begin
        let d = Payload.digest slice in
        match Hashtbl.find_opt t.digests index with
        | Some cached when cached = d && Hashtbl.mem t.present index ->
            (* Clean rewrite absorbed at the device: the chunk already holds
               exactly these bytes, so it stays out of the dirty set and the
               next commit never reads, digests or ships it. *)
            t.skip_chunks <- t.skip_chunks + 1;
            t.skip_bytes <- t.skip_bytes + extent;
            Client.note_digest_skipped (Client.service t.base) ~chunks:1 ~bytes:extent
        | _ ->
            if not (Hashtbl.mem t.present index) then begin
              reserve_local t extent;
              Hashtbl.replace t.present index ()
            end;
            Hashtbl.replace t.dirty index ();
            Hashtbl.replace t.digests index d;
            Sparse_bytes.write t.local ~offset:wstart slice
      end
      else begin
        (* A partial write to a chunk we do not hold needs its old content
           (copy-on-write); a full overwrite does not. *)
        if not covers_whole then ensure_present t index
        else if not (Hashtbl.mem t.present index) then begin
          reserve_local t extent;
          Hashtbl.replace t.present index ()
        end;
        Hashtbl.replace t.dirty index ();
        (* The chunk's new digest would cost a read-modify-digest here;
           invalidate instead — the commit path re-digests it once. *)
        if not covers_whole then Hashtbl.remove t.digests index;
        Sparse_bytes.write t.local ~offset:wstart slice
      end
    done
  end

let device t =
  {
    Block_dev.capacity = t.capacity;
    read = (fun ~offset ~len -> read t ~offset ~len);
    write = (fun ~offset payload -> write t ~offset payload);
    flush = (fun () -> ());
  }

let taint_all t =
  (* lint: allow hashtbl-order — independent per-key marking *)
  Hashtbl.iter (fun index () -> Hashtbl.replace t.dirty index ()) t.present;
  (* The ablation baseline must pay the full re-digest + re-ship cost:
     carried digests would let the commit path suppress everything from
     cache hits, quietly turning the baseline incremental again. *)
  Hashtbl.reset t.digests

let clone t =
  match t.ckpt with
  | Some _ -> ()
  | None ->
      Trace.emit t.engine ~component:t.mname "CLONE from blob %d v%d"
        (Client.blob_id t.base) t.base_version;
      t.ckpt <- Some (Client.clone t.base ~from:t.host ~version:t.base_version)

let commit t =
  Obs.Span.with_ t.engine ~component:"mirror" ~name:"ckpt.commit"
    ~attrs:[ ("dirty_chunks", Obs.Record.Int (Hashtbl.length t.dirty)) ]
  @@ fun () ->
  let started = Engine.now t.engine in
  Obs.Span.with_ t.engine ~component:"mirror" ~name:"ckpt.clone" (fun () -> clone t);
  let ckpt = Option.get t.ckpt in
  let indices = Hashtbl.fold (fun i () acc -> i :: acc) t.dirty [] |> List.sort compare in
  (* One job per dirty chunk: the local-disk read happens inside the
     client's write window, so reading chunk N+1 off the local disk
     overlaps with digesting, dedup resolution and repository writes of
     chunk N — no up-front materialization of the whole diff. Chunks
     rewritten with their base content are suppressed by digest. *)
  let jobs =
    List.map
      (fun index ->
        let extent = chunk_extent t index in
        ( index,
          fun () ->
            Disk.read t.local_disk ~stream:(local_stream t) extent;
            Sparse_bytes.read t.local ~offset:(index * t.chunk_size) ~len:extent ))
      indices
  in
  (* Carried digests become hints: the client suppresses clean rewrites and
     resolves dedup from them without running the thunk — a hinted chunk
     that doesn't ship never touches the local disk either. *)
  let hints =
    if not t.use_cache then []
    else
      List.filter_map
        (fun index ->
          Option.map (fun d -> (index, d)) (Hashtbl.find_opt t.digests index))
        indices
  in
  let version, stats = Client.write_chunks ckpt ~from:t.host ~suppress_clean:true ~hints jobs in
  (* Fold the write-time clean skips into the commit accounting: a rewrite
     absorbed at the device is the same event the digest path would have
     suppressed, observed earlier. *)
  let stats =
    if t.skip_chunks = 0 then stats
    else
      {
        stats with
        Client.chunks_total = stats.Client.chunks_total + t.skip_chunks;
        chunks_suppressed = stats.Client.chunks_suppressed + t.skip_chunks;
        bytes_suppressed = stats.Client.bytes_suppressed + t.skip_bytes;
      }
  in
  t.skip_chunks <- 0;
  t.skip_bytes <- 0;
  (* Re-seed invalidated entries (partial-chunk COW writes) from the
     descriptors this commit just minted — a free metadata peek, so the
     next epoch's hints cover them again. *)
  if t.use_cache then begin
    let tree = Client.tree ckpt ~version in
    List.iter
      (fun index ->
        if not (Hashtbl.mem t.digests index) then
          match Segment_tree.get tree index with
          | Some (d : Types.chunk_desc) -> Hashtbl.replace t.digests index d.digest
          | None -> ())
      indices
  end;
  t.last_stats <- stats;
  t.total_stats <- Client.add_write_stats t.total_stats stats;
  Trace.emit t.engine ~component:t.mname
    "COMMIT %d chunks: %d shipped (%d B), %d dedup'd (%d B), %d clean (%d B) -> v%d"
    stats.Client.chunks_total stats.Client.chunks_shipped stats.Client.bytes_shipped
    stats.Client.chunks_deduped stats.Client.bytes_deduped stats.Client.chunks_suppressed
    stats.Client.bytes_suppressed version;
  Obs.Metrics.observe m_commit_seconds (Engine.now t.engine -. started);
  Hashtbl.reset t.dirty;
  version

let last_commit_stats t = t.last_stats
let total_commit_stats t = t.total_stats
