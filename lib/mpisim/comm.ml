open Simcore
open Netsim

exception Draining

let () =
  Printexc.register_printer (function
    | Draining -> Some "Comm.Draining: send attempted past the checkpoint marker"
    | _ -> None)

type endpoint = {
  comm : t;
  erank : int;
  evm : Vmsim.Vm.t;
  mutable draining : bool;
}

and t = {
  engine : Engine.t;
  net : Net.t;
  csize : int;
  endpoints : endpoint option array;
  queues : (int * int, int Engine.Mailbox.t) Hashtbl.t; (* (src, dst) -> sizes *)
  mutable in_flight : int;
  mutable barrier_count : int;
  mutable barrier_signal : unit Engine.Ivar.t;
}

let create engine net ~size =
  if size < 1 then invalid_arg "Comm.create: size must be >= 1";
  {
    engine;
    net;
    csize = size;
    endpoints = Array.make size None;
    queues = Hashtbl.create 64;
    in_flight = 0;
    barrier_count = 0;
    barrier_signal = Engine.Ivar.create engine;
  }

let size t = t.csize

let attach t ~rank ~vm =
  if rank < 0 || rank >= t.csize then invalid_arg "Comm.attach: rank out of range";
  if t.endpoints.(rank) <> None then invalid_arg "Comm.attach: rank already attached";
  let ep = { comm = t; erank = rank; evm = vm; draining = false } in
  t.endpoints.(rank) <- Some ep;
  ep

let rank ep = ep.erank
let vm ep = ep.evm

let endpoint t r =
  match t.endpoints.(r) with
  | Some ep -> ep
  | None -> failwith (Fmt.str "Comm: rank %d not attached" r)

let queue t ~src ~dst =
  match Hashtbl.find_opt t.queues (src, dst) with
  | Some mb -> mb
  | None ->
      let mb = Engine.Mailbox.create t.engine in
      Hashtbl.replace t.queues (src, dst) mb;
      mb

let send ep ~dst ~bytes =
  if ep.draining then raise Draining;
  let t = ep.comm in
  let target = endpoint t dst in
  Vmsim.Vm.pause_point ep.evm;
  t.in_flight <- t.in_flight + 1;
  Net.transfer t.net ~src:(Vmsim.Vm.host ep.evm) ~dst:(Vmsim.Vm.host target.evm) bytes;
  Engine.Mailbox.send (queue t ~src:ep.erank ~dst) bytes;
  t.in_flight <- t.in_flight - 1

let recv ep ~src =
  let t = ep.comm in
  Vmsim.Vm.pause_point ep.evm;
  Engine.Mailbox.recv (queue t ~src ~dst:ep.erank)

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(* Dissemination barrier: log(n) rounds of latency, then a centralized
   rendezvous for correctness. *)
let barrier ep =
  let t = ep.comm in
  Vmsim.Vm.pause_point ep.evm;
  Engine.sleep t.engine (float_of_int (log2_ceil t.csize) *. (Net.config t.net).Net.latency);
  if t.csize > 1 then begin
    t.barrier_count <- t.barrier_count + 1;
    if t.barrier_count = t.csize then begin
      let signal = t.barrier_signal in
      t.barrier_count <- 0;
      t.barrier_signal <- Engine.Ivar.create t.engine;
      Engine.Ivar.fill signal ()
    end
    else Engine.Ivar.read t.barrier_signal
  end

let allreduce ep ~bytes =
  let t = ep.comm in
  let self = Vmsim.Vm.host ep.evm in
  for round = 0 to log2_ceil t.csize - 1 do
    let partner = ep.erank lxor (1 lsl round) in
    if partner < t.csize then begin
      let other = endpoint t partner in
      Net.transfer t.net ~src:self ~dst:(Vmsim.Vm.host other.evm) bytes
    end
  done;
  barrier ep

let in_flight t = t.in_flight

let drain_channels ep =
  let t = ep.comm in
  ep.draining <- true;
  (* Marker propagation: one control message per rank. *)
  Engine.sleep t.engine (2.0 *. (Net.config t.net).Net.latency);
  barrier ep;
  (* Sends are synchronous, so once every rank has reached the marker the
     network is quiescent. *)
  assert (t.in_flight = 0);
  ep.draining <- false
