(** Message-passing communicator (the mpich2 stand-in).

    A communicator binds a fixed number of ranks to VM instances; ranks
    exchange messages over the simulated network between their hosts (the
    fixed-process-count, message-passing application model of Section 2.2).

    The checkpoint-relevant entry point is {!drain_channels}: the
    coordinated checkpointing protocol's first step, which stops new sends
    and waits until every in-flight message has been received, so that no
    in-transit state needs saving. *)

open Simcore
open Netsim

type t
type endpoint

exception Draining
(** Raised by {!send} while a {!drain_channels} marker is active — the
    coordinated protocol forbids sends past the marker. Typed so recovery
    code can distinguish it from genuine failures. *)

val create : Engine.t -> Net.t -> size:int -> t
(** A communicator with [size] ranks, initially unattached. *)

val size : t -> int
(** Number of ranks fixed at creation. *)

val attach : t -> rank:int -> vm:Vmsim.Vm.t -> endpoint
(** Bind a rank to the VM it runs in. Each rank must be attached exactly
    once before communicating. *)

val rank : endpoint -> int
(** The rank this endpoint was attached as. *)

val vm : endpoint -> Vmsim.Vm.t
(** The VM this endpoint was attached to. *)

val send : endpoint -> dst:int -> bytes:int -> unit
(** Blocking send: transfers [bytes] to the destination rank's host and
    enqueues the message. Raises {!Draining} if draining is in progress
    (the protocol forbids sends past the marker). *)

val recv : endpoint -> src:int -> int
(** Blocking receive of the next message from [src]; returns its size. *)

val barrier : endpoint -> unit
(** Dissemination barrier: O(log n) latency rounds. *)

val allreduce : endpoint -> bytes:int -> unit
(** Butterfly exchange of [bytes] per round, O(log n) rounds. *)

val in_flight : t -> int
(** Messages sent but not yet received. *)

val drain_channels : endpoint -> unit
(** Coordinated-checkpoint step 1: every rank calls this; a marker is
    propagated (no further sends allowed), all pending messages are
    received by their targets, and the call returns once the communicator
    is globally quiescent. Sends are allowed again afterwards. *)
