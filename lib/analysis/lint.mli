(** Determinism and correctness lint over the OCaml source tree.

    A self-contained line/token-level scanner (no ppx, no compiler-libs)
    that flags constructs known to corrupt this reproduction's two core
    guarantees — byte-for-byte replay determinism and snapshot-lineage
    consistency (see DESIGN.md §8):

    - [hashtbl-order]: [Hashtbl.iter]/[Hashtbl.fold] whose result is not
      explicitly sorted nearby — hash iteration order is arbitrary;
    - [ambient-random]: stdlib [Random] instead of [Simcore.Rng];
    - [wall-clock]: [Unix.gettimeofday], [Unix.time], [Sys.time];
    - [obj-magic]: the unsafe [Obj] family;
    - [poly-compare]: bare polymorphic [compare] in a module handling
      floats (NaN breaks ordering);
    - [missing-mli]: library [.ml] without a companion [.mli].

    Comments and string-literal contents are ignored, so rule names and
    banned tokens may appear freely in documentation. A finding is
    suppressed by a [(* lint: allow <rule> ... *)] pragma in a comment on
    the offending line; text after the rule ids serves as justification. *)

type finding = { rule : string; file : string; line : int; message : string }

val rule_ids : (string * string) list
(** [(id, description)] for every rule, in a fixed order. *)

val scan_source : file:string -> string -> finding list
(** Run all content rules over one compilation unit's source text. [file]
    is only used to label findings. *)

val missing_mli : dir:string -> ml:string list -> mli:string list -> finding list
(** The missing-mli rule over one directory's basenames (pure, for
    tests). *)

val scan_tree : root:string -> string list -> finding list
(** Scan the given directories (relative to [root]) recursively: content
    rules over every [.ml], plus [missing-mli] for directories under
    [lib]. Findings are sorted by file, line and rule; directories whose
    name starts with ['.'] or ['_'] are skipped. *)

val pp_finding : Format.formatter -> finding -> unit
(** ["file:line: [rule] message"] — file:line is clickable in editors. *)
