open Simcore

type divergence = {
  line_no : int;
  context : string list;
  first : string option;
  second : string option;
}

type report = {
  name : string;
  seed : int;
  lines : int * int;
  first_divergence : divergence option;
  outputs_match : bool;
}

let identical r = r.first_divergence = None && r.outputs_match

let diff_traces ?(context = 3) a b =
  let rec go i before a b =
    match (a, b) with
    | [], [] -> None
    | la :: ra, lb :: rb when String.equal la lb -> go (i + 1) (la :: before) ra rb
    | _ ->
        let first = match a with l :: _ -> Some l | [] -> None in
        let second = match b with l :: _ -> Some l | [] -> None in
        let keep = List.filteri (fun k _ -> k < context) before in
        Some { line_no = i + 1; context = List.rev keep; first; second }
  in
  go 0 [] a b

let compare_runs ~name ?(seed = 42) run =
  let out_a, trace_a = Trace.capture run in
  let out_b, trace_b = Trace.capture run in
  {
    name;
    seed;
    lines = (List.length trace_a, List.length trace_b);
    first_divergence = diff_traces trace_a trace_b;
    outputs_match = String.equal out_a out_b;
  }

let render_outputs outputs =
  String.concat "\n"
    (List.map
       (fun o -> o.Experiments.Registry.name ^ "\n" ^ Stats.render o.Experiments.Registry.table)
       outputs)

let check_experiment ~exp ~scale ~seed =
  let scale = { scale with Experiments.Scale.seed } in
  compare_runs ~name:exp.Experiments.Registry.id ~seed (fun () ->
      render_outputs (exp.Experiments.Registry.run scale ~progress:(fun _ -> ())))

(* Scrub-replay determinism: the durability chaos run (silent corruption +
   mid-COMMIT crash + host crash, with a background scrubber) must produce
   the identical scrub/repair event log on every replay — repairs are part
   of the recovery path, so a nondeterministic repair order would make
   restarts unreproducible. The rendered "output" is the scrub log itself;
   the full engine trace is diffed as usual. *)
let check_scrub_replay ?(scale = Experiments.Scale.quick) ~seed () =
  let scale = { scale with Experiments.Scale.seed } in
  compare_runs ~name:"scrub-replay" ~seed (fun () ->
      let chaos = Experiments.Durability.chaos_run scale () in
      Experiments.Durability.render_scrub_log chaos
      ^ Fmt.str "\nfinished=%b recoveries=%d repairs=%d repair_bytes=%d"
          chaos.Experiments.Durability.report.Blobcr.Supervisor.finished
          chaos.Experiments.Durability.report.Blobcr.Supervisor.recoveries
          chaos.Experiments.Durability.scrub_stats.Blobseer.Scrubber.repairs
          chaos.Experiments.Durability.scrub_stats.Blobseer.Scrubber.repair_bytes)

let pp_report ppf r =
  let a, b = r.lines in
  if identical r then
    Fmt.pf ppf "%s (seed %d): deterministic — %d trace lines identical, outputs identical"
      r.name r.seed a
  else begin
    Fmt.pf ppf "%s (seed %d): NON-DETERMINISTIC (%d vs %d trace lines)@," r.name r.seed a b;
    (match r.first_divergence with
    | None -> ()
    | Some d ->
        Fmt.pf ppf "first divergence at trace line %d:@," d.line_no;
        List.iter (Fmt.pf ppf "    %s@,") d.context;
        Fmt.pf ppf "  - %s@," (Option.value ~default:"<end of trace>" d.first);
        Fmt.pf ppf "  + %s@," (Option.value ~default:"<end of trace>" d.second));
    if not r.outputs_match then Fmt.pf ppf "final stats tables differ"
  end
