(** Schedule-fuzzing race detector (deterministic simulation testing).

    The engine's determinism contract pins {e one} schedule: same seed,
    same trace. This pass explores the schedules that contract never
    exercises — alternative interleavings of {e simultaneous} events — by
    sampling (tie-break policy x fault script) pairs and checking, after
    every run, the full invariant battery plus {e schedule-independence of
    results}: rendered results must be byte-identical across schedules
    even though traces legitimately differ (see DESIGN.md section 13).

    Every sample is a single integer seed encoding both the schedule slot
    and the fault stream, so each finding carries a one-line repro command
    ([blobcr_lint fuzz --scenario S --seed N]) that {!replay} reproduces
    byte-for-byte. *)

open Simcore

(** {1 Samples} *)

type sample = {
  seed : int;  (** [fault_seed * 1000 + slot] — the replayable identity *)
  slot : int;  (** schedule slot: 0 = FIFO, 1 = LIFO, else a shuffle seed *)
  fault_seed : int;  (** seeds the fault script (chaos) or the engine (exp) *)
  schedule : Event_queue.schedule;  (** the decoded tie-break policy *)
}

val schedule_of_slot : int -> Event_queue.schedule
(** Slot 0 is {!Event_queue.Fifo}, 1 is {!Event_queue.Lifo}, any other
    slot is [Seeded_shuffle slot]. *)

val seed_of : slot:int -> fault_seed:int -> int
(** Encode a (slot, fault stream) pair into one replayable seed. Raises
    [Invalid_argument] unless [0 <= slot < 1000] and [fault_seed >= 0]. *)

val sample_of_seed : int -> sample
(** Decode a seed printed by a finding back into its sample. *)

val pp_sample : Format.formatter -> sample -> unit
(** ["seed=N (schedule P, fault stream F)"]. *)

(** {1 Scenarios} *)

type outcome = {
  results : string;
      (** the schedule-independent result surface, rendered — byte-compared
          across schedules *)
  trace : string list;  (** full engine trace of the run *)
  violations : string list;  (** invariant-battery violations (empty = clean) *)
}

type scenario = {
  sname : string;
      (** ["chaos"], ["precopy"], ["dr"], ["chains"] or ["exp:<id>"] —
          appears in repro commands *)
  srun : Experiments.Scale.t -> schedule:Event_queue.schedule -> fault_seed:int -> outcome;
}

val chaos : scenario
(** The durability chaos harness ({!Experiments.Durability.chaos_run})
    under an MTBF-profile fault script generated from the fault seed —
    host crashes, provider fail-stops, transient disk errors, silent
    corruption, and (on half the fault streams) a version-manager crash
    armed mid-COMMIT. Results are {e outcomes} — completion, recoveries,
    data loss, integrity failovers, and the restart-visible
    application-state digests; cost metrics (repairs performed, bytes
    shipped) are excluded because they legitimately vary with tie order.
    Violations come from the supervisor audit and the engine's full
    invariant battery. *)

val precopy : scenario
(** The chaos harness again, but supervised with the {e live} checkpoint
    policy ([Approach.Live { rounds = 2; background = true }]) and a fault
    script that always arms at least one version-manager crash mid-COMMIT
    — so crashes land during pre-copy rounds and background ships. The
    abort path must fold the frozen epoch back into the dirty set, the
    supervisor must roll back to the last {e fully committed} snapshot
    set, and the teardown audit checks frozen clone/diff-log liveness
    (no leaked frozen epoch, pending/copied subset and digest coherence).
    Result surface and violation sources are the same as {!chaos}. *)

val dr : scenario
(** The disaster-recovery harness ({!Experiments.Dr.dr_run}): a
    supervised gang on a two-site cluster with the primary-site crash
    time and the replication window drawn from the fault seed, so
    different streams catch the shipping pipeline in different in-flight
    states. The result surface keeps outcomes only — completion,
    recoveries, whether the failover happened, integrity failures and the
    restored-state digests; RPO/RTO and lag are excluded because which
    commits beat the disaster into the standby legitimately shifts when
    simultaneous events reorder. *)

val chains : scenario
(** The snapshot-chain maintenance harness
    ({!Experiments.Chains.chaos_run}): epoch writes with a background
    compactor under a fault script of compaction crash points,
    background-service crashes and transient disk errors drawn from the
    fault seed. The result surface is the {e settled} end state — the
    restored image digest and the live/retired version sets after a
    no-fault settle, which are the retention policy's fixed point
    whatever mid-run crashes did; retry counts and reclaim timing are
    excluded. Violations come from the engine's full invariant battery,
    including the compactor audit. *)

val experiment : Experiments.Registry.t -> scenario
(** A registry experiment as a scenario: no injected faults — the fault
    seed doubles as the engine seed and the result surface is the rendered
    stats tables. *)

val find_scenario : string -> scenario option
(** ["chaos"], ["precopy"], ["dr"], ["chains"], or ["exp:<id>"] for any
    registry experiment id. *)

(** {1 Findings} *)

(** Why a sample failed. *)
type kind =
  | Invariant  (** the post-run invariant battery reported violations *)
  | Untyped_escape  (** the run died with an unclassified exception *)
  | Result_divergence
      (** results differ from the FIFO reference run of the same fault
          stream — the code is schedule-dependent *)
  | Replay_divergence
      (** the same seed produced two different traces — the policy or the
          scenario leaks nondeterminism *)

val kind_to_string : kind -> string
(** Stable lower-case identifier, e.g. ["result-divergence"]. *)

type finding = {
  scenario : string;
  sample : sample;
  kind : kind;
  detail : string;
}

val repro_command : finding -> string
(** ["blobcr_lint fuzz --scenario S --seed N"] — replays this exact
    sample. *)

val pp_finding : Format.formatter -> finding -> unit
(** Multi-line rendering: kind, sample, detail and the repro command. *)

(** {1 Running} *)

type report = {
  rscenario : string;
  samples : sample list;  (** every (schedule x fault) sample run, in order *)
  findings : finding list;
  replays_checked : int;  (** samples additionally re-run for trace equality *)
}

val clean : report -> bool
(** No findings. *)

val run :
  ?scale:Experiments.Scale.t ->
  ?fault_streams:int ->
  ?schedules:int ->
  ?master_seed:int ->
  ?progress:(string -> unit) ->
  scenario ->
  report
(** Sample a [fault_streams x schedules] grid (defaults 5 x 5 = 25
    samples at [quick] scale). Per fault stream, the first schedule is
    always FIFO and serves as the result reference; the last schedule of
    every stream is re-run to spot-check replay determinism. The grid is
    derived from [master_seed] (default 42), so the whole pass is itself
    deterministic. *)

val replay :
  ?scale:Experiments.Scale.t -> seed:int -> scenario -> outcome * finding list
(** Re-run one reported sample: executes it twice and diffs the traces
    (byte-for-byte), re-checks the invariant battery, and — for non-FIFO
    samples — compares results against a fresh FIFO reference of the same
    fault stream. *)

val pp_report : Format.formatter -> report -> unit
(** One line when clean; otherwise every finding with its repro command. *)
