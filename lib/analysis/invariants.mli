(** Runtime invariant auditor over live simulator state.

    BlobCR's correctness argument rests on snapshot lineage staying
    consistent: qcow2 refcounts (the paper's baseline), segment-tree
    shadowing/cloning in BlobSeer (§3.1.2–3.1.3) and COW diffs in the
    mirroring module (§3.2). Each audit below validates one of those
    structures and returns a typed list of violations — empty means clean.

    Components register themselves with their engine as audit subjects at
    creation; {!install} wires this module in as the engine's subject
    auditor, so when audits are enabled ([BLOBCR_AUDIT=1] or
    {!Engine.set_audits_enabled}) every {!Engine.run} checks all live
    subjects at teardown and raises {!Engine.Audit_failure} on the first
    violation. Linking this module anywhere installs the auditor. *)

open Simcore
open Blobseer
open Vdisk

type violation = { subject : string; invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit
(** ["<subject>: <invariant>: <detail>"] — for audit reports. *)

val audit_qcow2 : Qcow2.t -> violation list
(** Refcount consistency: every physical cluster's refcount equals its
    references from the live table plus all snapshot tables; every
    referenced cluster holds data; no data cluster is orphaned. *)

val audit_segment_tree : subject:string -> chunks:int -> 'a Segment_tree.t -> violation list
(** The tree's terminal spans partition the padded chunk space with no
    gaps or overlaps, occupied leaves span exactly one chunk, and the tree
    addresses [chunks] leaves. *)

val audit_version_manager : Version_manager.t -> violation list
(** Per blob: live and retired versions are disjoint and together tile a
    dense range (retention punches holes, it never loses versions),
    [latest] is the newest stored version, and every stored tree passes
    {!audit_segment_tree} for the blob's chunk count. *)

val audit_mirror : Mirror.t -> violation list
(** COW and digest-cache audit: dirty ⊆ present, digest-cache keys ⊆
    present, and — on a deterministic sample of at most ~64 entries — every
    cached digest equals the digest recomputed from the chunk's current
    local bytes (the digest-cache coherence check). *)

val audit_client : Client.t -> violation list
(** Durability audit over a BlobSeer deployment: replicas of every live
    chunk descriptor sit on pairwise distinct hosts; the digest recorded
    provider-side at write time matches the descriptor's for every live,
    present replica (metadata agreement — payloads are deliberately not
    re-hashed, so injected corruption awaiting scrub does not fail
    teardown); and the version-manager and metadata journals hold no
    pending intents. Journal quiescence is only required of services
    still alive to recover them — a fail-stopped site abandoned by a
    failover legitimately holds its intents forever. *)

val audit_replicator : Replicator.t -> violation list
(** Geo-replication audit: the in-flight window bound was never exceeded;
    a promoted replicator has no half-tracked pending records; and (until
    a promotion diverges the sites on purpose) every version present on
    both sites carries identical logical content per leaf. *)

val audit_compactor : Compactor.t -> violation list
(** Maintenance-plane audit: the compaction journal is quiescent while
    the compactor is alive (a dead compactor's pending intents await its
    own recovery tick), and no chunk the sweep reclaimed is referenced by
    any live tree (chunk ids are never reused, so this is exact). *)

val audit_supervisor : Blobcr.Supervisor.t -> violation list
(** Recovery accounting: every declared-dead instance was restarted or
    abandoned, and a finished run is consistent. *)

val audit_subject : Engine.audit_subject -> (string * violation list) option
(** Dispatch over the registered subject kinds; [None] for foreign
    subjects. *)

val audit_engine : Engine.t -> violation list
(** Audit every subject registered with the engine. *)

val install : unit -> unit
(** Install this module as {!Engine}'s subject auditor (idempotent; also
    performed as a linking side effect). *)
