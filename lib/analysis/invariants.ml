open Simcore
open Blobseer
open Vdisk

type violation = { subject : string; invariant : string; detail : string }

let v subject invariant fmt = Fmt.kstr (fun detail -> { subject; invariant; detail }) fmt

let pp_violation ppf x =
  Fmt.pf ppf "%s: invariant %S violated: %s" x.subject x.invariant x.detail

(* ------------------------------------------------------------------ *)
(* qcow2 refcount audit (paper §2.3 baseline mechanics): every physical
   cluster's refcount must equal its references from the live table plus
   all frozen snapshot tables, every referenced cluster must hold data,
   and no data cluster may be orphaned. *)

let audit_qcow2 q =
  let subject = "qcow2:" ^ Qcow2.name q in
  let tables =
    ("live", Qcow2.table_view q)
    :: List.map (fun (n, tbl) -> ("snapshot " ^ n, tbl)) (Qcow2.snapshot_table_views q)
  in
  let expected =
    List.concat_map (fun (_, tbl) -> List.map snd tbl) tables
    |> List.sort compare
    |> List.fold_left
         (fun acc phys ->
           match acc with
           | (p, n) :: rest when p = phys -> (p, n + 1) :: rest
           | _ -> (phys, 1) :: acc)
         []
    |> List.rev
  in
  let stored = List.filter (fun (_, n) -> n <> 0) (Qcow2.refcount_view q) in
  let data = Qcow2.data_phys_view q in
  let refcount_violations =
    List.filter_map
      (fun (phys, n) ->
        match List.assoc_opt phys stored with
        | Some m when m = n -> None
        | Some m ->
            Some
              (v subject "refcount" "physical cluster %d: stored refcount %d, %d references"
                 phys m n)
        | None ->
            Some (v subject "refcount" "physical cluster %d: no refcount, %d references" phys n))
      expected
    @ List.filter_map
        (fun (phys, m) ->
          if List.mem_assoc phys expected then None
          else Some (v subject "refcount" "physical cluster %d: refcount %d but unreferenced" phys m))
        stored
  in
  let data_violations =
    List.filter_map
      (fun phys ->
        if List.mem_assoc phys expected then None
        else Some (v subject "no-orphans" "data cluster %d referenced by no table" phys))
      data
    @ List.filter_map
        (fun (phys, _) ->
          if List.mem phys data then None
          else Some (v subject "data-present" "referenced cluster %d holds no data" phys))
        expected
  in
  refcount_violations @ data_violations

(* ------------------------------------------------------------------ *)
(* Segment-tree partition audit: the terminal spans of a version tree must
   tile the padded power-of-two chunk space contiguously — a hole or
   overlap means shadowing produced a corrupt version (paper §3.1.2). *)

let audit_segment_tree ~subject ~chunks tree =
  let spans = Segment_tree.terminal_spans tree in
  let declared = Segment_tree.chunks tree in
  let shape =
    if declared <> chunks then
      [ v subject "tree-shape" "tree covers %d chunks, blob has %d" declared chunks ]
    else []
  in
  let rec tile expected = function
    | [] ->
        if expected >= chunks then []
        else [ v subject "partition" "leaves end at %d, short of %d chunks" expected chunks ]
    | (lo, extent, _) :: rest ->
        if extent <= 0 then
          [ v subject "partition" "non-positive span %d at leaf offset %d" extent lo ]
        else if lo <> expected then
          [
            v subject "partition" "leaf at offset %d where %d expected (%s)" lo expected
              (if lo > expected then "gap" else "overlap");
          ]
        else tile (lo + extent) rest
  in
  let occupied_width =
    List.filter_map
      (fun (lo, extent, occupied) ->
        if occupied && extent <> 1 then
          Some (v subject "leaf-width" "occupied leaf at %d spans %d chunks" lo extent)
        else None)
      spans
  in
  shape @ tile 0 spans @ occupied_width

(* ------------------------------------------------------------------ *)
(* Version-manager audit: retention (GC keep-last, compactor thinning) may
   punch holes in the live chain, but live and retired versions together
   must still tile the dense range the manager minted — a version in
   neither set was lost, not retired — and no version may be both.
   [latest] is the newest live version, and every stored tree addresses
   exactly the blob's chunk count. *)

let audit_version_manager vm =
  List.concat_map
    (fun blob ->
      let subject = Fmt.str "version-manager:blob%d" blob in
      let info = Version_manager.blob_info vm blob in
      let chunks =
        Version_manager.chunk_count ~capacity:info.Version_manager.capacity
          ~stripe_size:info.Version_manager.stripe_size
      in
      match Version_manager.versions vm ~blob with
      | [] -> [ v subject "versions-dense" "blob has no live versions at all" ]
      | first :: _ as versions ->
          let latest = Version_manager.peek_latest vm blob in
          let newest = List.fold_left max first versions in
          let retired = Version_manager.retired_versions vm ~blob in
          let disjoint =
            match List.filter (fun r -> List.mem r versions) retired with
            | [] -> []
            | overlap ->
                [
                  v subject "retired-disjoint" "versions %a are both live and retired"
                    Fmt.(list ~sep:comma int) overlap;
                ]
          in
          let dense =
            let all = List.sort_uniq Int.compare (versions @ retired) in
            let lo = List.hd all in
            if all <> List.init (List.length all) (fun i -> lo + i) then
              [
                v subject "versions-dense" "live %a + retired %a do not tile a dense range"
                  Fmt.(list ~sep:comma int) versions
                  Fmt.(list ~sep:comma int) retired;
              ]
            else []
          in
          let dense = disjoint @ dense in
          let latest_ok =
            if latest <> newest then
              [ v subject "latest-is-max" "latest is %d, newest stored version is %d" latest newest ]
            else []
          in
          let trees =
            List.concat_map
              (fun version ->
                audit_segment_tree
                  ~subject:(Fmt.str "%s/v%d" subject version)
                  ~chunks
                  (Version_manager.peek_tree vm ~blob ~version))
              versions
          in
          dense @ latest_ok @ trees)
    (Version_manager.blob_ids vm)

(* ------------------------------------------------------------------ *)
(* Mirror COW audit: a chunk can only be dirty if it is locally present —
   commit reads dirty chunks back from the local cache, so a dirty absent
   chunk would push garbage into the checkpoint image (paper §3.2). The
   carried digest cache owes the same subset discipline, and its entries
   must agree with a fresh digest of the chunk's current local bytes — a
   stale entry would let the next commit suppress or dedup a chunk on the
   wrong digest. Recomputation is sampled deterministically (every
   stride-th entry, ≤ ~64 recomputes) to bound teardown cost. *)

let audit_mirror m =
  let subject = "mirror:" ^ Mirror.name m in
  let present = Mirror.present_view m in
  let dirty =
    List.filter_map
      (fun chunk ->
        if List.mem chunk present then None
        else
          Some (v subject "dirty-subset-present" "chunk %d dirty but not locally present" chunk))
      (Mirror.dirty_view m)
  in
  let cache = Mirror.digest_view m in
  let subset =
    List.filter_map
      (fun (chunk, _) ->
        if List.mem chunk present then None
        else
          Some
            (v subject "digest-subset-present" "chunk %d digest-cached but not locally present"
               chunk))
      cache
  in
  let stride = max 1 (List.length cache / 64) in
  let coherent =
    List.filteri (fun i _ -> i mod stride = 0) cache
    |> List.filter_map (fun (chunk, cached) ->
           if not (List.mem chunk present) then None
           else
             let fresh = Payload.digest (Mirror.peek_chunk_payload m ~chunk) in
             if fresh = cached then None
             else
               Some
                 (v subject "digest-cache-coherent"
                    "chunk %d cached digest %Lx, current bytes digest %Lx" chunk cached fresh))
  in
  (* Frozen-epoch liveness (live checkpointing, DESIGN.md §17): every
     frozen-pending chunk must still be locally present, the diff log may
     only hold chunks of the pending set, and digests captured at freeze
     time must describe the frozen bytes — on both forks of the clone
     boundary (diff log and live store). A teardown with a frozen epoch
     still active means a background commit was neither finished nor
     rolled back. *)
  let frozen =
    if not (Mirror.frozen_active m) then []
    else begin
      let pending = Mirror.frozen_pending_view m in
      let leaked =
        [ v subject "frozen-resolved" "frozen epoch with %d chunk(s) never committed or aborted"
            (List.length pending) ]
      in
      let pend_present =
        List.filter_map
          (fun chunk ->
            if List.mem chunk present then None
            else
              Some
                (v subject "frozen-subset-present"
                   "chunk %d frozen-pending but not locally present" chunk))
          pending
      in
      let copied_pending =
        List.filter_map
          (fun chunk ->
            if List.mem chunk pending then None
            else
              Some
                (v subject "copied-subset-frozen"
                   "chunk %d in the frozen diff log but not frozen-pending" chunk))
          (Mirror.frozen_copied_view m)
      in
      let fcache = Mirror.frozen_digest_view m in
      let fstride = max 1 (List.length fcache / 64) in
      let fcoherent =
        List.filteri (fun i _ -> i mod fstride = 0) fcache
        |> List.filter_map (fun (chunk, cached) ->
               if not (List.mem chunk pending) then
                 Some
                   (v subject "frozen-digest-subset"
                      "chunk %d frozen-digest-cached but not frozen-pending" chunk)
               else
                 let fresh = Payload.digest (Mirror.peek_frozen_payload m ~chunk) in
                 if fresh = cached then None
                 else
                   Some
                     (v subject "frozen-digest-coherent"
                        "chunk %d frozen digest %Lx, frozen bytes digest %Lx" chunk cached
                        fresh))
      in
      leaked @ pend_present @ copied_pending @ fcoherent
    end
  in
  dirty @ subset @ coherent @ frozen

(* ------------------------------------------------------------------ *)
(* Deployment durability audit: replicas of a chunk must sit on pairwise
   distinct hosts (a single machine crash may never eat every copy), the
   checksum recorded provider-side at write time must agree with the
   descriptor's digest for every reachable replica (the end-to-end
   integrity contract — note we compare recorded metadata, not payload
   bytes, so deliberately corrupted test state does not trip teardown),
   and both metadata-plane journals must be quiescent: a pending intent
   at teardown is a half-published commit nobody recovered. *)

let audit_client c =
  let subject = "blobseer" in
  let vm = Client.version_manager c in
  let site_violations = ref [] in
  let seen_descs : (Types.chunk_desc, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Live logical references per content digest: distinct descriptor
     serials, counted across every live tree — the ground truth the dedup
     index's refcounts are audited against. *)
  let live_refs : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  let seen_serials : (int64 * int, unit) Hashtbl.t = Hashtbl.create 256 in
  Version_manager.iter_live_trees vm (fun ~blob ~version tree ->
      Segment_tree.fold_set
        (fun index (desc : Types.chunk_desc) () ->
          if not (Hashtbl.mem seen_serials (desc.digest, desc.serial)) then begin
            Hashtbl.replace seen_serials (desc.digest, desc.serial) ();
            Hashtbl.replace live_refs desc.digest
              (1 + Option.value ~default:0 (Hashtbl.find_opt live_refs desc.digest))
          end;
          if not (Hashtbl.mem seen_descs desc) then begin
            Hashtbl.replace seen_descs desc ();
            let where = Fmt.str "blob %d v%d chunk %d" blob version index in
            let hosts =
              List.map
                (fun (r : Types.replica) ->
                  Netsim.Net.host_id (Data_provider.host (Client.data_provider c r.provider)))
                desc.replicas
            in
            if List.length (List.sort_uniq compare hosts) <> List.length hosts then
              site_violations :=
                v subject "replicas-distinct-hosts" "%s: replicas share a host (providers %a)"
                  where
                  Fmt.(list ~sep:comma int)
                  (List.map (fun (r : Types.replica) -> r.provider) desc.replicas)
                :: !site_violations;
            List.iter
              (fun (r : Types.replica) ->
                let p = Client.data_provider c r.provider in
                if
                  Data_provider.is_alive p
                  && Storage.Content_store.mem (Data_provider.store p) r.chunk
                  && Storage.Content_store.recorded_digest (Data_provider.store p) r.chunk
                     <> desc.digest
                then
                  site_violations :=
                    v subject "checksum-metadata" "%s: provider %d recorded digest %Lx, descriptor %Lx"
                      where r.provider
                      (Storage.Content_store.recorded_digest (Data_provider.store p) r.chunk)
                      desc.digest
                    :: !site_violations)
              desc.replicas
          end)
        tree ());
  (* Dedup refcount parity: each index entry's logical refcount must
     equal the number of distinct descriptor serials carrying its digest
     across the live trees (0 for an entry registered by a write whose
     publication never landed). Maintained by publication-time increments
     and GC reconciliation; drift means references leaked or were lost. *)
  let dedup_violations =
    List.filter_map
      (fun (digest, refs, _size, _replicas) ->
        let live = Option.value ~default:0 (Hashtbl.find_opt live_refs digest) in
        if refs <> live then
          Some
            (v subject "dedup-refcount" "digest %Lx: index refcount %d, %d live reference(s)"
               digest refs live)
        else None)
      (Dedup_index.view (Provider_manager.dedup_index (Client.provider_manager c)))
  in
  (* A fail-stopped metadata plane (a site disaster nobody will ever
     recover) legitimately holds pending intents forever — quiescence is
     only owed by services still alive to recover them. *)
  let journal =
    (let n = Version_manager.journal_pending vm in
     if n <> 0 && Version_manager.is_alive vm then
       [ v subject "journal-quiescent" "version manager journal holds %d pending intent(s)" n ]
     else [])
    @
    let md = Client.metadata_service c in
    let n = Metadata_service.journal_pending md in
    if n <> 0 && Metadata_service.alive_count md > 0 then
      [ v subject "journal-quiescent" "metadata journal holds %d pending intent(s)" n ]
    else []
  in
  List.rev !site_violations @ dedup_violations @ journal

(* ------------------------------------------------------------------ *)
(* Replicator audit: the fetch/ship pipeline must honour its in-flight
   window; a promoted replicator must have settled its pending queue (the
   loss was accounted at promotion, nothing may linger half-tracked); and
   until a promotion diverges the sites on purpose, any version present on
   both must carry identical logical content — the standby applies the
   primary's history verbatim, never an interleaving of its own. *)

let audit_replicator r =
  let subject = "replicator" in
  let stats = Replicator.stats r in
  let window =
    let w = (Replicator.config r).Replicator.window in
    if stats.Replicator.max_inflight > w then
      [
        v subject "window-bound" "max in-flight %d exceeded window %d"
          stats.Replicator.max_inflight w;
      ]
    else []
  in
  let settled =
    if Replicator.promoted r && Replicator.lag r <> 0 then
      [
        v subject "promoted-settled" "%d record(s) still pending after promotion"
          (Replicator.lag r);
      ]
    else []
  in
  let agreement =
    if Replicator.promoted r then []
    else begin
      let pvm = Client.version_manager (Replicator.primary r) in
      let svm = Client.version_manager (Replicator.standby r) in
      let leaves tree =
        List.rev
          (Segment_tree.fold_set
             (fun i (d : Types.chunk_desc) acc -> (i, d.Types.digest, d.Types.size) :: acc)
             tree [])
      in
      List.concat_map
        (fun blob ->
          if not (List.mem blob (Version_manager.blob_ids pvm)) then
            [ v subject "no-divergent-standby" "standby holds blob %d the primary never made" blob ]
          else
            List.filter_map
              (fun version ->
                match Version_manager.peek_tree pvm ~blob ~version with
                | exception Not_found -> None (* pruned on the primary; nothing to compare *)
                | ptree ->
                    let stree = Version_manager.peek_tree svm ~blob ~version in
                    (* Merkle-root fast path: agreeing roots prove the
                       logical content equal without materializing leaf
                       lists (memoized across the shadow-shared subtrees
                       of successive versions). Leaves are materialized
                       only on a root mismatch, for the precise verdict. *)
                    let roots_agree =
                      Client.with_merkle_metrics (fun () ->
                          Segment_tree.merkle_digest ~digest:Types.desc_content_digest ptree
                          = Segment_tree.merkle_digest ~digest:Types.desc_content_digest stree)
                    in
                    if roots_agree then None
                    else if leaves ptree <> leaves stree then
                      Some
                        (v subject "no-divergent-standby"
                           "blob %d v%d differs between primary and standby" blob version)
                    else None)
              (List.init (Version_manager.peek_latest svm blob) (fun i -> i + 1)))
        (Version_manager.blob_ids svm)
    end
  in
  window @ settled @ agreement

(* ------------------------------------------------------------------ *)
(* Compactor audit: the maintenance journal must be quiescent while the
   compactor is alive (pending intents on a dead compactor await its own
   recovery tick), and no chunk the deferred sweep deleted may be
   referenced by a live tree — chunk ids are never reused, so a hit here
   means compaction reclaimed data a live version still needs. *)

let audit_compactor c =
  let subject = "compactor" in
  let journal =
    let n = Compactor.journal_pending c in
    if n <> 0 && Compactor.is_alive c then
      [ v subject "journal-quiescent" "compactor journal holds %d pending intent(s)" n ]
    else []
  in
  let live = Client.live_chunk_refs (Compactor.service c) in
  let reclaimed_live =
    List.filter_map
      (fun (provider, chunk) ->
        if Hashtbl.mem live (provider, chunk) then
          Some
            (v subject "no-live-reclaimed" "live tree references reclaimed chunk %d on provider %d"
               chunk provider)
        else None)
      (List.sort_uniq compare (Compactor.reclaimed_chunks c))
  in
  journal @ reclaimed_live

(* ------------------------------------------------------------------ *)
(* Supervisor accounting audit: every instance the supervisor ever
   declared dead must have been rolled back and restarted, or explicitly
   abandoned — a silently dropped instance means the recovery loop lost
   track of part of the gang. *)

let audit_supervisor sup =
  List.map
    (fun detail -> { subject = "supervisor"; invariant = "dead-accounted"; detail })
    (Blobcr.Supervisor.audit sup)

(* ------------------------------------------------------------------ *)
(* Engine teardown hook *)

let audit_subject = function
  | Qcow2.Audit_image q -> Some ("qcow2:" ^ Qcow2.name q, audit_qcow2 q)
  | Mirror.Audit_mirror m -> Some ("mirror:" ^ Mirror.name m, audit_mirror m)
  | Version_manager.Audit_version_manager vm -> Some ("version-manager", audit_version_manager vm)
  | Client.Audit_client c -> Some ("blobseer", audit_client c)
  | Replicator.Audit_replicator r -> Some ("replicator", audit_replicator r)
  | Compactor.Audit_compactor c -> Some ("compactor", audit_compactor c)
  | Blobcr.Supervisor.Audit_supervisor sup -> Some ("supervisor", audit_supervisor sup)
  | _ -> None

let audit_engine engine =
  List.concat_map
    (fun s -> match audit_subject s with Some (_, vs) -> vs | None -> [])
    (Engine.audit_subjects engine)

let install () =
  Engine.set_subject_auditor (fun s ->
      match audit_subject s with
      | Some (_, []) | None -> None
      | Some (name, violations) ->
          Some (name, List.map (Fmt.str "%a" pp_violation) violations))

(* Linking this module is opting in: install the auditor so engines run
   the checks at teardown whenever BLOBCR_AUDIT is set. *)
let () = install ()
