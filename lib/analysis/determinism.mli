(** Replay-divergence auditor.

    The simulator's contract (see {!Simcore.Engine}) is that the same seed
    yields the same event trace, byte for byte. This module enforces it
    dynamically: run a workload twice under {!Simcore.Trace.capture}, diff
    the traces and compare the rendered final statistics; the first
    divergent line is reported with surrounding context. *)

type divergence = {
  line_no : int;  (** 1-based index of the first differing trace line *)
  context : string list;  (** up to [context] identical lines preceding it *)
  first : string option;  (** the line in run 1 ([None]: trace ended) *)
  second : string option;  (** the line in run 2 *)
}

type report = {
  name : string;
  seed : int;
  lines : int * int;  (** trace lengths of the two runs *)
  first_divergence : divergence option;
  outputs_match : bool;  (** rendered stats tables byte-identical *)
}

val identical : report -> bool
(** No trace divergence and outputs match. *)

val diff_traces : ?context:int -> string list -> string list -> divergence option
(** [None] when equal. Default [context] is 3 lines. *)

val compare_runs : name:string -> ?seed:int -> (unit -> string) -> report
(** Run the thunk twice, capturing traces; the returned string is the
    run's "final stats" and must also match. [seed] is report metadata —
    the thunk is responsible for actually applying it. *)

val check_experiment :
  exp:Experiments.Registry.t -> scale:Experiments.Scale.t -> seed:int -> report
(** Run a registry experiment twice at [scale] with the engine seed forced
    to [seed] and compare traces and rendered output tables. *)

val check_scrub_replay : ?scale:Experiments.Scale.t -> seed:int -> unit -> report
(** Run the durability chaos scenario ({!Experiments.Durability.chaos_run}:
    silent corruption, a mid-COMMIT service crash and a host crash, with a
    background scrubber) twice under the same seed and require the
    scrub/repair event logs — and the engine traces — to be byte-identical.
    Default scale is [quick]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable verdict, including the first divergence with its
    context lines when the runs differ. *)
