open Simcore

(* ------------------------------------------------------------------ *)
(* Samples: one integer seed encodes the whole (schedule, fault script)
   pair, so a finding is replayable from a single number. *)

let slot_radix = 1000

type sample = {
  seed : int;
  slot : int;
  fault_seed : int;
  schedule : Event_queue.schedule;
}

let schedule_of_slot = function
  | 0 -> Event_queue.Fifo
  | 1 -> Event_queue.Lifo
  | slot -> Event_queue.Seeded_shuffle slot

let seed_of ~slot ~fault_seed =
  if slot < 0 || slot >= slot_radix then invalid_arg "Schedule_fuzz.seed_of: slot";
  if fault_seed < 0 then invalid_arg "Schedule_fuzz.seed_of: fault_seed";
  (fault_seed * slot_radix) + slot

let sample_of_seed seed =
  if seed < 0 then invalid_arg "Schedule_fuzz.sample_of_seed: negative seed";
  let slot = seed mod slot_radix and fault_seed = seed / slot_radix in
  { seed; slot; fault_seed; schedule = schedule_of_slot slot }

let pp_sample ppf s =
  Fmt.pf ppf "seed=%d (schedule %a, fault stream %d)" s.seed Event_queue.pp_schedule
    s.schedule s.fault_seed

(* ------------------------------------------------------------------ *)
(* Scenarios *)

type outcome = {
  results : string;
  trace : string list;
  violations : string list;
}

type scenario = {
  sname : string;
  srun : Experiments.Scale.t -> schedule:Event_queue.schedule -> fault_seed:int -> outcome;
}

(* The chaos scenario: the durability harness (supervised CM1 gang,
   background scrubber, journaled commits) under an MTBF-profile fault
   script drawn from the fault seed. Half the fault streams additionally
   arm a mid-COMMIT version-manager crash, so journal recovery races the
   scrubber and the supervisor's rollback — the orderings PR 3 grew. *)
let chaos_script (scale : Experiments.Scale.t) ~fault_seed cluster =
  let rng = Rng.create fault_seed in
  let horizon =
    (float_of_int scale.Experiments.Scale.durability_units
    *. scale.Experiments.Scale.cm1_config.Workloads.Cm1.compute_per_iteration *. 3.0)
    +. 60.0
  in
  let nodes = Blobcr.Cluster.node_count cluster in
  let profile =
    Faults.of_profile ~rng ~mtbf:scale.Experiments.Scale.durability_mtbf ~horizon
      ~hosts:nodes ~providers:nodes ~weights:(3, 1, 1, 0) ~corrupt_weight:2 ()
  in
  let extra =
    if Rng.bool rng then
      [
        {
          Faults.at = Rng.float rng (horizon /. 2.0);
          action = Faults.Crash_commit { point = (if Rng.bool rng then 1 else 0) };
        };
      ]
    else []
  in
  List.stable_sort
    (fun (a : Faults.event) b -> Float.compare a.Faults.at b.Faults.at)
    (profile @ extra)

(* The result surface compared across schedules: *outcomes* — did the
   application finish, how often did it restart, was data lost, and the
   restart-visible application state. Trace timings and *cost* metrics
   (scrub repairs performed, bytes shipped) are deliberately absent: both
   may legitimately differ when simultaneous events reorder — e.g. the
   commit that arrives second gets the dedup hit, which moves replica
   layout and with it the scrubber's work — while outcomes must not (see
   DESIGN.md section 13). *)
let render_chaos (c : Experiments.Durability.chaos) =
  let header =
    Fmt.str "finished=%b recoveries=%d unrepairable=%d integrity_failovers=%d"
      c.Experiments.Durability.report.Blobcr.Supervisor.finished
      c.Experiments.Durability.report.Blobcr.Supervisor.recoveries
      c.Experiments.Durability.scrub_stats.Blobseer.Scrubber.unrepairable
      c.Experiments.Durability.integrity_failures
  in
  let digests =
    List.map
      (fun (path, digest) -> Fmt.str "%s %Lx" path digest)
      c.Experiments.Durability.digests
  in
  String.concat "\n" (header :: digests)

let outcome_of_exn trace = function
  | Engine.Audit_failure (subject, violations) ->
      {
        results = "audit-failure";
        trace;
        violations = List.map (fun v -> subject ^ ": " ^ v) violations;
      }
  | e -> (
      match Blobcr.Protocol.error_class e with
      | `Fatal ->
          {
            results = "untyped-escape";
            trace;
            violations = [ "untyped escape: " ^ Printexc.to_string e ];
          }
      | c ->
          (* A typed failure is an acceptable outcome — but it is part of
             the result surface, so a schedule that fails where FIFO
             completes still registers as divergence. *)
          {
            results = Fmt.str "typed-error %a" Blobcr.Protocol.pp_error_class c;
            trace;
            violations = [];
          })

let chaos =
  {
    sname = "chaos";
    srun =
      (fun scale ~schedule ~fault_seed ->
        let scale = { scale with Experiments.Scale.schedule } in
        let result = ref None in
        let (), trace =
          Trace.capture (fun () ->
              match
                Experiments.Durability.chaos_run scale
                  ~script:(chaos_script scale ~fault_seed)
                  ~gang:scale.Experiments.Scale.durability_gang
                  ~units:scale.Experiments.Scale.durability_units ()
              with
              | c -> result := Some (Ok c)
              | exception e -> result := Some (Error e))
        in
        match Option.get !result with
        | Error e -> outcome_of_exn trace e
        | Ok c ->
            let violations =
              c.Experiments.Durability.audit
              @ List.map
                  (fun v -> Fmt.str "%a" Invariants.pp_violation v)
                  (Invariants.audit_engine c.Experiments.Durability.engine)
            in
            { results = render_chaos c; trace; violations })
  }

(* The precopy scenario: the chaos harness again, but with the live
   (pre-copy + background commit) checkpoint policy — and a fault script
   that always arms at least one mid-COMMIT version-manager crash, so
   crashes land while frozen deltas ship in the background. The abort path
   must fold the frozen epoch back into the dirty set and the supervisor
   must roll back to the last *fully committed* snapshot set; the frozen
   clone/diff-log liveness invariants audit the mirrors at teardown. The
   result surface is the same outcome-only one as [chaos]. *)
let precopy_script (scale : Experiments.Scale.t) ~fault_seed cluster =
  let rng = Rng.create fault_seed in
  let horizon =
    (float_of_int scale.Experiments.Scale.durability_units
    *. scale.Experiments.Scale.cm1_config.Workloads.Cm1.compute_per_iteration *. 3.0)
    +. 60.0
  in
  let nodes = Blobcr.Cluster.node_count cluster in
  (* Gentler background pressure than [chaos_script]: the point here is
     crashes landing mid-commit, not host-crash attrition — a profile harsh
     enough to abandon the gang leaves it mid-recovery at the horizon,
     where scrub counters legitimately depend on which replicas happen to
     be offline at scan time. *)
  let profile =
    Faults.of_profile ~rng
      ~mtbf:(scale.Experiments.Scale.durability_mtbf *. 4.0)
      ~horizon ~hosts:nodes ~providers:nodes ~weights:(1, 1, 2, 0) ()
  in
  let commit_crashes =
    List.init
      (1 + Rng.int rng 2)
      (fun _ ->
        {
          Faults.at = Rng.float rng horizon;
          action = Faults.Crash_commit { point = (if Rng.bool rng then 1 else 0) };
        })
  in
  List.stable_sort
    (fun (a : Faults.event) b -> Float.compare a.Faults.at b.Faults.at)
    (profile @ commit_crashes)

let precopy =
  {
    sname = "precopy";
    srun =
      (fun scale ~schedule ~fault_seed ->
        let scale = { scale with Experiments.Scale.schedule } in
        let policy =
          {
            Blobcr.Supervisor.default_policy with
            Blobcr.Supervisor.ckpt_mode =
              Blobcr.Approach.Live { rounds = 2; background = true };
          }
        in
        let result = ref None in
        let (), trace =
          Trace.capture (fun () ->
              match
                Experiments.Durability.chaos_run scale
                  ~script:(precopy_script scale ~fault_seed)
                  ~gang:scale.Experiments.Scale.durability_gang
                  ~units:scale.Experiments.Scale.durability_units ~policy ()
              with
              | c -> result := Some (Ok c)
              | exception e -> result := Some (Error e))
        in
        match Option.get !result with
        | Error e -> outcome_of_exn trace e
        | Ok c ->
            let violations =
              c.Experiments.Durability.audit
              @ List.map
                  (fun v -> Fmt.str "%a" Invariants.pp_violation v)
                  (Invariants.audit_engine c.Experiments.Durability.engine)
            in
            { results = render_chaos c; trace; violations })
  }

(* The disaster-recovery scenario: a supervised gang on a two-site
   cluster, with the site crash time (and the replication window) drawn
   from the fault seed so different streams catch the pipeline in
   different in-flight states. The result surface again keeps *outcomes*
   only: RPO/RTO and lag are deliberately absent — which commits beat the
   disaster into the standby legitimately shifts when simultaneous events
   reorder, while finishing on the standby with intact state must not. *)
let render_dr (o : Experiments.Dr.outcome) =
  let header =
    Fmt.str "finished=%b recoveries=%d failed_over=%b integrity_failures=%d"
      o.Experiments.Dr.report.Blobcr.Supervisor.finished
      o.Experiments.Dr.report.Blobcr.Supervisor.recoveries o.Experiments.Dr.failed_over
      o.Experiments.Dr.integrity_failures
  in
  let digests =
    List.map (fun (path, digest) -> Fmt.str "%s %Lx" path digest) o.Experiments.Dr.digests
  in
  String.concat "\n" (header :: digests)

let dr =
  {
    sname = "dr";
    srun =
      (fun scale ~schedule ~fault_seed ->
        let scale = { scale with Experiments.Scale.schedule } in
        let rng = Rng.create fault_seed in
        let interval = 2 in
        let crash_at =
          Experiments.Dr.default_crash_at scale ~interval
          +. Rng.float rng
               (2.0 *. scale.Experiments.Scale.cm1_config.Workloads.Cm1.compute_per_iteration)
        in
        let config =
          { Blobseer.Replicator.default_config with window = 1 + Rng.int rng 4 }
        in
        let result = ref None in
        let (), trace =
          Trace.capture (fun () ->
              match
                Experiments.Dr.dr_run scale ~config ~crash_at ~interval
                  ~gang:scale.Experiments.Scale.dr_gang
                  ~units:scale.Experiments.Scale.dr_units ()
              with
              | o -> result := Some (Ok o)
              | exception e -> result := Some (Error e))
        in
        match Option.get !result with
        | Error e -> outcome_of_exn trace e
        | Ok o ->
            let violations =
              o.Experiments.Dr.audit
              @ List.map
                  (fun v -> Fmt.str "%a" Invariants.pp_violation v)
                  (Invariants.audit_engine o.Experiments.Dr.engine)
            in
            { results = render_dr o; trace; violations })
  }

(* The chains scenario: the snapshot-chain harness (epoch writes with a
   background compactor) under a fault script of compaction crash points,
   background-service crashes and transient disk errors drawn from the
   fault seed. The result surface is the *settled* end state — the run
   finishes with a no-fault settle, so live/retired version sets are the
   retention policy's fixed point and the restored image digest is
   byte-identical whatever the schedule or mid-run crashes did; retry
   counts, crash recoveries and reclaim timing legitimately differ and
   are deliberately absent. *)
let chains_script (scale : Experiments.Scale.t) ~fault_seed cluster _compactor =
  let rng = Rng.create fault_seed in
  let horizon =
    float_of_int (List.fold_left max 2 scale.Experiments.Scale.chains_depths) *. 30.0
  in
  let nodes = Blobcr.Cluster.node_count cluster in
  let profile =
    Faults.of_profile ~rng ~mtbf:(horizon /. 8.0) ~horizon ~hosts:nodes ~providers:nodes
      ~weights:(0, 0, 2, 0) ~service_weight:3 ()
  in
  let extra =
    [
      {
        Faults.at = Rng.float rng (horizon /. 2.0);
        action = Faults.Crash_compaction { point = Rng.int rng 3 };
      };
    ]
  in
  List.stable_sort
    (fun (a : Faults.event) b -> Float.compare a.Faults.at b.Faults.at)
    (profile @ extra)

let render_chains (c : Experiments.Chains.chaos) =
  let o = c.Experiments.Chains.c_outcome in
  let ints vs = String.concat "," (List.map string_of_int vs) in
  Fmt.str "digest=%Lx live=[%s] retired=[%s]" o.Experiments.Chains.restart_digest
    (ints o.Experiments.Chains.live_versions)
    (ints o.Experiments.Chains.retired_versions)

let chains =
  {
    sname = "chains";
    srun =
      (fun scale ~schedule ~fault_seed ->
        let scale = { scale with Experiments.Scale.schedule } in
        let depth = List.fold_left max 2 scale.Experiments.Scale.chains_depths in
        let result = ref None in
        let (), trace =
          Trace.capture (fun () ->
              match
                Experiments.Chains.chaos_run scale
                  ~script:(chains_script scale ~fault_seed)
                  ~depth ()
              with
              | c -> result := Some (Ok c)
              | exception e -> result := Some (Error e))
        in
        match Option.get !result with
        | Error e -> outcome_of_exn trace e
        | Ok c ->
            let violations =
              List.map
                (fun v -> Fmt.str "%a" Invariants.pp_violation v)
                (Invariants.audit_engine
                   c.Experiments.Chains.c_outcome.Experiments.Chains.engine)
            in
            { results = render_chains c; trace; violations })
  }

(* Registry experiments as scenarios: no injected faults — the fault seed
   doubles as the engine seed, and the schedule-independent result surface
   is the experiment's rendered stats tables. *)
let experiment exp =
  {
    sname = "exp:" ^ exp.Experiments.Registry.id;
    srun =
      (fun scale ~schedule ~fault_seed ->
        let scale =
          { scale with Experiments.Scale.schedule; Experiments.Scale.seed = fault_seed }
        in
        let result = ref None in
        let (), trace =
          Trace.capture (fun () ->
              match
                exp.Experiments.Registry.run scale ~progress:(fun _ -> ())
                |> List.map (fun o ->
                       o.Experiments.Registry.name ^ "\n"
                       ^ Stats.render o.Experiments.Registry.table)
                |> String.concat "\n"
              with
              | rendered -> result := Some (Ok rendered)
              | exception e -> result := Some (Error e))
        in
        match Option.get !result with
        | Error e -> outcome_of_exn trace e
        | Ok rendered -> { results = rendered; trace; violations = [] })
  }

let find_scenario name =
  if name = "chaos" then Some chaos
  else if name = "precopy" then Some precopy
  else if name = "dr" then Some dr
  else if name = "chains" then Some chains
  else
    match String.index_opt name ':' with
    | Some i when String.sub name 0 i = "exp" ->
        let id = String.sub name (i + 1) (String.length name - i - 1) in
        Option.map experiment (Experiments.Registry.find id)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Findings *)

type kind = Invariant | Untyped_escape | Result_divergence | Replay_divergence

let kind_to_string = function
  | Invariant -> "invariant"
  | Untyped_escape -> "untyped-escape"
  | Result_divergence -> "result-divergence"
  | Replay_divergence -> "replay-divergence"

type finding = {
  scenario : string;
  sample : sample;
  kind : kind;
  detail : string;
}

let repro_command f =
  Fmt.str "blobcr_lint fuzz --scenario %s --seed %d" f.scenario f.sample.seed

let pp_finding ppf f =
  Fmt.pf ppf "@[<v2>[%s] %s %a:@,%s@,replay: %s@]" (kind_to_string f.kind) f.scenario
    pp_sample f.sample f.detail (repro_command f)

let findings_of_outcome ~scenario ~sample outcome =
  List.map
    (fun detail ->
      let kind =
        if String.length detail >= 7 && String.sub detail 0 7 = "untyped" then
          Untyped_escape
        else Invariant
      in
      { scenario; sample; kind; detail })
    outcome.violations

let first_result_diff a b =
  match Determinism.diff_traces ~context:1 (String.split_on_char '\n' a) (String.split_on_char '\n' b) with
  | None -> "results differ"
  | Some d ->
      Fmt.str "first differing result line %d: %S vs %S" d.Determinism.line_no
        (Option.value ~default:"<end>" d.Determinism.first)
        (Option.value ~default:"<end>" d.Determinism.second)

(* ------------------------------------------------------------------ *)
(* The fuzz pass *)

type report = {
  rscenario : string;
  samples : sample list;
  findings : finding list;
  replays_checked : int;
}

let clean r = r.findings = []

let draw_slots rng schedules =
  (* Slot 0 (FIFO) is the per-fault-stream reference schedule; slot 1 is
     LIFO; further slots are distinct seeded shuffles. *)
  let rec draw taken n =
    if n = 0 then []
    else
      let s = 2 + Rng.int rng (slot_radix - 2) in
      if List.mem s taken then draw taken n else s :: draw (s :: taken) (n - 1)
  in
  List.init (min schedules 2) Fun.id @ draw [] (max 0 (schedules - 2))

let run ?(scale = Experiments.Scale.quick) ?(fault_streams = 5) ?(schedules = 5)
    ?(master_seed = 42) ?(progress = fun _ -> ()) scenario =
  if fault_streams <= 0 || schedules <= 0 then invalid_arg "Schedule_fuzz.run";
  Invariants.install ();
  let rng = Rng.create master_seed in
  let fault_seeds = List.init fault_streams (fun _ -> Rng.int rng 2_000_000) in
  let slots = draw_slots rng schedules in
  let findings = ref [] and samples = ref [] and replays = ref 0 in
  List.iter
    (fun fault_seed ->
      let baseline = ref None in
      List.iter
        (fun slot ->
          let sample = sample_of_seed (seed_of ~slot ~fault_seed) in
          samples := sample :: !samples;
          progress (Fmt.str "fuzz %s: %a" scenario.sname pp_sample sample);
          let outcome =
            scenario.srun scale ~schedule:sample.schedule ~fault_seed
          in
          findings :=
            List.rev_append
              (findings_of_outcome ~scenario:scenario.sname ~sample outcome)
              !findings;
          (match !baseline with
          | None -> baseline := Some (sample, outcome)
          | Some (ref_sample, ref_outcome) ->
              if not (String.equal ref_outcome.results outcome.results) then
                findings :=
                  {
                    scenario = scenario.sname;
                    sample;
                    kind = Result_divergence;
                    detail =
                      Fmt.str "results diverge from %a — %s" Event_queue.pp_schedule
                        ref_sample.schedule
                        (first_result_diff ref_outcome.results outcome.results);
                  }
                  :: !findings);
          (* Spot-check replay determinism on the last (most shuffled)
             schedule of every fault stream. *)
          if slot = List.nth slots (List.length slots - 1) then begin
            incr replays;
            let again = scenario.srun scale ~schedule:sample.schedule ~fault_seed in
            match Determinism.diff_traces outcome.trace again.trace with
            | None -> ()
            | Some d ->
                findings :=
                  {
                    scenario = scenario.sname;
                    sample;
                    kind = Replay_divergence;
                    detail =
                      Fmt.str "same seed, different trace at line %d: %S vs %S"
                        d.Determinism.line_no
                        (Option.value ~default:"<end>" d.Determinism.first)
                        (Option.value ~default:"<end>" d.Determinism.second);
                  }
                  :: !findings
          end)
        slots)
    fault_seeds;
  {
    rscenario = scenario.sname;
    samples = List.rev !samples;
    findings = List.rev !findings;
    replays_checked = !replays;
  }

let replay ?(scale = Experiments.Scale.quick) ~seed scenario =
  Invariants.install ();
  let sample = sample_of_seed seed in
  let outcome = scenario.srun scale ~schedule:sample.schedule ~fault_seed:sample.fault_seed in
  let again = scenario.srun scale ~schedule:sample.schedule ~fault_seed:sample.fault_seed in
  let findings = ref (findings_of_outcome ~scenario:scenario.sname ~sample outcome) in
  (match Determinism.diff_traces outcome.trace again.trace with
  | None -> ()
  | Some d ->
      findings :=
        {
          scenario = scenario.sname;
          sample;
          kind = Replay_divergence;
          detail =
            Fmt.str "same seed, different trace at line %d: %S vs %S" d.Determinism.line_no
              (Option.value ~default:"<end>" d.Determinism.first)
              (Option.value ~default:"<end>" d.Determinism.second);
        }
        :: !findings);
  (if sample.slot <> 0 then
     let fifo =
       scenario.srun scale ~schedule:Event_queue.Fifo ~fault_seed:sample.fault_seed
     in
     if not (String.equal fifo.results outcome.results) then
       findings :=
         {
           scenario = scenario.sname;
           sample;
           kind = Result_divergence;
           detail =
             Fmt.str "results diverge from fifo — %s"
               (first_result_diff fifo.results outcome.results);
         }
         :: !findings);
  (outcome, List.rev !findings)

let pp_report ppf r =
  if clean r then
    Fmt.pf ppf "%s: clean — %d samples (schedule x fault), %d replay-checked" r.rscenario
      (List.length r.samples) r.replays_checked
  else begin
    Fmt.pf ppf "%s: %d finding(s) over %d samples@," r.rscenario (List.length r.findings)
      (List.length r.samples);
    List.iter (fun f -> Fmt.pf ppf "%a@," pp_finding f) r.findings
  end
