(** Documentation lint: keeps the written word in sync with the code.

    Three rule families, all reported as {!Lint.finding}s so the CLI can
    render them uniformly:

    - [mli-doc]: every top-level [val] in a library [.mli] must carry a
      doc comment — either a [(** ... *)] ending on the line directly
      above the declaration, or a trailing one after it. Sections fenced
      by the odoc stop comment [(**/**)] are exempt (internal plumbing).
    - [md-link]: relative links in the operator-facing markdown
      (README.md, DESIGN.md, EXPERIMENTS.md, docs/) must point at files
      that exist, and [#fragment] links must name a real heading in the
      target (GitHub anchor rules). External [http(s)://] links are not
      checked.
    - [changes-log]: CHANGES.md must hold exactly one line per PR,
      numbered sequentially from 1 — the contract the next session relies
      on to know what is already done.

    Like {!Lint}, this is a self-contained text-level scanner: no ppx, no
    compiler-libs, no markdown parser. *)

val undocumented : file:string -> string -> Lint.finding list
(** [mli-doc] over one [.mli]'s source text: one finding per top-level
    [val] with no attached doc comment. [file] labels the findings. *)

val heading_anchors : string -> string list
(** The GitHub-style anchor slugs of every heading in a markdown
    document, in order. Fenced code blocks are ignored. *)

val link_targets : string -> (int * string) list
(** [(line, target)] for every inline markdown link [[text](target)] in
    the document, fenced code blocks excluded. *)

val check_changes : file:string -> string -> Lint.finding list
(** [changes-log] over CHANGES.md's text: every non-blank line must
    match ["PR <n> ..."] with [n] counting 1, 2, 3, ... in order. *)

val scan_repo : root:string -> Lint.finding list
(** Run all three rule families over a repository checkout: [mli-doc]
    on every [.mli] under [root/lib], [md-link] on README.md, DESIGN.md,
    EXPERIMENTS.md and [docs/*.md], and [changes-log] on CHANGES.md.
    Findings are sorted by file, line and rule. *)
