(* Documentation lint. Same philosophy as Lint: a few text-level passes
   with no external parser, precise enough for this codebase's idioms. *)

type finding = Lint.finding = { rule : string; file : string; line : int; message : string }

let mk rule file line fmt = Fmt.kstr (fun message -> { rule; file; line; message }) fmt

(* ------------------------------------------------------------------ *)
(* mli-doc *)

(* One pass over the source classifying every character as code, string
   or comment, recording:
   - doc comment extents (start_line, end_line) — depth-0 doc openers
     that are not the stop comment "(**/**)";
   - stop-comment lines ("(**/**)" toggles an odoc-hidden section);
   - for each line, whether its column 0 is in code context (so an item
     keyword there really starts an item). *)
type mli_shape = {
  docs : (int * int) list;
  stops : int list;
  code_start : bool array; (* index = line - 1 *)
}

let shape_of_mli content =
  let n = String.length content in
  let total_lines =
    1 + String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 content
  in
  let code_start = Array.make total_lines false in
  code_start.(0) <- true;
  let docs = ref [] and stops = ref [] in
  let line = ref 1 and depth = ref 0 and doc_start = ref 0 in
  let i = ref 0 in
  let skip_string () =
    (* [!i] is at the opening quote; leaves [!i] past the closing one.
       Newlines inside literals keep the line count honest. *)
    incr i;
    let fin = ref false in
    while (not !fin) && !i < n do
      (match content.[!i] with
      | '\\' -> incr i
      | '"' -> fin := true
      | '\n' -> incr line
      | _ -> ());
      incr i
    done
  in
  while !i < n do
    let c = content.[!i] in
    let next = if !i + 1 < n then content.[!i + 1] else '\x00' in
    if c = '\n' then begin
      incr line;
      if !depth = 0 then code_start.(!line - 1) <- true;
      incr i
    end
    else if c = '(' && next = '*' then begin
      if !depth = 0 then begin
        if !i + 6 < n && String.sub content !i 7 = "(**/**)" then
          stops := !line :: !stops
        else if !i + 2 < n && content.[!i + 2] = '*' then doc_start := !line
      end;
      incr depth;
      i := !i + 2
    end
    else if !depth > 0 && c = '*' && next = ')' then begin
      decr depth;
      if !depth = 0 && !doc_start > 0 then begin
        docs := (!doc_start, !line) :: !docs;
        doc_start := 0
      end;
      i := !i + 2
    end
    else if c = '"' then skip_string ()
    else incr i
  done;
  { docs = List.rev !docs; stops = List.rev !stops; code_start }

let item_keywords =
  [ "val"; "type"; "module"; "exception"; "open"; "include"; "external"; "class"; "end" ]

let starts_with_keyword line kw =
  let kl = String.length kw in
  String.length line >= kl
  && String.sub line 0 kl = kw
  && (String.length line = kl
     || match line.[kl] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> false | _ -> true)

let val_name line =
  (* "val name : ..." or "val ( + ) : ..." — everything before the ':'. *)
  let rest = String.sub line 3 (String.length line - 3) in
  match String.index_opt rest ':' with
  | Some j -> String.trim (String.sub rest 0 j)
  | None -> String.trim rest

let undocumented ~file content =
  let shape = shape_of_mli content in
  let lines = Array.of_list (String.split_on_char '\n' content) in
  let item_at l =
    (* 1-indexed; an item keyword at column 0 in code context. *)
    l >= 1 && l <= Array.length lines
    && shape.code_start.(l - 1)
    && List.exists (starts_with_keyword lines.(l - 1)) item_keywords
  in
  let items = ref [] in
  Array.iteri (fun idx _ -> if item_at (idx + 1) then items := (idx + 1) :: !items) lines;
  let items = List.rev !items in
  let is_val l = starts_with_keyword lines.(l - 1) "val" in
  (* Assign each doc comment to exactly one item: the item directly below
     its last line (leading style), else the closest item above its first
     line (trailing style). *)
  let documented = Hashtbl.create 16 in
  List.iter
    (fun (s, e) ->
      if item_at (e + 1) then Hashtbl.replace documented (e + 1) ()
      else
        match List.filter (fun l -> l <= s) items with
        | [] -> ()
        | below -> Hashtbl.replace documented (List.fold_left max 0 below) ())
    shape.docs;
  let hidden l = List.length (List.filter (fun stop -> stop < l) shape.stops) mod 2 = 1 in
  List.filter_map
    (fun l ->
      if is_val l && (not (Hashtbl.mem documented l)) && not (hidden l) then
        Some (mk "mli-doc" file l "val %s has no doc comment" (val_name lines.(l - 1)))
      else None)
    items

(* ------------------------------------------------------------------ *)
(* md-link *)

let fold_md_lines content f acc =
  (* Visit (line_number, text) for every line outside ``` fences. *)
  let _, _, acc =
    List.fold_left
      (fun (lineno, fenced, acc) text ->
        let fence = String.length (String.trim text) >= 3 && String.sub (String.trim text) 0 3 = "```" in
        if fence then (lineno + 1, not fenced, acc)
        else if fenced then (lineno + 1, fenced, acc)
        else (lineno + 1, fenced, f acc lineno text))
      (1, false, acc)
      (String.split_on_char '\n' content)
  in
  acc

let slug title =
  let buf = Buffer.create (String.length title) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '-' | '_') as c -> Buffer.add_char buf c
      | ' ' -> Buffer.add_char buf '-'
      | _ -> ())
    (String.trim title);
  Buffer.contents buf

let heading_anchors content =
  List.rev
    (fold_md_lines content
       (fun acc _ text ->
         if String.length text > 0 && text.[0] = '#' then begin
           let j = ref 0 in
           while !j < String.length text && text.[!j] = '#' do incr j done;
           slug (String.sub text !j (String.length text - !j)) :: acc
         end
         else acc)
       [])

let link_targets content =
  let links_in acc lineno text =
    let n = String.length text in
    let acc = ref acc in
    let i = ref 0 in
    while !i + 1 < n do
      if text.[!i] = ']' && text.[!i + 1] = '(' then begin
        match String.index_from_opt text (!i + 2) ')' with
        | Some close ->
            acc := (lineno, String.sub text (!i + 2) (close - !i - 2)) :: !acc;
            i := close + 1
        | None -> i := n
      end
      else incr i
    done;
    !acc
  in
  List.rev (fold_md_lines content links_in [])

let external_link target =
  List.exists
    (fun prefix ->
      String.length target >= String.length prefix
      && String.sub target 0 (String.length prefix) = prefix)
    [ "http://"; "https://"; "mailto:" ]

(* ------------------------------------------------------------------ *)
(* changes-log *)

let check_changes ~file content =
  let pr_number text =
    if starts_with_keyword text "PR" then
      match String.split_on_char ' ' text with
      | "PR" :: n :: _ -> int_of_string_opt n
      | _ -> None
    else None
  in
  let _, findings =
    fold_md_lines content
      (fun (expected, acc) lineno text ->
        if String.trim text = "" then (expected, acc)
        else
          match pr_number text with
          | Some n when n = expected -> (expected + 1, acc)
          | Some n ->
              ( n + 1,
                mk "changes-log" file lineno "entry is PR %d, expected PR %d (one line per PR, in order)"
                  n expected
                :: acc )
          | None ->
              ( expected,
                mk "changes-log" file lineno "line does not start with \"PR <n> \"" :: acc ))
      (1, [])
  in
  List.rev findings

(* ------------------------------------------------------------------ *)
(* repository scan *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rec mli_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if entry = "" || entry.[0] = '.' || entry.[0] = '_' then []
         else if Sys.is_directory path then mli_files path
         else if Filename.check_suffix entry ".mli" then [ path ]
         else [])

let check_markdown ~root ~file content =
  let dir = Filename.dirname file in
  List.filter_map
    (fun (line, target) ->
      if external_link target || target = "" then None
      else
        let path, frag =
          match String.index_opt target '#' with
          | Some j ->
              ( String.sub target 0 j,
                Some (String.sub target (j + 1) (String.length target - j - 1)) )
          | None -> (target, None)
        in
        let resolved = if path = "" then file else Filename.concat dir path in
        if path <> "" && not (Sys.file_exists (Filename.concat root resolved)) then
          Some (mk "md-link" file line "broken link: %s does not exist" path)
        else
          match frag with
          | Some anchor when Filename.check_suffix resolved ".md" ->
              let anchors = heading_anchors (read_file (Filename.concat root resolved)) in
              if List.mem anchor anchors then None
              else Some (mk "md-link" file line "no heading for anchor #%s in %s" anchor resolved)
          | _ -> None)
    (link_targets content)

let markdown_scope root =
  let fixed = [ "README.md"; "DESIGN.md"; "EXPERIMENTS.md" ] in
  let docs_dir = Filename.concat root "docs" in
  let docs =
    if Sys.file_exists docs_dir && Sys.is_directory docs_dir then
      Sys.readdir docs_dir |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun f ->
             if Filename.check_suffix f ".md" then Some (Filename.concat "docs" f) else None)
    else []
  in
  List.filter (fun f -> Sys.file_exists (Filename.concat root f)) (fixed @ docs)

let scan_repo ~root =
  let lib = Filename.concat root "lib" in
  let mli_findings =
    if Sys.file_exists lib then
      List.concat_map
        (fun path ->
          let prefix = Filename.concat root "" in
          let rel =
            if String.length path > String.length prefix
               && String.sub path 0 (String.length prefix) = prefix
            then String.sub path (String.length prefix) (String.length path - String.length prefix)
            else path
          in
          undocumented ~file:rel (read_file path))
        (mli_files lib)
    else []
  in
  let md_findings =
    List.concat_map
      (fun file -> check_markdown ~root ~file (read_file (Filename.concat root file)))
      (markdown_scope root)
  in
  let changes =
    let path = Filename.concat root "CHANGES.md" in
    if Sys.file_exists path then check_changes ~file:"CHANGES.md" (read_file path) else []
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
      | c -> c)
    (mli_findings @ md_findings @ changes)
