type finding = { rule : string; file : string; line : int; message : string }

let rule_ids =
  [
    ( "hashtbl-order",
      "Hashtbl.iter/fold/to_seq whose result may escape without a sort: hash iteration \
       order is arbitrary and breaks trace determinism" );
    ( "ambient-random",
      "stdlib Random instead of Simcore.Rng: ambient PRNG state escapes the engine seed" );
    ("wall-clock", "wall-clock reads (Unix.gettimeofday / Unix.time / Sys.time) in simulated code");
    ("obj-magic", "Obj.magic / Obj.repr / Obj.obj defeat the type system");
    ( "poly-compare",
      "bare polymorphic compare in a float-bearing module: NaN breaks ordering and \
       physical equality of closures/lazies can raise" );
    ("missing-mli", "library module without a companion .mli interface");
  ]

(* ------------------------------------------------------------------ *)
(* Comment- and string-aware line stripping.

   [split_lines source] returns, per line, the code text with comments and
   string-literal contents blanked out (replaced by spaces, so columns are
   preserved) and the comment text with everything else blanked. Handles
   nested (* *) comments, "..." strings with escapes, {x|...|x} quoted
   strings and character literals (including '\'' and '"'); apostrophes in
   identifiers such as [left'] are not treated as literals. *)

type lex_state =
  | Code
  | Comment of int (* nesting depth *)
  | String
  | Quoted of string (* the {x| delimiter's id, matched by |x} *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let split_lines source =
  let lines = String.split_on_char '\n' source in
  let state = ref Code in
  List.map
    (fun line ->
      let n = String.length line in
      let code = Bytes.make n ' ' in
      let comment = Bytes.make n ' ' in
      let i = ref 0 in
      while !i < n do
        let c = line.[!i] in
        (match !state with
        | Code ->
            if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
              state := Comment 1;
              incr i
            end
            else if c = '"' then state := String
            else if c = '{' then begin
              (* {|...|} or {id|...|id} quoted string *)
              let j = ref (!i + 1) in
              while !j < n && line.[!j] >= 'a' && line.[!j] <= 'z' do
                incr j
              done;
              if !j < n && line.[!j] = '|' then begin
                state := Quoted (String.sub line (!i + 1) (!j - !i - 1));
                i := !j
              end
              else Bytes.set code !i c
            end
            else if
              c = '\''
              && (!i = 0 || not (is_ident_char line.[!i - 1]))
              && !i + 1 < n
            then begin
              (* Character literal: skip '\x..' or 'c' wholesale. *)
              Bytes.set code !i c;
              let close =
                if line.[!i + 1] = '\\' then
                  (* escape: find the closing quote after it *)
                  let j = ref (!i + 2) in
                  while !j < n && line.[!j] <> '\'' do
                    incr j
                  done;
                  if !j < n then Some !j else None
                else if !i + 2 < n && line.[!i + 2] = '\'' then Some (!i + 2)
                else None
              in
              match close with
              | Some j -> i := j
              | None -> () (* lone quote: type variable or stray *)
            end
            else Bytes.set code !i c
        | Comment depth ->
            Bytes.set comment !i c;
            if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
              state := Comment (depth + 1);
              Bytes.set comment (!i + 1) '*';
              incr i
            end
            else if c = '*' && !i + 1 < n && line.[!i + 1] = ')' then begin
              state := (if depth = 1 then Code else Comment (depth - 1));
              incr i
            end
        | String ->
            if c = '\\' then incr i (* skip the escaped character *)
            else if c = '"' then state := Code
        | Quoted id ->
            let close = "|" ^ id ^ "}" in
            let cl = String.length close in
            if c = '|' && !i + cl <= n && String.sub line !i cl = close then begin
              state := Code;
              i := !i + cl - 1
            end);
        incr i
      done;
      (* A string or quoted literal never spans lines in this codebase, but
         if one does, the blanking state simply carries over. *)
      (Bytes.to_string code, Bytes.to_string comment))
    lines

(* ------------------------------------------------------------------ *)
(* Token search *)

(* All start positions where [needle] occurs in [code] as a full token:
   the character before is not part of an identifier (and, unless
   [allow_dot_before], not '.'), and the character after is not part of an
   identifier. *)
let token_positions ?(allow_dot_before = false) code needle =
  let nl = String.length needle and cl = String.length code in
  let open_ended = nl > 0 && needle.[nl - 1] = '.' in
  let ok_before i =
    i = 0
    ||
    let c = code.[i - 1] in
    (not (is_ident_char c)) && (allow_dot_before || c <> '.')
  in
  let ok_after i =
    let j = i + nl in
    open_ended || j >= cl || not (is_ident_char code.[j])
  in
  let rec go from acc =
    if from + nl > cl then List.rev acc
    else
      match String.index_from_opt code from needle.[0] with
      | None -> List.rev acc
      | Some i when i + nl <= cl && String.sub code i nl = needle ->
          let acc = if ok_before i && ok_after i then i :: acc else acc in
          go (i + 1) acc
      | Some i -> go (i + 1) acc
  in
  go 0 []

let has_token ?allow_dot_before code needle =
  token_positions ?allow_dot_before code needle <> []

let contains_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Pragmas *)

let pragma_prefix = "lint: allow"

(* Rule ids allowed by pragmas in this comment text. *)
let allowances comment =
  (* Everything after "lint: allow", split on spaces and commas, filtered
     to known rule ids — trailing justification text is simply ignored. *)
  let pl = String.length pragma_prefix in
  let rec find i =
    if i + pl > String.length comment then None
    else if String.sub comment i pl = pragma_prefix then Some (i + pl)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
      let rest = String.sub comment start (String.length comment - start) in
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char ',')
      |> List.filter (fun w -> List.mem_assoc w rule_ids)

(* ------------------------------------------------------------------ *)
(* Per-file scan *)

let module_qualified_needles =
  [
    ( "hashtbl-order",
      [
        "Hashtbl.iter";
        "Hashtbl.fold";
        "Hashtbl.to_seq";
        "Hashtbl.to_seq_keys";
        "Hashtbl.to_seq_values";
      ] );
    ("ambient-random", [ "Random." ]);
    ("wall-clock", [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]);
    ("obj-magic", [ "Obj.magic"; "Obj.repr"; "Obj.obj" ]);
  ]

(* The hashtbl-order rule forgives an iteration whose result is explicitly
   ordered nearby: any "sort" within this many lines below the call. *)
let sort_window = 2

let ends_with_definition code pos =
  (* [compare] right after [let]/[and]/[rec] is a monomorphic definition,
     and [~compare] is a labelled argument — neither is a use of the
     polymorphic comparator. *)
  if pos > 0 && code.[pos - 1] = '~' then true
  else
    let before = String.trim (String.sub code 0 pos) in
    let word s w =
      let wl = String.length w and l = String.length s in
      l >= wl
      && String.sub s (l - wl) wl = w
      && (l = wl || not (is_ident_char s.[l - wl - 1]))
    in
    word before "let" || word before "and" || word before "rec"

let scan_source ~file source =
  let lines = split_lines source in
  let code_lines = Array.of_list (List.map fst lines) in
  let comment_lines = Array.of_list (List.map snd lines) in
  let nlines = Array.length code_lines in
  (* A float literal: a maximal digit run not preceded by an identifier
     character (so [Int64.] and [v1.field] don't count), followed by '.'. *)
  let has_float_literal code =
    let n = String.length code in
    let is_digit c = c >= '0' && c <= '9' in
    let rec go i =
      if i >= n then false
      else if is_digit code.[i] && (i = 0 || not (is_ident_char code.[i - 1])) then begin
        let j = ref i in
        while !j < n && is_digit code.[!j] do
          incr j
        done;
        (!j < n && code.[!j] = '.') || go !j
      end
      else go (i + 1)
    in
    go 0
  in
  let float_bearing =
    Array.exists
      (fun code -> has_token code "float" || has_float_literal code)
      code_lines
  in
  let findings = ref [] in
  let allowed rule line =
    (* A pragma suppresses the offending line itself or, when written as a
       standalone comment, the line directly below it. *)
    List.mem rule (allowances comment_lines.(line))
    || (line > 0
        && String.trim code_lines.(line - 1) = ""
        && List.mem rule (allowances comment_lines.(line - 1)))
  in
  let emit rule line message =
    if not (allowed rule line) then
      findings := { rule; file; line = line + 1; message } :: !findings
  in
  for i = 0 to nlines - 1 do
    let code = code_lines.(i) in
    List.iter
      (fun (rule, needles) ->
        List.iter
          (fun needle ->
            if has_token ~allow_dot_before:true code needle then
              match rule with
              | "hashtbl-order" ->
                  let sorted = ref false in
                  for j = i to min (nlines - 1) (i + sort_window) do
                    if contains_substring code_lines.(j) "sort" then sorted := true
                  done;
                  if not !sorted then
                    emit rule i
                      (Fmt.str "%s result not explicitly sorted within %d lines" needle
                         sort_window)
              | _ -> emit rule i (Fmt.str "use of %s" needle))
          needles)
      module_qualified_needles;
    if float_bearing then
      List.iter
        (fun pos ->
          if not (ends_with_definition code pos) then
            emit "poly-compare" i
              "bare polymorphic compare in a module handling floats (use Float.compare \
               or a typed comparator)")
        (token_positions code "compare")
  done;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Tree scan *)

let missing_mli ~dir ~ml ~mli =
  let mli_stems = List.map Filename.remove_extension mli in
  List.filter_map
    (fun f ->
      let stem = Filename.remove_extension f in
      if List.mem stem mli_stems then None
      else
        Some
          {
            rule = "missing-mli";
            file = Filename.concat dir f;
            line = 1;
            message = Fmt.str "%s has no companion %s.mli interface" f (Filename.basename stem);
          })
    (List.sort compare ml)

let rec walk dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.to_list entries
      |> List.concat_map (fun entry ->
             if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then []
             else
               let path = Filename.concat dir entry in
               if Sys.is_directory path then walk path
               else if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
               then [ path ]
               else [])
  | exception Sys_error _ -> []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Group files per directory for the missing-mli rule. *)
let scan_tree ~root dirs =
  let findings = ref [] in
  List.iter
    (fun dir ->
      let full = Filename.concat root dir in
      let files = walk full in
      let in_lib = String.length dir >= 3 && String.sub dir 0 3 = "lib" in
      List.iter
        (fun path ->
          if Filename.check_suffix path ".ml" then
            findings := scan_source ~file:path (read_file path) @ !findings)
        files;
      if in_lib then begin
        let by_dir = List.sort_uniq compare (List.map Filename.dirname files) in
        List.iter
          (fun d ->
            let here = List.filter (fun p -> Filename.dirname p = d) files in
            let base = List.map Filename.basename here in
            let ml = List.filter (fun f -> Filename.check_suffix f ".ml") base in
            let mli = List.filter (fun f -> Filename.check_suffix f ".mli") base in
            findings := missing_mli ~dir:d ~ml ~mli @ !findings)
          by_dir
      end)
    dirs;
  List.sort compare !findings

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message
