(** Digest-tax micro-bench (beyond the paper): an instance rewrites its
    whole working region every epoch — only a fraction of it actually
    changed — and COMMITs. Measures the bytes digested during the commit
    itself (the [blob.write] digest tax the dirty-region digest cache
    kills), the epoch-total digest work, simulated commit time and bytes
    shipped, swept over image size x dirty fraction x dedup on/off plus a
    digest-cache-off baseline. *)

open Simcore

type point = {
  image_bytes : int;
  dirty_fraction : float;
  dedup : bool;
  digest_cache : bool;
  commit_time : float;  (** simulated seconds, measured epoch-two commit *)
  commit_digest_bytes : int;  (** bytes digested during the commit itself *)
  total_digest_bytes : int;  (** bytes digested over rewrite + commit *)
  chunks_digested : int;
  chunks_cached : int;
  chunks_skipped : int;
  shipped_bytes : int;
  deduped_bytes : int;
  suppressed_bytes : int;
}

val run : Scale.t -> ?progress:(string -> unit) -> unit -> point list
(** One point per (image size x dirty fraction x config); configs are
    dedup on/off with the digest cache on, plus dedup-on/cache-off. *)

val tables_of : point list -> (string * Stats.table) list
(** Render already-collected points as the named result tables. *)

val tables : Scale.t -> ?progress:(string -> unit) -> unit -> (string * Stats.table) list
(** {!run} followed by {!tables_of}. *)

val json_of : scale_name:string -> point list -> string
(** Render points as the BENCH_digest.json document (hand-rolled JSON;
    the repo has no JSON dependency). *)
