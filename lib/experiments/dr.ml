open Blobcr
open Workloads

(* ------------------------------------------------------------------ *)
(* Harness: a supervised CM1 gang on a two-site cluster (standby fed by
   the journal-shipping replicator), with a site disaster injected while
   the run is in flight. The supervisor detects the dead gang, promotes
   the standby and restarts from the newest fully replicated checkpoint;
   the outcome carries the RPO/RTO actually incurred. *)

type outcome = {
  report : Supervisor.report;
  digests : (string * int64) list;
  audit : string list;
  repl_stats : Blobseer.Replicator.stats;
  failed_over : bool;
  rpo_versions : int;
  rpo_bytes : int;
  rpo_units : int;
  rto : float;
  integrity_failures : int;
  injected : Faults.event list;
  engine : Simcore.Engine.t;
}

let failover_of_events events =
  List.fold_left
    (fun acc e ->
      match e with
      | Supervisor.Failed_over { rpo_versions; rpo_bytes; rpo_units; rto; _ } ->
          Some (rpo_versions, rpo_bytes, rpo_units, rto)
      | _ -> acc)
    None events

(* Crash the site a beat after the first global checkpoint's records
   become eligible for shipping (the shipper batches: commit + ship_delay),
   so the disaster hits with publications still inside the replication
   pipeline — mid-fetch or queued behind the window, not merely parked. *)
let default_crash_at (scale : Scale.t) ~interval =
  (float_of_int interval *. scale.Scale.cm1_config.Cm1.compute_per_iteration)
  +. Blobseer.Replicator.default_config.Blobseer.Replicator.ship_delay +. 0.6

let dr_run (scale : Scale.t) ?(config = Blobseer.Replicator.default_config) ?crash_at
    ?(interval = 2) ?(gang = 2) ?(units = 6) () =
  let cluster =
    Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule ~dr:config
      scale.Scale.cal
  in
  let crash_at =
    match crash_at with Some t -> t | None -> default_crash_at scale ~interval
  in
  Cluster.run cluster (fun () ->
      let workload = Cm1.supervised_workload cluster scale.Scale.cm1_config ~iters_per_unit:1 in
      let injector = ref None and sup = ref None in
      let report =
        Supervisor.run cluster ~kind:Approach.Blobcr
          ~policy:{ Supervisor.default_policy with checkpoint_interval = interval }
          ~on_ready:(fun s ->
            sup := Some s;
            injector :=
              Some
                (Faults.start cluster.Cluster.engine
                   ~script:[ { Faults.at = crash_at; action = Faults.Crash_site } ]
                   ~handlers:(Supervisor.fault_handlers s)))
          ~id:"dr" ~gang ~units ~workload ()
      in
      let injected =
        match !injector with
        | Some inj ->
            Faults.stop inj;
            Faults.applied inj
        | None -> []
      in
      let sup = Option.get !sup in
      let repl =
        match Cluster.replicator cluster with
        | Some r -> r
        | None -> invalid_arg "Dr.dr_run: cluster has no standby site"
      in
      let rpo_versions, rpo_bytes, rpo_units, rto =
        match failover_of_events report.Supervisor.events with
        | Some f -> f
        | None -> (0, 0, 0, 0.0)
      in
      let integrity_failures =
        Blobseer.Client.integrity_failures cluster.Cluster.service
        +
        match cluster.Cluster.dr with
        | Some d when d.Cluster.promoted ->
            Blobseer.Client.integrity_failures d.Cluster.primary_service
        | _ -> 0
      in
      {
        report;
        digests = Durability.final_subdomain_digests sup;
        audit = Supervisor.audit sup;
        repl_stats = Blobseer.Replicator.stats repl;
        failed_over = failover_of_events report.Supervisor.events <> None;
        rpo_versions;
        rpo_bytes;
        rpo_units;
        rto;
        integrity_failures;
        injected;
        engine = cluster.Cluster.engine;
      })

(* Control: same supervised run, same interval, no standby site and no
   disaster — the primary-commit overhead baseline. *)
let control_run (scale : Scale.t) ?(interval = 2) ?(gang = 2) ?(units = 6) () =
  let cluster =
    Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal
  in
  Cluster.run cluster (fun () ->
      let workload = Cm1.supervised_workload cluster scale.Scale.cm1_config ~iters_per_unit:1 in
      Supervisor.run cluster ~kind:Approach.Blobcr
        ~policy:{ Supervisor.default_policy with checkpoint_interval = interval }
        ~id:"dr-ctl" ~gang ~units ~workload ())

let mean_checkpoint_cost (report : Supervisor.report) =
  if report.Supervisor.checkpoints > 0 then
    report.Supervisor.checkpoint_time /. float_of_int report.Supervisor.checkpoints
  else 0.0

let committed_costs (report : Supervisor.report) =
  List.filter_map
    (fun e ->
      match e with
      | Supervisor.Checkpoint_committed { elapsed; _ } -> Some elapsed
      | _ -> None)
    report.Supervisor.events

(* Committed-checkpoint durations on the primary site only: commits after
   a failover run on the promoted standby and fold recovery recomputation
   into their cost, which would misattribute recovery work as replication
   interference. *)
let primary_checkpoint_costs (report : Supervisor.report) =
  let failover_at =
    List.fold_left
      (fun acc e ->
        match e with Supervisor.Failed_over { at; _ } -> Some at | _ -> acc)
      None report.Supervisor.events
  in
  List.filter_map
    (fun e ->
      match e with
      | Supervisor.Checkpoint_committed { at; elapsed; _ }
        when (match failover_at with Some f -> at <= f | None -> true) ->
          Some elapsed
      | _ -> None)
    report.Supervisor.events

let mean = function
  | [] -> 0.0
  | cs -> List.fold_left ( +. ) 0.0 cs /. float_of_int (List.length cs)

let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> []

(* ------------------------------------------------------------------ *)
(* Sweep: link latency x checkpoint interval x window. *)

type point = {
  link_latency : float;
  window : int;
  interval : int;
  finished : bool;
  failed_over : bool;
  rpo_versions : int;
  rpo_bytes : int;
  rpo_units : int;
  rto : float;
  max_lag : int;
  checkpoint_cost : float;
  checkpoint_cost_nodr : float;
  overhead_pct : float;
}

let run_point (scale : Scale.t) ?(progress = fun _ -> ()) ~link_latency ~window ~interval
    ~control () =
  let config =
    { Blobseer.Replicator.default_config with link_latency; window }
  in
  let o =
    dr_run scale ~config ~interval ~gang:scale.Scale.dr_gang ~units:scale.Scale.dr_units ()
  in
  (* Positional comparison: the first checkpoint ships the full image and
     is inherently pricier, so the DR run's pre-failover commits are held
     against the control's commits at the same positions — not against the
     control's whole-run mean. *)
  let dr_costs = primary_checkpoint_costs o.report in
  let checkpoint_cost = mean dr_costs in
  let checkpoint_cost_nodr = mean (take (List.length dr_costs) (committed_costs control)) in
  let overhead_pct =
    if checkpoint_cost_nodr > 0.0 then
      (checkpoint_cost /. checkpoint_cost_nodr -. 1.0) *. 100.0
    else 0.0
  in
  progress
    (Fmt.str
       "  finished=%b failed_over=%b rpo=%d version(s)/%d unit(s) rto=%.2fs max-lag=%d \
        ckpt=%.3fs (+%.1f%%)"
       o.report.Supervisor.finished o.failed_over o.rpo_versions o.rpo_units o.rto
       o.repl_stats.Blobseer.Replicator.max_lag checkpoint_cost overhead_pct);
  {
    link_latency;
    window;
    interval;
    finished = o.report.Supervisor.finished;
    failed_over = o.failed_over;
    rpo_versions = o.rpo_versions;
    rpo_bytes = o.rpo_bytes;
    rpo_units = o.rpo_units;
    rto = o.rto;
    max_lag = o.repl_stats.Blobseer.Replicator.max_lag;
    checkpoint_cost;
    checkpoint_cost_nodr;
    overhead_pct;
  }

let sweep (scale : Scale.t) ?(progress = fun _ -> ()) () =
  List.concat_map
    (fun interval ->
      progress (Fmt.str "dr: control (no standby), interval=%d" interval);
      let control = control_run scale ~interval ~gang:scale.Scale.dr_gang ~units:scale.Scale.dr_units () in
      List.concat_map
        (fun link_latency ->
          List.map
            (fun window ->
              progress
                (Fmt.str "dr: link=%gms window=%d interval=%d" (link_latency *. 1000.0)
                   window interval);
              run_point scale ~progress ~link_latency ~window ~interval ~control ())
            scale.Scale.dr_windows)
        scale.Scale.dr_link_latencies)
    scale.Scale.dr_intervals

let series_label latency interval = Fmt.str "link=%gms int=%d" (latency *. 1000.0) interval

let per_series points f =
  List.filter_map
    (fun (latency, interval) ->
      match
        List.filter (fun p -> p.link_latency = latency && p.interval = interval) points
      with
      | [] -> None
      | ps ->
          let s = Simcore.Stats.series (series_label latency interval) in
          List.iter (fun p -> Simcore.Stats.add s ~x:(float_of_int p.window) ~y:(f p)) ps;
          Some s)
    (List.sort_uniq
       (fun (l1, i1) (l2, i2) ->
         match Float.compare l1 l2 with 0 -> Int.compare i1 i2 | c -> c)
       (List.map (fun p -> (p.link_latency, p.interval)) points))

let tables (scale : Scale.t) ?progress () =
  let points = sweep scale ?progress () in
  [
    ( "dr-rpo",
      Simcore.Stats.table ~title:"RPO: versions lost at site failover vs replication window"
        ~x_label:"window" ~y_label:"versions lost"
        (per_series points (fun p -> float_of_int p.rpo_versions)) );
    ( "dr-rpo-units",
      Simcore.Stats.table ~title:"RPO: work units rolled back at site failover"
        ~x_label:"window" ~y_label:"units"
        (per_series points (fun p -> float_of_int p.rpo_units)) );
    ( "dr-rto",
      Simcore.Stats.table ~title:"RTO: failure detection to gang running on the standby"
        ~x_label:"window" ~y_label:"seconds" (per_series points (fun p -> p.rto)) );
    ( "dr-lag",
      Simcore.Stats.table ~title:"Replication lag high-water mark (records)"
        ~x_label:"window" ~y_label:"records"
        (per_series points (fun p -> float_of_int p.max_lag)) );
    ( "dr-overhead",
      Simcore.Stats.table
        ~title:"Primary committed-checkpoint overhead vs no-standby control"
        ~x_label:"window" ~y_label:"percent" (per_series points (fun p -> p.overhead_pct)) );
  ]
