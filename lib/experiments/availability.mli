(** Availability sweep: MTBF × checkpoint-interval under injected faults.

    Beyond the paper's performance figures, this experiment exercises the
    whole fault path: a supervised CM1 gang runs to completion while a
    deterministic injector crash-stops hosts and data providers with
    exponential inter-arrival times (mean MTBF); the supervisor detects
    failures, rolls back to the last global checkpoint and re-deploys on
    spare nodes. Reported per (approach, MTBF, interval): effective
    utilization (completed compute / makespan), wasted (rolled-back) time
    and recovery latency — plus the Young's-formula optimal interval
    computed from the measured mean checkpoint cost, for comparison
    against the swept intervals. *)

open Simcore
open Blobcr

type point = {
  kind : Approach.kind;
  mtbf : float;
  interval : int;  (** checkpoint interval in work units *)
  makespan : float;
  utilization : float;  (** completed compute time / makespan *)
  wasted : float;
  recoveries : int;
  finished : bool;
  mean_recovery_latency : float;
  checkpoint_cost : float;  (** mean committed global-checkpoint duration *)
}

val kinds : Approach.kind list
(** BlobCR-app and qcow2-disk-app — the two approaches the sweep compares. *)

val sweep : Scale.t -> ?progress:(string -> unit) -> unit -> point list
(** One supervised chaos run per (kind, mtbf, interval) cell, each on a
    fresh cluster seeded from the scale (same scale ⇒ same failure
    timeline ⇒ same results). *)

val tables : Scale.t -> ?progress:(string -> unit) -> unit -> (string * Stats.table) list
(** Named result tables: ["availability"] (utilization),
    ["availability-wasted"], ["availability-recovery"],
    ["availability-youngs"]. *)
