(** Registry of reproducible experiments, one entry per paper figure or
    table. The CLI and the bench harness both drive experiments through
    this interface. *)

open Simcore

type output = { name : string; table : Stats.table }

type t = {
  id : string;  (** e.g. ["fig2a"] *)
  paper_ref : string;  (** e.g. ["Figure 2(a)"] *)
  description : string;
  run : Scale.t -> progress:(string -> unit) -> output list;
}

val all : t list
(** fig2a, fig2b, fig3a, fig3b, fig4, fig5a, fig5b, fig6, table1, plus the
    ablation studies abl-prefetch, abl-stripe, abl-replication and
    abl-incremental. Entries that share a sweep (fig2a/fig3a, fig5a/fig5b)
    emit both outputs in one run. *)

val find : string -> t option
(** Look up an experiment by id, e.g. ["fig2a"]. *)

val ids : string list
(** Ids of {!all}, in order. *)

val run_and_render :
  t -> Scale.t -> ?csv_dir:string -> progress:(string -> unit) -> unit -> string
(** Run the experiment, optionally write each output as CSV under
    [csv_dir], and return the rendered text tables. *)

val run_observed :
  t ->
  Scale.t ->
  ?csv_dir:string ->
  ?detail:bool ->
  progress:(string -> unit) ->
  unit ->
  string * Obs.Record.run
(** Like {!run_and_render}, but under an observability capture: also
    returns the recorded spans, metric snapshot and labelled tracks (one
    per simulated sweep point). [detail] additionally records per-chunk
    spans — large timelines; off by default. *)

val render_observability : Obs.Record.run -> string
(** Render a captured run as the flat metrics table followed by the
    checkpoint and restart critical-path phase breakdowns (when the run
    contains [ckpt] / [restart] root spans). *)
