open Simcore
open Blobcr
open Vmsim

(* Live-checkpoint sweep: one BlobCR instance runs a guest writer that
   dirties its working set at a controlled rate while the driver takes
   periodic checkpoints in one of three modes — classic stop-the-world,
   live with the final delta committed under suspend ("live-sync"), and
   live with the final delta shipped in the background after the resume
   ("live-bg"). The stop-the-world window is measured where it hurts: as
   the longest stall the writer observes at its own pause points, not as a
   driver-side timer. Interference is what live checkpointing costs the
   guest — frozen-chunk copy-on-write traffic plus pre-copy overshipping. *)

type point = {
  interval : float;  (** seconds between checkpoint requests *)
  dirty_mbps : float;  (** guest dirtying rate, MiB/s *)
  rounds : int;  (** pre-copy round budget (0 = none) *)
  mode : string;  (** ["stw" | "live-sync" | "live-bg"] *)
  suspend_max : float;  (** longest writer-observed stall, seconds *)
  ckpt_latency : float;  (** mean checkpoint completion, seconds *)
  shipped_bytes : int;  (** total commit bytes physically shipped *)
  cow_bytes : int;  (** frozen-chunk bytes copied to diff logs *)
  achieved_mbps : float;  (** writer throughput actually sustained *)
}

let mode_of p ~rounds ~background =
  match p with
  | "stw" -> Approach.Stop_the_world
  | _ -> Approach.Live { rounds; background }

let slot_path slot = Fmt.str "/precopy/slot.%d" slot
let slots = 8

(* Content is a function of (slot, iteration) so every rewrite really
   changes the chunk's bytes — no clean-rewrite suppression noise. *)
let slot_seed ~slot ~iter = Int64.of_int ((((iter * 131) + 0xC0FFEE) * 65_599) + slot)

let run_point (scale : Scale.t) ~interval ~dirty_mbps ~rounds ~mode () =
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal in
  Cluster.run cluster (fun () ->
      let engine = cluster.Cluster.engine in
      let node = Cluster.node cluster 0 in
      let inst = Approach.deploy cluster Approach.Blobcr ~node ~id:"precopy" in
      let mirror =
        match inst.Approach.stack with
        | Approach.Mirror_stack m -> m
        | Approach.Qcow2_stack _ -> assert false
      in
      let fs = Vm.fs inst.Approach.vm in
      let write_bytes = scale.Scale.precopy_write_bytes in
      let pause = float_of_int write_bytes /. (dirty_mbps *. float_of_int Size.mib) in
      let stop = ref false and stall_max = ref 0.0 and written = ref 0 in
      let writer () =
        let iter = ref 0 in
        while not !stop do
          (* The stall a suspended VM inflicts on the guest: pause points
             block for the whole remaining suspend window. *)
          let t0 = Engine.now engine in
          Vm.pause_point inst.Approach.vm;
          let stall = Engine.now engine -. t0 in
          if stall > !stall_max then stall_max := stall;
          let slot = !iter mod slots in
          Guest_fs.write_file fs ~path:(slot_path slot)
            (Payload.pattern ~seed:(slot_seed ~slot ~iter:!iter) write_bytes);
          Guest_fs.sync fs;
          written := !written + write_bytes;
          incr iter;
          Engine.sleep engine pause
        done
      in
      ignore (Vm.spawn_process inst.Approach.vm ~name:"writer" ~mem:write_bytes writer);
      let ckpt_mode = mode_of mode ~rounds ~background:(mode = "live-bg") in
      let dump (i : Approach.instance) = Guest_fs.sync (Vm.fs i.Approach.vm) in
      let run_start = Engine.now engine in
      let latency_sum = ref 0.0 in
      for _epoch = 1 to scale.Scale.precopy_epochs do
        Engine.sleep engine interval;
        let t0 = Engine.now engine in
        ignore
          (Protocol.global_checkpoint_exn ~mode:ckpt_mode cluster ~instances:[ inst ] ~dump);
        latency_sum := !latency_sum +. (Engine.now engine -. t0)
      done;
      let elapsed = Engine.now engine -. run_start in
      stop := true;
      let stats = Vdisk.Mirror.total_commit_stats mirror in
      {
        interval;
        dirty_mbps;
        rounds;
        mode;
        suspend_max = !stall_max;
        ckpt_latency = !latency_sum /. float_of_int scale.Scale.precopy_epochs;
        shipped_bytes = stats.Blobseer.Client.bytes_shipped;
        cow_bytes = Vdisk.Mirror.cow_bytes mirror;
        achieved_mbps =
          (if elapsed > 0.0 then
             float_of_int !written /. float_of_int Size.mib /. elapsed
           else 0.0);
      })

let run (scale : Scale.t) ?(progress = fun _ -> ()) () =
  List.concat_map
    (fun interval ->
      List.concat_map
        (fun dirty_mbps ->
          (* One stop-the-world anchor per (interval, dirty-rate) cell,
             then the live modes across the pre-copy round budgets. *)
          let stw =
            progress (Fmt.str "precopy: int=%gs d=%gMiB/s stw" interval dirty_mbps);
            run_point scale ~interval ~dirty_mbps ~rounds:0 ~mode:"stw" ()
          in
          stw
          :: List.concat_map
               (fun rounds ->
                 List.map
                   (fun mode ->
                     progress
                       (Fmt.str "precopy: int=%gs d=%gMiB/s k=%d %s" interval dirty_mbps
                          rounds mode);
                     run_point scale ~interval ~dirty_mbps ~rounds ~mode ())
                   [ "live-sync"; "live-bg" ])
               scale.Scale.precopy_rounds)
        scale.Scale.precopy_dirty_mbps)
    scale.Scale.precopy_intervals

let series_label p = Fmt.str "%s int=%gs d=%gMiB/s" p.mode p.interval p.dirty_mbps

let per_series points f =
  let keys = List.sort_uniq String.compare (List.map series_label points) in
  List.map
    (fun key ->
      let s = Stats.series key in
      List.iter
        (fun p ->
          if String.equal (series_label p) key then Stats.add s ~x:(float_of_int p.rounds) ~y:(f p))
        points;
      s)
    keys

let tables_of points =
  [
    ( "precopy-suspend",
      Stats.table ~title:"Longest guest-observed stall (the stop-the-world window)"
        ~x_label:"pre-copy rounds" ~y_label:"seconds"
        (per_series points (fun p -> p.suspend_max)) );
    ( "precopy-latency",
      Stats.table ~title:"Mean checkpoint completion time (including background ship)"
        ~x_label:"pre-copy rounds" ~y_label:"seconds"
        (per_series points (fun p -> p.ckpt_latency)) );
    ( "precopy-shipped",
      Stats.table ~title:"Total commit bytes shipped (pre-copy overship included)"
        ~x_label:"pre-copy rounds" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.shipped_bytes)) );
    ( "precopy-interference",
      Stats.table ~title:"Frozen-chunk copy-on-write traffic charged to the guest"
        ~x_label:"pre-copy rounds" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.cow_bytes)) );
    ( "precopy-throughput",
      Stats.table ~title:"Writer throughput sustained across the run"
        ~x_label:"pre-copy rounds" ~y_label:"MiB/s"
        (per_series points (fun p -> p.achieved_mbps)) );
  ]

let tables (scale : Scale.t) ?progress () = tables_of (run scale ?progress ())

(* Hand-rolled JSON: the repo deliberately has no JSON dependency. *)
let json_of ~scale_name points =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %S,\n" scale_name);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"interval_s\": %g, \"dirty_mibps\": %g, \"rounds\": %d, \"mode\": %S,\n\
           \     \"suspend_max_s\": %.6f, \"ckpt_latency_s\": %.6f,\n\
           \     \"shipped_bytes\": %d, \"cow_bytes\": %d,\n\
           \     \"achieved_mibps\": %.3f}%s\n"
           p.interval p.dirty_mbps p.rounds p.mode p.suspend_max p.ckpt_latency
           p.shipped_bytes p.cow_bytes p.achieved_mbps
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
