(** CM1 experiment machinery (Figure 6 and Table 1).

    Deploys quad-core VM instances each hosting [procs_per_vm] MPI ranks,
    runs the stencil for a warm-up period standing in for the paper's 10
    minutes of execution, then takes a global checkpoint and records its
    completion time and per-VM snapshot size. qcow2-full is omitted, as in
    the paper ("unacceptably large sizes"). *)

type point = {
  combo : Combos.t;
  vms : int;
  processes : int;
  checkpoint_time : float;
  snapshot_bytes : float;  (** mean per disk snapshot *)
}

val run_point : Scale.t -> combo:Combos.t -> vms:int -> point
(** One CM1 run on a fresh cluster: deploy [vms] instances, warm up,
    checkpoint once. *)

val sweep :
  Scale.t -> ?combos:Combos.t list -> ?vm_counts:int list ->
  ?progress:(point -> unit) -> unit -> point list
(** The full (combo × VM count) grid; defaults come from the scale. *)
