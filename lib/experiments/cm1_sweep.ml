open Blobcr
open Workloads

type point = {
  combo : Combos.t;
  vms : int;
  processes : int;
  checkpoint_time : float;
  snapshot_bytes : float;
}

let run_point (scale : Scale.t) ~(combo : Combos.t) ~vms =
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal in
  Cluster.run cluster (fun () ->
      let instances = Synthetic_sweep.deploy_many cluster combo.Combos.kind ~n:vms in
      let cm1 = Cm1.setup cluster ~instances scale.Scale.cm1_config in
      Cm1.iterate cm1 scale.Scale.cm1_warmup_iterations;
      let dump =
        match combo.Combos.dump with
        | Combos.App -> Cm1.dump_app cm1
        | Combos.Blcr -> Cm1.dump_blcr cm1
        | Combos.Full_vm -> invalid_arg "Cm1_sweep: qcow2-full is not evaluated on CM1"
      in
      let t0 = Cluster.now cluster in
      let snapshots = Protocol.global_checkpoint_exn cluster ~instances ~dump in
      let checkpoint_time = Cluster.now cluster -. t0 in
      let snapshot_bytes =
        Simcore.Stats.mean
          (List.map (fun s -> float_of_int (Approach.snapshot_bytes s)) snapshots)
      in
      {
        combo;
        vms;
        processes = Cm1.process_count cm1;
        checkpoint_time;
        snapshot_bytes;
      })

let sweep scale ?(combos = Combos.disk_only) ?vm_counts ?(progress = fun _ -> ()) () =
  let vm_counts =
    match vm_counts with Some v -> v | None -> scale.Scale.cm1_vm_counts
  in
  List.concat_map
    (fun combo ->
      List.map
        (fun vms ->
          let point = run_point scale ~combo ~vms in
          progress point;
          point)
        vm_counts)
    combos
