open Simcore
open Storage
open Blobcr

(* ------------------------------------------------------------------ *)
(* Shared harness pieces.

   Both sides write the same image history: a full initial image, then
   [depth] epochs each rewriting a rotating quarter of the image's first
   half with epoch-unique content. The second half therefore lives only
   in the oldest snapshot — the worst case for an uncollapsed qcow2 chain
   and the representative case for retention — and the epoch-unique
   payloads keep cross-version dedup hits honest (only genuinely
   unchanged data deduplicates). *)

let epoch_seed e = Int64.of_int (100 + e)

let dirty_region ~capacity e =
  let half = capacity / 2 in
  let qlen = max 1 (half / 4) in
  let offset = e mod 4 * qlen in
  (offset, min qlen (capacity - offset))

let phys_read cluster =
  let total = ref 0 in
  for i = 0 to Cluster.node_count cluster - 1 do
    total := !total + Disk.bytes_read (Cluster.node cluster i).Cluster.disk
  done;
  !total

let reader_node cluster = Cluster.node cluster (min 1 (Cluster.node_count cluster - 1))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* BlobSeer side *)

type bs_outcome = {
  restart_s : float;
  restart_digest : int64;
  read_amp : float;
  epoch_mean_s : float;
  reclaimed_bytes : int;
  live_versions : int list;
  retired_versions : int list;
  cstats : Blobseer.Compactor.stats option;
  engine : Simcore.Engine.t;
}

(* Restart the compactor if a fault killed it, run one pass, swallow a
   crash that fires mid-pass (the next call rolls it forward/back). *)
let try_scan c =
  if not (Blobseer.Compactor.is_alive c) then Blobseer.Compactor.restart c;
  try Blobseer.Compactor.scan c with Blobseer.Types.Service_crashed _ -> ()

let bs_harness (scale : Scale.t) ?policy ?(with_faults = fun _ _ -> None) ~depth () =
  let cluster =
    Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal
  in
  Cluster.run cluster (fun () ->
      let engine = cluster.Cluster.engine in
      let service = cluster.Cluster.service in
      let home = (Cluster.node cluster 0).Cluster.host in
      let capacity = scale.Scale.chains_image_bytes in
      let blob = Blobseer.Client.create_blob service ~from:home ~capacity in
      let compactor =
        Option.map
          (fun policy ->
            let c =
              Blobseer.Compactor.create service ~home:cluster.Cluster.supervisor_host
                ~config:{ Blobseer.Compactor.default_config with policy }
                ()
            in
            Cluster.set_compactor cluster c;
            c)
          policy
      in
      let injector = Option.bind compactor (fun c -> with_faults cluster c) in
      let write ~offset payload =
        Faults.with_retries engine ~retries:10 ~label:"chains.write" (fun () ->
            Blobseer.Client.write blob ~from:home ~offset payload)
      in
      ignore (write ~offset:0 (Payload.pattern ~seed:1L capacity));
      let epoch_times = ref [] in
      for e = 1 to depth do
        let t0 = Cluster.now cluster in
        let offset, len = dirty_region ~capacity e in
        ignore (write ~offset (Payload.pattern ~seed:(epoch_seed e) len));
        epoch_times := (Cluster.now cluster -. t0) :: !epoch_times;
        Option.iter try_scan compactor
      done;
      Option.iter Faults.stop injector;
      (* No-fault settle: recover any interrupted transaction, let the
         retention converge and the deferred sweep reclaim what the last
         real pass queued. *)
      Option.iter (fun c -> for _ = 1 to 4 do try_scan c done) compactor;
      let reader = (reader_node cluster).Cluster.host in
      let pre = phys_read cluster in
      let t0 = Cluster.now cluster in
      let image =
        Faults.with_retries engine ~retries:10 ~label:"chains.restart" (fun () ->
            let latest = Blobseer.Client.latest_version blob ~from:reader in
            Blobseer.Client.read blob ~from:reader ~version:latest ~offset:0 ~len:capacity)
      in
      let restart_s = Cluster.now cluster -. t0 in
      let vm = Blobseer.Client.version_manager service in
      let outcome =
        {
          restart_s;
          restart_digest = Payload.digest image;
          read_amp = float_of_int (phys_read cluster - pre) /. float_of_int capacity;
          epoch_mean_s = mean !epoch_times;
          reclaimed_bytes =
            (match compactor with
            | Some c -> (Blobseer.Compactor.stats c).Blobseer.Compactor.bytes_reclaimed
            | None -> 0);
          live_versions = Blobseer.Client.versions blob;
          retired_versions =
            Blobseer.Version_manager.retired_versions vm
              ~blob:(Blobseer.Client.blob_id blob);
          cstats = Option.map Blobseer.Compactor.stats compactor;
          engine;
        }
      in
      let injected = match injector with Some inj -> Faults.applied inj | None -> [] in
      (outcome, injected))

let bs_run scale ?policy ~depth () = fst (bs_harness scale ?policy ~depth ())

(* ------------------------------------------------------------------ *)
(* Chaos harness *)

type chaos = { c_outcome : bs_outcome; c_injected : Faults.event list }

(* Fault handlers for the chains rig: transient disk errors on the
   compute-node disks, compactor fail-stop/armed crashes by role. There
   is no scrubber or supervisor here, so every other action is a no-op. *)
let chains_handlers cluster compactor =
  let rotation = ref 0 in
  let arm point =
    Blobseer.Compactor.arm_crash compactor
      (match point mod 3 with
      | 0 -> Blobseer.Compactor.Before_flatten
      | 1 -> Blobseer.Compactor.Mid_retire
      | _ -> Blobseer.Compactor.After_retire)
  in
  {
    Faults.null_handlers with
    Faults.transient_disk =
      (fun ~target ~ops ->
        let n = Cluster.node_count cluster in
        Disk.inject_transient (Cluster.node cluster (target mod n)).Cluster.disk ~ops);
    crash_compaction = (fun ~point -> arm point);
    crash_service =
      (fun i ->
        match i with
        | 1 -> Blobseer.Compactor.crash compactor
        | 2 ->
            arm !rotation;
            incr rotation
        | _ -> ());
  }

let chaos_run (scale : Scale.t) ~script ?policy ~depth () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Blobseer.Retention.Keep_last scale.Scale.chains_keep_last
  in
  let with_faults cluster compactor =
    Some
      (Faults.start cluster.Cluster.engine
         ~script:(script cluster compactor)
         ~handlers:(chains_handlers cluster compactor))
  in
  let outcome, injected = bs_harness scale ~policy ~with_faults ~depth () in
  { c_outcome = outcome; c_injected = injected }

(* ------------------------------------------------------------------ *)
(* qcow2 side *)

type q_outcome = {
  q_restart_s : float;
  q_restart_digest : int64;
  q_read_amp : float;
  q_epoch_mean_s : float;
  q_reclaimed_bytes : int;
  q_chain_levels : int;
}

let q_run (scale : Scale.t) ~collapse ~depth () =
  let cluster =
    Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal
  in
  Cluster.run cluster (fun () ->
      let engine = cluster.Cluster.engine in
      let node0 = Cluster.node cluster 0 in
      let capacity = scale.Scale.chains_image_bytes in
      let img =
        Vdisk.Qcow2.create engine ~host:node0.Cluster.host ~local_disk:node0.Cluster.disk
          ~capacity ~backing:Vdisk.Qcow2.No_backing ~name:"chains" ()
      in
      Vdisk.Qcow2.write img ~offset:0 (Payload.pattern ~seed:1L capacity);
      let tip =
        ref
          (Vdisk.Qcow2.export img cluster.Cluster.pvfs ~from:node0.Cluster.host
             ~path:"/chains/l0.qcow2")
      in
      let reclaimed = ref 0 in
      let epoch_times = ref [] in
      for e = 1 to depth do
        let t0 = Cluster.now cluster in
        let offset, len = dirty_region ~capacity e in
        Vdisk.Qcow2.write img ~offset (Payload.pattern ~seed:(epoch_seed e) len);
        tip :=
          Vdisk.Qcow2.export_incremental img cluster.Cluster.pvfs ~from:node0.Cluster.host
            ~path:(Fmt.str "/chains/l%d.qcow2" e)
            ~base:!tip;
        epoch_times := (Cluster.now cluster -. t0) :: !epoch_times;
        if collapse && Vdisk.Qcow2.remote_chain_depth !tip > scale.Scale.chains_keep_last
        then begin
          let collapsed, stats =
            Vdisk.Qcow2.collapse_chain !tip ~from:node0.Cluster.host
              ~path:(Fmt.str "/chains/c%d.qcow2" e)
          in
          tip := collapsed;
          reclaimed := !reclaimed + stats.Vdisk.Qcow2.bytes_reclaimed
        end
      done;
      let rnode = reader_node cluster in
      let rimg =
        Vdisk.Qcow2.create engine ~host:rnode.Cluster.host ~local_disk:rnode.Cluster.disk
          ~capacity
          ~backing:(Vdisk.Qcow2.Qcow2_remote !tip)
          ~name:"chains-restart" ()
      in
      let pre = phys_read cluster in
      let t0 = Cluster.now cluster in
      let image = Vdisk.Qcow2.read rimg ~offset:0 ~len:capacity in
      let q_restart_s = Cluster.now cluster -. t0 in
      {
        q_restart_s;
        q_restart_digest = Payload.digest image;
        q_read_amp = float_of_int (phys_read cluster - pre) /. float_of_int capacity;
        q_epoch_mean_s = mean !epoch_times;
        q_reclaimed_bytes = !reclaimed;
        q_chain_levels = Vdisk.Qcow2.remote_chain_depth !tip;
      })

(* ------------------------------------------------------------------ *)
(* Tables *)

type variant = {
  label : string;
  restart : float;
  readamp : float;
  reclaimed_mb : float;
  epoch : float;
  interference : bool;  (** include in the interference table *)
}

let run_depth (scale : Scale.t) ?(progress = fun _ -> ()) depth =
  let keep = Blobseer.Retention.Keep_last scale.Scale.chains_keep_last in
  let thin = Blobseer.Retention.Thin_exponential { base = scale.Scale.chains_thin_base } in
  let bs label ?policy () =
    progress (Fmt.str "chains: depth=%d %s" depth label);
    let o = bs_run scale ?policy ~depth () in
    {
      label;
      restart = o.restart_s;
      readamp = o.read_amp;
      reclaimed_mb = float_of_int o.reclaimed_bytes /. float_of_int Size.mib;
      epoch = o.epoch_mean_s;
      interference = true;
    }
  in
  let q label ~collapse () =
    progress (Fmt.str "chains: depth=%d %s" depth label);
    let o = q_run scale ~collapse ~depth () in
    {
      label;
      restart = o.q_restart_s;
      readamp = o.q_read_amp;
      reclaimed_mb = float_of_int o.q_reclaimed_bytes /. float_of_int Size.mib;
      epoch = o.q_epoch_mean_s;
      interference = false;
    }
  in
  [
    bs "blobcr off" ();
    bs (Fmt.str "blobcr %s" (Blobseer.Retention.policy_to_string keep)) ~policy:keep ();
    bs (Fmt.str "blobcr %s" (Blobseer.Retention.policy_to_string thin)) ~policy:thin ();
    q "qcow2 chain" ~collapse:false ();
    q "qcow2 collapse" ~collapse:true ();
  ]

let tables (scale : Scale.t) ?progress () =
  let points =
    List.map (fun depth -> (depth, run_depth scale ?progress depth)) scale.Scale.chains_depths
  in
  let labels =
    match points with (_, vs) :: _ -> List.map (fun v -> v.label) vs | [] -> []
  in
  let series ?(only = fun _ -> true) f =
    List.filter_map
      (fun label ->
        let s = Stats.series label in
        let keep = ref false in
        List.iter
          (fun (depth, vs) ->
            List.iter
              (fun v ->
                if v.label = label && only v then begin
                  keep := true;
                  Stats.add s ~x:(float_of_int depth) ~y:(f v)
                end)
              vs)
          points;
        if !keep then Some s else None)
      labels
  in
  [
    ( "chains-restart",
      Stats.table ~title:"Restart latency from the newest snapshot vs chain depth"
        ~x_label:"chain depth" ~y_label:"seconds"
        (series (fun v -> v.restart)) );
    ( "chains-readamp",
      Stats.table ~title:"Restart read amplification (physical / logical bytes)"
        ~x_label:"chain depth" ~y_label:"ratio"
        (series (fun v -> v.readamp)) );
    ( "chains-reclaimed",
      Stats.table ~title:"Bytes reclaimed from retired snapshot history"
        ~x_label:"chain depth" ~y_label:"MB"
        (series ~only:(fun v -> v.label <> "blobcr off") (fun v -> v.reclaimed_mb)) );
    ( "chains-interference",
      Stats.table
        ~title:"Foreground checkpoint-epoch latency, compaction on vs off"
        ~x_label:"chain depth" ~y_label:"seconds"
        (series ~only:(fun v -> v.interference) (fun v -> v.epoch)) );
  ]
