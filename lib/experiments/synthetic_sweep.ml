open Simcore
open Blobcr
open Workloads

type point = {
  combo : Combos.t;
  n : int;
  checkpoint_time : float;
  restart_time : float;
  snapshot_bytes : float;
  storage_bytes : int;
}

type successive = {
  round_times : float list;
  cumulative_storage : int list;
}

let deploy_many cluster kind ~n =
  if n > Cluster.node_count cluster then invalid_arg "deploy_many: more instances than nodes";
  let instances = Array.make n None in
  Engine.all cluster.Cluster.engine ~name:"multi-deploy"
    (List.init n (fun i () ->
         instances.(i) <-
           Some
             (Approach.deploy cluster kind ~node:(Cluster.node cluster i)
                ~id:(Fmt.str "vm%03d" i))));
  Array.to_list (Array.map Option.get instances)

(* Restart targets: shifted so every instance lands on a different node
   than the one it ran on. *)
let restart_node cluster ~n i =
  let count = Cluster.node_count cluster in
  let shift = if 2 * n <= count then n else 1 in
  Cluster.node cluster ((i + shift) mod count)

let run_point (scale : Scale.t) ~(combo : Combos.t) ~n ~buffer =
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal in
  Obs.Record.label_track cluster.Cluster.engine (Fmt.str "%s n=%d" combo.Combos.label n);
  Cluster.run cluster (fun () ->
      let instances = deploy_many cluster combo.Combos.kind ~n in
      let benches = Hashtbl.create n in
      List.iter
        (fun inst ->
          Hashtbl.replace benches inst.Approach.id (Synthetic.start inst ~buffer_bytes:buffer))
        instances;
      (* Global checkpoint. *)
      let t0 = Cluster.now cluster in
      let snapshots =
        Protocol.global_checkpoint_exn cluster ~instances ~dump:(fun inst ->
            Combos.dump combo (Hashtbl.find benches inst.Approach.id))
      in
      let checkpoint_time = Cluster.now cluster -. t0 in
      (* Kill everything and restart on different nodes. *)
      Protocol.kill_all instances;
      let plan =
        List.mapi
          (fun i snapshot -> (restart_node cluster ~n i, Fmt.str "vm%03dr" i, snapshot))
          snapshots
      in
      let t0 = Cluster.now cluster in
      let _ =
        Protocol.global_restart_exn cluster ~plan ~restore:(fun inst ->
            ignore (Combos.restore combo inst))
      in
      let restart_time = Cluster.now cluster -. t0 in
      let snapshot_bytes =
        Stats.mean (List.map (fun s -> float_of_int (Approach.snapshot_bytes s)) snapshots)
      in
      {
        combo;
        n;
        checkpoint_time;
        restart_time;
        snapshot_bytes;
        storage_bytes = Approach.storage_total cluster;
      })

let sweep scale ~buffer ?(combos = Combos.all) ?ns ?(progress = fun _ -> ()) () =
  let ns = match ns with Some ns -> ns | None -> scale.Scale.instance_counts in
  List.concat_map
    (fun combo ->
      List.map
        (fun n ->
          let point = run_point scale ~combo ~n ~buffer in
          progress point;
          point)
        ns)
    combos

let run_successive (scale : Scale.t) ~(combo : Combos.t) ~rounds ~buffer =
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal in
  Obs.Record.label_track cluster.Cluster.engine
    (Fmt.str "%s successive x%d" combo.Combos.label rounds);
  Cluster.run cluster (fun () ->
      let instances = deploy_many cluster combo.Combos.kind ~n:1 in
      let inst = List.hd instances in
      let bench = Synthetic.start inst ~buffer_bytes:buffer in
      let times = ref [] and storage = ref [] in
      for _ = 1 to rounds do
        Synthetic.refill bench;
        let t0 = Cluster.now cluster in
        let _ =
          Protocol.global_checkpoint_exn cluster ~instances ~dump:(fun _ ->
              Combos.dump combo bench)
        in
        times := (Cluster.now cluster -. t0) :: !times;
        storage := Approach.storage_total cluster :: !storage
      done;
      { round_times = List.rev !times; cumulative_storage = List.rev !storage })
