(** Shared machinery for the synthetic-benchmark experiments
    (Figures 2, 3, 4 and 5).

    One {e point} deploys [n] instances (one per compute node), runs the
    benchmarking application with a given buffer size, takes a global
    checkpoint (measuring completion time and snapshot sizes), then kills
    every instance and restarts the deployment on different nodes
    (measuring restart-to-restored time) — exactly the methodology of
    Section 4.3.1. *)

open Blobcr

type point = {
  combo : Combos.t;
  n : int;
  checkpoint_time : float;  (** global checkpoint completion, seconds *)
  restart_time : float;  (** redeploy + reboot/resume + state restore *)
  snapshot_bytes : float;  (** mean per-instance snapshot size *)
  storage_bytes : int;  (** cluster-wide checkpoint storage *)
}

val run_point : Scale.t -> combo:Combos.t -> n:int -> buffer:int -> point
(** One checkpoint/restart cycle on a fresh cluster with [n] instances and
    a [buffer]-byte application state each. *)

val sweep :
  Scale.t -> buffer:int -> ?combos:Combos.t list -> ?ns:int list ->
  ?progress:(point -> unit) -> unit -> point list
(** {!run_point} over every (combo × instance count); defaults come from
    the scale. *)

type successive = {
  round_times : float list;  (** per-checkpoint completion time *)
  cumulative_storage : int list;  (** total storage after each round *)
}

val run_successive : Scale.t -> combo:Combos.t -> rounds:int -> buffer:int -> successive
(** Figure 5's methodology: one instance, [rounds] × (refill + global
    checkpoint). *)

val deploy_many : Cluster.t -> Approach.kind -> n:int -> Approach.instance list
(** Concurrent multi-deployment of [n] instances on nodes [0..n-1].
    Exposed for the examples. *)
