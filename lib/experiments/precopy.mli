(** Live-checkpoint sweep: pre-copy rounds × dirty rate × interval.

    One BlobCR instance runs a guest writer dirtying its working set at a
    controlled rate while the driver takes periodic checkpoints as
    stop-the-world ("stw"), live with the final delta committed under
    suspend ("live-sync"), or live with the final delta shipped in the
    background after the resume ("live-bg"). Reported per cell: the
    longest stall the writer observed at its own pause points (the
    application-perceived stop-the-world window), mean checkpoint
    completion time, bytes shipped (pre-copy overship included),
    frozen-chunk copy-on-write traffic and the writer throughput actually
    sustained. *)

type point = {
  interval : float;
  dirty_mbps : float;
  rounds : int;
  mode : string;
  suspend_max : float;
  ckpt_latency : float;
  shipped_bytes : int;
  cow_bytes : int;
  achieved_mbps : float;
}

val run_point :
  Scale.t ->
  interval:float ->
  dirty_mbps:float ->
  rounds:int ->
  mode:string ->
  unit ->
  point
(** One run on a fresh cluster: [mode] is ["stw"], ["live-sync"] or
    ["live-bg"]; [rounds] is the pre-copy budget (ignored for ["stw"]). *)

val run : Scale.t -> ?progress:(string -> unit) -> unit -> point list
(** The full grid from the scale's precopy axes: one stop-the-world anchor
    per (interval, dirty-rate) cell plus both live modes across the
    pre-copy round budgets. *)

val tables_of : point list -> (string * Simcore.Stats.table) list
(** Named result tables over precomputed points: ["precopy-suspend"],
    ["precopy-latency"], ["precopy-shipped"], ["precopy-interference"],
    ["precopy-throughput"]. *)

val tables : Scale.t -> ?progress:(string -> unit) -> unit -> (string * Simcore.Stats.table) list
(** {!run} then {!tables_of}. *)

val json_of : scale_name:string -> point list -> string
(** The point list as a JSON document (hand-rolled; no JSON dependency). *)
