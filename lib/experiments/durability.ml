open Simcore
open Blobcr
open Workloads

(* ------------------------------------------------------------------ *)
(* Shared chaos harness: a supervised CM1 gang with a background scrubber
   runs to completion while a fault script corrupts replicas, crashes the
   version manager mid-COMMIT and crash-stops hosts. Returns everything
   the callers assert on: the supervisor report, the restart-visible
   application state (digests of every dumped subdomain file), the scrub
   log and the client's integrity-failover count. *)

type chaos = {
  report : Supervisor.report;
  digests : (string * int64) list;  (** dumped subdomain files, sorted by path *)
  audit : string list;
  scrub_stats : Blobseer.Scrubber.stats;
  scrub_events : Blobseer.Scrubber.event list;
  integrity_failures : int;
  injected : Faults.event list;
  engine : Engine.t;
}

(* The acceptance scenario: one replica silently corrupted, the version
   manager crashed mid-apply of its next COMMIT, then a whole machine
   crash-stopped — restart must ride journal recovery, checksum failover
   and scrub repair. *)
let acceptance_script =
  [
    { Faults.at = 8.5; action = Faults.Silent_corruption { provider = 1; chunk = 5 } };
    { Faults.at = 9.0; action = Faults.Crash_commit { point = 1 } };
    { Faults.at = 18.0; action = Faults.Crash_host 0 };
  ]

let final_subdomain_digests sup =
  List.concat_map
    (fun (inst : Approach.instance) ->
      let fs = Vmsim.Vm.fs inst.Approach.vm in
      List.filter_map
        (fun path ->
          if String.starts_with ~prefix:"/ckpt/cm1/" path then
            Some (path, Payload.digest (Vmsim.Guest_fs.read_file fs ~path))
          else None)
        (Vmsim.Guest_fs.list_files fs))
    (Supervisor.instances sup)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let chaos_run (scale : Scale.t) ?script ?(replication = 2)
    ?(scrub = { Blobseer.Scrubber.default_config with interval = 4.0 }) ?(gang = 2) ?(units = 12)
    ?(policy = Supervisor.default_policy) () =
  let cal =
    {
      scale.Scale.cal with
      Calibration.blobseer =
        { scale.Scale.cal.Calibration.blobseer with Blobseer.Types.replication };
    }
  in
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule cal in
  Cluster.run cluster (fun () ->
      let workload = Cm1.supervised_workload cluster scale.Scale.cm1_config ~iters_per_unit:1 in
      let injector = ref None and sup = ref None in
      let report =
        Supervisor.run cluster ~kind:Approach.Blobcr ~policy ~scrub
          ~on_ready:(fun s ->
            sup := Some s;
            let script =
              match script with Some f -> f cluster | None -> acceptance_script
            in
            injector :=
              Some
                (Faults.start cluster.Cluster.engine ~script
                   ~handlers:(Supervisor.fault_handlers s)))
          ~id:"dur" ~gang ~units ~workload ()
      in
      let injected =
        match !injector with
        | Some inj ->
            Faults.stop inj;
            Faults.applied inj
        | None -> []
      in
      let sup = Option.get !sup in
      let scrubber = Option.get (Supervisor.scrubber sup) in
      {
        report;
        digests = final_subdomain_digests sup;
        audit = Supervisor.audit sup;
        scrub_stats = Blobseer.Scrubber.stats scrubber;
        scrub_events = Blobseer.Scrubber.events scrubber;
        integrity_failures = Blobseer.Client.integrity_failures cluster.Cluster.service;
        injected;
        engine = cluster.Cluster.engine;
      })

let render_scrub_log chaos =
  String.concat "\n" (List.map (Fmt.str "%a" Blobseer.Scrubber.pp_event) chaos.scrub_events)

(* ------------------------------------------------------------------ *)
(* Sweep: corruption intensity x replication x scrub interval. *)

type point = {
  corrupt_weight : int;
  replication : int;
  scrub_interval : float;
  finished : bool;
  recoveries : int;
  corruptions : int;  (** silent-corruption events actually applied *)
  integrity_failovers : int;
  repairs : int;
  repair_bytes : int;
  unrepairable : int;
  checkpoint_cost : float;
}

let run_point (scale : Scale.t) ?(progress = fun _ -> ()) ~corrupt_weight ~replication
    ~scrub_interval () =
  let horizon =
    (float_of_int scale.Scale.durability_units
    *. scale.Scale.cm1_config.Cm1.compute_per_iteration *. 3.0)
    +. 90.0
  in
  (* Host crashes force restarts; corruption eats replicas underneath
     them. No transient/degrade noise: the sweep isolates the durability
     path. *)
  let profile cluster =
    let rng = Engine.derived_rng cluster.Cluster.engine "durability-fault-script" in
    Faults.of_profile ~rng ~mtbf:scale.Scale.durability_mtbf ~horizon
      ~hosts:(Cluster.node_count cluster)
      ~providers:(Cluster.node_count cluster)
      ~weights:(3, 1, 0, 0) ~corrupt_weight ()
  in
  let chaos =
    chaos_run scale ~script:profile ~replication
      ~scrub:{ Blobseer.Scrubber.default_config with interval = scrub_interval }
      ~gang:scale.Scale.durability_gang ~units:scale.Scale.durability_units ()
  in
  let corruptions =
    List.length
      (List.filter
         (fun (e : Faults.event) ->
           match e.Faults.action with Faults.Silent_corruption _ -> true | _ -> false)
         chaos.injected)
  in
  progress
    (Fmt.str "  %d fault(s) (%d corruption(s)), %d recover(ies), %d repair(s), finished=%b"
       (List.length chaos.injected) corruptions chaos.report.Supervisor.recoveries
       chaos.scrub_stats.Blobseer.Scrubber.repairs chaos.report.Supervisor.finished);
  {
    corrupt_weight;
    replication;
    scrub_interval;
    finished = chaos.report.Supervisor.finished;
    recoveries = chaos.report.Supervisor.recoveries;
    corruptions;
    integrity_failovers = chaos.integrity_failures;
    repairs = chaos.scrub_stats.Blobseer.Scrubber.repairs;
    repair_bytes = chaos.scrub_stats.Blobseer.Scrubber.repair_bytes;
    unrepairable = chaos.scrub_stats.Blobseer.Scrubber.unrepairable;
    checkpoint_cost =
      (if chaos.report.Supervisor.checkpoints > 0 then
         chaos.report.Supervisor.checkpoint_time
         /. float_of_int chaos.report.Supervisor.checkpoints
       else 0.0);
  }

let sweep (scale : Scale.t) ?(progress = fun _ -> ()) () =
  List.concat_map
    (fun replication ->
      List.concat_map
        (fun scrub_interval ->
          List.map
            (fun corrupt_weight ->
              progress
                (Fmt.str "durability: r=%d scrub=%gs corrupt-weight=%d" replication
                   scrub_interval corrupt_weight);
              run_point scale ~progress ~corrupt_weight ~replication ~scrub_interval ())
            scale.Scale.durability_corrupt_weights)
        scale.Scale.durability_scrub_intervals)
    scale.Scale.durability_replications

let series_label r interval = Fmt.str "r=%d scrub=%gs" r interval

let per_series points f =
  List.filter_map
    (fun (r, interval) ->
      match
        List.filter (fun p -> p.replication = r && p.scrub_interval = interval) points
      with
      | [] -> None
      | ps ->
          let s = Stats.series (series_label r interval) in
          List.iter (fun p -> Stats.add s ~x:(float_of_int p.corrupt_weight) ~y:(f p)) ps;
          Some s)
    (List.sort_uniq
       (fun (r1, i1) (r2, i2) ->
         match Int.compare r1 r2 with 0 -> Float.compare i1 i2 | c -> c)
       (List.map (fun p -> (p.replication, p.scrub_interval)) points))

let tables (scale : Scale.t) ?progress () =
  let points = sweep scale ?progress () in
  [
    ( "durability",
      Stats.table ~title:"Restart success under silent corruption (1 = run completed)"
        ~x_label:"corrupt-weight" ~y_label:"success"
        (per_series points (fun p -> if p.finished then 1.0 else 0.0)) );
    ( "durability-repair",
      Stats.table ~title:"Scrub repair traffic (bytes re-replicated)"
        ~x_label:"corrupt-weight" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.repair_bytes)) );
    ( "durability-failover",
      Stats.table ~title:"Client checksum failovers (corrupt replicas detected on read)"
        ~x_label:"corrupt-weight" ~y_label:"failovers"
        (per_series points (fun p -> float_of_int p.integrity_failovers)) );
    ( "durability-overhead",
      Stats.table ~title:"Mean committed checkpoint duration under scrub load"
        ~x_label:"corrupt-weight" ~y_label:"seconds"
        (per_series points (fun p -> p.checkpoint_cost)) );
  ]
