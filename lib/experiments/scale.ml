open Simcore
open Blobcr

type t = {
  cal : Calibration.t;
  seed : int;
  schedule : Event_queue.schedule;
  instance_counts : int list;
  buffer_small : int;
  buffer_large : int;
  successive_checkpoints : int;
  cm1_vm_counts : int list;
  cm1_config : Workloads.Cm1.config;
  cm1_warmup_iterations : int;
  availability_mtbfs : float list;
  availability_intervals : int list;
  availability_units : int;
  availability_gang : int;
  durability_corrupt_weights : int list;
  durability_replications : int list;
  durability_scrub_intervals : float list;
  durability_mtbf : float;
  durability_units : int;
  durability_gang : int;
  dr_link_latencies : float list;
  dr_windows : int list;
  dr_intervals : int list;
  dr_units : int;
  dr_gang : int;
  chains_depths : int list;
  chains_keep_last : int;
  chains_thin_base : int;
  chains_image_bytes : int;
  precopy_rounds : int list;
  precopy_intervals : float list;
  precopy_dirty_mbps : float list;
  precopy_epochs : int;
  precopy_write_bytes : int;
}

let paper =
  {
    cal = Calibration.default;
    seed = 42;
    schedule = Event_queue.Fifo;
    instance_counts = [ 1; 30; 60; 90; 120 ];
    buffer_small = Size.mib_n 50;
    buffer_large = Size.mib_n 200;
    successive_checkpoints = 4;
    cm1_vm_counts = [ 5; 25; 50; 75; 100 ];
    cm1_config =
      {
        Workloads.Cm1.default_config with
        (* 20 heavyweight iterations stand in for the paper's 10 minutes of
           execution before the checkpoint: same dirtied state, far fewer
           simulation events. *)
        compute_per_iteration = 30.0;
        summary_every = 5;
      };
    cm1_warmup_iterations = 20;
    availability_mtbfs = [ 600.0; 1800.0; 3600.0 ];
    availability_intervals = [ 2; 5; 10; 20 ];
    availability_units = 40;
    availability_gang = 4;
    durability_corrupt_weights = [ 0; 2; 6 ];
    durability_replications = [ 2; 3 ];
    durability_scrub_intervals = [ 5.0; 20.0 ];
    durability_mtbf = 900.0;
    durability_units = 24;
    durability_gang = 4;
    dr_link_latencies = [ 0.05; 0.2; 0.4 ];
    dr_windows = [ 1; 2; 4; 16 ];
    dr_intervals = [ 2; 5 ];
    dr_units = 24;
    dr_gang = 4;
    chains_depths = [ 4; 8; 16; 32 ];
    chains_keep_last = 4;
    chains_thin_base = 2;
    chains_image_bytes = Size.mib_n 50;
    precopy_rounds = [ 0; 1; 2; 4 ];
    precopy_intervals = [ 5.0; 15.0 ];
    precopy_dirty_mbps = [ 2.0; 8.0 ];
    precopy_epochs = 3;
    precopy_write_bytes = 256 * Size.kib;
  }

let quick =
  {
    cal = Calibration.quick_test;
    seed = 42;
    schedule = Event_queue.Fifo;
    instance_counts = [ 1; 2; 4 ];
    buffer_small = Size.mib_n 2;
    buffer_large = Size.mib_n 8;
    successive_checkpoints = 3;
    cm1_vm_counts = [ 2 ];
    cm1_config =
      {
        Workloads.Cm1.default_config with
        procs_per_vm = 2;
        subdomain_state_bytes = 512 * Size.kib;
        compute_per_iteration = 5.0;
        summary_every = 2;
      };
    cm1_warmup_iterations = 4;
    availability_mtbfs = [ 12.0; 60.0 ];
    availability_intervals = [ 2; 4 ];
    availability_units = 8;
    availability_gang = 2;
    durability_corrupt_weights = [ 0; 4 ];
    durability_replications = [ 2 ];
    durability_scrub_intervals = [ 4.0 ];
    durability_mtbf = 15.0;
    durability_units = 8;
    durability_gang = 2;
    dr_link_latencies = [ 0.05; 0.4 ];
    dr_windows = [ 1; 2; 4 ];
    dr_intervals = [ 2 ];
    dr_units = 8;
    dr_gang = 4;
    chains_depths = [ 2; 4; 6 ];
    chains_keep_last = 2;
    chains_thin_base = 2;
    chains_image_bytes = Size.mib_n 2;
    precopy_rounds = [ 0; 1; 2 ];
    precopy_intervals = [ 2.0 ];
    precopy_dirty_mbps = [ 2.0 ];
    precopy_epochs = 2;
    precopy_write_bytes = 64 * Size.kib;
  }

let find = function
  | "paper" -> Some paper
  | "quick" -> Some quick
  | _ -> None
