(** Experiment scale presets.

    [paper] reproduces the evaluation at the published scale (120 compute
    nodes, 50/200 MB buffers, up to 400 CM1 processes). [quick] shrinks
    everything so the whole suite runs in seconds — used by tests and for
    smoke-testing the harness. *)

open Blobcr

type t = {
  cal : Calibration.t;
  seed : int;  (** engine seed every cluster in the run is built with *)
  schedule : Simcore.Event_queue.schedule;
      (** event-queue tie-break policy every cluster in the run is built
          with; [Fifo] in both presets — schedule fuzzing overrides it *)
  instance_counts : int list;  (** x-axis of Figures 2 and 3 *)
  buffer_small : int;
  buffer_large : int;
  successive_checkpoints : int;  (** rounds in Figure 5 *)
  cm1_vm_counts : int list;  (** VMs (×4 processes) for Figure 6 *)
  cm1_config : Workloads.Cm1.config;
  cm1_warmup_iterations : int;
  availability_mtbfs : float list;  (** per-run host MTBF values swept *)
  availability_intervals : int list;  (** checkpoint intervals, in work units *)
  availability_units : int;  (** work units per availability run *)
  availability_gang : int;  (** instances per supervised gang *)
  durability_corrupt_weights : int list;
      (** corruption intensity axis: relative weight of silent-corruption
          events in the fault profile (0 = none) *)
  durability_replications : int list;  (** chunk replication degrees swept *)
  durability_scrub_intervals : float list;  (** background scrub periods, seconds *)
  durability_mtbf : float;  (** fault inter-arrival mean for durability runs *)
  durability_units : int;  (** work units per durability run *)
  durability_gang : int;  (** instances per durability gang *)
  dr_link_latencies : float list;  (** WAN one-way latencies swept, seconds *)
  dr_windows : int list;  (** replication in-flight window sizes swept *)
  dr_intervals : int list;  (** checkpoint intervals swept, in work units *)
  dr_units : int;  (** work units per disaster-recovery run *)
  dr_gang : int;  (** instances per disaster-recovery gang *)
  chains_depths : int list;  (** snapshot-chain depths (epochs) swept *)
  chains_keep_last : int;  (** [Keep_last k] retention for chains runs *)
  chains_thin_base : int;  (** [Thin_exponential] base for chains runs *)
  chains_image_bytes : int;  (** image capacity for chains runs *)
  precopy_rounds : int list;  (** pre-copy round budgets swept (0 = none) *)
  precopy_intervals : float list;  (** seconds between checkpoint requests *)
  precopy_dirty_mbps : float list;  (** guest dirtying rates swept, MiB/s *)
  precopy_epochs : int;  (** checkpoints per precopy run *)
  precopy_write_bytes : int;  (** writer block size per guest write+sync *)
}

val paper : t
(** Full paper scale: the 120-node testbed and the figures' sweep axes. *)

val quick : t
(** Shrunk axes and node counts for CI and smoke tests. *)

val find : string -> t option
(** ["paper" | "quick"]. *)
