open Simcore
open Blobcr
open Workloads

let mib = float_of_int Size.mib

let mid_n (scale : Scale.t) =
  let counts = scale.Scale.instance_counts in
  List.nth counts (List.length counts / 2)

let pp_progress progress fmt = Fmt.kstr progress fmt

(* ------------------------------------------------------------------ *)

let prefetch (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let combo = Option.get (Combos.find "BlobCR-app") in
  let run enabled =
    let series =
      Stats.series (if enabled then "prefetch on" else "prefetch off")
    in
    List.iter
      (fun n ->
        let scale =
          { scale with Scale.cal = { scale.Scale.cal with Calibration.prefetch_enabled = enabled } }
        in
        let p = Synthetic_sweep.run_point scale ~combo ~n ~buffer:scale.Scale.buffer_small in
        pp_progress progress "prefetch=%b n=%d restart=%.2fs" enabled n
          p.Synthetic_sweep.restart_time;
        Stats.add series ~x:(float_of_int n) ~y:p.Synthetic_sweep.restart_time)
      scale.Scale.instance_counts;
    series
  in
  Stats.table ~title:"Ablation: adaptive prefetching (BlobCR restart)"
    ~x_label:"instances" ~y_label:"restart time (s)"
    [ run true; run false ]

let stripe_size (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let combo = Option.get (Combos.find "BlobCR-app") in
  let n = mid_n scale in
  let ckpt = Stats.series "checkpoint (s)" and restart = Stats.series "restart (s)" in
  List.iter
    (fun stripe ->
      let scale =
        {
          scale with
          Scale.cal =
            {
              scale.Scale.cal with
              Calibration.blobseer =
                { scale.Scale.cal.Calibration.blobseer with Blobseer.Types.stripe_size = stripe };
            };
        }
      in
      let p = Synthetic_sweep.run_point scale ~combo ~n ~buffer:scale.Scale.buffer_small in
      pp_progress progress "stripe=%s ckpt=%.2fs restart=%.2fs" (Size.to_string stripe)
        p.Synthetic_sweep.checkpoint_time p.Synthetic_sweep.restart_time;
      let x = float_of_int stripe /. float_of_int Size.kib in
      Stats.add ckpt ~x ~y:p.Synthetic_sweep.checkpoint_time;
      Stats.add restart ~x ~y:p.Synthetic_sweep.restart_time)
    [ 64 * Size.kib; 128 * Size.kib; 256 * Size.kib; 512 * Size.kib; Size.mib ];
  Stats.table
    ~title:
      (Fmt.str "Ablation: stripe size (BlobCR-app, %d instances) — the 256 KiB trade-off" n)
    ~x_label:"stripe (KiB)" ~y_label:"time (s)" [ ckpt; restart ]

let replication (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let combo = Option.get (Combos.find "BlobCR-app") in
  let n = mid_n scale in
  let ckpt = Stats.series "checkpoint (s)" and storage = Stats.series "storage (MB)" in
  List.iter
    (fun r ->
      let scale =
        {
          scale with
          Scale.cal =
            {
              scale.Scale.cal with
              Calibration.blobseer =
                { scale.Scale.cal.Calibration.blobseer with Blobseer.Types.replication = r };
            };
        }
      in
      let p = Synthetic_sweep.run_point scale ~combo ~n ~buffer:scale.Scale.buffer_small in
      pp_progress progress "replication=%d ckpt=%.2fs storage=%.0fMB" r
        p.Synthetic_sweep.checkpoint_time
        (float_of_int p.Synthetic_sweep.storage_bytes /. mib);
      Stats.add ckpt ~x:(float_of_int r) ~y:p.Synthetic_sweep.checkpoint_time;
      Stats.add storage ~x:(float_of_int r)
        ~y:(float_of_int p.Synthetic_sweep.storage_bytes /. mib))
    [ 1; 2; 3 ];
  Stats.table
    ~title:(Fmt.str "Ablation: replication factor (BlobCR-app, %d instances)" n)
    ~x_label:"replicas" ~y_label:"checkpoint cost" [ ckpt; storage ]

(* Incremental COMMIT vs re-pushing the whole local image each round. *)
let incremental (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let rounds = scale.Scale.successive_checkpoints in
  let run ~taint label =
    let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule scale.Scale.cal in
    Cluster.run cluster (fun () ->
        let inst =
          Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"vm0"
        in
        let bench = Synthetic.start inst ~buffer_bytes:scale.Scale.buffer_large in
        let series = Stats.series label in
        for round = 1 to rounds do
          Synthetic.refill bench;
          Synthetic.dump_app bench;
          if taint then begin
            match inst.Approach.stack with
            | Approach.Mirror_stack m -> Vdisk.Mirror.taint_all m
            | _ -> assert false
          end;
          let t0 = Cluster.now cluster in
          let _ = Approach.request_checkpoint cluster inst in
          let dt = Cluster.now cluster -. t0 in
          pp_progress progress "%s round %d: %.2fs" label round dt;
          Stats.add series ~x:(float_of_int round) ~y:dt
        done;
        series)
  in
  let incr = run ~taint:false "incremental commit" in
  let full = run ~taint:true "full re-commit" in
  Stats.table ~title:"Ablation: incremental snapshotting (successive checkpoints, one instance)"
    ~x_label:"checkpoint #" ~y_label:"time (s)" [ incr; full ]
