open Simcore
open Blobcr

(* Dedup commit-path baseline: N instances over the same base image dirty
   a buffer's worth of chunks and COMMIT concurrently, with the dirty
   content either largely identical across instances (dup-heavy: a gang
   writing near-identical state) or fully distinct (unique). Each
   configuration runs with the content-addressed index enabled and
   disabled; a second commit rewrites the same content unchanged to
   measure clean-rewrite suppression. Restored-image digests are returned
   so callers can assert dedup never changes the bytes read back. *)

type point = {
  dedup : bool;
  workload : string;  (** "dup-heavy" | "unique" *)
  instances : int;
  dirty_bytes_per_instance : int;
  commit_time : float;  (** mean simulated seconds, first commit *)
  rewrite_time : float;  (** mean simulated seconds, clean-rewrite commit *)
  shipped_bytes : int;
  deduped_bytes : int;
  suppressed_bytes : int;
  repository_bytes : int;  (** repository growth over the base image *)
  dedup_hits : int;
  image_digest : int64;  (** combined digest of every restored dirty region *)
}

(* At least half of every instance's dirty chunks carry content shared by
   the whole gang (the acceptance scenario's >= 50%). *)
let dup_fraction = 0.6

let chunk_seed ~workload ~instance ~chunk =
  match workload with
  | `Dup_heavy when float_of_int (chunk mod 10) < dup_fraction *. 10.0 ->
      Int64.of_int ((0xD00D * 65_599) + chunk)
  | _ -> Int64.of_int ((((instance * 31) + 0xBEEF) * 65_599) + chunk)

let workload_name = function `Dup_heavy -> "dup-heavy" | `Unique -> "unique"

let run_point (scale : Scale.t) ~dedup ~workload ~instances () =
  let cal =
    {
      scale.Scale.cal with
      Calibration.blobseer = { scale.Scale.cal.Calibration.blobseer with Blobseer.Types.dedup };
    }
  in
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule cal in
  let service = cluster.Cluster.service in
  let stripe = Blobseer.Client.stripe_size cluster.Cluster.base_blob in
  let dirty_bytes = min scale.Scale.buffer_small (Blobseer.Client.capacity cluster.Cluster.base_blob) in
  let chunks = max 1 (dirty_bytes / stripe) in
  let repo_before = Blobseer.Client.repository_bytes service in
  Cluster.run cluster (fun () ->
      let engine = cluster.Cluster.engine in
      let mirrors =
        List.init instances (fun i ->
            let node = Cluster.node cluster (i mod Cluster.node_count cluster) in
            Vdisk.Mirror.create engine ~host:node.Cluster.host ~local_disk:node.Cluster.disk
              ~base:cluster.Cluster.base_blob ~base_version:cluster.Cluster.base_version
              ~name:(Fmt.str "dedup-bench.%d" i) ())
      in
      let dirty instance mirror =
        for c = 0 to chunks - 1 do
          let extent = min stripe (Vdisk.Mirror.capacity mirror - (c * stripe)) in
          Vdisk.Mirror.write mirror ~offset:(c * stripe)
            (Payload.pattern ~seed:(chunk_seed ~workload ~instance ~chunk:c) extent)
        done
      in
      let commit_round () =
        (* All instances commit concurrently: the pipelined path and the
           in-flight dedup claims are exercised together. *)
        let times = Array.make instances 0.0 in
        Engine.all engine ~name:"commits"
          (List.mapi
             (fun i mirror () ->
               let t0 = Engine.now engine in
               ignore (Vdisk.Mirror.commit mirror);
               times.(i) <- Engine.now engine -. t0)
             mirrors);
        Array.fold_left ( +. ) 0.0 times /. float_of_int instances
      in
      List.iteri dirty mirrors;
      let commit_time = commit_round () in
      (* Rewrite the same content unchanged: every chunk is a clean
         rewrite the digest check should suppress end to end. *)
      List.iteri dirty mirrors;
      let rewrite_time = commit_round () in
      let stats =
        List.fold_left
          (fun acc m -> Blobseer.Client.add_write_stats acc (Vdisk.Mirror.total_commit_stats m))
          Blobseer.Client.empty_write_stats mirrors
      in
      let image_digest =
        List.fold_left
          (fun acc mirror ->
            let image = Option.get (Vdisk.Mirror.checkpoint_image mirror) in
            let version = Blobseer.Client.latest_version image ~from:cluster.Cluster.supervisor_host in
            let restored =
              Blobseer.Client.read image ~from:cluster.Cluster.supervisor_host ~version ~offset:0
                ~len:(chunks * stripe)
            in
            Int64.add (Int64.mul acc 0x100000001B3L) (Payload.digest restored))
          0L mirrors
      in
      let dstats = Blobseer.Client.dedup_stats service in
      {
        dedup;
        workload = workload_name workload;
        instances;
        dirty_bytes_per_instance = chunks * stripe;
        commit_time;
        rewrite_time;
        shipped_bytes = stats.Blobseer.Client.bytes_shipped;
        deduped_bytes = stats.Blobseer.Client.bytes_deduped;
        suppressed_bytes = stats.Blobseer.Client.bytes_suppressed;
        repository_bytes = Blobseer.Client.repository_bytes service - repo_before;
        dedup_hits = dstats.Blobseer.Dedup_index.hits;
        image_digest;
      })

let run (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let instances = max 2 (List.fold_left min max_int scale.Scale.cm1_vm_counts) in
  List.concat_map
    (fun workload ->
      List.map
        (fun dedup ->
          progress
            (Fmt.str "dedup-bench: workload=%s dedup=%b instances=%d" (workload_name workload)
               dedup instances);
          run_point scale ~dedup ~workload ~instances ())
        [ false; true ])
    [ `Dup_heavy; `Unique ]

let per_series points f =
  List.map
    (fun workload ->
      let s = Stats.series workload in
      List.iter
        (fun p -> if p.workload = workload then Stats.add s ~x:(if p.dedup then 1.0 else 0.0) ~y:(f p))
        points;
      s)
    [ "dup-heavy"; "unique" ]

let tables_of points =
  [
    ( "dedup-shipped",
      Stats.table ~title:"Commit bytes physically shipped (x: dedup 0=off 1=on)"
        ~x_label:"dedup" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.shipped_bytes)) );
    ( "dedup-commit-time",
      Stats.table ~title:"Mean commit completion time, first checkpoint (simulated seconds)"
        ~x_label:"dedup" ~y_label:"seconds"
        (per_series points (fun p -> p.commit_time)) );
    ( "dedup-repo",
      Stats.table ~title:"Repository growth over the base image"
        ~x_label:"dedup" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.repository_bytes)) );
    ( "dedup-rewrite-time",
      Stats.table ~title:"Mean commit completion time, clean-rewrite checkpoint"
        ~x_label:"dedup" ~y_label:"seconds"
        (per_series points (fun p -> p.rewrite_time)) );
  ]

let tables (scale : Scale.t) ?progress () = tables_of (run scale ?progress ())

(* Hand-rolled JSON: the repo deliberately has no JSON dependency. *)
let json_of ~scale_name points =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %S,\n" scale_name);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"dedup\": %b, \"instances\": %d,\n\
           \     \"dirty_bytes_per_instance\": %d,\n\
           \     \"commit_time_s\": %.6f, \"rewrite_time_s\": %.6f,\n\
           \     \"shipped_bytes\": %d, \"deduped_bytes\": %d, \"suppressed_bytes\": %d,\n\
           \     \"repository_bytes\": %d, \"dedup_hits\": %d,\n\
           \     \"image_digest\": \"%Lx\"}%s\n"
           p.workload p.dedup p.instances p.dirty_bytes_per_instance p.commit_time
           p.rewrite_time p.shipped_bytes p.deduped_bytes p.suppressed_bytes
           p.repository_bytes p.dedup_hits p.image_digest
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
