open Simcore
open Blobcr
open Workloads

type point = {
  kind : Approach.kind;
  mtbf : float;
  interval : int;
  makespan : float;
  utilization : float;
  wasted : float;
  recoveries : int;
  finished : bool;
  mean_recovery_latency : float;
  checkpoint_cost : float;
}

let kinds = [ Approach.Blobcr; Approach.Qcow2_disk ]

(* One work unit = one CM1 iteration: the checkpoint interval is then
   directly the number of iterations between global checkpoints. *)
let iters_per_unit = 1

let unit_time (scale : Scale.t) =
  float_of_int iters_per_unit *. scale.Scale.cm1_config.Cm1.compute_per_iteration

let run_point (scale : Scale.t) ?(progress = fun _ -> ()) ~kind ~mtbf ~interval () =
  (* Chunk replication 3+ (BlobSeer's usual degree) so snapshots survive a
     crashed node's co-located provider plus one more provider fail-stop —
     the paper's repository is built for exactly this. *)
  let cal =
    {
      scale.Scale.cal with
      Calibration.blobseer =
        {
          scale.Scale.cal.Calibration.blobseer with
          Blobseer.Types.replication =
            max 3 scale.Scale.cal.Calibration.blobseer.Blobseer.Types.replication;
        };
    }
  in
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule cal in
  Cluster.run cluster (fun () ->
      let units = scale.Scale.availability_units in
      let workload =
        Cm1.supervised_workload cluster scale.Scale.cm1_config ~iters_per_unit
      in
      let nominal = float_of_int units *. unit_time scale in
      (* Fault horizon: generous multiple of the failure-free runtime, a
         deterministic function of the scale (never wall clock). *)
      let horizon = (nominal *. 4.0) +. 120.0 in
      let policy = { Supervisor.default_policy with checkpoint_interval = interval } in
      let injector = ref None in
      let t0 = Cluster.now cluster in
      let report =
        Supervisor.run cluster ~kind ~policy
          ~on_ready:(fun sup ->
            (* [on_ready] fires inside the run, racing gang-deploy events:
               an order-keyed split here would make the fault script itself
               schedule-dependent. *)
            let rng = Engine.derived_rng cluster.Cluster.engine "availability.fault-script" in
            let script =
              Faults.of_profile ~rng ~mtbf ~horizon
                ~hosts:(Cluster.node_count cluster)
                ~providers:(Cluster.node_count cluster) ()
            in
            injector :=
              Some
                (Faults.start cluster.Cluster.engine ~script
                   ~handlers:(Supervisor.fault_handlers sup)))
          ~id:"avail" ~gang:scale.Scale.availability_gang ~units ~workload ()
      in
      let injected =
        match !injector with
        | Some inj ->
            Faults.stop inj;
            List.iter
              (fun e -> progress (Fmt.str "    %a" Faults.pp_event e))
              (Faults.applied inj);
            List.length (Faults.applied inj)
        | None -> 0
      in
      progress
        (Fmt.str "  %d fault(s) injected, %d recover(ies), finished=%b" injected
           report.Supervisor.recoveries report.Supervisor.finished);
      let makespan = Cluster.now cluster -. t0 in
      let completed_compute = float_of_int report.Supervisor.units_completed *. unit_time scale in
      {
        kind;
        mtbf;
        interval;
        makespan;
        utilization = (if makespan > 0.0 then completed_compute /. makespan else 0.0);
        wasted = report.Supervisor.wasted_time;
        recoveries = report.Supervisor.recoveries;
        finished = report.Supervisor.finished;
        mean_recovery_latency =
          (match report.Supervisor.recovery_latencies with
          | [] -> 0.0
          | ls -> Stats.mean ls);
        checkpoint_cost =
          (if report.Supervisor.checkpoints > 0 then
             report.Supervisor.checkpoint_time /. float_of_int report.Supervisor.checkpoints
           else 0.0);
      })

let sweep (scale : Scale.t) ?(progress = fun _ -> ()) () =
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun mtbf ->
          List.map
            (fun interval ->
              progress
                (Fmt.str "availability: %s mtbf=%g interval=%d" (Approach.kind_name kind)
                   mtbf interval);
              run_point scale ~progress ~kind ~mtbf ~interval ())
            scale.Scale.availability_intervals)
        scale.Scale.availability_mtbfs)
    kinds

let series_label kind mtbf = Fmt.str "%s mtbf=%g" (Approach.kind_name kind) mtbf

let per_series points f =
  List.concat_map
    (fun kind ->
      List.filter_map
        (fun mtbf ->
          match List.filter (fun p -> p.kind = kind && p.mtbf = mtbf) points with
          | [] -> None
          | ps ->
              let s = Stats.series (series_label kind mtbf) in
              List.iter (fun p -> Stats.add s ~x:(float_of_int p.interval) ~y:(f p)) ps;
              Some s)
        (List.sort_uniq Float.compare (List.map (fun p -> p.mtbf) points)))
    kinds

(* Young's first-order optimum T_opt = sqrt(2 C M): with the measured mean
   checkpoint cost C and host MTBF M, the interval (in work units) that
   minimizes expected lost plus checkpoint overhead. *)
let youngs_series points scale =
  List.filter_map
    (fun kind ->
      let ps = List.filter (fun p -> p.kind = kind && p.checkpoint_cost > 0.0) points in
      match ps with
      | [] -> None
      | _ ->
          let cost = Stats.mean (List.map (fun p -> p.checkpoint_cost) ps) in
          let s = Stats.series (Fmt.str "%s youngs-opt-units" (Approach.kind_name kind)) in
          List.iter
            (fun mtbf ->
              Stats.add s ~x:mtbf ~y:(sqrt (2.0 *. cost *. mtbf) /. unit_time scale))
            (List.sort_uniq Float.compare (List.map (fun p -> p.mtbf) points));
          Some s)
    kinds

let tables (scale : Scale.t) ?progress () =
  let points = sweep scale ?progress () in
  [
    ( "availability",
      Stats.table ~title:"Effective utilization vs checkpoint interval under host faults"
        ~x_label:"interval-units" ~y_label:"utilization"
        (per_series points (fun p -> p.utilization)) );
    ( "availability-wasted",
      Stats.table ~title:"Wasted (rolled-back) work time" ~x_label:"interval-units"
        ~y_label:"seconds"
        (per_series points (fun p -> p.wasted)) );
    ( "availability-recovery",
      Stats.table ~title:"Mean recovery latency (detection to resume)"
        ~x_label:"interval-units" ~y_label:"seconds"
        (per_series points (fun p -> p.mean_recovery_latency)) );
    ( "availability-youngs",
      Stats.table
        ~title:"Young's-formula optimal checkpoint interval (from measured checkpoint cost)"
        ~x_label:"mtbf-seconds" ~y_label:"interval-units" (youngs_series points scale) );
  ]
