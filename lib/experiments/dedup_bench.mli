(** Dedup commit-path baseline (beyond the paper): a gang of instances
    dirties dup-heavy or fully unique content over the same base image
    and commits concurrently, with the content-addressed index enabled
    and disabled. Measures bytes physically shipped, repository growth,
    simulated commit latency, and clean-rewrite suppression; the restored
    dirty regions are digested so callers can assert dedup never changes
    the bytes read back. *)

open Simcore

type point = {
  dedup : bool;
  workload : string;  (** "dup-heavy" | "unique" *)
  instances : int;
  dirty_bytes_per_instance : int;
  commit_time : float;  (** mean simulated seconds, first commit *)
  rewrite_time : float;  (** mean simulated seconds, clean-rewrite commit *)
  shipped_bytes : int;
  deduped_bytes : int;
  suppressed_bytes : int;
  repository_bytes : int;  (** repository growth over the base image *)
  dedup_hits : int;
  image_digest : int64;  (** combined digest of every restored dirty region *)
}

val run : Scale.t -> ?progress:(string -> unit) -> unit -> point list
(** One point per (workload × dedup on/off). *)

val tables_of : point list -> (string * Stats.table) list
(** Render already-collected points as the named result tables. *)

val tables : Scale.t -> ?progress:(string -> unit) -> unit -> (string * Stats.table) list
(** {!run} followed by {!tables_of}. *)

val json_of : scale_name:string -> point list -> string
(** Render points as the BENCH_dedup.json document (hand-rolled JSON; the
    repo has no JSON dependency). *)
