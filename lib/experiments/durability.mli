(** Durability sweep: silent corruption × replication × scrub interval.

    Exercises the repository's whole self-healing story end to end: a
    supervised CM1 gang runs with a background {!Blobseer.Scrubber} while a
    deterministic injector silently corrupts stored replicas, crashes the
    version manager mid-COMMIT and crash-stops hosts. Clients detect
    corrupt replicas by checksum on read and fail over; the scrubber
    detects and repairs them in place; journal recovery rolls half-applied
    publications back before any restart. Reported per
    (corrupt-weight, replication, scrub-interval) cell: restart success,
    repair traffic, checksum failovers and checkpoint overhead.

    The {!chaos_run} harness is shared with the replay-determinism check
    ({!Analysis.Determinism}), the [blobcr_lint durability] invariant and
    the fault-injection tests. *)

open Blobcr

type chaos = {
  report : Supervisor.report;
  digests : (string * int64) list;
      (** digest of every dumped subdomain file across the final gang,
          keyed and sorted by guest path — the restart-visible application
          state (byte-identical iff these match) *)
  audit : string list;  (** supervisor accounting violations (empty = clean) *)
  scrub_stats : Blobseer.Scrubber.stats;
  scrub_events : Blobseer.Scrubber.event list;  (** chronological scrub log *)
  integrity_failures : int;  (** client checksum-mismatch failovers *)
  injected : Faults.event list;  (** faults actually applied, in order *)
  engine : Simcore.Engine.t;
      (** the quiesced engine the run executed on, with its audit subjects
          still registered — schedule fuzzing audits it post-run *)
}

val acceptance_script : Faults.script
(** Silent corruption at t=8.5, version-manager crash armed mid-apply of
    the next COMMIT at t=9, host 0 crash-stopped at t=18. *)

val final_subdomain_digests : Supervisor.t -> (string * int64) list
(** (instance name, digest) of each surviving instance's restored state —
    compared across runs to prove recovery restored identical content. *)

val chaos_run :
  Scale.t ->
  ?script:(Cluster.t -> Faults.script) ->
  ?replication:int ->
  ?scrub:Blobseer.Scrubber.config ->
  ?gang:int ->
  ?units:int ->
  ?policy:Supervisor.policy ->
  unit ->
  chaos
(** One supervised chaos run on a fresh cluster seeded from the scale.
    [script] builds the fault script once the cluster exists (default:
    {!acceptance_script}); [replication] overrides the calibration's chunk
    replication (default 2); [scrub] is the background scrubber config
    (default: 4 s passes, majority quorum); [policy] overrides the
    supervisor policy (e.g. live checkpoint mode for the precopy fuzz
    scenario). Same scale and script ⇒ same outcome, byte for byte. *)

val render_scrub_log : chaos -> string
(** The scrub event log as one line per event — the replay-determinism
    subject. *)

type point = {
  corrupt_weight : int;
  replication : int;
  scrub_interval : float;
  finished : bool;
  recoveries : int;
  corruptions : int;
  integrity_failovers : int;
  repairs : int;
  repair_bytes : int;
  unrepairable : int;
  checkpoint_cost : float;
}

val run_point :
  Scale.t ->
  ?progress:(string -> unit) ->
  corrupt_weight:int ->
  replication:int ->
  scrub_interval:float ->
  unit ->
  point
(** One profile-generated chaos run at the given corruption weight,
    replication degree and scrub interval. *)

val sweep : Scale.t -> ?progress:(string -> unit) -> unit -> point list
(** The (corruption weight × replication × scrub interval) grid taken from
    the scale's durability axes. *)

val tables : Scale.t -> ?progress:(string -> unit) -> unit -> (string * Simcore.Stats.table) list
(** Named result tables: ["durability"] (restart success),
    ["durability-repair"] (repair traffic), ["durability-failover"]
    (client checksum failovers), ["durability-overhead"] (mean committed
    checkpoint duration). *)
