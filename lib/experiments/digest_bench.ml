open Simcore
open Blobcr

(* Digest-tax micro-bench: one instance rewrites its whole working region
   every epoch — the classic checkpoint pattern where the application
   dumps its full buffer but only a fraction of it actually changed — and
   COMMITs. Epoch one seeds the image; epoch two is measured: how many
   bytes were digested during the COMMIT itself (the blob.write digest
   tax), how many over the whole epoch (guest writes + commit), and how
   the simulated commit time scales with the dirty fraction. Swept over
   image size x dirty fraction x dedup on/off, plus a digest-cache-off
   baseline that shows the pre-cache cost (~image-size digest work and
   local reads at every commit). *)

type point = {
  image_bytes : int;
  dirty_fraction : float;
  dedup : bool;
  digest_cache : bool;
  commit_time : float;  (** simulated seconds, measured epoch-two commit *)
  commit_digest_bytes : int;  (** bytes digested during the commit itself *)
  total_digest_bytes : int;  (** bytes digested over rewrite + commit *)
  chunks_digested : int;
  chunks_cached : int;
  chunks_skipped : int;
  shipped_bytes : int;
  deduped_bytes : int;
  suppressed_bytes : int;
}

(* Content is a function of (chunk, generation): generation 0 is the
   seeded image, generation [epoch] the changed chunks of that epoch. *)
let chunk_seed ~generation ~chunk =
  Int64.of_int ((((generation * 131) + 0xD16E57) * 65_599) + chunk)

let run_point (scale : Scale.t) ~image_bytes ~fraction ~dedup ~digest_cache () =
  let cal =
    {
      scale.Scale.cal with
      Calibration.blobseer =
        { scale.Scale.cal.Calibration.blobseer with Blobseer.Types.dedup; digest_cache };
    }
  in
  let cluster = Cluster.build ~seed:scale.Scale.seed ~schedule:scale.Scale.schedule cal in
  let service = cluster.Cluster.service in
  let stripe = Blobseer.Client.stripe_size cluster.Cluster.base_blob in
  let region = min image_bytes (Blobseer.Client.capacity cluster.Cluster.base_blob) in
  let chunks = max 1 (region / stripe) in
  let changed_count = max 1 (int_of_float (Float.round (fraction *. float_of_int chunks))) in
  Cluster.run cluster (fun () ->
      let engine = cluster.Cluster.engine in
      let node = Cluster.node cluster 0 in
      let mirror =
        Vdisk.Mirror.create engine ~host:node.Cluster.host ~local_disk:node.Cluster.disk
          ~base:cluster.Cluster.base_blob ~base_version:cluster.Cluster.base_version
          ~name:"digest-bench" ()
      in
      (* Full-region rewrite: every chunk is written, only the first
         [changed_count] carry content this epoch changed. *)
      let rewrite ~epoch =
        for c = 0 to chunks - 1 do
          let extent = min stripe (Vdisk.Mirror.capacity mirror - (c * stripe)) in
          let generation = if epoch > 1 && c < changed_count then epoch else 0 in
          Vdisk.Mirror.write mirror ~offset:(c * stripe)
            (Payload.pattern ~seed:(chunk_seed ~generation ~chunk:c) extent)
        done
      in
      rewrite ~epoch:1;
      ignore (Vdisk.Mirror.commit mirror);
      let d0 = Blobseer.Client.digest_stats service in
      let h0 = Payload.hashed_bytes () in
      rewrite ~epoch:2;
      let h1 = Payload.hashed_bytes () in
      let t0 = Engine.now engine in
      ignore (Vdisk.Mirror.commit mirror);
      let commit_time = Engine.now engine -. t0 in
      let h2 = Payload.hashed_bytes () in
      let d1 = Blobseer.Client.digest_stats service in
      let stats = Vdisk.Mirror.last_commit_stats mirror in
      {
        image_bytes = region;
        dirty_fraction = fraction;
        dedup;
        digest_cache;
        commit_time;
        commit_digest_bytes = h2 - h1;
        total_digest_bytes = h2 - h0;
        chunks_digested =
          d1.Blobseer.Client.chunks_digested - d0.Blobseer.Client.chunks_digested;
        chunks_cached = d1.Blobseer.Client.chunks_cached - d0.Blobseer.Client.chunks_cached;
        chunks_skipped = d1.Blobseer.Client.chunks_skipped - d0.Blobseer.Client.chunks_skipped;
        shipped_bytes = stats.Blobseer.Client.bytes_shipped;
        deduped_bytes = stats.Blobseer.Client.bytes_deduped;
        suppressed_bytes = stats.Blobseer.Client.bytes_suppressed;
      })

(* Dedup on/off with the digest cache on (the default), plus one
   cache-off baseline (dedup on) for the before/after contrast. *)
let configs = [ (true, true); (false, true); (true, false) ]
let fractions = [ 0.1; 0.5; 1.0 ]

let run (scale : Scale.t) ?(progress = fun _ -> ()) () =
  List.concat_map
    (fun image_bytes ->
      List.concat_map
        (fun fraction ->
          List.map
            (fun (dedup, digest_cache) ->
              progress
                (Fmt.str "digest-bench: image=%dMiB dirty=%.0f%% dedup=%b cache=%b"
                   (image_bytes / Size.mib) (100.0 *. fraction) dedup digest_cache);
              run_point scale ~image_bytes ~fraction ~dedup ~digest_cache ())
            configs)
        fractions)
    [ scale.Scale.buffer_small; scale.Scale.buffer_large ]

let config_label p =
  Fmt.str "%dMiB/%s/%s" (p.image_bytes / Size.mib)
    (if p.dedup then "dedup" else "nodedup")
    (if p.digest_cache then "cache" else "nocache")

let per_series points f =
  let keys = List.sort_uniq String.compare (List.map config_label points) in
  List.map
    (fun key ->
      let s = Stats.series key in
      List.iter
        (fun p ->
          if String.equal (config_label p) key then
            Stats.add s ~x:p.dirty_fraction ~y:(f p))
        points;
      s)
    keys

let tables_of points =
  [
    ( "digest-commit-bytes",
      Stats.table ~title:"Bytes digested during the COMMIT itself (blob.write digest tax)"
        ~x_label:"dirty fraction" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.commit_digest_bytes)) );
    ( "digest-total-bytes",
      Stats.table ~title:"Bytes digested over the whole epoch (guest rewrite + commit)"
        ~x_label:"dirty fraction" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.total_digest_bytes)) );
    ( "digest-commit-time",
      Stats.table ~title:"Measured commit completion time (simulated seconds)"
        ~x_label:"dirty fraction" ~y_label:"seconds"
        (per_series points (fun p -> p.commit_time)) );
    ( "digest-shipped",
      Stats.table ~title:"Commit bytes physically shipped"
        ~x_label:"dirty fraction" ~y_label:"bytes"
        (per_series points (fun p -> float_of_int p.shipped_bytes)) );
  ]

let tables (scale : Scale.t) ?progress () = tables_of (run scale ?progress ())

(* Hand-rolled JSON: the repo deliberately has no JSON dependency. *)
let json_of ~scale_name points =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %S,\n" scale_name);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"image_bytes\": %d, \"dirty_fraction\": %.2f, \"dedup\": %b, \
            \"digest_cache\": %b,\n\
           \     \"commit_time_s\": %.6f,\n\
           \     \"commit_digest_bytes\": %d, \"total_digest_bytes\": %d,\n\
           \     \"chunks_digested\": %d, \"chunks_cached\": %d, \"chunks_skipped\": %d,\n\
           \     \"shipped_bytes\": %d, \"deduped_bytes\": %d, \"suppressed_bytes\": %d}%s\n"
           p.image_bytes p.dirty_fraction p.dedup p.digest_cache p.commit_time
           p.commit_digest_bytes p.total_digest_bytes p.chunks_digested p.chunks_cached
           p.chunks_skipped p.shipped_bytes p.deduped_bytes p.suppressed_bytes
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
