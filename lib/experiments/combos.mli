(** The five evaluated configurations (Section 4.2): an image stack
    combined with a state-dump method. *)

open Blobcr
open Workloads

type dump_method = App | Blcr | Full_vm

type t = {
  label : string;  (** the paper's curve label, e.g. ["BlobCR-app"] *)
  kind : Approach.kind;
  dump : dump_method;
}

val all : t list
(** BlobCR-app, qcow2-disk-app, BlobCR-blcr, qcow2-disk-blcr, qcow2-full —
    in the paper's legend order. *)

val disk_only : t list
(** The four disk-snapshot configurations (Figure 6 / Table 1 omit
    qcow2-full). *)

val find : string -> t option
(** Look up a combination by its legend name, e.g. ["BlobCR-app"]. *)

val dump : t -> Synthetic.t -> unit
(** Stage 1 of the two-stage checkpoint for the synthetic benchmark:
    application dump, blcr dump, or nothing (full-VM snapshots carry the
    state implicitly). *)

val restore : t -> Approach.instance -> Synthetic.t
(** Matching state restoration after restart. *)
