(** Snapshot-chain retention and compaction sweep (beyond the paper).

    Grows a snapshot chain to a configurable depth on both sides of the
    comparison — BlobSeer versioned blobs maintained by the background
    {!Blobseer.Compactor}, and qcow2 incremental-export delta chains
    maintained by {!Vdisk.Qcow2.collapse_chain} — then measures what the
    maintenance plane buys: restart latency from the newest snapshot,
    physical-over-logical read amplification of that restart, bytes
    reclaimed from retired history, and the interference compaction
    inflicts on foreground checkpoint epochs.

    The dirty pattern is deliberately skewed: each epoch rewrites a
    rotating quarter of the image's {e first half} with epoch-unique
    content, so the second half lives only in the oldest snapshot — the
    worst case for an uncollapsed qcow2 chain (every such cluster walks
    the whole chain, one table probe per delta level) and the
    representative case for retention (old versions pin chunks the tip
    no longer references). *)

open Blobcr

(** {1 BlobSeer side} *)

type bs_outcome = {
  restart_s : float;  (** timed full read of the latest version *)
  restart_digest : int64;  (** content digest of the restored image *)
  read_amp : float;  (** physical bytes read / logical bytes, restart *)
  epoch_mean_s : float;  (** mean foreground epoch latency *)
  reclaimed_bytes : int;  (** physical bytes the compactor deleted *)
  live_versions : int list;  (** live version numbers after settling *)
  retired_versions : int list;  (** retired version numbers *)
  cstats : Blobseer.Compactor.stats option;  (** [None] = compaction off *)
  engine : Simcore.Engine.t;  (** for invariant audits by the caller *)
}

val bs_run :
  Scale.t -> ?policy:Blobseer.Retention.policy -> depth:int -> unit -> bs_outcome
(** One deterministic BlobSeer run: an initial full image write, [depth]
    dirty epochs each followed by a synchronous compactor pass (when
    [policy] is given — omitting it disables compaction), two settling
    passes so the deferred sweep completes, then a timed restart read
    from a different node. *)

(** {1 Chaos harness}

    The schedule-fuzz surface: the same BlobSeer run under an injected
    fault script (compaction crash points, background-service crashes,
    transient disk errors). Foreground writes retry transients; the
    compactor is restarted and re-scanned after every crash, and the run
    ends with a no-fault settle so the observed outcome is the policy's
    fixed point — schedule-independent even though retry counts and
    crash recoveries are not. *)

type chaos = {
  c_outcome : bs_outcome;  (** the settled end state *)
  c_injected : Faults.event list;  (** faults actually applied *)
}

val chaos_run :
  Scale.t ->
  script:(Cluster.t -> Blobseer.Compactor.t -> Faults.script) ->
  ?policy:Blobseer.Retention.policy ->
  depth:int ->
  unit ->
  chaos
(** Like {!bs_run} with compaction forced on ([policy] defaults to
    [Keep_last scale.chains_keep_last]) and [script] (built once the
    cluster and compactor exist) injected while the epochs run. *)

(** {1 qcow2 side} *)

type q_outcome = {
  q_restart_s : float;  (** timed full read through the backing chain *)
  q_restart_digest : int64;  (** content digest of the restored image *)
  q_read_amp : float;  (** physical bytes read / logical bytes, restart *)
  q_epoch_mean_s : float;  (** mean foreground epoch latency (dirty + export) *)
  q_reclaimed_bytes : int;  (** retired delta-file bytes deleted by collapses *)
  q_chain_levels : int;  (** levels of the final chain *)
}

val q_run : Scale.t -> collapse:bool -> depth:int -> unit -> q_outcome
(** One deterministic qcow2 run: a full export, [depth] dirty epochs each
    ending in {!Vdisk.Qcow2.export_incremental}, a
    {!Vdisk.Qcow2.collapse_chain} whenever the chain outgrows
    [scale.chains_keep_last] (when [collapse]), then a timed restart read
    on a different node backed by the final chain. *)

(** {1 Tables} *)

val tables : Scale.t -> ?progress:(string -> unit) -> unit -> (string * Simcore.Stats.table) list
(** The sweep: chain depth x maintenance on/off across both sides.
    Returns [chains-restart] (restart seconds vs depth),
    [chains-readamp] (read amplification vs depth), [chains-reclaimed]
    (megabytes reclaimed vs depth) and [chains-interference] (mean
    foreground epoch seconds, compaction on vs off). *)
