(** Disaster-recovery sweep: WAN link latency × checkpoint interval ×
    replication window.

    A supervised CM1 gang checkpoints into a two-site repository — the
    standby fed asynchronously by the journal-shipping
    {!Blobcr.Blobseer.Replicator} — while a deterministic injector
    fail-stops the entire primary site mid-run. The supervisor promotes
    the standby, restarts the gang from the newest fully replicated
    checkpoint set, and the run completes on the surviving site. Reported
    per cell: RPO (versions, bytes and work units lost), RTO
    (detection-to-running failover latency), the replication-lag
    high-water mark, and the primary committed-checkpoint overhead
    relative to a no-standby control at the same interval. *)

open Blobcr

type outcome = {
  report : Supervisor.report;
  digests : (string * int64) list;
      (** digest of every dumped subdomain file across the final gang,
          keyed and sorted by guest path — byte-identical iff two runs
          restored the same application state *)
  audit : string list;  (** supervisor accounting violations (empty = clean) *)
  repl_stats : Blobseer.Replicator.stats;  (** shipper counters at teardown *)
  failed_over : bool;  (** the run survived a site disaster via promotion *)
  rpo_versions : int;  (** publications lost in flight at failover *)
  rpo_bytes : int;  (** delta bytes of the lost publications *)
  rpo_units : int;  (** work units rolled back relative to the primary *)
  rto : float;  (** detection-to-running failover latency, seconds *)
  integrity_failures : int;  (** checksum-mismatch failovers, both sites *)
  injected : Faults.event list;  (** faults actually applied, in order *)
  engine : Simcore.Engine.t;
      (** the quiesced engine the run executed on, with its audit subjects
          still registered — schedule fuzzing audits it post-run *)
}

val default_crash_at : Scale.t -> interval:int -> float
(** Injector-relative disaster time used when {!dr_run} is not given one:
    just after the first global checkpoint's records become eligible for
    shipping (commit + the default batching delay), so the site dies with
    publications still inside the replication pipeline. *)

val dr_run :
  Scale.t ->
  ?config:Blobseer.Replicator.config ->
  ?crash_at:float ->
  ?interval:int ->
  ?gang:int ->
  ?units:int ->
  unit ->
  outcome
(** One supervised run on a fresh two-site cluster seeded from the scale,
    with a single scripted {!Blobcr.Faults.Crash_site} at [crash_at]
    (default {!default_crash_at}). Same scale, config and crash time ⇒
    same outcome, byte for byte. *)

val control_run :
  Scale.t -> ?interval:int -> ?gang:int -> ?units:int -> unit -> Supervisor.report
(** The same supervised run without a standby site and without a disaster
    — the primary-commit overhead baseline. *)

val mean_checkpoint_cost : Supervisor.report -> float
(** Mean committed-checkpoint duration, seconds; [0.] if none committed. *)

val committed_costs : Supervisor.report -> float list
(** Every committed checkpoint's duration in commit order, seconds. *)

val primary_checkpoint_costs : Supervisor.report -> float list
(** Durations of the commits on the primary site only — at or before the
    failover (all of them when no failover happened). Post-failover
    commits run on the promoted standby and fold recovery recomputation
    into their cost, which would misread as replication interference. *)

type point = {
  link_latency : float;  (** WAN one-way latency, seconds *)
  window : int;  (** replication in-flight window *)
  interval : int;  (** checkpoint interval, work units *)
  finished : bool;
  failed_over : bool;
  rpo_versions : int;
  rpo_bytes : int;
  rpo_units : int;
  rto : float;
  max_lag : int;  (** replication-lag high-water mark, records *)
  checkpoint_cost : float;
      (** mean pre-failover committed-checkpoint duration with DR *)
  checkpoint_cost_nodr : float;
      (** the control's mean over its commits at the same positions *)
  overhead_pct : float;  (** (cost / control − 1) × 100 *)
}

val run_point :
  Scale.t ->
  ?progress:(string -> unit) ->
  link_latency:float ->
  window:int ->
  interval:int ->
  control:Supervisor.report ->
  unit ->
  point
(** One disaster run at the given cell. Overhead is positional: the DR
    run's pre-failover commits against the control's commits at the same
    positions (the first checkpoint ships the full image and is inherently
    pricier than later incremental ones). *)

val sweep : Scale.t -> ?progress:(string -> unit) -> unit -> point list
(** The (link latency × window × interval) grid taken from the scale's dr
    axes, with one control run per interval for the overhead baseline. *)

val tables :
  Scale.t -> ?progress:(string -> unit) -> unit -> (string * Simcore.Stats.table) list
(** Named result tables: ["dr-rpo"] (versions lost vs window),
    ["dr-rpo-units"] (work units rolled back), ["dr-rto"] (failover
    latency), ["dr-lag"] (lag high-water mark) and ["dr-overhead"]
    (primary checkpoint overhead vs the no-standby control). *)
