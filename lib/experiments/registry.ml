open Simcore

type output = { name : string; table : Stats.table }

type t = {
  id : string;
  paper_ref : string;
  description : string;
  run : Scale.t -> progress:(string -> unit) -> output list;
}

let fig2_3_outputs tag buffer_of scale ~progress =
  let ckpt, restart =
    Figures.fig2_3 scale ~buffer:(buffer_of scale) ~tag ~progress ()
  in
  [ { name = "fig2" ^ tag; table = ckpt }; { name = "fig3" ^ tag; table = restart } ]

let small (s : Scale.t) = s.Scale.buffer_small
let large (s : Scale.t) = s.Scale.buffer_large

let all =
  [
    {
      id = "fig2a";
      paper_ref = "Figure 2(a) + Figure 3(a)";
      description =
        "Checkpoint and restart completion time vs number of instances, 50 MB buffer, \
         all five approaches";
      run = (fun scale ~progress -> fig2_3_outputs "a" small scale ~progress);
    };
    {
      id = "fig2b";
      paper_ref = "Figure 2(b) + Figure 3(b)";
      description =
        "Checkpoint and restart completion time vs number of instances, 200 MB buffer";
      run = (fun scale ~progress -> fig2_3_outputs "b" large scale ~progress);
    };
    {
      id = "fig3a";
      paper_ref = "Figure 3(a)";
      description = "Restart completion time vs number of hosts, 50 MB buffer";
      run =
        (fun scale ~progress ->
          List.filter (fun o -> o.name = "fig3a") (fig2_3_outputs "a" small scale ~progress));
    };
    {
      id = "fig3b";
      paper_ref = "Figure 3(b)";
      description = "Restart completion time vs number of hosts, 200 MB buffer";
      run =
        (fun scale ~progress ->
          List.filter (fun o -> o.name = "fig3b") (fig2_3_outputs "b" large scale ~progress));
    };
    {
      id = "fig4";
      paper_ref = "Figure 4";
      description = "Snapshot size per VM instance, 50 MB and 200 MB buffers";
      run =
        (fun scale ~progress -> [ { name = "fig4"; table = Figures.fig4 scale ~progress () } ]);
    };
    {
      id = "fig5a";
      paper_ref = "Figure 5(a) + Figure 5(b)";
      description =
        "Four successive checkpoints of one instance (200 MB buffer): completion time \
         and cumulative storage";
      run =
        (fun scale ~progress ->
          let times, storage = Figures.fig5 scale ~progress () in
          [ { name = "fig5a"; table = times }; { name = "fig5b"; table = storage } ]);
    };
    {
      id = "fig5b";
      paper_ref = "Figure 5(b)";
      description = "Cumulative storage across successive checkpoints";
      run =
        (fun scale ~progress ->
          let _, storage = Figures.fig5 scale ~progress () in
          [ { name = "fig5b"; table = storage } ]);
    };
    {
      id = "fig6";
      paper_ref = "Figure 6";
      description = "CM1 checkpoint completion time for an increasing number of processes";
      run =
        (fun scale ~progress -> [ { name = "fig6"; table = Figures.fig6 scale ~progress () } ]);
    };
    {
      id = "table1";
      paper_ref = "Table 1";
      description = "CM1 per disk snapshot size";
      run =
        (fun scale ~progress ->
          [ { name = "table1"; table = Figures.table1 scale ~progress () } ]);
    };
    {
      id = "availability";
      paper_ref = "Beyond the paper (Section 3.2 fault model)";
      description =
        "Effective utilization, wasted work and recovery latency for supervised CM1 \
         under injected host/provider faults, MTBF x checkpoint-interval sweep";
      run =
        (fun scale ~progress ->
          List.map
            (fun (name, table) -> { name; table })
            (Availability.tables scale ~progress ()));
    };
    {
      id = "durability";
      paper_ref = "Beyond the paper (Section 3.1.1 replication + durability)";
      description =
        "Restart success, scrub repair traffic and checkpoint overhead for supervised CM1 \
         under silent replica corruption, corruption-weight x replication x scrub-interval \
         sweep";
      run =
        (fun scale ~progress ->
          List.map
            (fun (name, table) -> { name; table })
            (Durability.tables scale ~progress ()));
    };
    {
      id = "dr";
      paper_ref = "Beyond the paper (Section 5, availability under site loss)";
      description =
        "RPO/RTO, replication lag and primary checkpoint overhead for supervised CM1 on a \
         geo-replicated repository with a scripted primary-site disaster, link-latency x \
         checkpoint-interval x window sweep";
      run =
        (fun scale ~progress ->
          List.map (fun (name, table) -> { name; table }) (Dr.tables scale ~progress ()));
    };
    {
      id = "dedup";
      paper_ref = "Beyond the paper (Section 3.1.3 commit path, content addressing)";
      description =
        "Commit bytes shipped, repository growth and commit latency for dup-heavy vs \
         unique gang checkpoints, content-addressed dedup on vs off, plus clean-rewrite \
         suppression";
      run =
        (fun scale ~progress ->
          List.map
            (fun (name, table) -> { name; table })
            (Dedup_bench.tables scale ~progress ()));
    };
    {
      id = "digest";
      paper_ref = "Beyond the paper (Section 3.1.3 commit path, digest tax)";
      description =
        "Bytes digested during COMMIT and over the whole epoch, commit latency and bytes \
         shipped for full-region rewrites at varying dirty fractions, dedup on/off plus a \
         digest-cache-off baseline";
      run =
        (fun scale ~progress ->
          List.map
            (fun (name, table) -> { name; table })
            (Digest_bench.tables scale ~progress ()));
    };
    {
      id = "chains";
      paper_ref = "Beyond the paper (Section 3.1.2 versioning, maintenance plane)";
      description =
        "Restart latency, read amplification, reclaimed bytes and foreground interference \
         across snapshot-chain depths: BlobSeer retention/compaction vs qcow2 delta chains \
         with and without collapse";
      run =
        (fun scale ~progress ->
          List.map (fun (name, table) -> { name; table }) (Chains.tables scale ~progress ()));
    };
    {
      id = "precopy";
      paper_ref = "Beyond the paper (Section 3.2 snapshotting, live checkpointing)";
      description =
        "Guest-observed suspend window, checkpoint latency, shipped bytes and \
         copy-on-write interference for live (pre-copy + background commit) vs \
         stop-the-world checkpoints, interval x dirty-rate x pre-copy-rounds sweep";
      run =
        (fun scale ~progress ->
          List.map
            (fun (name, table) -> { name; table })
            (Precopy.tables scale ~progress ()));
    };
    {
      id = "abl-prefetch";
      paper_ref = "Ablation (Section 3.1.4)";
      description = "Restart time with adaptive prefetching enabled vs disabled";
      run =
        (fun scale ~progress ->
          [ { name = "abl-prefetch"; table = Ablations.prefetch scale ~progress () } ]);
    };
    {
      id = "abl-stripe";
      paper_ref = "Ablation (Section 4.2.1)";
      description = "Checkpoint/restart time across BlobSeer stripe sizes";
      run =
        (fun scale ~progress ->
          [ { name = "abl-stripe"; table = Ablations.stripe_size scale ~progress () } ]);
    };
    {
      id = "abl-replication";
      paper_ref = "Ablation (Section 3.1.1)";
      description = "Checkpoint cost of chunk replication factors 1-3";
      run =
        (fun scale ~progress ->
          [ { name = "abl-replication"; table = Ablations.replication scale ~progress () } ]);
    };
    {
      id = "abl-incremental";
      paper_ref = "Ablation (Section 3.1.3)";
      description = "Incremental COMMIT vs whole-image re-commit across successive checkpoints";
      run =
        (fun scale ~progress ->
          [ { name = "abl-incremental"; table = Ablations.incremental scale ~progress () } ]);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids = List.map (fun e -> e.id) all

let run_and_render e scale ?csv_dir ~progress () =
  let outputs = e.run scale ~progress in
  let buf = Buffer.create 1024 in
  List.iter
    (fun { name; table } ->
      Buffer.add_string buf (Stats.render table);
      Buffer.add_char buf '\n';
      match csv_dir with
      | Some dir ->
          let path = Stats.write_csv ~dir ~name table in
          Buffer.add_string buf (Fmt.str "(csv written to %s)\n\n" path)
      | None -> ())
    outputs;
  Buffer.contents buf

let run_observed e scale ?csv_dir ?detail ~progress () =
  Obs.Record.capture ?detail (fun () -> run_and_render e scale ?csv_dir ~progress ())

let render_observability run =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "-- observability: metrics --\n";
  Buffer.add_string buf (Obs.Export.metrics_table run);
  List.iter
    (fun (root, title) ->
      let t = Obs.Export.phase_table run ~root in
      if t <> "" then begin
        Buffer.add_string buf (Fmt.str "\n-- observability: %s phase breakdown --\n" title);
        Buffer.add_string buf t
      end)
    [ ("ckpt", "checkpoint"); ("restart", "restart") ];
  Buffer.contents buf
