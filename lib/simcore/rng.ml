type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 *. bound (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let of_key ~seed name =
  (* Fold the name into the seed one byte at a time, mixing at every
     step; the resulting stream depends only on (seed, name), never on
     how many draws other consumers made first. *)
  let h = ref (mix (Int64.of_int seed)) in
  String.iter
    (fun c -> h := mix (Int64.add (Int64.mul !h golden) (Int64.of_int (Char.code c))))
    name;
  { state = !h }

let rank ~seed i =
  (* Two mixing rounds decorrelate consecutive indices under the same
     seed; masking to [max_int] keeps the result a non-negative [int]. *)
  let z = mix (Int64.add (mix (Int64.of_int seed)) (Int64.mul golden (Int64.of_int (i + 1)))) in
  Int64.to_int z land max_int

let byte_at ~seed i =
  (* Hash the word index, then select the byte within the word, so that
     consecutive bytes share one mix per 8 positions. *)
  let word = mix (Int64.add seed (Int64.of_int (i lsr 3))) in
  let shift = (i land 7) * 8 in
  Char.chr (Int64.to_int (Int64.shift_right_logical word shift) land 0xff)
