type series = { label : string; mutable points : (float * float) list (* reversed *) }

let series label = { label; points = [] }
let label s = s.label
let add s ~x ~y = s.points <- (x, y) :: s.points
let points s = List.rev s.points

let y_at s ~x =
  List.find_map (fun (px, py) -> if px = x then Some py else None) s.points

type table = {
  title : string;
  x_label : string;
  y_label : string;
  columns : series list;
}

let table ~title ~x_label ~y_label columns = { title; x_label; y_label; columns }

let xs_of t =
  let xs =
    List.concat_map (fun s -> List.map fst (points s)) t.columns
    |> List.sort_uniq Float.compare
  in
  xs

let format_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then Fmt.str "%.0f" v else Fmt.str "%.2f" v

let render t =
  let xs = xs_of t in
  let header = t.x_label :: List.map label t.columns in
  let rows =
    List.map
      (fun x ->
        format_cell x
        :: List.map
             (fun s -> match y_at s ~x with Some y -> format_cell y | None -> "-")
             t.columns)
      xs
  in
  let all_rows = header :: rows in
  let ncols = List.length header in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all_rows
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "== %s (%s) ==\n" t.title t.y_label);
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (Fmt.str "%*s" (List.nth widths i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row (List.map (fun w -> String.make w '-') widths);
  List.iter emit_row rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let xs = xs_of t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (List.map csv_escape (t.x_label :: List.map label t.columns)));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Fmt.str "%g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match y_at s ~x with
          | Some y -> Buffer.add_string buf (Fmt.str "%g" y)
          | None -> ())
        t.columns;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

let write_csv ~dir ~name t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t));
  path

let mean = function
  | [] -> 0.0
  | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | vs ->
      let m = mean vs in
      let sq = List.fold_left (fun acc v -> acc +. ((v -. m) ** 2.0)) 0.0 vs in
      sqrt (sq /. float_of_int (List.length vs - 1))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | v :: vs -> List.fold_left (fun (lo, hi) x -> (Float.min lo x, Float.max hi x)) (v, v) vs
