(** Lightweight simulation tracing.

    Components emit trace points tagged with the simulated time; tracing is
    off by default and cheap when disabled. Determinism tests capture the
    trace of two runs and compare them. *)

type sink = time:float -> component:string -> string -> unit

val set_sink : sink option -> unit
(** Install (or remove) the global trace sink. *)

val enabled : unit -> bool
(** Whether a sink is currently installed. *)

val emit : Engine.t -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit engine ~component fmt ...] sends a formatted trace point to the
    sink, if any. The format arguments are not evaluated when tracing is
    disabled. *)

val capture : (unit -> 'a) -> 'a * string list
(** [capture f] runs [f] with a collecting sink installed and returns its
    result together with the rendered trace lines ["t=...s [component] msg"].
    Restores the previous sink afterwards. *)
