(** Result series collection and rendering for experiments.

    An experiment produces one or more named series of [(x, y)] points
    (e.g. checkpoint time versus number of instances, one series per
    approach). [Stats] renders them as aligned text tables — the same rows
    the paper's figures plot — and as CSV. *)

type series

val series : string -> series
(** [series label] is a fresh, empty series. *)

val label : series -> string
(** The label passed to {!series}. *)

val add : series -> x:float -> y:float -> unit
(** Append one [(x, y)] point. *)

val points : series -> (float * float) list
(** In insertion order. *)

val y_at : series -> x:float -> float option
(** The [y] recorded for exactly this [x], if any. *)

type table

val table : title:string -> x_label:string -> y_label:string -> series list -> table
(** Bundle series under a title and axis labels, ready to render. *)

val render : table -> string
(** Aligned text table: one row per distinct [x], one column per series. *)

val to_csv : table -> string
(** The same rows as {!render}, comma-separated with a header line. *)

val write_csv : dir:string -> name:string -> table -> string
(** Write [to_csv] under [dir] (created if missing); returns the path. *)

(** Basic descriptive statistics used by tests and the bench harness. *)

val mean : float list -> float
(** Arithmetic mean; [0.] for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] for fewer than two points. *)

val min_max : float list -> float * float
(** Smallest and largest element. Requires a non-empty list. *)
