(** Discrete-event simulation engine.

    The engine runs cooperative {e fibers} implemented with OCaml 5 effect
    handlers: a fiber is an ordinary OCaml function that may block on
    {!sleep}, {!Ivar.read}, {!Mailbox.recv}, {!Semaphore.acquire} or
    {!Fiber.await}; blocking suspends the underlying continuation and hands
    control back to the scheduler, which advances simulated time.

    Scheduling is deterministic: events execute in time order, with
    same-timestamp ties broken by the engine's {!Event_queue.schedule}
    policy (insertion order by default), and all randomness flows through
    the engine's {!rng}. Running the same simulation twice with the same
    seed and schedule produces identical traces.

    Fibers can be {e cancelled} (individually or per {!Group}), which models
    fail-stop machine crashes: a cancelled fiber's pending blocking operation
    raises {!Cancelled} inside the fiber, unwinding it. *)

type t
(** A simulation engine instance. *)

type fiber
(** A lightweight simulated process. *)

exception Cancelled
(** Raised inside a fiber when it is cancelled while blocked. *)

exception Fiber_failure of string * exn
(** Raised out of {!run} when a fiber dies with an unhandled exception
    (other than {!Cancelled}); carries the fiber name and the exception. *)

exception Audit_failure of string * string list
(** Raised out of {!run} when teardown audits are enabled and a registered
    audit subject violates a structural invariant; carries the subject name
    and the violation descriptions. *)

val create : ?seed:int -> ?schedule:Event_queue.schedule -> unit -> t
(** [create ~seed ()] is a fresh engine at time [0.0]. Default seed 42.
    [schedule] selects the event queue's same-timestamp tie-break policy
    (default {!Event_queue.Fifo}, which is bit-identical to the historical
    insertion-order behavior); see {!Event_queue.schedule}. *)

val now : t -> float
(** Current simulated time in seconds. *)

val rng : t -> Rng.t
(** The engine's root random stream. Draws (and {!Rng.split}s) consume it
    in {e event execution order}, so a stream obtained from it inside a
    fiber depends on how same-timestamp ties were broken. Components that
    need schedule-independent randomness must use {!derived_rng}
    instead. *)

val derived_rng : t -> string -> Rng.t
(** [derived_rng t name] is a private random stream keyed by the engine
    seed and [name] — a pure function of the two, consuming nothing from
    {!rng}. Identity-keyed streams are what keep simulation {e results}
    independent of the tie-break {!schedule}: with order-keyed streams a
    schedule change silently reassigns randomness between components
    (found by [blobcr_lint fuzz], see DESIGN.md section 13). *)

val schedule : t -> Event_queue.schedule
(** The tie-break policy the engine's event queue runs under. *)

val current_fiber : t -> fiber option
(** The fiber whose body is executing right now, or [None] between events
    (or inside a plain {!at} callback). Observability layers use this to
    attribute work to a logical thread; it never changes scheduling. *)

val run : t -> unit
(** Process events until the queue is empty. Raises {!Fiber_failure} as soon
    as any fiber dies with an unhandled exception. Fibers still blocked when
    the queue drains are simply left suspended (use {!blocked_fibers} to
    detect unexpected deadlock in tests). *)

val run_until : t -> float -> unit
(** [run_until t limit] processes all events with time [<= limit] and then
    advances the clock to [limit]. *)

val step : t -> bool
(** Execute a single event. Returns [false] when the queue is empty. *)

val live_fibers : t -> int
(** Number of fibers spawned and not yet finished. *)

val blocked_fibers : t -> int
(** Number of live fibers currently suspended on a blocking operation. *)

(** {1 Teardown audits}

    Stateful components (disk images, mirrors, version managers, ...)
    register themselves as {e audit subjects} at creation. When audits are
    enabled, {!run} checks every subject's structural invariants once the
    event queue drains and raises {!Audit_failure} on the first violation.
    The actual invariant checks live above the component libraries (in
    [Analysis.Invariants]) and are injected with {!set_subject_auditor};
    until an auditor is installed, registered subjects are inert. *)

type audit_subject = ..
(** Extensible registry of auditable state. Component modules add their own
    constructor (e.g. [Qcow2.Audit_image]) and register instances. *)

val register_audit_subject : t -> audit_subject -> unit
(** Attach a subject to this engine's teardown audit. Cheap, and safe to
    call even when audits are disabled. *)

val audit_subjects : t -> audit_subject list
(** All registered subjects, in registration order. *)

val audit_violations : t -> (string * string list) list
(** Run the installed auditor over every subject and return the non-clean
    results as [(subject, violations)]. Does not raise. *)

val set_subject_auditor : (audit_subject -> (string * string list) option) -> unit
(** Install the global subject auditor (normally [Analysis.Invariants]'s;
    the function receives each subject and returns [None] when clean). *)

val audits_enabled : unit -> bool
(** Whether {!run} performs teardown audits. Defaults to the [BLOBCR_AUDIT]
    environment variable (unset, empty or ["0"] means disabled). *)

val set_audits_enabled : bool -> unit
(** Override the audit toggle for the current process (tests use this to
    force audits on regardless of the environment). *)

val sleep : t -> float -> unit
(** [sleep t d] blocks the calling fiber for [d] simulated seconds.
    Must be called from inside a fiber. Requires [d >= 0.]. *)

val yield : t -> unit
(** Reschedule the calling fiber at the current time, letting other ready
    fibers run first. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time f] schedules plain callback [f] (not a fiber; it must not
    block) at absolute simulated [time]. *)

module Group : sig
  (** A cancellation group: all fibers spawned into the group can be killed
      together. Used to model a machine crash taking down every process
      hosted on it. *)

  type engine := t
  type t

  val create : unit -> t
  val cancel : engine -> t -> unit
  (** Cancel every member fiber (idempotent). *)

  val live : t -> int
  (** Number of member fibers not yet finished. *)
end

module Fiber : sig
  type engine := t
  type t = fiber

  type outcome =
    | Completed
    | Cancelled_outcome
    | Failed of exn

  val spawn : engine -> ?name:string -> ?group:Group.t -> (unit -> unit) -> t
  (** Start a new fiber at the current simulated time. May be called from
      inside or outside a fiber. *)

  val name : t -> string
  val id : t -> int

  val cancel : t -> unit
  (** Request cancellation. If the fiber is blocked, it is resumed with
      {!Cancelled} at the current time; if it is running or not yet started,
      it is cancelled at its next blocking point (or before starting). *)

  val is_finished : t -> bool

  val await : t -> outcome
  (** Block until the fiber finishes and return how it finished. *)

  val join : t -> unit
  (** Like {!await} but returns unit; a [Failed] outcome raises
      {!Fiber_failure}. A cancelled fiber joins normally. *)
end

val all : t -> ?name:string -> (unit -> unit) list -> unit
(** [all t fs] runs each thunk in its own fiber and blocks until every one
    has finished (a fork–join barrier). Must be called from inside a
    fiber. *)

module Ivar : sig
  (** Write-once synchronization variable. *)

  type engine := t
  type 'a t

  val create : engine -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Wakes all readers. Raises [Invalid_argument] if already filled. *)

  val read : 'a t -> 'a
  (** Block until filled, then return the value. *)

  val peek : 'a t -> 'a option
  val is_filled : 'a t -> bool
end

module Mailbox : sig
  (** Unbounded FIFO message queue between fibers. *)

  type engine := t
  type 'a t

  val create : engine -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Block until a message is available. Messages are delivered in FIFO
      order; competing receivers are served in arrival order. *)

  val length : 'a t -> int
end

module Semaphore : sig
  (** Counting semaphore; the building block for FIFO resources such as
      disks and CPU cores. *)

  type engine := t
  type t

  val create : engine -> int -> t
  val acquire : t -> unit
  val release : t -> unit
  val with_held : t -> (unit -> 'a) -> 'a
  (** Acquire, run, release (also on exception). *)

  val available : t -> int
  val waiting : t -> int
end
