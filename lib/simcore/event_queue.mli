(** Priority queue of timestamped events.

    Events are ordered by time; how same-timestamp ties break is a
    pluggable {!schedule} policy. The default, {!Fifo}, orders ties by a
    monotonically increasing insertion counter, so simultaneous events run
    in insertion order and the simulation is fully deterministic — and
    bit-identical to the historical behavior. The other policies exist to
    {e fuzz} schedules (see [Analysis.Schedule_fuzz]): they permute only
    same-timestamp runs, never the time order, and are equally
    deterministic for a fixed policy value. *)

type schedule =
  | Fifo  (** ties pop in insertion order (the default) *)
  | Lifo  (** ties pop in reverse insertion order *)
  | Seeded_shuffle of int
      (** ties pop in a pseudo-random order derived purely from the seed
          and each entry's insertion index ({!Rng.rank}) — the same seed
          always yields the same permutation *)

val pp_schedule : Format.formatter -> schedule -> unit
(** ["fifo"], ["lifo"] or ["shuffle:<seed>"]. *)

val schedule_to_string : schedule -> string
(** Same rendering as {!pp_schedule}, as a string — the inverse of
    {!schedule_of_string}. *)

val schedule_of_string : string -> (schedule, string) result
(** Parse ["fifo"], ["lifo"] or ["shuffle:<seed>"]; [Error] carries a
    human-readable message. *)

type 'a t

val create : ?schedule:schedule -> unit -> 'a t
(** An empty queue with the insertion counter at zero, breaking ties
    according to [schedule] (default {!Fifo}). *)

val schedule : 'a t -> schedule
(** The tie-break policy this queue was created with. *)

val is_empty : 'a t -> bool
(** [true] iff no events are pending. *)

val length : 'a t -> int
(** Number of pending events. *)

val add : 'a t -> time:float -> 'a -> unit
(** Insert an event at the given simulated time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)
