(** Priority queue of timestamped events.

    Events are ordered by [(time, seq)] where [seq] is a monotonically
    increasing insertion counter, so simultaneous events run in insertion
    order and the simulation is fully deterministic. *)

type 'a t

val create : unit -> 'a t
(** An empty queue with the insertion counter at zero. *)

val is_empty : 'a t -> bool
(** [true] iff no events are pending. *)

val length : 'a t -> int
(** Number of pending events. *)

val add : 'a t -> time:float -> 'a -> unit
(** Insert an event at the given simulated time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)
