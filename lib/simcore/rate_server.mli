(** FIFO byte-rate server.

    Models a device that serves requests one at a time at a fixed byte rate
    with a fixed per-operation overhead — the building block for disks and
    network interfaces. Concurrent callers queue in FIFO order, so
    contention shows up as queueing delay, exactly like a saturated disk or
    NIC. *)

type t

val create :
  Engine.t -> rate:float -> ?per_op:float -> ?seek:float -> ?name:string -> unit -> t
(** [create engine ~rate ~per_op ~seek ()] serves requests at [rate]
    bytes/second, charging an additional [per_op] seconds (default 0) of
    service time per operation, plus [seek] seconds (default 0) whenever a
    request belongs to a different {e stream} than the previous one — the
    head-repositioning model that makes a disk fast for one sequential
    writer and slow when interleaving many. Requires [rate > 0]. *)

val process : t -> ?stream:int -> int -> unit
(** [process t ~stream bytes] blocks the calling fiber until the server has
    served this request: queueing delay plus [per_op + bytes/rate], plus
    [seek] if [stream] differs from the previously served stream.
    Requests without a [stream] never pay or trigger seeks. *)

val process_many : t -> ?stream:int -> ops:int -> int -> unit
(** [process_many t ~ops bytes] serves a batch of [ops] back-to-back
    operations totalling [bytes] as one FIFO occupancy (at most one
    seek). *)

val seeks : t -> int
(** Stream switches served so far. *)

val name : t -> string
(** The name passed at creation (for traces); [""] by default. *)

val rate : t -> float
(** Service rate in bytes/second. *)

val busy_time : t -> float
(** Total simulated seconds the server has spent serving requests. *)

val ops : t -> int
(** Operations served so far. *)

val bytes_served : t -> int
(** Total bytes served so far. *)

val utilization : t -> float
(** [busy_time / now], 0 at time 0. *)
