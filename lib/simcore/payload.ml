type seg =
  | Zero of int
  | Pattern of { seed : int64; off : int; len : int }
  | Bytes of { data : bytes; off : int; len : int }

(* Segments in order, with [offs.(i)] the start offset of [segs.(i)], so
   random access and slicing are O(log segments). [dig] memoizes the whole
   payload's content digest — payloads are immutable, so once computed the
   digest is valid for the payload's lifetime. *)
type t = { len : int; segs : seg array; offs : int array; mutable dig : int64 option }

let seg_len = function
  | Zero n -> n
  | Pattern { len; _ } -> len
  | Bytes { len; _ } -> len

let length t = t.len
let empty = { len = 0; segs = [||]; offs = [||]; dig = Some 0L }

let of_seg seg =
  let n = seg_len seg in
  if n = 0 then empty else { len = n; segs = [| seg |]; offs = [| 0 |]; dig = None }

let zero len = of_seg (Zero len)
let pattern ~seed len = of_seg (Pattern { seed; off = 0; len })
let of_bytes data = of_seg (Bytes { data; off = 0; len = Bytes.length data })
let of_string s = of_bytes (Bytes.of_string s)

let seg_byte_at seg i =
  match seg with
  | Zero _ -> '\000'
  | Pattern { seed; off; _ } -> Rng.byte_at ~seed (off + i)
  | Bytes { data; off; _ } -> Bytes.get data (off + i)

(* Index of the segment containing offset [pos]. *)
let seg_index t pos =
  let lo = ref 0 and hi = ref (Array.length t.segs - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.offs.(mid) <= pos then lo := mid else hi := mid - 1
  done;
  !lo

let byte_at t i =
  if i < 0 || i >= t.len then invalid_arg "Payload.byte_at";
  let k = seg_index t i in
  seg_byte_at t.segs.(k) (i - t.offs.(k))

let seg_sub seg pos len =
  match seg with
  | Zero _ -> Zero len
  | Pattern { seed; off; _ } -> Pattern { seed; off = off + pos; len }
  | Bytes { data; off; _ } -> Bytes { data; off = off + pos; len }

let seg_merge a b =
  match (a, b) with
  | Zero m, Zero n -> Some (Zero (m + n))
  | Pattern p, Pattern q when p.seed = q.seed && q.off = p.off + p.len ->
      Some (Pattern { p with len = p.len + q.len })
  | Bytes p, Bytes q when p.data == q.data && q.off = p.off + p.len ->
      Some (Bytes { p with len = p.len + q.len })
  | _ -> None

(* Build a payload from segments, dropping empties and merging adjacent
   contiguous segments. *)
let of_seg_seq iter =
  let buf = ref [] and n = ref 0 in
  iter (fun seg ->
      if seg_len seg > 0 then
        match !buf with
        | prev :: rest -> (
            match seg_merge prev seg with
            | Some merged -> buf := merged :: rest
            | None ->
                buf := seg :: !buf;
                incr n)
        | [] ->
            buf := [ seg ];
            incr n);
  let segs = Array.make !n (Zero 0) in
  List.iteri (fun i seg -> segs.(!n - 1 - i) <- seg) !buf;
  let offs = Array.make !n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i seg ->
      offs.(i) <- !total;
      total := !total + seg_len seg)
    segs;
  { len = !total; segs; offs; dig = None }

let concat ts =
  (* When exactly one non-empty payload remains, return it unchanged so the
     memoized digest survives reassembly (e.g. Sparse_bytes.read of one whole
     block on the commit path). *)
  match List.filter (fun t -> t.len > 0) ts with
  | [] -> empty
  | [ t ] -> t
  | ts -> of_seg_seq (fun push -> List.iter (fun t -> Array.iter push t.segs) ts)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Payload.sub";
  if len = 0 then empty
  else if pos = 0 && len = t.len then t
  else begin
    let first = seg_index t pos in
    let last = seg_index t (pos + len - 1) in
    of_seg_seq (fun push ->
        for k = first to last do
          let seg = t.segs.(k) in
          let sstart = t.offs.(k) in
          let cut_from = max 0 (pos - sstart) in
          let cut_to = min (seg_len seg) (pos + len - sstart) in
          push (seg_sub seg cut_from (cut_to - cut_from))
        done)
  end

(* Rolling content hash: h(s ++ c) = h(s) * b + code(c) mod 2^64; segment
   hashes combine as h(s1 ++ s2) = h(s1) * b^|s2| + h(s2). *)
let base = 0x100000001B3L

let pow_base n =
  let rec go acc b n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then Int64.mul acc b else acc in
      go acc (Int64.mul b b) (n lsr 1)
  in
  go 1L base n

(* Geometric sum 1 + b + ... + b^(n-1) mod 2^64, by fast doubling. *)
let geom_sum n =
  let rec go n =
    if n = 0 then (0L, 1L)
    else if n land 1 = 1 then
      let s, p = go (n - 1) in
      (Int64.add (Int64.mul s base) 1L, Int64.mul p base)
    else
      let s, p = go (n / 2) in
      (Int64.mul s (Int64.add 1L p), Int64.mul p p)
  in
  fst (go n)

let code c = Int64.of_int (Char.code c + 1)

(* Bytes a real implementation would have fed through the hash since
   process start. A payload whose digest is already memoized on the value
   ([dig]) costs nothing — that memo models digest reuse an implementation
   can actually perform (the value carries its digest). The cross-payload
   [Pattern] segment cache below is a pure simulator shortcut with no
   real-world counterpart, so its hits still count here; [Zero] runs are a
   representation choice and stay free. The delta of this counter across
   an operation is the honest measure of digest work done. *)
let hashed_bytes_counter = ref 0
let hashed_bytes () = !hashed_bytes_counter

let seg_digest seg =
  match seg with
  | Zero n -> Int64.mul (geom_sum n) (code '\000')
  | _ ->
      let n = seg_len seg in
      hashed_bytes_counter := !hashed_bytes_counter + n;
      let h = ref 0L in
      for i = 0 to n - 1 do
        h := Int64.add (Int64.mul !h base) (code (seg_byte_at seg i))
      done;
      !h

let digest_cache : (int64 * int * int, int64) Hashtbl.t = Hashtbl.create 256

let seg_digest_cached seg =
  match seg with
  | Pattern { seed; off; len } ->
      let key = (seed, off, len) in
      (match Hashtbl.find_opt digest_cache key with
      | Some d ->
          hashed_bytes_counter := !hashed_bytes_counter + len;
          d
      | None ->
          let d = seg_digest seg in
          if Hashtbl.length digest_cache < 100_000 then Hashtbl.add digest_cache key d;
          d)
  | _ -> seg_digest seg

let digest t =
  match t.dig with
  | Some d -> d
  | None ->
      let d =
        Array.fold_left
          (fun h seg ->
            Int64.add (Int64.mul h (pow_base (seg_len seg))) (seg_digest_cached seg))
          0L t.segs
      in
      t.dig <- Some d;
      d

let seg_equal_struct a b =
  match (a, b) with
  | Zero m, Zero n -> m = n
  | Pattern p, Pattern q -> p.seed = q.seed && p.off = q.off && p.len = q.len
  | Bytes p, Bytes q -> p.data == q.data && p.off = q.off && p.len = q.len
  | _ -> false

let byte_compare_guard = 4 * 1024 * 1024
let to_string_guard = 64 * 1024 * 1024

let rec equal a b =
  a.len = b.len
  && (Array.length a.segs = Array.length b.segs
      && Array.for_all2 seg_equal_struct a.segs b.segs
     ||
     if a.len <= byte_compare_guard then to_string a = to_string b
     else digest a = digest b)

and to_string t =
  if t.len > to_string_guard then invalid_arg "Payload.to_string: payload too large";
  let buf = Bytes.create t.len in
  let pos = ref 0 in
  Array.iter
    (fun seg ->
      (match seg with
      | Zero n -> Bytes.fill buf !pos n '\000'
      | Bytes { data; off; len } -> Bytes.blit data off buf !pos len
      | Pattern _ as seg ->
          for i = 0 to seg_len seg - 1 do
            Bytes.set buf (!pos + i) (seg_byte_at seg i)
          done);
      pos := !pos + seg_len seg)
    t.segs;
  Bytes.unsafe_to_string buf

let pp_seg ppf = function
  | Zero n -> Fmt.pf ppf "zero(%d)" n
  | Pattern { seed; off; len } -> Fmt.pf ppf "pattern(seed=%Lx,off=%d,len=%d)" seed off len
  | Bytes { len; _ } -> Fmt.pf ppf "bytes(len=%d)" len

let pp ppf t =
  Fmt.pf ppf "@[<h>payload(%d)[%a]@]" t.len
    Fmt.(array ~sep:comma pp_seg)
    t.segs
