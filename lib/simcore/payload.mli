(** Synthetic data payloads.

    All data moving through the simulated storage stack is a [Payload.t].
    Small functional tests use [Bytes] payloads and verify contents
    byte-for-byte; large benchmark runs use [Pattern] payloads (a seed plus
    an offset into a deterministic infinite stream) so that hundreds of
    gigabytes of simulated traffic fit in memory while exercising exactly
    the same chunking / copy-on-write / metadata code paths.

    A payload is an immutable byte sequence of a known length. *)

type t

val length : t -> int
(** Byte length; O(1). *)

val zero : int -> t
(** [zero len] is [len] zero bytes. *)

val pattern : seed:int64 -> int -> t
(** [pattern ~seed len] is the first [len] bytes of the deterministic
    stream identified by [seed] (see {!Rng.byte_at}). *)

val of_bytes : bytes -> t
(** Takes ownership of the buffer; do not mutate it afterwards. *)

val of_string : string -> t
(** Copy of the string's bytes as a payload. *)

val byte_at : t -> int -> char
(** [byte_at p i] is the [i]-th byte. Requires [0 <= i < length p]. *)

val sub : t -> pos:int -> len:int -> t
(** [sub p ~pos ~len] is the slice [\[pos, pos+len)]. O(parts) and shares
    underlying data. *)

val concat : t list -> t
(** Concatenation; flattens nested concatenations. When exactly one
    non-empty payload is given, it is returned unchanged, so its memoized
    digest survives reassembly. *)

val equal : t -> t -> bool
(** Structural fast path (identical descriptors), falling back to
    byte-by-byte comparison. *)

val to_string : t -> string
(** Materializes the payload. Raises [Invalid_argument] above 64 MiB as a
    guard against accidentally materializing benchmark-scale payloads. *)

val digest : t -> int64
(** Content digest: equal payloads have equal digests (collisions aside —
    the digest is a 64-bit rolling hash). [Zero] runs digest in O(log n);
    [Pattern] slices digest in O(length) once and are memoized. The whole
    payload's digest is additionally memoized per value, so repeated
    digests of the same payload (verified reads, commit-path dedup
    lookups) are O(1) after the first. *)

val hashed_bytes : unit -> int
(** Monotonic count of bytes a real implementation would have fed through
    the hash since process start. Per-payload memo hits cost nothing (a
    value carrying its digest models reuse an implementation can actually
    perform); internal cross-payload segment caches are simulator
    shortcuts and still count; [Zero] runs (O(log n) math) stay free. The
    delta across an operation measures real digest work regardless of
    payload representation. *)

val pp : Format.formatter -> t -> unit
(** Structural summary, e.g. ["pattern(seed=3,len=1024)"]. *)
