type schedule = Fifo | Lifo | Seeded_shuffle of int

let pp_schedule ppf = function
  | Fifo -> Fmt.string ppf "fifo"
  | Lifo -> Fmt.string ppf "lifo"
  | Seeded_shuffle seed -> Fmt.pf ppf "shuffle:%d" seed

let schedule_to_string s = Fmt.str "%a" pp_schedule s

let schedule_of_string s =
  match s with
  | "fifo" -> Ok Fifo
  | "lifo" -> Ok Lifo
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "shuffle" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt rest with
          | Some seed -> Ok (Seeded_shuffle seed)
          | None -> Error (Fmt.str "bad shuffle seed %S" rest))
      | _ -> Error (Fmt.str "unknown schedule %S (expected fifo, lifo or shuffle:<seed>)" s))

type 'a entry = { time : float; rank : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* heap.(0) is unused padding until first add; [size] tracks live items *)
  mutable size : int;
  mutable seq : int;
  schedule : schedule;
}

let create ?(schedule = Fifo) () = { heap = [||]; size = 0; seq = 0; schedule }
let schedule t = t.schedule
let is_empty t = t.size = 0
let length t = t.size

(* The tie-break key among same-timestamp entries. [Fifo] reproduces the
   historical (time, insertion) order bit for bit; the other policies only
   ever reorder entries that share a timestamp, because [earlier] compares
   times first. *)
let rank_of t seq =
  match t.schedule with
  | Fifo -> seq
  | Lifo -> -seq
  | Seeded_shuffle seed -> Rng.rank ~seed seq

let earlier a b =
  a.time < b.time
  || (a.time = b.time && (a.rank < b.rank || (a.rank = b.rank && a.seq < b.seq)))

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && earlier t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && earlier t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let add t ~time value =
  let entry = { time; rank = rank_of t t.seq; seq = t.seq; value } in
  t.seq <- t.seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
