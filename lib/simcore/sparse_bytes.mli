(** Mutable sparse byte space.

    A growable address space where unwritten ranges read as zeros, backed by
    fixed-size blocks of {!Payload.t}. Used as the in-memory content plane
    of disk images and caches (timing is charged by their owners; this
    structure is free of simulated cost). *)

type t

val create : ?block_size:int -> unit -> t
(** Default block size 64 KiB. *)

val write : t -> offset:int -> Payload.t -> unit
(** Store the payload's bytes at [offset], materializing blocks as
    needed. *)

val read : t -> offset:int -> len:int -> Payload.t
(** The [len] bytes at [offset]; unwritten ranges read as zeros. *)

val written_bytes : t -> int
(** Number of bytes covered by materialized blocks (block-granular). *)

val clear : t -> unit
(** Drop every block, returning the space to all-zeros. *)
