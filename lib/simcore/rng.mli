(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit [Rng.t]
    so that simulations are reproducible: the same seed yields the same event
    trace, byte-for-byte. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Distinct seeds give independent
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean. Used for failure inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val of_key : seed:int -> string -> t
(** [of_key ~seed name] is a generator whose stream is a pure function of
    [(seed, name)]. Unlike {!split}, it consumes nothing from any parent
    stream, so the stream a component receives never depends on {e the
    order} in which components were created — the property that keeps
    simulation results independent of event tie-break scheduling (see
    {!Engine.derived_rng}). *)

val rank : seed:int -> int -> int
(** [rank ~seed i] is a non-negative pseudo-random priority for index [i]
    under stream [seed] — a pure function of [(seed, i)]. Used by
    {!Event_queue} to permute same-timestamp event runs deterministically
    without any mutable generator state. *)

val byte_at : seed:int64 -> int -> char
(** [byte_at ~seed i] is the [i]-th byte of the infinite deterministic
    pattern stream identified by [seed]. Pure function of [(seed, i)];
    used by {!Payload.Pattern} to represent large random buffers without
    materializing them. *)
