(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit [Rng.t]
    so that simulations are reproducible: the same seed yields the same event
    trace, byte-for-byte. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Distinct seeds give independent
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean. Used for failure inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val byte_at : seed:int64 -> int -> char
(** [byte_at ~seed i] is the [i]-th byte of the infinite deterministic
    pattern stream identified by [seed]. Pure function of [(seed, i)];
    used by {!Payload.Pattern} to represent large random buffers without
    materializing them. *)
