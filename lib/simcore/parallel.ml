let windowed engine ~window tasks =
  if window <= 0 then invalid_arg "Parallel.windowed: window must be positive";
  let gate = Engine.Semaphore.create engine window in
  let first_error = ref None in
  let guarded task () =
    Engine.Semaphore.with_held gate (fun () ->
        (* A task exception must surface in the caller, not kill the
           engine, so fork–join behaves like sequential code. *)
        try task ()
        with Engine.Cancelled as exn -> raise exn
        | exn -> if !first_error = None then first_error := Some exn)
  in
  Engine.all engine ~name:"windowed" (List.map guarded tasks);
  match !first_error with Some exn -> raise exn | None -> ()

let map_windowed engine ~window f xs =
  match xs with
  | [] -> []
  | _ ->
      let n = List.length xs in
      (* The result array is allocated by whichever task completes first,
         using its own value as the filler — no ['b option] boxing and no
         dummy element needed. *)
      let results = ref [||] in
      let set i y =
        if Array.length !results = 0 then results := Array.make n y;
        !results.(i) <- y
      in
      let tasks = List.mapi (fun i x () -> set i (f x)) xs in
      windowed engine ~window tasks;
      Array.to_list !results
