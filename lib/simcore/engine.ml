exception Cancelled
exception Fiber_failure of string * exn
exception Audit_failure of string * string list

let () =
  Printexc.register_printer (function
    | Fiber_failure (name, exn) ->
        Some (Printf.sprintf "Fiber_failure(%s: %s)" name (Printexc.to_string exn))
    | Audit_failure (subject, violations) ->
        Some
          (Printf.sprintf "Audit_failure(%s: %s)" subject (String.concat "; " violations))
    | _ -> None)

type audit_subject = ..

(* The subject auditor is installed by [Analysis.Invariants] (which lives
   above the component libraries in the dependency order); until it is
   installed, registered subjects are inert. *)
let subject_auditor : (audit_subject -> (string * string list) option) ref =
  ref (fun _ -> None)

let set_subject_auditor f = subject_auditor := f

let audits_enabled_flag =
  ref (match Sys.getenv_opt "BLOBCR_AUDIT" with Some ("0" | "") | None -> false | Some _ -> true)

let audits_enabled () = !audits_enabled_flag
let set_audits_enabled v = audits_enabled_flag := v

type outcome = Completed | Cancelled_outcome | Failed of exn

(* A resumer delivers a value to a suspended fiber. It returns [false] when
   the suspension was already consumed (normally or by cancellation), which
   lets resources such as semaphores skip dead waiters without losing
   tokens. *)
type 'a resumer = 'a -> bool

type t = {
  mutable now : float;
  queue : (unit -> unit) Event_queue.t;
  seed : int;
  rng : Rng.t;
  mutable current : fiber option;
  mutable error : (string * exn) option;
  mutable live : int;
  mutable blocked : int;
  mutable next_id : int;
  mutable audit_subjects : audit_subject list;
}

and fiber = {
  id : int;
  fname : string;
  engine : t;
  mutable finished : bool;
  mutable cancel_requested : bool;
  mutable pending : pending option;
  done_ivar : outcome ivar;
}

and pending = { consumed : bool ref; cancel_now : unit -> unit }
and 'a ivar_state = Iempty of 'a resumer list | Ifull of 'a
and 'a ivar = { iengine : t; mutable istate : 'a ivar_state }

type _ Effect.t +=
  | Suspend : ('a resumer -> unit) -> 'a Effect.t

let create ?(seed = 42) ?schedule () =
  {
    now = 0.0;
    queue = Event_queue.create ?schedule ();
    seed;
    rng = Rng.create seed;
    current = None;
    error = None;
    live = 0;
    blocked = 0;
    next_id = 0;
    audit_subjects = [];
  }

let register_audit_subject t s = t.audit_subjects <- s :: t.audit_subjects
let audit_subjects t = List.rev t.audit_subjects

let audit_violations t =
  List.filter_map (fun s -> !subject_auditor s) (audit_subjects t)

let now t = t.now
let rng t = t.rng
let derived_rng t name = Rng.of_key ~seed:t.seed name
let schedule t = Event_queue.schedule t.queue
let current_fiber t = t.current
let live_fibers t = t.live
let blocked_fibers t = t.blocked
let enqueue t ~time f = Event_queue.add t.queue ~time f
let at t time f = enqueue t ~time f

let set_error t name exn =
  if t.error = None then t.error <- Some (name, exn)

let ivar_create engine = { iengine = engine; istate = Iempty [] }

let ivar_fill iv v =
  match iv.istate with
  | Ifull _ -> invalid_arg "Ivar.fill: already filled"
  | Iempty waiters ->
      iv.istate <- Ifull v;
      List.iter (fun resume -> ignore (resume v)) (List.rev waiters)

let finish t fiber outcome =
  fiber.finished <- true;
  fiber.pending <- None;
  t.live <- t.live - 1;
  ivar_fill fiber.done_ivar outcome

let with_current t fiber f =
  let saved = t.current in
  t.current <- Some fiber;
  Fun.protect ~finally:(fun () -> t.current <- saved) f

(* Runs [f] as the body of [fiber] under the effect handler that implements
   blocking. Every blocking primitive performs [Suspend register]; the
   handler parks the continuation, hands [register] a one-shot resumer, and
   returns to the scheduler. Resumers deliver the value by scheduling an
   event that continues the parked continuation. *)
let start_fiber t fiber f =
  let open Effect.Deep in
  match_with
    (fun () ->
      if fiber.cancel_requested then raise Cancelled;
      f ())
    ()
    {
      retc = (fun () -> finish t fiber Completed);
      exnc =
        (fun exn ->
          match exn with
          | Cancelled -> finish t fiber Cancelled_outcome
          | exn ->
              finish t fiber (Failed exn);
              set_error t fiber.fname exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  if fiber.cancel_requested then discontinue k Cancelled
                  else begin
                    let consumed = ref false in
                    t.blocked <- t.blocked + 1;
                    let unblock () =
                      consumed := true;
                      fiber.pending <- None;
                      t.blocked <- t.blocked - 1
                    in
                    let cancel_now () =
                      unblock ();
                      enqueue t ~time:t.now (fun () ->
                          with_current t fiber (fun () -> discontinue k Cancelled))
                    in
                    fiber.pending <- Some { consumed; cancel_now };
                    let resume v =
                      if !consumed then false
                      else begin
                        unblock ();
                        enqueue t ~time:t.now (fun () ->
                            with_current t fiber (fun () -> continue k v));
                        true
                      end
                    in
                    register resume
                  end)
          | _ -> None);
    }

let spawn_fiber t ?(name = "fiber") f =
  let fiber =
    {
      id = t.next_id;
      fname = name;
      engine = t;
      finished = false;
      cancel_requested = false;
      pending = None;
      done_ivar = ivar_create t;
    }
  in
  t.next_id <- t.next_id + 1;
  t.live <- t.live + 1;
  enqueue t ~time:t.now (fun () -> with_current t fiber (fun () -> start_fiber t fiber f));
  fiber

let cancel_fiber fiber =
  if not fiber.finished then begin
    fiber.cancel_requested <- true;
    match fiber.pending with
    | Some p when not !(p.consumed) -> p.cancel_now ()
    | _ -> ()
  end

let suspend (register : 'a resumer -> unit) : 'a = Effect.perform (Suspend register)

let sleep t d =
  if d < 0.0 then invalid_arg "Engine.sleep: negative duration";
  suspend (fun resume ->
      enqueue t ~time:(t.now +. d) (fun () -> ignore (resume ())))

let yield t = sleep t 0.0

let check_error t =
  match t.error with
  | Some (name, exn) ->
      t.error <- None;
      raise (Fiber_failure (name, exn))
  | None -> ()

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      t.now <- time;
      ev ();
      check_error t;
      true

let run t =
  while step t do
    ()
  done;
  (* Teardown audit: at quiescence every registered subject's structural
     invariants must hold (debug builds only, see BLOBCR_AUDIT). *)
  if audits_enabled () then
    match audit_violations t with
    | [] -> ()
    | (subject, violations) :: _ -> raise (Audit_failure (subject, violations))

let run_until t limit =
  let rec go () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= limit ->
        ignore (step t);
        go ()
    | _ -> ()
  in
  go ();
  if t.now < limit then t.now <- limit

module Group = struct
  type t = { mutable members : fiber list }

  let create () = { members = [] }
  let add g fiber = g.members <- fiber :: g.members

  let cancel _engine g =
    List.iter cancel_fiber g.members

  let live g = List.length (List.filter (fun f -> not f.finished) g.members)
end

module Ivar = struct
  type 'a t = 'a ivar

  let create = ivar_create
  let fill = ivar_fill

  let read iv =
    suspend (fun resume ->
        match iv.istate with
        | Ifull v -> ignore (resume v)
        | Iempty waiters -> iv.istate <- Iempty (resume :: waiters))

  let peek iv = match iv.istate with Ifull v -> Some v | Iempty _ -> None
  let is_filled iv = match iv.istate with Ifull _ -> true | Iempty _ -> false
end

module Fiber = struct
  type t = fiber
  type nonrec outcome = outcome = Completed | Cancelled_outcome | Failed of exn

  let spawn engine ?name ?group f =
    let fiber = spawn_fiber engine ?name f in
    (match group with Some g -> Group.add g fiber | None -> ());
    fiber

  let name f = f.fname
  let id f = f.id
  let cancel = cancel_fiber
  let is_finished f = f.finished
  let await f = Ivar.read f.done_ivar

  let join f =
    match await f with
    | Completed | Cancelled_outcome -> ()
    | Failed exn -> raise (Fiber_failure (f.fname, exn))
end

let all t ?(name = "all") fs =
  let fibers = List.mapi (fun i f -> Fiber.spawn t ~name:(Fmt.str "%s.%d" name i) f) fs in
  List.iter Fiber.join fibers

module Mailbox = struct
  type nonrec 'a t = {
    engine : t;
    messages : 'a Queue.t;
    mutable waiters : 'a resumer list; (* newest first *)
  }

  let create engine = { engine; messages = Queue.create (); waiters = [] }

  let send mb v =
    (* Deliver to the oldest live waiter, else enqueue. *)
    let rec deliver = function
      | [] ->
          Queue.add v mb.messages;
          []
      | oldest :: rest ->
          if oldest v then rest else deliver rest
    in
    mb.waiters <- List.rev (deliver (List.rev mb.waiters))

  let recv mb =
    suspend (fun resume ->
        if Queue.is_empty mb.messages then mb.waiters <- resume :: mb.waiters
        else ignore (resume (Queue.pop mb.messages)))

  let length mb = Queue.length mb.messages
end

module Semaphore = struct
  type nonrec t = {
    engine : t;
    mutable count : int;
    waiters : unit resumer Queue.t;
  }

  let create engine count =
    if count < 0 then invalid_arg "Semaphore.create";
    { engine; count; waiters = Queue.create () }

  let acquire s =
    suspend (fun resume ->
        if s.count > 0 then begin
          s.count <- s.count - 1;
          ignore (resume ())
        end
        else Queue.add resume s.waiters)

  let release s =
    let rec wake () =
      if Queue.is_empty s.waiters then s.count <- s.count + 1
      else if Queue.pop s.waiters () then ()
      else wake ()
    in
    wake ()

  let with_held s f =
    acquire s;
    Fun.protect ~finally:(fun () -> release s) f

  let available s = s.count

  let waiting s =
    Queue.fold (fun acc _ -> acc + 1) 0 s.waiters
end
