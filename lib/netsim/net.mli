(** Cluster network model.

    Hosts are connected through a switched fabric. Each host has a full-
    duplex NIC modelled as two FIFO byte-rate servers (uplink and downlink);
    an optional fabric rate server models core oversubscription. A transfer
    is segmented and pipelined through uplink → (fabric) → downlink, so a
    host receiving from many senders saturates at its downlink rate and
    many parallel transfers between disjoint host pairs proceed at full
    rate — the contention behaviour that dominates checkpoint storms.

    All blocking calls must run inside an engine fiber. *)

open Simcore

type t

type host
(** A network endpoint. *)

type config = {
  bandwidth : float;  (** NIC rate, bytes/second, both directions. *)
  latency : float;  (** one-way propagation delay, seconds *)
  segment_size : int;  (** pipelining granularity, bytes *)
  fabric_bandwidth : float option;
      (** aggregate core capacity; [None] = non-blocking fabric *)
}

val default_config : config
(** The paper's Grid'5000 graphene values: 117.5 MB/s, 0.1 ms latency,
    256 KiB segments, non-blocking fabric. *)

val create : Engine.t -> config -> t
(** A fresh network with no hosts. *)

val engine : t -> Engine.t
(** The engine the network was created on. *)

val config : t -> config
(** The configuration passed at creation. *)

val add_host : t -> name:string -> host
(** Attach a new host (its own uplink/downlink NIC pair) to the fabric. *)

val host_name : host -> string
(** The name passed to {!add_host}. *)

val host_id : host -> int
(** Dense id in attachment order, usable as a stream id. *)

val hosts : t -> host list
(** Every host, in attachment order. *)

val transfer : t -> src:host -> dst:host -> int -> unit
(** [transfer t ~src ~dst bytes] blocks until the payload has fully arrived
    at [dst]. Local transfers ([src == dst]) cost nothing. *)

val message : t -> src:host -> dst:host -> unit
(** Small control message: propagation latency only. *)

val bytes_sent : host -> int
(** Total bytes this host has put on its uplink. *)

val bytes_received : host -> int
(** Total bytes delivered to this host's downlink. *)

(** {1 Injected link faults}

    Hooks for the fault injector: both are deterministic functions of the
    simulation clock, so a replayed run degrades and heals at exactly the
    same instants. *)

val degrade : t -> factor:float -> until:float -> unit
(** Scale effective bandwidth down by [factor] (>= 1) until the absolute
    simulation time [until]: every segment pays [factor - 1] extra
    serialization delays on the sender side. A new call replaces the
    previous degradation. *)

val degradation : t -> float
(** The factor currently in force (1.0 once expired). *)

val partition : t -> side:(host -> bool) -> until:float -> unit
(** Cut the network along [side] until absolute time [until]: transfers
    and messages crossing the cut stall and complete after the heal.
    Transfers already past their initial handshake are not interrupted. *)

val heal : t -> unit
(** Remove the partition ahead of its deadline. Deliveries stalled on the
    cut resume immediately (at the heal instant, not the original
    deadline) and are counted in {!delivered_after_heal}. *)

val partitioned : t -> host -> host -> bool
(** Whether a message between the two hosts would currently stall. *)

val delivered_after_heal : t -> int
(** Deliveries (transfers or messages) that were stalled on a partition
    healed ahead of its deadline and then completed — the proof that an
    early {!heal} releases queued traffic instead of dropping it. *)
