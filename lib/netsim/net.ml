open Simcore

type host = {
  hid : int;
  hname : string;
  uplink : Rate_server.t;
  downlink : Rate_server.t;
  mutable sent : int;
  mutable received : int;
}

type config = {
  bandwidth : float;
  latency : float;
  segment_size : int;
  fabric_bandwidth : float option;
}

(* One partition epoch. Waiters block on [release] instead of sleeping to
   the deadline, so an early [heal] wakes them immediately; [healed_early]
   lets a released waiter know whether it owes its delivery to a heal. *)
type partition_state = {
  side : host -> bool;
  until : float;
  release : unit Engine.Ivar.t;
  mutable healed_early : bool;
}

type t = {
  engine : Engine.t;
  cfg : config;
  fabric : Rate_server.t option;
  mutable host_list : host list; (* newest first *)
  mutable next_id : int;
  mutable degrade_factor : float;
  mutable degrade_until : float;
  mutable part : partition_state option;
  mutable delivered_after_heal : int;
}

let default_config =
  {
    bandwidth = 117.5 *. float_of_int Size.mib;
    latency = 1e-4;
    segment_size = 256 * Size.kib;
    fabric_bandwidth = None;
  }

let create engine cfg =
  if cfg.bandwidth <= 0.0 then invalid_arg "Net.create: bandwidth";
  if cfg.segment_size <= 0 then invalid_arg "Net.create: segment_size";
  let fabric =
    Option.map
      (fun rate -> Rate_server.create engine ~rate ~name:"fabric" ())
      cfg.fabric_bandwidth
  in
  {
    engine;
    cfg;
    fabric;
    host_list = [];
    next_id = 0;
    degrade_factor = 1.0;
    degrade_until = 0.0;
    part = None;
    delivered_after_heal = 0;
  }

let engine t = t.engine
let config t = t.cfg

let add_host t ~name =
  let host =
    {
      hid = t.next_id;
      hname = name;
      uplink = Rate_server.create t.engine ~rate:t.cfg.bandwidth ~name:(name ^ ".up") ();
      downlink = Rate_server.create t.engine ~rate:t.cfg.bandwidth ~name:(name ^ ".down") ();
      sent = 0;
      received = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.host_list <- host :: t.host_list;
  host

let host_name h = h.hname
let host_id h = h.hid
let hosts t = List.rev t.host_list
let bytes_sent h = h.sent
let bytes_received h = h.received

(* ------------------------------------------------------------------ *)
(* Injected link faults *)

let degrade t ~factor ~until =
  if factor < 1.0 then invalid_arg "Net.degrade: factor must be >= 1";
  t.degrade_factor <- factor;
  t.degrade_until <- until

let degradation t =
  if Engine.now t.engine < t.degrade_until then t.degrade_factor else 1.0

let release_partition p = if not (Engine.Ivar.is_filled p.release) then Engine.Ivar.fill p.release ()

let partition t ~side ~until =
  (* Replacing an active partition releases its waiters; they re-check
     against the new epoch. *)
  (match t.part with Some p -> release_partition p | None -> ());
  if until > Engine.now t.engine then begin
    let p = { side; until; release = Engine.Ivar.create t.engine; healed_early = false } in
    t.part <- Some p;
    Engine.at t.engine until (fun () ->
        (match t.part with Some q when q == p -> t.part <- None | _ -> ());
        release_partition p)
  end
  else t.part <- None

let heal t =
  match t.part with
  | None -> ()
  | Some p ->
      p.healed_early <- true;
      t.part <- None;
      release_partition p

let partitioned t a b =
  match t.part with
  | Some p when Engine.now t.engine < p.until -> p.side a <> p.side b
  | _ -> false

let delivered_after_heal t = t.delivered_after_heal

(* A transfer or message that would cross the cut stalls until the
   partition clears — the deterministic model of packets timing out and
   being retransmitted once connectivity returns. Waiters block on the
   epoch's release ivar, so an early {!heal} wakes them at the heal
   instant instead of the original deadline; deliveries owed to an early
   heal are counted so tests can assert none were silently dropped. *)
let wait_partition t a b =
  let rec wait healed =
    match t.part with
    | Some p when Engine.now t.engine < p.until && p.side a <> p.side b ->
        Engine.Ivar.read p.release;
        wait (healed || p.healed_early)
    | _ -> if healed then t.delivered_after_heal <- t.delivered_after_heal + 1
  in
  wait false

(* Degradation is modelled as extra sender-side serialization time per
   segment: factor f makes the effective per-link bandwidth cfg.bandwidth/f
   without perturbing the rate servers' shared-contention behaviour. *)
let degrade_delay t seg =
  let f = degradation t in
  if f > 1.0 then
    Engine.sleep t.engine (float_of_int seg /. t.cfg.bandwidth *. (f -. 1.0))

type segment = Seg of int | Eof

(* Segments are pushed through the source uplink, then handed to a forwarder
   fiber that pushes them through the fabric (if any) and the destination
   downlink — a two-stage pipeline, so a transfer between two idle hosts
   runs at NIC rate, not half of it. *)
let transfer t ~src ~dst bytes =
  if bytes < 0 then invalid_arg "Net.transfer: negative size";
  if src != dst && bytes > 0 then begin
    wait_partition t src dst;
    Engine.sleep t.engine t.cfg.latency;
    let mb = Engine.Mailbox.create t.engine in
    let finished = Engine.Ivar.create t.engine in
    let _ =
      Engine.Fiber.spawn t.engine ~name:"net.forwarder" (fun () ->
          let rec drain () =
            match Engine.Mailbox.recv mb with
            | Eof -> ()
            | Seg seg ->
                Option.iter (fun fabric -> Rate_server.process fabric seg) t.fabric;
                Rate_server.process dst.downlink seg;
                dst.received <- dst.received + seg;
                drain ()
          in
          drain ();
          Engine.Ivar.fill finished ())
    in
    Fun.protect
      ~finally:(fun () -> Engine.Mailbox.send mb Eof)
      (fun () ->
        let remaining = ref bytes in
        while !remaining > 0 do
          let seg = min t.cfg.segment_size !remaining in
          Rate_server.process src.uplink seg;
          degrade_delay t seg;
          src.sent <- src.sent + seg;
          Engine.Mailbox.send mb (Seg seg);
          remaining := !remaining - seg
        done);
    Engine.Ivar.read finished
  end

let message t ~src ~dst =
  if src != dst then begin
    wait_partition t src dst;
    Engine.sleep t.engine t.cfg.latency
  end
