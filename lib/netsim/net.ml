open Simcore

type host = {
  hid : int;
  hname : string;
  uplink : Rate_server.t;
  downlink : Rate_server.t;
  mutable sent : int;
  mutable received : int;
}

type config = {
  bandwidth : float;
  latency : float;
  segment_size : int;
  fabric_bandwidth : float option;
}

type t = {
  engine : Engine.t;
  cfg : config;
  fabric : Rate_server.t option;
  mutable host_list : host list; (* newest first *)
  mutable next_id : int;
  mutable degrade_factor : float;
  mutable degrade_until : float;
  mutable partition_side : (host -> bool) option;
  mutable partition_until : float;
}

let default_config =
  {
    bandwidth = 117.5 *. float_of_int Size.mib;
    latency = 1e-4;
    segment_size = 256 * Size.kib;
    fabric_bandwidth = None;
  }

let create engine cfg =
  if cfg.bandwidth <= 0.0 then invalid_arg "Net.create: bandwidth";
  if cfg.segment_size <= 0 then invalid_arg "Net.create: segment_size";
  let fabric =
    Option.map
      (fun rate -> Rate_server.create engine ~rate ~name:"fabric" ())
      cfg.fabric_bandwidth
  in
  {
    engine;
    cfg;
    fabric;
    host_list = [];
    next_id = 0;
    degrade_factor = 1.0;
    degrade_until = 0.0;
    partition_side = None;
    partition_until = 0.0;
  }

let engine t = t.engine
let config t = t.cfg

let add_host t ~name =
  let host =
    {
      hid = t.next_id;
      hname = name;
      uplink = Rate_server.create t.engine ~rate:t.cfg.bandwidth ~name:(name ^ ".up") ();
      downlink = Rate_server.create t.engine ~rate:t.cfg.bandwidth ~name:(name ^ ".down") ();
      sent = 0;
      received = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.host_list <- host :: t.host_list;
  host

let host_name h = h.hname
let host_id h = h.hid
let hosts t = List.rev t.host_list
let bytes_sent h = h.sent
let bytes_received h = h.received

(* ------------------------------------------------------------------ *)
(* Injected link faults *)

let degrade t ~factor ~until =
  if factor < 1.0 then invalid_arg "Net.degrade: factor must be >= 1";
  t.degrade_factor <- factor;
  t.degrade_until <- until

let degradation t =
  if Engine.now t.engine < t.degrade_until then t.degrade_factor else 1.0

let partition t ~side ~until =
  t.partition_side <- Some side;
  t.partition_until <- until

let heal t = t.partition_side <- None

let partitioned t a b =
  match t.partition_side with
  | Some side when Engine.now t.engine < t.partition_until -> side a <> side b
  | _ -> false

(* A transfer or message that would cross the cut stalls until the
   partition heals — the deterministic model of packets timing out and
   being retransmitted once connectivity returns. *)
let rec wait_partition t a b =
  if partitioned t a b then begin
    let dt = t.partition_until -. Engine.now t.engine in
    Engine.sleep t.engine (Float.max 1e-6 dt);
    wait_partition t a b
  end

(* Degradation is modelled as extra sender-side serialization time per
   segment: factor f makes the effective per-link bandwidth cfg.bandwidth/f
   without perturbing the rate servers' shared-contention behaviour. *)
let degrade_delay t seg =
  let f = degradation t in
  if f > 1.0 then
    Engine.sleep t.engine (float_of_int seg /. t.cfg.bandwidth *. (f -. 1.0))

type segment = Seg of int | Eof

(* Segments are pushed through the source uplink, then handed to a forwarder
   fiber that pushes them through the fabric (if any) and the destination
   downlink — a two-stage pipeline, so a transfer between two idle hosts
   runs at NIC rate, not half of it. *)
let transfer t ~src ~dst bytes =
  if bytes < 0 then invalid_arg "Net.transfer: negative size";
  if src != dst && bytes > 0 then begin
    wait_partition t src dst;
    Engine.sleep t.engine t.cfg.latency;
    let mb = Engine.Mailbox.create t.engine in
    let finished = Engine.Ivar.create t.engine in
    let _ =
      Engine.Fiber.spawn t.engine ~name:"net.forwarder" (fun () ->
          let rec drain () =
            match Engine.Mailbox.recv mb with
            | Eof -> ()
            | Seg seg ->
                Option.iter (fun fabric -> Rate_server.process fabric seg) t.fabric;
                Rate_server.process dst.downlink seg;
                dst.received <- dst.received + seg;
                drain ()
          in
          drain ();
          Engine.Ivar.fill finished ())
    in
    Fun.protect
      ~finally:(fun () -> Engine.Mailbox.send mb Eof)
      (fun () ->
        let remaining = ref bytes in
        while !remaining > 0 do
          let seg = min t.cfg.segment_size !remaining in
          Rate_server.process src.uplink seg;
          degrade_delay t seg;
          src.sent <- src.sent + seg;
          Engine.Mailbox.send mb (Seg seg);
          remaining := !remaining - seg
        done);
    Engine.Ivar.read finished
  end

let message t ~src ~dst =
  if src != dst then begin
    wait_partition t src dst;
    Engine.sleep t.engine t.cfg.latency
  end
