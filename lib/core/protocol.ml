open Simcore

type branch_error = { index : int; label : string; stage : string; error : exn }

type 'a partial = { completed : (int * 'a) list; failed : branch_error list }

exception Partial_failure of string

let () =
  Printexc.register_printer (function
    | Partial_failure msg -> Some ("Protocol.Partial_failure: " ^ msg)
    | _ -> None)

let pp_branch_error ppf e =
  Fmt.pf ppf "branch %d (%s) failed during %s: %s" e.index e.label e.stage
    (Printexc.to_string e.error)

type error_class = [ `Transient | `Unavailable | `Service_crash | `Cancelled | `Fatal ]

(* Recovery dispatch is driven by exception *type*, never by message
   strings: each class names the remedy, and anything unrecognized is fatal
   by design (fail loudly rather than retry blindly). *)
let error_class : exn -> error_class = function
  | Faults.Injected_error _ | Storage.Disk.Full _ -> `Transient
  | Blobseer.Types.Provider_down _ -> `Unavailable
  | Blobseer.Types.Service_crashed _ -> `Service_crash
  | Engine.Cancelled -> `Cancelled
  | _ -> `Fatal

let pp_error_class ppf (c : error_class) =
  Fmt.string ppf
    (match c with
    | `Transient -> "transient"
    | `Unavailable -> "unavailable"
    | `Service_crash -> "service-crash"
    | `Cancelled -> "cancelled"
    | `Fatal -> "fatal")

(* Internal: tags an exception with the protocol stage it escaped from. *)
exception Staged of string * exn

(* Run one labelled action per branch in its own fiber and collect typed
   per-branch outcomes instead of letting the first exception abort the
   join. A branch whose VM fail-stopped mid-action unwinds with
   [Engine.Cancelled] (from pause points / proxy suspend), which is
   recorded like any other error: the caller — typically the supervisor —
   decides whether to retry the failed subset.

   Branches run outside any VM group, so a branch stranded on a collective
   (e.g. a drain barrier missing a dead rank) blocks forever; the
   supervisor handles that by running the whole protocol call inside a
   cancellable worker fiber and abandoning it on failure detection. *)
let run_branches engine ~name branches =
  let n = List.length branches in
  let results = Array.make n None in
  let body i (label, action) () =
    match action () with
    | value -> results.(i) <- Some (Ok value)
    | exception ((Stack_overflow | Out_of_memory | Assert_failure _) as exn) -> raise exn
    | exception Staged (stage, error) ->
        results.(i) <- Some (Error { index = i; label; stage; error })
    | exception error ->
        results.(i) <- Some (Error { index = i; label; stage = "?"; error })
  in
  let fibers =
    List.mapi
      (fun i branch ->
        Engine.Fiber.spawn engine ~name:(Fmt.str "%s.%d" name i) (body i branch))
      branches
  in
  List.iter (fun fiber -> ignore (Engine.Fiber.await fiber)) fibers;
  let completed = ref [] and failed = ref [] in
  Array.iteri
    (fun i -> function
      | Some (Ok value) -> completed := (i, value) :: !completed
      | Some (Error err) -> failed := err :: !failed
      | None ->
          (* Unreachable: every awaited branch records an outcome. *)
          failed :=
            { index = i; label = "?"; stage = "?"; error = Failure (name ^ ": branch vanished") }
            :: !failed)
    results;
  { completed = List.rev !completed; failed = List.rev !failed }

let staged stage f = try f () with exn -> raise (Staged (stage, exn))

let finish partial =
  if partial.failed = [] then Ok (List.map snd partial.completed) else Error partial

let global_checkpoint ?(mode = Approach.Stop_the_world) (cluster : Cluster.t) ~instances
    ~dump =
  let branch (inst : Approach.instance) () =
    Obs.Span.with_ cluster.engine ~component:"proto" ~name:"ckpt"
      ~attrs:[ ("instance", Obs.Record.Str inst.Approach.id) ]
    @@ fun () ->
    staged "dump" (fun () ->
        Obs.Span.with_ cluster.engine ~component:"proto" ~name:"ckpt.dump" (fun () ->
            dump inst));
    staged "snapshot" (fun () ->
        Obs.Span.with_ cluster.engine ~component:"proto" ~name:"ckpt.snapshot" (fun () ->
            Approach.request_checkpoint ~mode cluster inst))
  in
  finish
    (run_branches cluster.engine ~name:"global-checkpoint"
       (List.map (fun (inst : Approach.instance) -> (inst.Approach.id, branch inst)) instances))

let global_restart (cluster : Cluster.t) ~plan ~restore =
  let branch (node, id, snapshot) () =
    Obs.Span.with_ cluster.engine ~component:"proto" ~name:"restart"
      ~attrs:[ ("instance", Obs.Record.Str id) ]
    @@ fun () ->
    let inst =
      staged "restart" (fun () ->
          Obs.Span.with_ cluster.engine ~component:"proto" ~name:"restart.deploy" (fun () ->
              Approach.restart cluster ~node ~id snapshot))
    in
    staged "restore" (fun () ->
        Obs.Span.with_ cluster.engine ~component:"proto" ~name:"restart.restore" (fun () ->
            restore inst));
    inst
  in
  finish
    (run_branches cluster.engine ~name:"global-restart"
       (List.map (fun ((_, id, _) as step) -> (id, branch step)) plan))

let errors_summary failed =
  String.concat "; " (List.map (fun e -> Fmt.str "%a" pp_branch_error e) failed)

let global_checkpoint_exn ?mode cluster ~instances ~dump =
  match global_checkpoint ?mode cluster ~instances ~dump with
  | Ok snapshots -> snapshots
  | Error { failed; _ } ->
      raise (Partial_failure ("global checkpoint: " ^ errors_summary failed))

let global_restart_exn cluster ~plan ~restore =
  match global_restart cluster ~plan ~restore with
  | Ok instances -> instances
  | Error { failed; _ } ->
      raise (Partial_failure ("global restart: " ^ errors_summary failed))

let kill_all instances = List.iter Approach.kill instances
