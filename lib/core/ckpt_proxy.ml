open Simcore

exception Not_local

type t = {
  cluster : Cluster.t;
  pnode : Cluster.node;
  mutable served : int;
  mutable failed : int;
  mutable transients : int;
}

let create cluster ~node = { cluster; pnode = node; served = 0; failed = 0; transients = 0 }
let node t = t.pnode

let m_served = Obs.Metrics.counter ~component:"proxy" ~name:"requests_served"
let m_failed = Obs.Metrics.counter ~component:"proxy" ~name:"requests_failed"
let m_transients = Obs.Metrics.counter ~component:"proxy" ~name:"transient_retries"

(* Transient local-disk errors during the snapshot are retried in place
   (with the VM still suspended, so the snapshot stays consistent) rather
   than surfaced as a failed checkpoint request. *)
let snapshot_retries = 3
let snapshot_backoff = 0.02

let request_checkpoint t ~vm ~snapshot =
  (* Authentication: only VM instances hosted on this compute node may
     request checkpoints. *)
  if not (Vmsim.Vm.host vm == t.pnode.Cluster.host) then raise Not_local;
  let engine = t.cluster.Cluster.engine in
  (* Local REST round-trip. *)
  Obs.Span.with_ engine ~component:"proxy" ~name:"proxy.request" (fun () ->
      Engine.sleep engine t.cluster.Cluster.cal.Calibration.proxy_request_cost);
  Vmsim.Vm.suspend vm;
  let rec attempt n =
    try Ok (snapshot ()) with
    | Engine.Cancelled as exn -> raise exn
    | Faults.Injected_error _ when n < snapshot_retries ->
        t.transients <- t.transients + 1;
        Obs.Metrics.incr m_transients;
        Trace.emit engine
          ~component:(Fmt.str "proxy@%s" (Netsim.Net.host_name t.pnode.Cluster.host))
          "transient snapshot error, retry %d/%d" (n + 1) snapshot_retries;
        Obs.Span.with_ engine ~component:"proxy" ~name:"proxy.backoff" (fun () ->
            Engine.sleep engine (snapshot_backoff *. float_of_int (1 lsl n)));
        attempt (n + 1)
    | exn -> Error exn
  in
  let result = attempt 0 in
  (* The proxy resumes the VM regardless of the outcome and notifies the
     guest of the result. *)
  Vmsim.Vm.resume vm;
  match result with
  | Ok value ->
      t.served <- t.served + 1;
      Obs.Metrics.incr m_served;
      Trace.emit engine
        ~component:(Fmt.str "proxy@%s" (Netsim.Net.host_name t.pnode.Cluster.host))
        "checkpoint request served for %s" (Vmsim.Vm.name vm);
      value
  | Error exn ->
      t.failed <- t.failed + 1;
      Obs.Metrics.incr m_failed;
      raise exn

let requests_served t = t.served
let failures t = t.failed
let transient_retries t = t.transients
