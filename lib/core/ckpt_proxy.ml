open Simcore

exception Not_local

type t = {
  cluster : Cluster.t;
  pnode : Cluster.node;
  mutable served : int;
  mutable failed : int;
  mutable transients : int;
}

let create cluster ~node = { cluster; pnode = node; served = 0; failed = 0; transients = 0 }
let node t = t.pnode

let m_served = Obs.Metrics.counter ~component:"proxy" ~name:"requests_served"
let m_failed = Obs.Metrics.counter ~component:"proxy" ~name:"requests_failed"
let m_transients = Obs.Metrics.counter ~component:"proxy" ~name:"transient_retries"

(* Stop-the-world window of a checkpoint request: suspend entry to resume
   exit. For classic requests this covers the whole snapshot; for live
   requests only the freeze (and, without background shipping, the final
   delta commit). *)
let m_suspend_seconds = Obs.Metrics.histogram ~component:"ckpt" ~name:"suspend_seconds"

(* Transient local-disk errors during the snapshot are retried in place
   (with the VM still suspended, so the snapshot stays consistent) rather
   than surfaced as a failed checkpoint request. *)
let snapshot_retries = 3
let snapshot_backoff = 0.02

let trace t engine fmt =
  Trace.emit engine
    ~component:(Fmt.str "proxy@%s" (Netsim.Net.host_name t.pnode.Cluster.host))
    fmt

(* Run [action] with transient local-disk errors retried in place with
   exponential backoff. What "in place" means depends on the caller: the
   classic path retries with the VM still suspended (so the snapshot stays
   consistent), the live ship path with the VM running (the frozen epoch
   is what stays consistent). *)
let attempt_with_retries t engine action =
  let rec attempt n =
    try Ok (action ()) with
    | Engine.Cancelled as exn -> raise exn
    | Faults.Injected_error _ when n < snapshot_retries ->
        t.transients <- t.transients + 1;
        Obs.Metrics.incr m_transients;
        trace t engine "transient snapshot error, retry %d/%d" (n + 1) snapshot_retries;
        Obs.Span.with_ engine ~component:"proxy" ~name:"proxy.backoff" (fun () ->
            Engine.sleep engine (snapshot_backoff *. float_of_int (1 lsl n)));
        attempt (n + 1)
    | exn -> Error exn
  in
  attempt 0

let authenticate t ~vm =
  (* Authentication: only VM instances hosted on this compute node may
     request checkpoints. *)
  if not (Vmsim.Vm.host vm == t.pnode.Cluster.host) then raise Not_local;
  let engine = t.cluster.Cluster.engine in
  (* Local REST round-trip. *)
  Obs.Span.with_ engine ~component:"proxy" ~name:"proxy.request" (fun () ->
      Engine.sleep engine t.cluster.Cluster.cal.Calibration.proxy_request_cost);
  engine

let serve t engine ~vm = function
  | Ok value ->
      t.served <- t.served + 1;
      Obs.Metrics.incr m_served;
      trace t engine "checkpoint request served for %s" (Vmsim.Vm.name vm);
      value
  | Error exn ->
      t.failed <- t.failed + 1;
      Obs.Metrics.incr m_failed;
      raise exn

let request_checkpoint t ~vm ~snapshot =
  let engine = authenticate t ~vm in
  let suspended_at = Engine.now engine in
  Vmsim.Vm.suspend vm;
  let result = attempt_with_retries t engine snapshot in
  (* The proxy resumes the VM regardless of the outcome and notifies the
     guest of the result. *)
  Vmsim.Vm.resume vm;
  Obs.Metrics.observe m_suspend_seconds (Engine.now engine -. suspended_at);
  serve t engine ~vm result

let request_live_checkpoint t ~vm ~suspended ~shipped =
  let engine = authenticate t ~vm in
  let suspended_at = Engine.now engine in
  Vmsim.Vm.suspend vm;
  let frozen = attempt_with_retries t engine suspended in
  Vmsim.Vm.resume vm;
  Obs.Metrics.observe m_suspend_seconds (Engine.now engine -. suspended_at);
  match frozen with
  | Error _ as err -> serve t engine ~vm err
  | Ok () ->
      (* The guest is already running again; ship the frozen epoch in the
         background. Transient errors retry against the intact frozen
         state, so the published snapshot still describes the instant of
         the suspend. *)
      serve t engine ~vm (attempt_with_retries t engine shipped)

let requests_served t = t.served
let failures t = t.failed
let transient_retries t = t.transients
