(** Checkpointing proxy.

    One proxy runs on every compute node. A guest contacts it over a local
    REST-ful request to ask for a snapshot of its virtual disk; the proxy
    authenticates that the caller is hosted on this very node (it is not
    globally accessible — Section 3.2), then suspends the VM, takes the
    snapshot through a caller-supplied action (CLONE+COMMIT for BlobCR,
    image export for qcow2), resumes the VM, and replies with the result.
    The VM is resumed even when the snapshot action fails. *)

type t

exception Not_local
(** Raised when a VM asks a proxy on a different node. *)

val create : Cluster.t -> node:Cluster.node -> t
(** Start the proxy service on [node]. *)

val node : t -> Cluster.node
(** The compute node this proxy serves. *)

val request_checkpoint : t -> vm:Vmsim.Vm.t -> snapshot:(unit -> 'a) -> 'a
(** Full proxy cycle: authenticate, suspend, run [snapshot], resume.
    Charges the local request round-trip. Must be called from a fiber.
    Transient disk errors ({!Faults.Injected_error}) inside [snapshot]
    are retried with exponential backoff while the VM stays suspended.
    The suspend-entry-to-resume-exit window is observed on the
    [ckpt.suspend_seconds] histogram. *)

val request_live_checkpoint :
  t -> vm:Vmsim.Vm.t -> suspended:(unit -> unit) -> shipped:(unit -> 'a) -> 'a
(** Live variant of {!request_checkpoint}: authenticate, suspend, run
    [suspended] (freeze the dirty set — and, without background shipping,
    commit the final delta), resume, then run [shipped] with the guest
    already running (background commit of the frozen epoch). Only the
    suspended part counts toward [ckpt.suspend_seconds]. Both closures get
    the transient-retry treatment; a transient failure in [shipped]
    retries against the intact frozen state, so the published snapshot
    still describes the instant of the suspend. Failures in either closure
    count as a failed request and propagate (the caller owns rolling the
    frozen epoch back). *)

val requests_served : t -> int
(** Snapshot requests completed successfully. *)

val failures : t -> int
(** Requests whose snapshot action ultimately failed. *)

val transient_retries : t -> int
(** Snapshot attempts repeated after an injected transient error. *)
