(** Supervised execution with automatic failure recovery.

    The supervisor turns the manual kill/restart choreography of the
    fault-tolerance examples into library behaviour: it deploys a gang of
    instances, drives a workload in fixed work units with periodic global
    checkpoints, watches the gang through a heartbeat prober running on
    the cluster's dedicated supervisor host, and on failure rolls the
    whole gang back to the last globally consistent snapshot set and
    re-deploys it on spare nodes.

    Detection: an instance is declared dead after missing
    [misses_allowed] consecutive heartbeats (a fail-stopped VM or a
    crash-stopped node). The workload can also report the gang down
    itself (a rank observing its VM die mid-iteration), which usually
    beats the prober.

    Recovery: the whole gang — survivors included — is fail-stopped,
    because coordinated checkpoints are only consistent globally; then
    every instance restarts from the last committed snapshot on live
    nodes not already in use, retrying a partially failed restart on
    fresh nodes up to [max_recovery_attempts] times before declaring the
    remaining instances abandoned.

    Progress accounting: time between the last committed checkpoint and a
    detected failure is {e wasted} (recomputed after rollback); time
    covered by a committed checkpoint is {e useful}; the
    detection-to-resume interval is recorded as recovery latency. *)

open Simcore

type policy = {
  heartbeat_period : float;  (** seconds between probe rounds *)
  misses_allowed : int;  (** consecutive missed beats before declaring death *)
  max_recovery_attempts : int;  (** restart rounds per recovery *)
  checkpoint_interval : int;  (** work units between global checkpoints *)
  ckpt_mode : Approach.mode;
      (** stop-the-world or live (pre-copy + background commit); with the
          live mode, a checkpoint still only commits once its background
          ships finish — a crash mid-background-commit rolls back to the
          last fully committed snapshot set *)
}

val default_policy : policy
(** 1 s heartbeats, 2 misses, 3 restart attempts, checkpoint every 4 units,
    stop-the-world checkpoints. *)

type workload = {
  setup : Approach.instance list -> unit;
      (** (re)bind the application to a gang — fresh communicator, ranks *)
  iterate : unit -> [ `Done | `Gang_down ];
      (** run one work unit; [`Gang_down] when a rank saw its VM die *)
  dump : Approach.instance -> unit;  (** guest-side state dump (collective) *)
  restore : Approach.instance -> unit;  (** re-read dumped state after restart *)
  resumed : int -> unit;  (** notify: state now reflects [n] completed units *)
}

type event =
  | Deployed of { at : float; ids : string list }
  | Checkpoint_committed of { at : float; units : int; elapsed : float }
  | Checkpoint_degraded of { at : float; units : int; reason : string }
      (** a global checkpoint failed; the previous snapshot set remains
          authoritative *)
  | Failure_detected of { at : float; dead : string list }
  | Recovered of { at : float; attempt : int; resumed_units : int }
  | Abandoned of { at : float; ids : string list }
  | Journal_recovered of { at : float; intents : int }
      (** metadata-plane journal recovery rolled back half-applied
          publications before a retry or restart *)
  | Scrubbed of { at : float; repaired : int; unrepairable : int }
      (** recovery-time scrub pass over the repository *)
  | Rollback_demoted of { at : float; from_units : int; to_units : int }
      (** newest snapshot set found unrestorable; falling back to the
          previous one *)
  | Failed_over of
      { at : float; rpo_versions : int; rpo_bytes : int; rpo_units : int; rto : float }
      (** a primary-site disaster was survived by promoting the standby
          repository: [rpo_versions]/[rpo_bytes] are publications lost in
          flight, [rpo_units] the work units rolled back relative to the
          last primary-committed checkpoint, [rto] the detection-to-running
          failover latency *)

type report = {
  finished : bool;  (** all units completed *)
  units_completed : int;
  checkpoints : int;  (** committed global checkpoints *)
  recoveries : int;
  useful_time : float;
  wasted_time : float;
  recovery_latencies : float list;  (** detection → resumed, per recovery *)
  checkpoint_time : float;  (** total time inside committed checkpoints *)
  events : event list;  (** chronological *)
}

type t

type Engine.audit_subject += Audit_supervisor of t

val run :
  Cluster.t ->
  kind:Approach.kind ->
  ?policy:policy ->
  ?scrub:Blobseer.Scrubber.config ->
  ?compaction:Blobseer.Compactor.config ->
  ?on_ready:(t -> unit) ->
  id:string ->
  gang:int ->
  units:int ->
  workload:workload ->
  unit ->
  report
(** Deploy [gang] instances named [id].[k], run [units] work units under
    supervision, return the final report. Takes a mandatory initial
    checkpoint before the first unit (recovery always has a snapshot set)
    and a final one after the last. [on_ready] fires after the initial
    deploy + checkpoint — the place to start a fault injector. Must be
    called from within {!Cluster.run}.

    With [scrub], a background {!Blobseer.Scrubber} runs on the supervisor
    host for the duration of the run, and every recovery scrubs the
    repository before picking its rollback target: repairs run first, and
    a snapshot set that still contains an unrepairable chunk is demoted to
    the previous committed set ({!event.Rollback_demoted}).

    With [compaction], a background {!Blobseer.Compactor} enforces the
    given retention policy for the duration of the run, registered with
    the cluster (so fault handlers can crash it) and gated on pin
    sources: the supervisor's rollback snapshot sets, the scrubber's
    in-progress marks and the replicator's in-flight window. Its journal
    is settled (recovered if necessary) before teardown. *)

val fault_handlers : t -> Faults.handlers
(** Handlers wiring injector actions onto this cluster: host crashes
    fail-stop compute nodes (and this supervisor's instances on them),
    provider/metadata failures hit the BlobSeer services, transient disk
    errors arm node-local disks, degradation/partitions hit the network.
    Targets are taken modulo the respective population size. *)

val report : t -> report
(** Counters accumulated over the supervised run. *)

val instances : t -> Approach.instance list
(** The gang's current (possibly redeployed) instances. *)

val cluster : t -> Cluster.t
(** The cluster this supervisor drives. *)

val scrubber : t -> Blobseer.Scrubber.t option
(** The background scrubber, when [run] was given a [scrub] config. *)

val rollback_pins : t -> (int * int) list
(** (blob, version) pairs the supervisor may still restart from — both
    committed snapshot sets — plus versions the scrubber is mid-repair on.
    Pass to {!Gc.collect} as [pins] so collection cannot prune a needed
    rollback target (the GC/rollback race). *)

val audit : t -> string list
(** Invariant check used by the teardown audit: every instance ever
    declared dead must have been restarted or accounted abandoned, and a
    completed run must have either finished or abandoned instances. *)
