(** The checkpoint-restart approaches under evaluation.

    Three image stacks implement disk snapshotting; combined with the two
    state-dump methods (application-level files vs process-level blcr,
    which live in the workload drivers) they give the paper's five
    configurations:

    - {!Blobcr}: BlobSeer-backed mirroring module; snapshot = CLONE+COMMIT
      of local differences (incremental). → BlobCR-app / BlobCR-blcr.
    - {!Qcow2_disk}: local qcow2 over a PVFS-shared raw base; snapshot =
      copy the whole local image file to PVFS. → qcow2-disk-app / -blcr.
    - {!Qcow2_full}: like qcow2-disk but [savevm] dumps the complete VM
      state (RAM, devices) into the image before copying; restart resumes
      without rebooting. → qcow2-full. *)

open Simcore
open Blobseer
open Vdisk
open Vmsim

type kind = Blobcr | Qcow2_disk | Qcow2_full

val kind_name : kind -> string
(** ["blobcr" | "qcow2-disk" | "qcow2-full"]. *)

type mode =
  | Stop_the_world
      (** Classic BlobCR cycle: the VM stays suspended for the entire
          CLONE+COMMIT (or image export). *)
  | Live of { rounds : int; background : bool }
      (** Live checkpointing (DESIGN.md §17): up to [rounds] pre-copy
          rounds stream dirty chunks while the guest runs, then the final
          delta is frozen copy-on-write under a (short) suspend. With
          [background] the frozen delta ships after the resume, shrinking
          the suspend window to the metadata-only freeze; without it the
          final delta commits during the suspend (window proportional to
          the last round's dirty bytes, not the image size). Only the
          BlobCR stack supports this; qcow2 stacks fall back to
          {!Stop_the_world}. *)

val mode_name : mode -> string
(** ["stop-the-world" | "live(rounds=k,bg|sync)"] (for traces and CSV). *)

type stack = Mirror_stack of Mirror.t | Qcow2_stack of Qcow2.t

type instance = {
  id : string;
  kind : kind;
  node : Cluster.node;
  vm : Vm.t;
  stack : stack;
  proxy : Ckpt_proxy.t;
  mutable epoch : int;  (** checkpoints taken so far *)
}

type snapshot =
  | Blobcr_snapshot of { image : Client.blob; version : int }
  | Qcow2_snapshot of { remote : Qcow2.remote_image }
  | Full_snapshot of { remote : Qcow2.remote_image; snapshot_name : string }

val deploy : Cluster.t -> kind -> node:Cluster.node -> id:string -> instance
(** Fresh instance from the base image: build the image stack, boot the
    guest, format its file system. Blocks through boot. *)

val request_checkpoint : ?mode:mode -> Cluster.t -> instance -> snapshot
(** Ask the instance's local proxy for a disk (or full-VM) snapshot. The
    guest must have dumped and synced its state beforehand. [mode]
    (default {!Stop_the_world}) selects the live pre-copy + background
    commit cycle for BlobCR instances; any failure after a freeze rolls
    the frozen epoch back into the dirty set, so the last fully committed
    snapshot remains the rollback target. Pre-copy activity is counted on
    [ckpt.precopy_rounds] / [ckpt.precopy_bytes]; the stop-the-world
    window lands on the [ckpt.suspend_seconds] histogram either way. *)

val kill : instance -> unit
(** Fail-stop the instance and release its node-local image state (the
    paper's failure model: local storage is lost). *)

val restart : Cluster.t -> node:Cluster.node -> id:string -> snapshot -> instance
(** Re-deploy from a snapshot on a (typically different) node: reboot from
    the disk snapshot and mount the checkpointed file system — or, for
    {!Full_snapshot}, fetch the VM state and resume without rebooting
    (restored processes are re-registered from the saved state). *)

val snapshot_bytes : snapshot -> int
(** Size of this one snapshot: incremental bytes for BlobCR, exported file
    size for qcow2 (Figure 4 / Table 1 metric). *)

val storage_total : Cluster.t -> int
(** Bytes held by repository + PVFS beyond the two base images — the
    cumulative storage metric of Figure 5(b). *)

val encode_vm_state : Vm.t -> Payload.t
(** Serialized full-VM memory image: process table plus RAM padding (used
    by savevm; exposed for tests). *)

val decode_vm_state : Payload.t -> (string * int) list
(** Recover the process table from a VM state payload. *)
