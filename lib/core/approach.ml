open Simcore
open Blobseer
open Vdisk
open Vmsim

type kind = Blobcr | Qcow2_disk | Qcow2_full

let kind_name = function
  | Blobcr -> "blobcr"
  | Qcow2_disk -> "qcow2-disk"
  | Qcow2_full -> "qcow2-full"

type mode = Stop_the_world | Live of { rounds : int; background : bool }

let mode_name = function
  | Stop_the_world -> "stop-the-world"
  | Live { rounds; background } ->
      Fmt.str "live(rounds=%d,%s)" rounds (if background then "bg" else "sync")

type stack = Mirror_stack of Mirror.t | Qcow2_stack of Qcow2.t

type instance = {
  id : string;
  kind : kind;
  node : Cluster.node;
  vm : Vm.t;
  stack : stack;
  proxy : Ckpt_proxy.t;
  mutable epoch : int;
}

type snapshot =
  | Blobcr_snapshot of { image : Client.blob; version : int }
  | Qcow2_snapshot of { remote : Qcow2.remote_image }
  | Full_snapshot of { remote : Qcow2.remote_image; snapshot_name : string }

(* ------------------------------------------------------------------ *)
(* Full VM state serialization *)

let vm_state_magic = "BLOBCRVM"

let encode_vm_state vm =
  let procs = List.map (fun p -> (Process.name p, Process.mem p)) (Vm.processes vm) in
  let body = Marshal.to_bytes procs [] in
  let header = Bytes.create 16 in
  Bytes.blit_string vm_state_magic 0 header 0 8;
  Bytes.set_int64_le header 8 (Int64.of_int (Bytes.length body));
  let prefix = Payload.concat [ Payload.of_bytes header; Payload.of_bytes body ] in
  let target = Vm.ram_state_bytes vm in
  if Payload.length prefix >= target then prefix
  else
    Payload.concat [ prefix; Payload.pattern ~seed:0xFEEDL (target - Payload.length prefix) ]

let decode_vm_state payload =
  let header = Payload.to_string (Payload.sub payload ~pos:0 ~len:16) in
  if String.sub header 0 8 <> vm_state_magic then failwith "decode_vm_state: bad magic";
  let len = Int64.to_int (Bytes.get_int64_le (Bytes.of_string header) 8) in
  let body = Payload.to_string (Payload.sub payload ~pos:16 ~len) in
  (Marshal.from_string body 0 : (string * int) list)

(* ------------------------------------------------------------------ *)
(* Deployment *)

let make_vm (cluster : Cluster.t) ~node ~device ~id =
  Vm.create cluster.engine ~host:node.Cluster.host ~device ~ram:cluster.cal.guest_ram
    ~os_ram_overhead:cluster.cal.os_ram_overhead ~boot:cluster.cal.boot ~name:id ()

let make_stack (cluster : Cluster.t) kind ~node ~id ~base =
  match kind with
  | Blobcr ->
      let blob, version =
        match base with
        | Some (Blobcr_snapshot { image; version }) -> (image, version)
        | None -> (cluster.base_blob, cluster.base_version)
        | Some _ -> invalid_arg "Approach: snapshot kind mismatch"
      in
      let prefetch =
        if cluster.cal.Calibration.prefetch_enabled then Some cluster.prefetch else None
      in
      Mirror_stack
        (Mirror.create cluster.engine ~host:node.Cluster.host ~local_disk:node.Cluster.disk
           ~base:blob ~base_version:version ?prefetch ~name:(id ^ ".mirror") ())
  | Qcow2_disk | Qcow2_full ->
      let backing =
        match base with
        | Some (Qcow2_snapshot { remote }) -> Qcow2.Qcow2_remote remote
        | Some (Full_snapshot { remote; snapshot_name }) ->
            Qcow2.Qcow2_remote (Qcow2.remote_table_of_snapshot remote ~snapshot_name)
        | None -> Qcow2.Raw_pvfs cluster.base_raw
        | Some (Blobcr_snapshot _) -> invalid_arg "Approach: snapshot kind mismatch"
      in
      Qcow2_stack
        (Qcow2.create cluster.engine ~host:node.Cluster.host ~local_disk:node.Cluster.disk
           ~capacity:cluster.cal.image_capacity ~backing ~name:(id ^ ".qcow2") ())

let device_of_stack = function
  | Mirror_stack m -> Mirror.device m
  | Qcow2_stack q -> Qcow2.device q

let deploy cluster kind ~node ~id =
  let stack = make_stack cluster kind ~node ~id ~base:None in
  let vm = make_vm cluster ~node ~device:(device_of_stack stack) ~id in
  Vm.boot vm ~format_fs:true;
  { id; kind; node; vm; stack; proxy = Ckpt_proxy.create cluster ~node; epoch = 0 }

(* ------------------------------------------------------------------ *)
(* Checkpoint *)

let snapshot_path inst = Fmt.str "/snapshots/%s/%d" inst.id inst.epoch
let full_snapshot_path inst = Fmt.str "/snapshots/%s/full" inst.id

let m_precopy_rounds = Obs.Metrics.counter ~component:"ckpt" ~name:"precopy_rounds"
let m_precopy_bytes = Obs.Metrics.counter ~component:"ckpt" ~name:"precopy_bytes"

(* Pre-copy rounds run with the guest live, outside the proxy's retry
   envelope, so transient disk errors are absorbed here. The frozen epoch
   survives a failed [commit_frozen], so the retry ships the same instant.
   The backoff sleep sits inside a span to keep phase tiling exact. *)
let retry_transient engine ~label f =
  let rec go n =
    try f ()
    with Faults.Injected_error what when n < 3 ->
      Trace.emit engine ~component:label "transient fault (%s), retry %d/3" what (n + 1);
      Obs.Span.with_ engine ~component:"approach" ~name:"ckpt.backoff" (fun () ->
          Engine.sleep engine (0.02 *. float_of_int (1 lsl n)));
      go (n + 1)
  in
  go 0

(* The live (pre-copy + background commit) checkpoint cycle, DESIGN.md §17.
   Any failure past a successful [freeze] rolls the frozen epoch back into
   the live dirty set, so the last fully committed snapshot remains the
   rollback target and no dirty data is lost. *)
let live_checkpoint (cluster : Cluster.t) inst mirror ~rounds ~background =
  let engine = cluster.engine in
  let label = "approach." ^ inst.id in
  let abort_unless_cancelled = function
    | Engine.Cancelled -> ()
    | _ -> Mirror.abort_frozen mirror
  in
  (* Pre-copy: ship the dirty set while the guest keeps running, up to
     [rounds] rounds, stopping early once the set stops shrinking (the
     guest is dirtying at least as fast as we ship). *)
  let rec precopy r prev =
    let dirty = Mirror.dirty_bytes mirror in
    if r >= rounds || dirty = 0 || dirty >= prev then ()
    else begin
      Obs.Span.with_ engine ~component:"approach" ~name:"ckpt.precopy"
        ~attrs:
          [ ("round", Obs.Record.Int (r + 1)); ("dirty_bytes", Obs.Record.Bytes dirty) ]
        (fun () ->
          Mirror.freeze mirror;
          retry_transient engine ~label (fun () ->
              ignore (Mirror.commit_frozen ~label:"ckpt.precopy.commit" mirror)));
      Obs.Metrics.incr m_precopy_rounds;
      Obs.Metrics.add m_precopy_bytes (float_of_int dirty);
      Trace.emit engine ~component:label "pre-copy round %d/%d shipped %d B live" (r + 1)
        rounds dirty;
      precopy (r + 1) dirty
    end
  in
  (try precopy 0 max_int
   with exn -> abort_unless_cancelled exn; raise exn);
  (* Final delta: freeze under suspend, then ship it either before the
     resume (suspend window proportional to last-round dirty bytes) or in
     the background after it (suspend window is the freeze alone, which is
     metadata-only). [suspended] may be retried by the proxy, hence the
     [frozen_active] guard. *)
  let version = ref None in
  let suspended () =
    if not (Mirror.frozen_active mirror) then Mirror.freeze mirror;
    if not background then version := Some (Mirror.commit_frozen mirror)
  in
  let shipped () =
    (match !version with
    | Some _ -> ()
    | None -> version := Some (Mirror.commit_frozen ~label:"ckpt.background" mirror));
    let v = Option.get !version in
    let s = Mirror.last_commit_stats mirror in
    Trace.emit engine ~component:label
      "live checkpoint %d (v%d): shipped %d B, dedup'd %d B, clean-suppressed %d B" inst.epoch
      v s.Client.bytes_shipped s.Client.bytes_deduped s.Client.bytes_suppressed;
    Blobcr_snapshot { image = Option.get (Mirror.checkpoint_image mirror); version = v }
  in
  try Ckpt_proxy.request_live_checkpoint inst.proxy ~vm:inst.vm ~suspended ~shipped
  with exn -> abort_unless_cancelled exn; raise exn

let request_checkpoint ?(mode = Stop_the_world) (cluster : Cluster.t) inst =
  let take () =
    match (inst.kind, inst.stack) with
    | Blobcr, Mirror_stack mirror ->
        (* CLONE (first time) + COMMIT through the mirroring module. *)
        let version = Mirror.commit mirror in
        let s = Mirror.last_commit_stats mirror in
        Trace.emit cluster.engine ~component:("approach." ^ inst.id)
          "checkpoint %d: shipped %d B, dedup'd %d B, clean-suppressed %d B" inst.epoch
          s.Client.bytes_shipped s.Client.bytes_deduped s.Client.bytes_suppressed;
        Blobcr_snapshot { image = Option.get (Mirror.checkpoint_image mirror); version }
    | Qcow2_disk, Qcow2_stack image ->
        (* Copy the whole local image file to PVFS as a new file. *)
        let remote =
          Qcow2.export image cluster.pvfs ~from:inst.node.Cluster.host ~path:(snapshot_path inst)
        in
        Qcow2_snapshot { remote }
    | Qcow2_full, Qcow2_stack image ->
        (* savevm: full state into the image, then copy the image; only the
           latest copy is kept (internal snapshots accumulate inside). *)
        let snapshot_name = Fmt.str "ckpt%d" inst.epoch in
        let state = encode_vm_state inst.vm in
        (* QEMU serializes the VM state through a throttled channel. *)
        Obs.Span.with_ cluster.engine ~component:"approach" ~name:"ckpt.serialize"
          ~attrs:[ ("bytes", Obs.Record.Bytes (Payload.length state)) ]
          (fun () ->
            Engine.sleep cluster.engine
              (float_of_int (Payload.length state) /. cluster.cal.Calibration.savevm_rate));
        Qcow2.savevm image ~snapshot_name ~vm_state:state;
        let remote =
          Qcow2.export image cluster.pvfs ~from:inst.node.Cluster.host
            ~path:(full_snapshot_path inst)
        in
        Full_snapshot { remote; snapshot_name }
    | _ -> invalid_arg "Approach.request_checkpoint: stack mismatch"
  in
  let snapshot =
    match (mode, inst.kind, inst.stack) with
    | Live { rounds; background }, Blobcr, Mirror_stack mirror ->
        live_checkpoint cluster inst mirror ~rounds ~background
    | Live _, _, _ | Stop_the_world, _, _ ->
        (* qcow2 stacks have no copy-on-write freeze primitive: a live
           request falls back to the classic stop-the-world cycle. *)
        Ckpt_proxy.request_checkpoint inst.proxy ~vm:inst.vm ~snapshot:take
  in
  inst.epoch <- inst.epoch + 1;
  snapshot

(* ------------------------------------------------------------------ *)
(* Kill / restart *)

let kill inst =
  Vm.kill inst.vm;
  match inst.stack with
  | Mirror_stack m -> Mirror.drop_local_state m
  | Qcow2_stack q -> Qcow2.drop_local q

(* Run [bring_up inst] and tear the instance down if it raises: a failed
   attempt must release its local-disk reservation before any retry. *)
let bring_up_or_kill inst bring_up =
  (try bring_up inst with exn -> kill inst; raise exn);
  inst

let restart (cluster : Cluster.t) ~node ~id snapshot =
  let attempt () =
    match snapshot with
    | Blobcr_snapshot _ | Qcow2_snapshot _ ->
        let kind =
          match snapshot with Blobcr_snapshot _ -> Blobcr | _ -> Qcow2_disk
        in
        let stack = make_stack cluster kind ~node ~id ~base:(Some snapshot) in
        let vm = make_vm cluster ~node ~device:(device_of_stack stack) ~id in
        bring_up_or_kill
          { id; kind; node; vm; stack; proxy = Ckpt_proxy.create cluster ~node; epoch = 0 }
          (fun inst ->
            (* Reboot the guest OS from the disk snapshot, then mount the
               checkpointed file system. *)
            Vm.boot inst.vm ~format_fs:false)
    | Full_snapshot { remote; snapshot_name } ->
        let stack = make_stack cluster Qcow2_full ~node ~id ~base:(Some snapshot) in
        let vm = make_vm cluster ~node ~device:(device_of_stack stack) ~id in
        bring_up_or_kill
          { id; kind = Qcow2_full; node; vm; stack; proxy = Ckpt_proxy.create cluster ~node;
            epoch = 0 }
          (fun inst ->
            (* Fetch the complete VM state from PVFS and resume — no reboot.
               The hypervisor streams the state in small records, paying the
               request path on each (this is what makes full-snapshot
               restarts slow). *)
            let state =
              Qcow2.remote_vm_state_streamed remote ~from:node.Cluster.host ~snapshot_name
                ~record:cluster.cal.Calibration.loadvm_record
            in
            Vm.restore_running inst.vm;
            List.iter
              (fun (name, mem) -> ignore (Vm.register_process inst.vm ~name ~mem))
              (decode_vm_state state))
  in
  (* Transient local-disk I/O errors while re-imaging the target node are
     absorbed the way a hypervisor block driver would: tear the half-built
     instance down and retry with bounded backoff. Crash-stops and data
     loss still propagate to the caller. *)
  Faults.with_retries cluster.engine ~label:(id ^ ".restart") attempt

(* ------------------------------------------------------------------ *)
(* Size accounting *)

let snapshot_bytes = function
  | Blobcr_snapshot { image; version } ->
      (* Incremental: chunks this snapshot does not share with the previous
         one (version 0 being the clone of the base image). *)
      Client.delta_bytes image ~base:(version - 1) ~version
  | Qcow2_snapshot { remote } | Full_snapshot { remote; _ } -> Qcow2.remote_file_size remote

let storage_total (cluster : Cluster.t) =
  let base_blob_bytes = Client.version_bytes cluster.base_blob ~version:cluster.base_version in
  let base_raw_bytes = Pvfs.size cluster.base_raw in
  Client.repository_bytes cluster.service + Pvfs.total_bytes cluster.pvfs
  - base_blob_bytes - base_raw_bytes
