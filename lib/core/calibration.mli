(** Calibration: every timing and sizing constant of the simulated testbed
    in one place.

    Defaults follow Section 4.1 of the paper (Grid'5000 {e graphene}
    cluster): 120 compute nodes, local disks at ~55 MB/s, GbE at measured
    117.5 MB/s and 0.1 ms latency, KVM guests with a 2 GB raw disk image,
    BlobSeer with a 256 KiB stripe, one version manager, one provider
    manager and 20 metadata providers on dedicated nodes, PVFS across the
    compute nodes.

    Experiments never hard-code constants; they take a [t] so ablations can
    vary one knob at a time. *)

type t = {
  (* platform *)
  compute_nodes : int;
  disk_rate : float;  (** bytes/s *)
  disk_per_op : float;
  disk_capacity : int;
  net_bandwidth : float;  (** bytes/s *)
  net_latency : float;
  net_segment : int;
  (* image / guest *)
  image_capacity : int;  (** virtual disk size (2 GB) *)
  guest_ram : int;
  os_ram_overhead : int;  (** full-snapshot overhead beyond process memory *)
  boot : Vmsim.Vm.boot_profile;
  (* BlobSeer *)
  blobseer : Blobseer.Types.params;
  metadata_providers : int;
  (* PVFS *)
  pvfs : Pvfs.params;
  (* proxy *)
  proxy_request_cost : float;  (** local REST round-trip to the proxy *)
  loadvm_record : int;
      (** granularity at which a resumed hypervisor reads a full VM
          snapshot back from storage (QEMU loadvm streams the state in
          small records, paying per-request cost on each) *)
  savevm_rate : float;
      (** hypervisor-side serialization rate of [savevm] (QEMU throttles
          state saving; the historical default cap is 32 MiB/s) *)
  prefetch_enabled : bool;
      (** adaptive prefetching / fetch coalescing on restart (design
          principle 3.1.4); disabled only by ablation studies *)
}

val default : t
(** The paper's testbed: 120 nodes, 2 GiB images, measured boot and
    transfer rates. *)

val quick_test : t
(** A small, fast variant for unit/integration tests: few nodes, small
    image, tiny boot profile. *)

val scale_image : t -> int -> t
(** Override the virtual disk size. *)
