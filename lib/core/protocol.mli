(** Global checkpoint-restart orchestration.

    A {e global checkpoint} runs the two-stage procedure of Section 3.1.2
    on every instance in parallel: first the guest dumps its state into the
    local file system (application-level files or blcr process dumps — the
    caller-supplied [dump] action, which must end with a file-system sync),
    then each instance asks its local proxy for a disk snapshot. The global
    checkpoint completes when every snapshot is persistent; the resulting
    set of per-instance snapshots forms a globally consistent state because
    channels were drained before dumping.

    A {e global restart} re-deploys every instance from its snapshot, in
    parallel, on a caller-chosen set of nodes (disjoint from the original
    ones in the paper's experiments, to rule out caching effects).

    Both operations report {e partial} failure rather than aborting on the
    first exception: each per-instance branch runs in its own fiber and a
    branch that dies — a VM fail-stopping mid-dump unwinds its branch with
    [Engine.Cancelled] — is recorded as a typed {!branch_error} while the
    surviving branches run to completion. The supervisor uses this to retry
    exactly the failed subset. *)

type branch_error = {
  index : int;  (** position in the instance list / plan *)
  label : string;  (** instance id *)
  stage : string;
      (** where it failed: ["dump"] or ["snapshot"] for checkpoints,
          ["restart"] or ["restore"] for restarts *)
  error : exn;
}

type 'a partial = {
  completed : (int * 'a) list;  (** successful branches, by input position *)
  failed : branch_error list;
}
(** Outcome of a partially failed collective operation. *)

exception Partial_failure of string
(** Raised by the [_exn] wrappers when any branch failed. *)

val pp_branch_error : Format.formatter -> branch_error -> unit
(** ["<instance>: <exn>"] — for failure reports. *)

(** How a failed branch should be handled. Classification is by exception
    type — never by matching [Failure] message strings. *)
type error_class =
  [ `Transient  (** injected I/O error / disk full: retry in place *)
  | `Unavailable  (** replicas/providers gone: fail over or degrade *)
  | `Service_crash  (** metadata-plane crash: run journal recovery, retry *)
  | `Cancelled  (** the branch's VM/fiber was torn down *)
  | `Fatal  (** a bug, not a fault — propagate *) ]

val error_class : exn -> error_class
(** Classify an exception raised by a failed branch. *)

val pp_error_class : Format.formatter -> error_class -> unit
(** Lowercase tag, e.g. ["transient"]. *)

val global_checkpoint :
  ?mode:Approach.mode ->
  Cluster.t ->
  instances:Approach.instance list ->
  dump:(Approach.instance -> unit) ->
  (Approach.snapshot list, Approach.snapshot partial) result
(** [Ok snapshots] in instance order when every branch succeeded,
    [Error partial] otherwise. Blocks until every branch finished (or
    failed); a branch stranded on a collective blocks the call — run it
    in a cancellable fiber when failures are expected. [mode] (default
    {!Approach.Stop_the_world}) selects the live checkpoint cycle per
    instance; either way [Ok] is returned only once every snapshot —
    including background-shipped frozen deltas — is fully committed, so a
    failure mid-background-commit leaves the previous snapshot set
    authoritative. *)

val global_restart :
  Cluster.t ->
  plan:(Cluster.node * string * Approach.snapshot) list ->
  restore:(Approach.instance -> unit) ->
  (Approach.instance list, Approach.instance partial) result
(** [plan] gives, per instance: target node, instance id, snapshot.
    [restore] re-reads application state from the mounted file system
    (empty for qcow2-full resumes, which carry state in RAM). *)

val global_checkpoint_exn :
  ?mode:Approach.mode ->
  Cluster.t ->
  instances:Approach.instance list ->
  dump:(Approach.instance -> unit) ->
  Approach.snapshot list
(** Like {!global_checkpoint} but raises {!Partial_failure} on any branch
    failure — for fault-free experiment drivers. *)

val global_restart_exn :
  Cluster.t ->
  plan:(Cluster.node * string * Approach.snapshot) list ->
  restore:(Approach.instance -> unit) ->
  Approach.instance list
(** Like {!global_restart} but raises {!Partial_failure} on failure. *)

val kill_all : Approach.instance list -> unit
(** Simulated global failure: fail-stop every instance. *)
