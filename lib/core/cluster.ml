open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

type node = { index : int; host : Net.host; disk : Disk.t }

type dr = {
  primary_nodes : node array;
  primary_service : Client.t;
  standby_nodes : node array;
  standby_service : Client.t;
  replicator : Replicator.t;
  mutable site_failed : bool;
  mutable promoted : bool;
}

type t = {
  engine : Engine.t;
  net : Net.t;
  cal : Calibration.t;
  mutable nodes : node array;
  mutable service : Client.t;
  pvfs : Pvfs.t;
  prefetch : Prefetch.t;
  mutable base_blob : Client.blob;
  base_version : int;
  base_raw : Pvfs.file;
  supervisor_host : Net.host;
  mutable failed_nodes : int list;
  mutable crash_hooks : (int -> unit) list;
  mutable dr : dr option;
  (* The deployment's background compactor, when the embedding layer runs
     one (supervised runs, the chains harness): registered here so fault
     handlers can reach it by role rather than by closure threading. *)
  mutable compactor : Compactor.t option;
}

(* The base image content: a deterministic pattern standing in for the
   guest OS bytes (Debian root file system in the paper). *)
let base_image_seed = 0xD3B1A7L

let build ?(seed = 42) ?schedule ?dr:dr_config (cal : Calibration.t) =
  let engine = Engine.create ~seed ?schedule () in
  let net =
    Net.create engine
      {
        Net.bandwidth = cal.net_bandwidth;
        latency = cal.net_latency;
        segment_size = cal.net_segment;
        fabric_bandwidth = None;
      }
  in
  let mk_disk name =
    Disk.create engine ~rate:cal.disk_rate ~per_op:cal.disk_per_op
      ~capacity:cal.disk_capacity ~name ()
  in
  let nodes =
    Array.init cal.compute_nodes (fun index ->
        {
          index;
          host = Net.add_host net ~name:(Fmt.str "node%03d" index);
          disk = mk_disk (Fmt.str "node%03d.disk" index);
        })
  in
  (* Dedicated service nodes, as in the paper's deployment. *)
  let vm_host = Net.add_host net ~name:"version-manager" in
  let pm_host = Net.add_host net ~name:"provider-manager" in
  let md_hosts =
    List.init cal.metadata_providers (fun i ->
        Net.add_host net ~name:(Fmt.str "metadata%02d" i))
  in
  let pvfs_md_host = Net.add_host net ~name:"pvfs-metadata" in
  let service =
    Client.deploy engine net ~params:cal.blobseer ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts
      ~data_providers:(Array.to_list (Array.map (fun n -> (n.host, n.disk)) nodes))
      ()
  in
  let pvfs =
    Pvfs.deploy engine net ~params:cal.pvfs ~metadata_host:pvfs_md_host
      ~io_servers:(Array.to_list (Array.map (fun n -> (n.host, n.disk)) nodes))
      ()
  in
  let prefetch = Prefetch.create engine net () in
  (* Upload the base image from a client host: once into the repository,
     once into PVFS. *)
  let client_host = Net.add_host net ~name:"cloud-client" in
  let supervisor_host = Net.add_host net ~name:"supervisor" in
  let image = Payload.pattern ~seed:base_image_seed cal.image_capacity in
  let uploaded = ref None in
  let _ =
    Engine.Fiber.spawn engine ~name:"image-upload" (fun () ->
        let base_blob = Client.create_blob service ~from:client_host ~capacity:cal.image_capacity in
        let base_version = Client.write base_blob ~from:client_host ~offset:0 image in
        let base_raw = Pvfs.create pvfs ~from:client_host ~path:"/images/base.raw" in
        Pvfs.write base_raw ~from:client_host ~offset:0 image;
        uploaded := Some (base_blob, base_version, base_raw))
  in
  Engine.run engine;
  let base_blob, base_version, base_raw = Option.get !uploaded in
  let t =
    { engine; net; cal; nodes; service; pvfs; prefetch; base_blob; base_version; base_raw;
      supervisor_host; failed_nodes = []; crash_hooks = []; dr = None; compactor = None }
  in
  (* Optional standby site: a mirror deployment on its own nodes and
     service hosts, fed by the journal-shipping replicator through a WAN
     gateway pair. The initial sync (base image) drains before [build]
     returns, so experiments start from a converged pair. *)
  (match dr_config with
  | None -> ()
  | Some config ->
      let standby_nodes =
        Array.init cal.Calibration.compute_nodes (fun index ->
            {
              index;
              host = Net.add_host net ~name:(Fmt.str "standby%03d" index);
              disk = mk_disk (Fmt.str "standby%03d.disk" index);
            })
      in
      let standby_vm_host = Net.add_host net ~name:"standby-version-manager" in
      let standby_pm_host = Net.add_host net ~name:"standby-provider-manager" in
      let standby_md_hosts =
        List.init cal.Calibration.metadata_providers (fun i ->
            Net.add_host net ~name:(Fmt.str "standby-metadata%02d" i))
      in
      let gateway_primary = Net.add_host net ~name:"gateway-primary" in
      let gateway_standby = Net.add_host net ~name:"gateway-standby" in
      let standby_service =
        Client.deploy engine net ~params:cal.blobseer ~version_manager_host:standby_vm_host
          ~provider_manager_host:standby_pm_host ~metadata_hosts:standby_md_hosts
          ~data_providers:
            (Array.to_list (Array.map (fun n -> (n.host, n.disk)) standby_nodes))
          ()
      in
      let replicator =
        Replicator.create engine net ~primary:service ~standby:standby_service
          ~gateway_primary ~gateway_standby ~config ()
      in
      Replicator.attach replicator;
      Engine.run engine;
      t.dr <-
        Some
          {
            primary_nodes = nodes;
            primary_service = service;
            standby_nodes;
            standby_service;
            replicator;
            site_failed = false;
            promoted = false;
          });
  t

let node t i = t.nodes.(i)
let node_count t = Array.length t.nodes
let node_failed t i = List.mem i t.failed_nodes
let on_node_crash t hook = t.crash_hooks <- hook :: t.crash_hooks

(* Crash-stop of a whole compute node: the BlobSeer data provider living
   on it fail-stops with its local storage (provider [i] runs on node [i]
   by construction), and registered hooks run so owners of VMs placed
   there can kill them. PVFS striped data is assumed to survive (the
   paper's baselines keep their snapshots on a separate PVFS deployment);
   this slightly favors the qcow2 baselines. Idempotent. *)
let crash_node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Cluster.crash_node";
  if not (node_failed t i) then begin
    t.failed_nodes <- i :: t.failed_nodes;
    Trace.emit t.engine ~component:"cluster" "node %d crashed (fail-stop)" i;
    Blobseer.Data_provider.fail (Client.data_provider t.service i);
    List.iter (fun hook -> hook i) t.crash_hooks
  end

(* ------------------------------------------------------------------ *)
(* Disaster recovery *)

let replicator t = Option.map (fun dr -> dr.replicator) t.dr
let set_compactor t c = t.compactor <- Some c
let compactor t = t.compactor
let site_failed t = match t.dr with Some dr -> dr.site_failed | None -> false
let promoted t = match t.dr with Some dr -> dr.promoted | None -> false

(* Fail-stop the whole primary site: every compute node (taking the data
   providers and hosted VMs down through the normal crash path), the
   version manager and all metadata providers. A no-op without a standby
   site — there would be nothing left to run the experiment on. *)
let crash_site t =
  match t.dr with
  | None -> ()
  | Some dr when dr.site_failed || dr.promoted -> ()
  | Some dr ->
      dr.site_failed <- true;
      Trace.emit t.engine ~component:"cluster" "site disaster: primary site fail-stopped";
      Array.iter (fun n -> crash_node t n.index) dr.primary_nodes;
      Version_manager.fail (Client.version_manager dr.primary_service);
      let md = Client.metadata_service dr.primary_service in
      for i = 0 to Metadata_service.provider_count md - 1 do
        Metadata_service.fail md i
      done

(* Swap the standby in as the active repository: cancel the shipping
   pipeline (collecting the RPO), roll half-applied records back, and
   repoint the cluster's nodes/service/base-blob handles so supervisors
   and experiments keep working against [t.service] unchanged. *)
let promote_standby t =
  match t.dr with
  | None -> invalid_arg "Cluster.promote_standby: no standby site"
  | Some dr ->
      if dr.promoted then invalid_arg "Cluster.promote_standby: already promoted";
      let promo = Replicator.promote dr.replicator in
      dr.promoted <- true;
      t.nodes <- dr.standby_nodes;
      t.service <- dr.standby_service;
      t.failed_nodes <- [];
      t.base_blob <-
        Client.open_blob dr.standby_service ~from:t.supervisor_host
          ~id:(Client.blob_id t.base_blob);
      Trace.emit t.engine ~component:"cluster"
        "standby promoted: %d version(s) / %d byte(s) lost" promo.Replicator.lost_versions
        promo.Replicator.lost_bytes;
      promo

let run t f =
  let result = ref None in
  let _ = Engine.Fiber.spawn t.engine ~name:"experiment" (fun () -> result := Some (f ())) in
  (* Drive the engine until the driver finishes — not until the event queue
     drains, because background guest activity (OS loggers) generates
     events for as long as VMs are alive. *)
  while !result = None && Engine.step t.engine do
    ()
  done;
  match !result with
  | Some r -> r
  | None -> failwith "Cluster.run: driver did not complete (deadlock?)"

let now t = Engine.now t.engine
