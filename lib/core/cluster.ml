open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

type node = { index : int; host : Net.host; disk : Disk.t }

type t = {
  engine : Engine.t;
  net : Net.t;
  cal : Calibration.t;
  nodes : node array;
  service : Client.t;
  pvfs : Pvfs.t;
  prefetch : Prefetch.t;
  base_blob : Client.blob;
  base_version : int;
  base_raw : Pvfs.file;
  supervisor_host : Net.host;
  mutable failed_nodes : int list;
  mutable crash_hooks : (int -> unit) list;
}

(* The base image content: a deterministic pattern standing in for the
   guest OS bytes (Debian root file system in the paper). *)
let base_image_seed = 0xD3B1A7L

let build ?(seed = 42) ?schedule (cal : Calibration.t) =
  let engine = Engine.create ~seed ?schedule () in
  let net =
    Net.create engine
      {
        Net.bandwidth = cal.net_bandwidth;
        latency = cal.net_latency;
        segment_size = cal.net_segment;
        fabric_bandwidth = None;
      }
  in
  let mk_disk name =
    Disk.create engine ~rate:cal.disk_rate ~per_op:cal.disk_per_op
      ~capacity:cal.disk_capacity ~name ()
  in
  let nodes =
    Array.init cal.compute_nodes (fun index ->
        {
          index;
          host = Net.add_host net ~name:(Fmt.str "node%03d" index);
          disk = mk_disk (Fmt.str "node%03d.disk" index);
        })
  in
  (* Dedicated service nodes, as in the paper's deployment. *)
  let vm_host = Net.add_host net ~name:"version-manager" in
  let pm_host = Net.add_host net ~name:"provider-manager" in
  let md_hosts =
    List.init cal.metadata_providers (fun i ->
        Net.add_host net ~name:(Fmt.str "metadata%02d" i))
  in
  let pvfs_md_host = Net.add_host net ~name:"pvfs-metadata" in
  let service =
    Client.deploy engine net ~params:cal.blobseer ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts
      ~data_providers:(Array.to_list (Array.map (fun n -> (n.host, n.disk)) nodes))
      ()
  in
  let pvfs =
    Pvfs.deploy engine net ~params:cal.pvfs ~metadata_host:pvfs_md_host
      ~io_servers:(Array.to_list (Array.map (fun n -> (n.host, n.disk)) nodes))
      ()
  in
  let prefetch = Prefetch.create engine net () in
  (* Upload the base image from a client host: once into the repository,
     once into PVFS. *)
  let client_host = Net.add_host net ~name:"cloud-client" in
  let supervisor_host = Net.add_host net ~name:"supervisor" in
  let image = Payload.pattern ~seed:base_image_seed cal.image_capacity in
  let uploaded = ref None in
  let _ =
    Engine.Fiber.spawn engine ~name:"image-upload" (fun () ->
        let base_blob = Client.create_blob service ~from:client_host ~capacity:cal.image_capacity in
        let base_version = Client.write base_blob ~from:client_host ~offset:0 image in
        let base_raw = Pvfs.create pvfs ~from:client_host ~path:"/images/base.raw" in
        Pvfs.write base_raw ~from:client_host ~offset:0 image;
        uploaded := Some (base_blob, base_version, base_raw))
  in
  Engine.run engine;
  let base_blob, base_version, base_raw = Option.get !uploaded in
  { engine; net; cal; nodes; service; pvfs; prefetch; base_blob; base_version; base_raw;
    supervisor_host; failed_nodes = []; crash_hooks = [] }

let node t i = t.nodes.(i)
let node_count t = Array.length t.nodes
let node_failed t i = List.mem i t.failed_nodes
let on_node_crash t hook = t.crash_hooks <- hook :: t.crash_hooks

(* Crash-stop of a whole compute node: the BlobSeer data provider living
   on it fail-stops with its local storage (provider [i] runs on node [i]
   by construction), and registered hooks run so owners of VMs placed
   there can kill them. PVFS striped data is assumed to survive (the
   paper's baselines keep their snapshots on a separate PVFS deployment);
   this slightly favors the qcow2 baselines. Idempotent. *)
let crash_node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Cluster.crash_node";
  if not (node_failed t i) then begin
    t.failed_nodes <- i :: t.failed_nodes;
    Trace.emit t.engine ~component:"cluster" "node %d crashed (fail-stop)" i;
    Blobseer.Data_provider.fail (Client.data_provider t.service i);
    List.iter (fun hook -> hook i) t.crash_hooks
  end

let run t f =
  let result = ref None in
  let _ = Engine.Fiber.spawn t.engine ~name:"experiment" (fun () -> result := Some (f ())) in
  (* Drive the engine until the driver finishes — not until the event queue
     drains, because background guest activity (OS loggers) generates
     events for as long as VMs are alive. *)
  while !result = None && Engine.step t.engine do
    ()
  done;
  match !result with
  | Some r -> r
  | None -> failwith "Cluster.run: driver did not complete (deadlock?)"

let now t = Engine.now t.engine
