open Storage
open Blobseer

type report = {
  versions_dropped : int;
  chunks_deleted : int;
  bytes_reclaimed : int;
  index_entries_dropped : int;
}

let live_chunk_refs service =
  let refs = Hashtbl.create 1024 in
  Version_manager.iter_live_trees (Client.version_manager service)
    (fun ~blob:_ ~version:_ tree ->
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) () ->
          List.iter
            (fun (r : Types.replica) ->
              let key = (r.provider, r.chunk) in
              Hashtbl.replace refs key (1 + Option.value ~default:0 (Hashtbl.find_opt refs key)))
            desc.replicas)
        tree ());
  refs

(* Live logical state per content digest: number of distinct descriptor
   serials carrying it across the surviving trees, plus the size and an
   exemplar replica set (the first encountered in sorted (blob, version)
   order, so the result is deterministic). This is the ground truth the
   dedup index is reconciled to after retention drops versions. *)
let live_digest_refs service =
  let seen : (int64 * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let acc : (int64, int * int * Types.replica list) Hashtbl.t = Hashtbl.create 1024 in
  Version_manager.iter_live_trees (Client.version_manager service)
    (fun ~blob:_ ~version:_ tree ->
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) () ->
          if not (Hashtbl.mem seen (desc.digest, desc.serial)) then begin
            Hashtbl.replace seen (desc.digest, desc.serial) ();
            match Hashtbl.find_opt acc desc.digest with
            | Some (refs, size, replicas) ->
                Hashtbl.replace acc desc.digest (refs + 1, size, replicas)
            | None -> Hashtbl.replace acc desc.digest (1, desc.size, desc.replicas)
          end)
        tree ());
  Hashtbl.fold (fun digest v l -> (digest, v) :: l) acc [] (* lint: allow hashtbl-order — sorted below *)
  |> List.sort (fun (d1, _) (d2, _) -> Int64.compare d1 d2)

let collect service ?(pins = []) ~keep_last () =
  if keep_last < 1 then invalid_arg "Gc.collect: keep_last must be >= 1";
  let vm = Client.version_manager service in
  (* Retention: drop everything but the newest versions of each blob —
     except pinned (blob, version) pairs. Pins close the GC/rollback race:
     the supervisor pins its committed snapshot sets (it may still roll
     back to them after a fault) and the scrubber pins versions it is
     mid-repair on, so neither can be pruned out from under them. *)
  let dropped = ref 0 in
  List.iter
    (fun blob ->
      let versions = Version_manager.versions vm ~blob in
      let keep_from = List.length versions - keep_last in
      List.iteri
        (fun i version ->
          if i < keep_from && not (List.mem (blob, version) pins) then begin
            Version_manager.drop_version vm ~blob ~version;
            incr dropped
          end)
        versions)
    (Version_manager.blob_ids vm);
  (* Reconcile the dedup index with the surviving trees: refcounts are
     reset to the live distinct-serial count per digest, and entries no
     live version references are dropped — making their physical chunks
     reclaimable by the sweep below (the index never blocks reclamation
     on its own). *)
  let index_dropped =
    Dedup_index.reconcile
      (Provider_manager.dedup_index (Client.provider_manager service))
      (live_digest_refs service)
  in
  (* Mark... *)
  let live = live_chunk_refs service in
  (* ...and sweep every data provider. *)
  let deleted = ref 0 and reclaimed = ref 0 in
  Array.iteri
    (fun provider_index provider ->
      List.iter
        (fun chunk ->
          if not (Hashtbl.mem live (provider_index, chunk)) then begin
            let bytes =
              Simcore.Payload.length (Content_store.get (Data_provider.store provider) chunk)
            in
            Data_provider.delete_chunk provider chunk;
            incr deleted;
            reclaimed := !reclaimed + bytes
          end)
        (Content_store.ids (Data_provider.store provider)))
    (Client.data_providers service);
  {
    versions_dropped = !dropped;
    chunks_deleted = !deleted;
    bytes_reclaimed = !reclaimed;
    index_entries_dropped = index_dropped;
  }
