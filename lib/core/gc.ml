open Storage
open Blobseer

type report = {
  versions_dropped : int;
  chunks_deleted : int;
  bytes_reclaimed : int;
  index_entries_dropped : int;
}

(* The mark-set computations live in {!Client} (shared with the
   compactor's precise sweep); re-exported here for diagnostics/tests. *)
let live_chunk_refs = Client.live_chunk_refs
let live_digest_refs = Client.live_digest_refs

let collect service ?(pins = []) ~keep_last () =
  if keep_last < 1 then invalid_arg "Gc.collect: keep_last must be >= 1";
  let vm = Client.version_manager service in
  (* Retention: drop everything but the newest versions of each blob —
     except pinned (blob, version) pairs. Pins close the GC/rollback race:
     the supervisor pins its committed snapshot sets (it may still roll
     back to them after a fault) and the scrubber pins versions it is
     mid-repair on, so neither can be pruned out from under them.
     Planning is the version manager's pin-aware retention evaluation,
     shared with the background compactor. *)
  let pins = List.map (fun site -> (site, "gc-pin")) pins in
  let dropped = ref 0 in
  List.iter
    (fun blob ->
      let plan =
        Version_manager.retention_plan vm ~blob ~policy:(Retention.Keep_last keep_last) ~pins
      in
      List.iter
        (fun version ->
          Version_manager.drop_version vm ~blob ~version;
          incr dropped)
        plan.Retention.retire)
    (Version_manager.blob_ids vm);
  (* Reconcile the dedup index with the surviving trees: refcounts are
     reset to the live distinct-serial count per digest, and entries no
     live version references are dropped — making their physical chunks
     reclaimable by the sweep below (the index never blocks reclamation
     on its own). *)
  let index_dropped =
    Dedup_index.reconcile
      (Provider_manager.dedup_index (Client.provider_manager service))
      (Client.live_digest_refs service)
  in
  (* Mark... *)
  let live = Client.live_chunk_refs service in
  (* ...and sweep every data provider. *)
  let deleted = ref 0 and reclaimed = ref 0 in
  Array.iteri
    (fun provider_index provider ->
      List.iter
        (fun chunk ->
          if not (Hashtbl.mem live (provider_index, chunk)) then begin
            let bytes =
              Simcore.Payload.length (Content_store.get (Data_provider.store provider) chunk)
            in
            Data_provider.delete_chunk provider chunk;
            incr deleted;
            reclaimed := !reclaimed + bytes
          end)
        (Content_store.ids (Data_provider.store provider)))
    (Client.data_providers service);
  {
    versions_dropped = !dropped;
    chunks_deleted = !deleted;
    bytes_reclaimed = !reclaimed;
    index_entries_dropped = index_dropped;
  }
