open Simcore
open Netsim
open Blobseer
open Storage

type policy = {
  heartbeat_period : float;
  misses_allowed : int;
  max_recovery_attempts : int;
  checkpoint_interval : int;
  ckpt_mode : Approach.mode;
}

let default_policy =
  { heartbeat_period = 1.0; misses_allowed = 2; max_recovery_attempts = 3;
    checkpoint_interval = 4; ckpt_mode = Approach.Stop_the_world }

type workload = {
  setup : Approach.instance list -> unit;
  iterate : unit -> [ `Done | `Gang_down ];
  dump : Approach.instance -> unit;
  restore : Approach.instance -> unit;
  resumed : int -> unit;
}

type event =
  | Deployed of { at : float; ids : string list }
  | Checkpoint_committed of { at : float; units : int; elapsed : float }
  | Checkpoint_degraded of { at : float; units : int; reason : string }
  | Failure_detected of { at : float; dead : string list }
  | Recovered of { at : float; attempt : int; resumed_units : int }
  | Abandoned of { at : float; ids : string list }
  | Journal_recovered of { at : float; intents : int }
  | Scrubbed of { at : float; repaired : int; unrepairable : int }
  | Rollback_demoted of { at : float; from_units : int; to_units : int }
  | Failed_over of
      { at : float; rpo_versions : int; rpo_bytes : int; rpo_units : int; rto : float }

type report = {
  finished : bool;
  units_completed : int;
  checkpoints : int;
  recoveries : int;
  useful_time : float;
  wasted_time : float;
  recovery_latencies : float list;
  checkpoint_time : float;
  events : event list;
}

type t = {
  cluster : Cluster.t;
  kind : Approach.kind;
  policy : policy;
  workload : workload;
  total_units : int;
  slot_ids : string array;
  mutable instances : Approach.instance list;
  mutable snapshots : Approach.snapshot list;
  mutable snapshot_units : int;
  mutable snapshots_prev : Approach.snapshot list;
  mutable snapshot_units_prev : int;
  (* Every committed snapshot set, newest first: failover walks it to the
     newest entry the standby fully replicated. *)
  mutable snapshot_history : (Approach.snapshot list * int) list;
  scrub_config : Scrubber.config option;
  mutable scrubber : Scrubber.t option;
  mutable units_done : int;
  mutable checkpoints : int;
  mutable recoveries : int;
  mutable monitor_gen : int;
  mutable segment_start : float;
  mutable useful : float;
  mutable wasted : float;
  mutable latencies_rev : float list;
  mutable ckpt_time : float;
  mutable events_rev : event list;
  mutable declared_dead : string list;
  mutable restarted : string list;
  mutable abandoned : string list;
  mutable finished : bool;
  mutable done_ : bool;
}

type Engine.audit_subject += Audit_supervisor of t

let m_recoveries = Obs.Metrics.counter ~component:"sup" ~name:"recoveries"
let m_abandoned = Obs.Metrics.counter ~component:"sup" ~name:"recoveries_abandoned"
let m_failovers = Obs.Metrics.counter ~component:"sup" ~name:"failovers"

let engine t = t.cluster.Cluster.engine
let now t = Engine.now (engine t)
let record t e = t.events_rev <- e :: t.events_rev

let trace t msg = Trace.emit (engine t) ~component:"supervisor" "%s" msg

(* ------------------------------------------------------------------ *)
(* Fault handlers: map abstract injector actions onto the platform. *)

let fault_handlers t =
  let cluster = t.cluster in
  let nodes = Cluster.node_count cluster in
  (* Rotates through the compactor's three crash points across successive
     [Crash_service 2] draws, so one chaos run exercises all of them. *)
  let compaction_point = ref 0 in
  let arm_compactor point =
    match Cluster.compactor cluster with
    | None -> ()
    | Some c ->
        Compactor.arm_crash c
          (match point mod 3 with
          | 0 -> Compactor.Before_flatten
          | 1 -> Compactor.Mid_retire
          | _ -> Compactor.After_retire)
  in
  {
    (* Crash targets index into the nodes currently hosting the gang: a
       host MTBF spread over idle spares would never take the application
       down. Falls back to the whole cluster when nothing is placed. *)
    Faults.crash_host =
      (fun i ->
        let occupied =
          List.sort_uniq Int.compare
            (List.filter_map
               (fun (inst : Approach.instance) ->
                 let idx = inst.Approach.node.Cluster.index in
                 if Cluster.node_failed cluster idx then None else Some idx)
               t.instances)
        in
        let target =
          match occupied with
          | [] -> i mod nodes
          | occ -> List.nth occ (i mod List.length occ)
        in
        Cluster.crash_node cluster target);
    fail_provider =
      (fun i -> Data_provider.fail (Client.data_provider cluster.Cluster.service (i mod nodes)));
    fail_metadata =
      (fun i ->
        let md = Client.metadata_service cluster.Cluster.service in
        Metadata_service.fail md (i mod Metadata_service.provider_count md));
    transient_disk =
      (fun ~target ~ops ->
        Disk.inject_transient (Cluster.node cluster (target mod nodes)).Cluster.disk ~ops);
    degrade_links =
      (fun ~factor ~duration ->
        Net.degrade cluster.Cluster.net ~factor ~until:(now t +. duration));
    partition =
      (fun ~group ~duration ->
        let hosts = List.map (fun i -> (Cluster.node cluster (i mod nodes)).Cluster.host) group in
        Net.partition cluster.Cluster.net
          ~side:(fun h -> List.exists (fun g -> g == h) hosts)
          ~until:(now t +. duration));
    (* Resolve the abstract chunk ordinal against what the provider
       actually stores right now (sorted ids, mod count), so scripts stay
       valid whatever the repository holds at injection time. *)
    silent_corruption =
      (fun ~provider ~chunk ->
        let p = Client.data_provider cluster.Cluster.service (provider mod nodes) in
        match Content_store.ids (Data_provider.store p) with
        | [] -> ()
        | ids ->
            let target = List.nth ids (chunk mod List.length ids) in
            ignore (Data_provider.corrupt_chunk p ~salt:(provider + chunk) target));
    crash_commit =
      (fun ~point ->
        Version_manager.arm_crash
          (Client.version_manager cluster.Cluster.service)
          (if point = 0 then Version_manager.Before_apply else Version_manager.Mid_apply));
    crash_compaction = (fun ~point -> arm_compactor point);
    (* Background-service hosts: the scrubber restarts from scratch (its
       fiber is killed mid-pass and respawned), the compactor either
       fail-stops (its own loop recovers it next tick) or gets an armed
       crash point rotated across draws. *)
    crash_service =
      (fun i ->
        match i mod 3 with
        | 0 -> (
            match t.scrubber with
            | Some s ->
                Scrubber.stop s;
                Scrubber.start s
            | None -> ())
        | 1 -> (
            match Cluster.compactor cluster with
            | Some c -> Compactor.crash c
            | None -> ())
        | _ ->
            arm_compactor !compaction_point;
            incr compaction_point);
    crash_site = (fun () -> Cluster.crash_site cluster);
  }

(* ------------------------------------------------------------------ *)
(* Deployment *)

let deploy_gang t ~nodes ~ids =
  let slots = List.combine ids nodes in
  let insts = Array.make (List.length slots) None in
  Engine.all (engine t) ~name:"supervisor.deploy"
    (List.mapi
       (fun k (id, node) () -> insts.(k) <- Some (Approach.deploy t.cluster t.kind ~node ~id))
       slots);
  Array.to_list insts |> List.map Option.get

let live_node_indices t ~excluding =
  List.filter
    (fun i -> (not (Cluster.node_failed t.cluster i)) && not (List.mem i excluding))
    (List.init (Cluster.node_count t.cluster) Fun.id)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let commit_checkpoint t ~started snaps =
  (* Keep the previous committed set: if the scrubber later finds the new
     one unrestorable, recovery demotes to this one. *)
  t.snapshots_prev <- t.snapshots;
  t.snapshot_units_prev <- t.snapshot_units;
  t.snapshots <- snaps;
  t.snapshot_units <- t.units_done;
  t.snapshot_history <- (snaps, t.units_done) :: t.snapshot_history;
  t.checkpoints <- t.checkpoints + 1;
  let n = now t in
  t.useful <- t.useful +. (n -. t.segment_start);
  t.segment_start <- n;
  record t (Checkpoint_committed { at = n; units = t.units_done; elapsed = n -. started });
  trace t (Fmt.str "checkpoint committed at %d/%d units" t.units_done t.total_units)

let degrade_checkpoint t reason =
  record t (Checkpoint_degraded { at = now t; units = t.units_done; reason });
  trace t (Fmt.str "checkpoint degraded (%s); keeping snapshot at %d units" reason t.snapshot_units)

(* A metadata-plane crash (version manager or metadata service died
   mid-COMMIT/CLONE) is repaired before any snapshot retry: journal
   recovery rolls the half-applied publication back, after which the
   mirror still holds its dirty set and the commit can be redone whole. *)
let recover_services t partial =
  let crashed =
    List.exists
      (fun (e : Protocol.branch_error) -> Protocol.error_class e.error = `Service_crash)
      partial.Protocol.failed
  in
  if crashed then begin
    let service = t.cluster.Cluster.service in
    let vm = Client.version_manager service in
    let md = Client.metadata_service service in
    let before =
      Version_manager.recovered_intents vm + Metadata_service.recovered_intents md
    in
    Version_manager.restart vm;
    Metadata_service.recover_journal md;
    let intents =
      Version_manager.recovered_intents vm + Metadata_service.recovered_intents md - before
    in
    record t (Journal_recovered { at = now t; intents });
    trace t (Fmt.str "journal recovery: %d pending intent(s) rolled back" intents)
  end;
  crashed

(* A failed snapshot stage can be retried per instance — the guest dumps
   already landed in the file system, only the disk-snapshot step is
   redone. A failed dump stage cannot (the gang-wide drain already broke),
   so the previous snapshot set stays authoritative and the run continues
   uncheckpointed until the next interval. *)
let take_checkpoint t =
  let started = now t in
  let commit snaps =
    commit_checkpoint t ~started snaps;
    t.ckpt_time <- t.ckpt_time +. (now t -. started)
  in
  match
    Protocol.global_checkpoint ~mode:t.policy.ckpt_mode t.cluster ~instances:t.instances
      ~dump:t.workload.dump
  with
  | Ok snaps -> commit snaps
  | Error partial ->
      let snapshot_only =
        List.for_all (fun (e : Protocol.branch_error) -> e.stage = "snapshot") partial.failed
      in
      if not snapshot_only then degrade_checkpoint t "dump stage failed"
      else begin
        ignore (recover_services t partial);
        let retried =
          List.filter_map
            (fun (e : Protocol.branch_error) ->
              let inst = List.nth t.instances e.index in
              match Approach.request_checkpoint ~mode:t.policy.ckpt_mode t.cluster inst with
              | snap -> Some (e.index, snap)
              | exception Engine.Cancelled -> None
              | exception _ -> None)
            partial.failed
        in
        if List.length retried = List.length partial.failed then
          partial.completed @ retried
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.map snd
          |> commit
        else degrade_checkpoint t "snapshot retry failed"
      end

(* ------------------------------------------------------------------ *)
(* Failure detection *)

let observed_dead t =
  List.filter
    (fun (inst : Approach.instance) ->
      Vmsim.Vm.state inst.Approach.vm = Vmsim.Vm.Dead
      || Cluster.node_failed t.cluster inst.Approach.node.Cluster.index)
    t.instances

(* Heartbeat prober: every period, ping each instance's node from the
   supervisor host and count consecutive missed beats; an instance missing
   [misses_allowed] beats in a row is declared dead and the generation's
   outcome is decided. Probes pay the network round-trip, so detection
   latency is heartbeat-period x misses plus messaging time. *)
let spawn_monitor t ~gen ~outcome =
  let misses = ref [] in
  let miss_count id = match List.assoc_opt id !misses with Some n -> n | None -> 0 in
  let body () =
    let rec loop () =
      if t.monitor_gen = gen && not (Engine.Ivar.is_filled outcome) then begin
        Engine.sleep (engine t) t.policy.heartbeat_period;
        if t.monitor_gen = gen && not (Engine.Ivar.is_filled outcome) then begin
          let dead_now = observed_dead t in
          List.iter
            (fun (inst : Approach.instance) ->
              Net.message t.cluster.Cluster.net ~src:t.cluster.Cluster.supervisor_host
                ~dst:inst.Approach.node.Cluster.host;
              let id = inst.Approach.id in
              let n =
                if List.exists (fun (d : Approach.instance) -> d.Approach.id = id) dead_now
                then miss_count id + 1
                else 0
              in
              misses := (id, n) :: List.remove_assoc id !misses)
            t.instances;
          let declared =
            List.filter
              (fun (inst : Approach.instance) ->
                miss_count inst.Approach.id >= t.policy.misses_allowed)
              t.instances
          in
          if declared <> [] && t.monitor_gen = gen && not (Engine.Ivar.is_filled outcome) then
            Engine.Ivar.fill outcome (`Dead declared)
          else loop ()
        end
      end
    in
    try loop () with Engine.Cancelled -> ()
  in
  ignore (Engine.Fiber.spawn (engine t) ~name:(Fmt.str "supervisor.monitor.%d" gen) body)

(* ------------------------------------------------------------------ *)
(* Worker: drives the workload and periodic checkpoints; cancellable so
   a checkpoint stranded on a drain barrier (dead rank) can be abandoned
   once the monitor declares the failure. *)

let spawn_worker t ~outcome =
  let body () =
    match
      let rec go () =
        if t.units_done >= t.total_units then `Finished
        else
          match t.workload.iterate () with
          | `Gang_down -> `Gang_down
          | `Done ->
              t.units_done <- t.units_done + 1;
              if
                t.units_done mod t.policy.checkpoint_interval = 0
                || t.units_done = t.total_units
              then take_checkpoint t;
              go ()
      in
      go ()
    with
    | outcome_value ->
        if not (Engine.Ivar.is_filled outcome) then Engine.Ivar.fill outcome outcome_value
    | exception Engine.Cancelled -> ()
  in
  Engine.Fiber.spawn (engine t) ~name:"supervisor.worker" body

(* ------------------------------------------------------------------ *)
(* Recovery *)

let restart_gang t =
  let numbered = List.mapi (fun i snap -> (i, snap)) t.snapshots in
  let rec attempt k ~pending ~placed =
    if pending = [] then
      Ok (List.sort (fun (a, _) (b, _) -> Int.compare a b) placed |> List.map snd)
    else if k > t.policy.max_recovery_attempts then Error pending
    else begin
      let used =
        List.map (fun (_, (i : Approach.instance)) -> i.Approach.node.Cluster.index) placed
      in
      let avail = live_node_indices t ~excluding:used in
      if List.length avail < List.length pending then Error pending
      else begin
        let targets = take (List.length pending) avail in
        let plan =
          List.map2
            (fun node_index (slot, snap) ->
              ( Cluster.node t.cluster node_index,
                Fmt.str "%s.r%d" t.slot_ids.(slot) t.recoveries,
                snap ))
            targets pending
        in
        match Protocol.global_restart t.cluster ~plan ~restore:(fun _ -> ()) with
        | Ok insts ->
            let placed' =
              List.map2 (fun (slot, _) inst -> (slot, inst)) pending insts @ placed
            in
            attempt k ~pending:[] ~placed:placed'
        | Error partial ->
            let slot_of i = fst (List.nth pending i) in
            let snap_of i = snd (List.nth pending i) in
            let placed' =
              List.map (fun (i, inst) -> (slot_of i, inst)) partial.Protocol.completed @ placed
            in
            let pending' =
              List.map
                (fun (e : Protocol.branch_error) -> (slot_of e.index, snap_of e.index))
                partial.Protocol.failed
            in
            trace t
              (Fmt.str "restart attempt %d: %d branch(es) failed (%s), retrying" k
                 (List.length pending')
                 (String.concat "; "
                    (List.map (Fmt.str "%a" Protocol.pp_branch_error)
                       partial.Protocol.failed)));
            attempt (k + 1) ~pending:pending' ~placed:placed'
      end
    end
  in
  attempt 1 ~pending:numbered ~placed:[]

(* Site-disaster failover: promote the standby repository, restart the
   scrubber against it, and roll the recovery target back to the newest
   committed snapshot set the standby fully replicated (every chunk with a
   live, digest-clean replica there). Returns the RPO actually incurred,
   or [`No_restorable] when no committed set survived replication — only
   BlobCR snapshots live in the geo-replicated repository, so baseline
   approaches cannot fail over. *)
let fail_over t =
  Obs.Metrics.incr m_failovers;
  let old_units = t.snapshot_units in
  let promo = Cluster.promote_standby t.cluster in
  let cluster = t.cluster in
  (match t.scrubber with Some s -> Scrubber.stop s | None -> ());
  t.scrubber <- None;
  (match t.scrub_config with
  | Some config ->
      let s =
        Scrubber.create cluster.Cluster.service ~home:cluster.Cluster.supervisor_host
          ~config ()
      in
      Scrubber.start s;
      t.scrubber <- Some s
  | None -> ());
  let repl =
    match Cluster.replicator cluster with
    | Some r -> r
    | None -> assert false (* promote_standby would have raised *)
  in
  let snap_ok = function
    | Approach.Blobcr_snapshot { image; version } ->
        Replicator.version_ok repl ~blob:(Client.blob_id image) ~version
    | Approach.Qcow2_snapshot _ | Approach.Full_snapshot _ -> false
  in
  (* Rebind snapshot blob handles onto the promoted repository (blob ids
     are preserved by replication). *)
  let translate = function
    | Approach.Blobcr_snapshot { image; version } ->
        Approach.Blobcr_snapshot
          {
            image =
              Client.open_blob cluster.Cluster.service ~from:cluster.Cluster.supervisor_host
                ~id:(Client.blob_id image);
            version;
          }
    | s -> s
  in
  let rec choose = function
    | [] -> None
    | (snaps, units) :: older ->
        if snaps <> [] && List.for_all snap_ok snaps then Some ((snaps, units), older)
        else choose older
  in
  match choose t.snapshot_history with
  | None -> `No_restorable
  | Some ((snaps, units), older) ->
      t.snapshots <- List.map translate snaps;
      t.snapshot_units <- units;
      (match choose older with
      | Some ((psnaps, punits), _) ->
          t.snapshots_prev <- List.map translate psnaps;
          t.snapshot_units_prev <- punits
      | None ->
          t.snapshots_prev <- [];
          t.snapshot_units_prev <- 0);
      trace t
        (Fmt.str "failover: resuming from %d units (%d version(s), %d byte(s) lost in flight)"
           units promo.Replicator.lost_versions promo.Replicator.lost_bytes);
      `Promoted (promo.Replicator.lost_versions, promo.Replicator.lost_bytes, old_units - units)

let recover t ~dead ~detected_at =
  Obs.Span.with_ (engine t) ~component:"sup" ~name:"sup.recover"
    ~attrs:[ ("dead", Obs.Record.Int (List.length dead)) ]
  @@ fun () ->
  Obs.Metrics.incr m_recoveries;
  record t (Failure_detected { at = detected_at; dead });
  List.iter
    (fun id -> if not (List.mem id t.declared_dead) then t.declared_dead <- id :: t.declared_dead)
    dead;
  t.wasted <- t.wasted +. (now t -. t.segment_start);
  let old_ids = List.map (fun (i : Approach.instance) -> i.Approach.id) t.instances in
  (* Roll the whole gang back: coordinated checkpoints are global, so
     survivors are killed too and everyone resumes from the last committed
     snapshot set. *)
  Protocol.kill_all t.instances;
  t.instances <- [];
  t.recoveries <- t.recoveries + 1;
  (* Site disaster: promote the standby before any metadata-plane work —
     the primary site is gone, so journal recovery, scrubbing and the
     restart all run against the promoted repository. *)
  let failover =
    if Cluster.site_failed t.cluster && not (Cluster.promoted t.cluster) then
      Some (fail_over t)
    else None
  in
  match failover with
  | Some `No_restorable ->
      t.abandoned <- old_ids @ t.abandoned;
      Obs.Metrics.incr m_abandoned;
      record t (Abandoned { at = now t; ids = old_ids });
      trace t "failover abandoned: no fully replicated snapshot set on the standby";
      `Abandoned
  | _ ->
  (* The metadata plane must be serving before any restart reads snapshot
     trees: a crash mid-COMMIT leaves the version manager down with a
     pending intent until journal recovery rolls it back. *)
  let service = t.cluster.Cluster.service in
  if not (Version_manager.is_alive (Client.version_manager service)) then begin
    let vm = Client.version_manager service in
    let md = Client.metadata_service service in
    let before =
      Version_manager.recovered_intents vm + Metadata_service.recovered_intents md
    in
    Version_manager.restart vm;
    Metadata_service.recover_journal md;
    let intents =
      Version_manager.recovered_intents vm + Metadata_service.recovered_intents md - before
    in
    record t (Journal_recovered { at = now t; intents });
    trace t (Fmt.str "journal recovery before restart: %d intent(s) rolled back" intents)
  end;
  (* Scrub before choosing the rollback target: the crash may have taken
     replicas (or silently corrupted them) out of the newest snapshot set.
     Repairs run now; if a snapshot still has a chunk with zero good
     copies, demote to the previous committed set. *)
  (match t.scrubber with
  | None -> ()
  | Some scrub ->
      let before = Scrubber.stats scrub in
      Scrubber.scan scrub;
      let after = Scrubber.stats scrub in
      record t
        (Scrubbed
           {
             at = now t;
             repaired = after.Scrubber.repairs - before.Scrubber.repairs;
             unrepairable = after.Scrubber.unrepairable - before.Scrubber.unrepairable;
           });
      let snapshot_ok = function
        | Approach.Blobcr_snapshot { image; version } ->
            Scrubber.version_ok scrub ~blob:(Client.blob_id image) ~version
        | Approach.Qcow2_snapshot _ | Approach.Full_snapshot _ -> true
      in
      if not (List.for_all snapshot_ok t.snapshots) && t.snapshots_prev <> [] then begin
        record t
          (Rollback_demoted
             { at = now t; from_units = t.snapshot_units; to_units = t.snapshot_units_prev });
        trace t
          (Fmt.str "rollback target demoted: snapshot at %d units unrestorable, using %d"
             t.snapshot_units t.snapshot_units_prev);
        t.snapshots <- t.snapshots_prev;
        t.snapshot_units <- t.snapshot_units_prev
      end);
  match restart_gang t with
  | Error _pending ->
      t.abandoned <- old_ids @ t.abandoned;
      Obs.Metrics.incr m_abandoned;
      record t (Abandoned { at = now t; ids = old_ids });
      trace t "recovery abandoned: no spare nodes or attempts exhausted";
      `Abandoned
  | Ok insts ->
      t.instances <- insts;
      t.workload.setup insts;
      Engine.all (engine t) ~name:"supervisor.restore"
        (List.map (fun inst () -> t.workload.restore inst) insts);
      t.workload.resumed t.snapshot_units;
      t.units_done <- t.snapshot_units;
      t.restarted <- old_ids @ t.restarted;
      let n = now t in
      t.latencies_rev <- (n -. detected_at) :: t.latencies_rev;
      t.segment_start <- n;
      (match failover with
      | Some (`Promoted (rpo_versions, rpo_bytes, rpo_units)) ->
          record t
            (Failed_over { at = n; rpo_versions; rpo_bytes; rpo_units; rto = n -. detected_at })
      | _ -> ());
      record t (Recovered { at = n; attempt = t.recoveries; resumed_units = t.snapshot_units });
      trace t
        (Fmt.str "recovered: resumed from %d units on %s" t.snapshot_units
           (String.concat ","
              (List.map (fun (i : Approach.instance) -> i.Approach.id) insts)));
      `Recovered

(* ------------------------------------------------------------------ *)
(* Main loop *)

let rec supervise t =
  let outcome = Engine.Ivar.create (engine t) in
  t.monitor_gen <- t.monitor_gen + 1;
  spawn_monitor t ~gen:t.monitor_gen ~outcome;
  let worker = spawn_worker t ~outcome in
  match Engine.Ivar.read outcome with
  | `Finished ->
      t.monitor_gen <- t.monitor_gen + 1;
      t.useful <- t.useful +. (now t -. t.segment_start);
      t.segment_start <- now t;
      t.finished <- true
  | (`Gang_down | `Dead _) as failure ->
      t.monitor_gen <- t.monitor_gen + 1;
      Engine.Fiber.cancel worker;
      let detected_at = now t in
      let dead_insts =
        match failure with `Dead insts -> insts | `Gang_down -> observed_dead t
      in
      let dead = List.map (fun (i : Approach.instance) -> i.Approach.id) dead_insts in
      trace t (Fmt.str "failure detected: [%s]" (String.concat "," dead));
      (match recover t ~dead ~detected_at with
      | `Recovered -> supervise t
      | `Abandoned -> t.finished <- false)

let report t =
  {
    finished = t.finished;
    units_completed = t.units_done;
    checkpoints = t.checkpoints;
    recoveries = t.recoveries;
    useful_time = t.useful;
    wasted_time = t.wasted;
    recovery_latencies = List.rev t.latencies_rev;
    checkpoint_time = t.ckpt_time;
    events = List.rev t.events_rev;
  }

let instances t = t.instances
let cluster t = t.cluster
let scrubber t = t.scrubber

(* Snapshot versions recovery may still roll back to: both committed
   snapshot sets (current and the demotion fallback). *)
let snapshot_pins t =
  let of_snap = function
    | Approach.Blobcr_snapshot { image; version } -> Some (Client.blob_id image, version)
    | Approach.Qcow2_snapshot _ | Approach.Full_snapshot _ -> None
  in
  List.filter_map of_snap t.snapshots @ List.filter_map of_snap t.snapshots_prev

(* (blob, version) pairs the GC must not prune: the rollback snapshot sets
   plus whatever the scrubber is mid-repair on. *)
let rollback_pins t =
  let scrub_pins = match t.scrubber with Some s -> Scrubber.pins s | None -> [] in
  List.sort_uniq
    (fun (b1, v1) (b2, v2) ->
      match Int.compare b1 b2 with 0 -> Int.compare v1 v2 | c -> c)
    (snapshot_pins t @ scrub_pins)

let audit t =
  let unaccounted =
    List.filter
      (fun id -> not (List.mem id t.restarted || List.mem id t.abandoned))
      t.declared_dead
  in
  List.map (Fmt.str "instance %s declared dead but neither restarted nor abandoned")
    unaccounted
  @ (if t.done_ && not (t.finished || t.abandoned <> []) then
       [ "run ended without finishing and without abandoning instances" ]
     else [])

let run cluster ~kind ?(policy = default_policy) ?scrub ?compaction ?on_ready ~id ~gang ~units
    ~workload () =
  if gang < 1 then invalid_arg "Supervisor.run: gang must be >= 1";
  if units < 1 then invalid_arg "Supervisor.run: units must be >= 1";
  if policy.checkpoint_interval < 1 then
    invalid_arg "Supervisor.run: checkpoint_interval must be >= 1";
  let slot_ids = Array.init gang (fun k -> Fmt.str "%s.%d" id k) in
  let t =
    {
      cluster;
      kind;
      policy;
      workload;
      total_units = units;
      slot_ids;
      instances = [];
      snapshots = [];
      snapshot_units = 0;
      snapshots_prev = [];
      snapshot_units_prev = 0;
      snapshot_history = [];
      scrub_config = scrub;
      scrubber = None;
      units_done = 0;
      checkpoints = 0;
      recoveries = 0;
      monitor_gen = 0;
      segment_start = Engine.now cluster.Cluster.engine;
      useful = 0.0;
      wasted = 0.0;
      latencies_rev = [];
      ckpt_time = 0.0;
      events_rev = [];
      declared_dead = [];
      restarted = [];
      abandoned = [];
      finished = false;
      done_ = false;
    }
  in
  Engine.register_audit_subject cluster.Cluster.engine (Audit_supervisor t);
  (* Kill our instances placed on a node the moment it crash-stops, so
     their guest fibers unwind at the next pause point. *)
  Cluster.on_node_crash cluster (fun node_index ->
      List.iter
        (fun (inst : Approach.instance) ->
          if inst.Approach.node.Cluster.index = node_index then Vmsim.Vm.kill inst.Approach.vm)
        t.instances);
  let initial_nodes = take gang (live_node_indices t ~excluding:[]) in
  if List.length initial_nodes < gang then invalid_arg "Supervisor.run: not enough live nodes";
  let insts =
    deploy_gang t
      ~nodes:(List.map (Cluster.node cluster) initial_nodes)
      ~ids:(Array.to_list slot_ids)
  in
  t.instances <- insts;
  record t
    (Deployed { at = now t; ids = List.map (fun (i : Approach.instance) -> i.Approach.id) insts });
  workload.setup insts;
  (* Mandatory initial checkpoint: recovery always has a snapshot set to
     fall back to, even if the first failure precedes the first interval. *)
  t.segment_start <- now t;
  take_checkpoint t;
  if t.snapshots = [] then failwith "Supervisor.run: initial checkpoint failed";
  (match scrub with
  | None -> ()
  | Some config ->
      let s =
        Scrubber.create cluster.Cluster.service ~home:cluster.Cluster.supervisor_host
          ~config ()
      in
      Scrubber.start s;
      t.scrubber <- Some s);
  (* Background retention/compaction: pin sources keep every version the
     supervisor can still roll back to, the scrubber is mid-repair on, or
     the replicator has in flight, so maintenance never races them. *)
  let compactor =
    match compaction with
    | None -> None
    | Some config ->
        let c =
          Compactor.create cluster.Cluster.service ~home:cluster.Cluster.supervisor_host
            ~config ()
        in
        Compactor.add_pin_source c ~name:"rollback" (fun () -> snapshot_pins t);
        Compactor.add_pin_source c ~name:"scrub" (fun () ->
            match t.scrubber with Some s -> Scrubber.pins s | None -> []);
        Compactor.add_pin_source c ~name:"repl" (fun () ->
            match Cluster.replicator cluster with
            | Some r -> Replicator.unsettled r
            | None -> []);
        Cluster.set_compactor cluster c;
        Compactor.start c;
        Some c
  in
  (match on_ready with Some f -> f t | None -> ());
  supervise t;
  (match t.scrubber with Some s -> Scrubber.stop s | None -> ());
  (match compactor with
  | Some c ->
      (* Settle the maintenance journal before teardown: a crash the
         background loop has not yet recovered would otherwise leave
         pending intents behind. *)
      if not (Compactor.is_alive c) then Compactor.restart c;
      Compactor.stop c
  | None -> ());
  t.done_ <- true;
  report t
