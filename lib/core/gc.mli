(** Transparent snapshot garbage collection.

    The extension the paper announces as future work: "reclaim the space
    used by disk-snapshots that are obsoleted by newer checkpoints".
    Retention drops all but the newest [keep_last] versions of every BLOB;
    a mark-and-sweep over the remaining snapshot trees then deletes every
    chunk no live snapshot references. Structural sharing makes this safe:
    a chunk survives as long as {e any} retained version of {e any} BLOB
    (including clones) still points to it. *)

open Blobseer

type report = {
  versions_dropped : int;
  chunks_deleted : int;
  bytes_reclaimed : int;
  index_entries_dropped : int;
      (** dedup-index digests no surviving version references, removed by
          reconciliation before the sweep *)
}

val collect : Client.t -> ?pins:(int * int) list -> keep_last:int -> unit -> report
(** Requires [keep_last >= 1]. Runs as a background activity: no simulated
    time is charged. [pins] are (blob, version) pairs retention must never
    drop, whatever their age: the supervisor's live rollback targets
    ({!Supervisor.rollback_pins}) and versions the scrubber is repairing
    ({!Blobseer.Scrubber.pins}). Without pins, a collection racing a
    rollback could prune the very snapshot the supervisor needs next. *)

val live_chunk_refs : Client.t -> (int * int, int) Hashtbl.t
(** For diagnostics and tests: map from physical chunk identity
    [(provider, chunk_id)] to the number of retained snapshot references. *)

val live_digest_refs : Client.t -> (int64 * (int * int * Types.replica list)) list
(** Ground truth for dedup-index reconciliation: per live content digest
    (sorted), the number of distinct descriptor serials referencing it
    across all retained versions, its size and an exemplar replica set.
    Collection resets the index to exactly this state. *)
