(** Experiment rig: an IaaS cloud in the shape of the paper's testbed.

    Builds the simulated platform — compute nodes with local disks and a
    shared network, the BlobSeer checkpoint repository aggregated from the
    compute nodes' disks (Section 3.1.1), the PVFS deployment the baselines
    use, dedicated service nodes (version manager, provider manager,
    metadata providers, PVFS metadata server), the cooperative prefetcher,
    and the base disk image uploaded both as a BLOB and as a raw PVFS
    file. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

type node = { index : int; host : Net.host; disk : Disk.t }

type dr = {
  primary_nodes : node array;  (** the original active site's nodes *)
  primary_service : Client.t;  (** the original active repository *)
  standby_nodes : node array;  (** the standby site's nodes *)
  standby_service : Client.t;  (** the standby repository *)
  replicator : Replicator.t;  (** the journal-shipping pipeline *)
  mutable site_failed : bool;  (** {!crash_site} was applied *)
  mutable promoted : bool;  (** {!promote_standby} was applied *)
}
(** Two-site state, present when {!build} was given a replication
    config. *)

type t = {
  engine : Engine.t;
  net : Net.t;
  cal : Calibration.t;
  mutable nodes : node array;  (** active-site compute nodes *)
  mutable service : Client.t;  (** BlobSeer over the active compute nodes *)
  pvfs : Pvfs.t;  (** PVFS over the compute nodes *)
  prefetch : Prefetch.t;
  mutable base_blob : Client.blob;
  base_version : int;
  base_raw : Pvfs.file;
  supervisor_host : Net.host;  (** where the supervisor service runs *)
  mutable failed_nodes : int list;  (** crash-stopped compute nodes *)
  mutable crash_hooks : (int -> unit) list;  (** run on each node crash *)
  mutable dr : dr option;  (** standby site, when built with [?dr] *)
  mutable compactor : Blobseer.Compactor.t option;
      (** background compactor, when registered via {!set_compactor} *)
}

val build :
  ?seed:int -> ?schedule:Event_queue.schedule -> ?dr:Replicator.config -> Calibration.t -> t
(** Stand up the platform and upload the base image (simulated time
    advances through the upload; experiments measure durations from their
    own start stamps). [schedule] is the engine's event-queue tie-break
    policy (default {!Event_queue.Fifo}); schedule fuzzing passes non-FIFO
    policies here to explore alternative interleavings of simultaneous
    events. [dr] additionally stands up a same-shape standby site (its own
    nodes, disks and service hosts) fed by a journal-shipping
    {!Replicator} through a WAN gateway pair; the base image is fully
    replicated before [build] returns. *)

val node : t -> int -> node
(** Compute node [i] (0-based). *)

val node_count : t -> int
(** Number of compute nodes stood up by {!build}. *)

val crash_node : t -> int -> unit
(** Crash-stop compute node [i]: its BlobSeer data provider fail-stops
    (local chunks are lost with the machine) and every registered crash
    hook runs, so VM owners can fail-stop instances placed there.
    Idempotent; PVFS-striped data survives. *)

val node_failed : t -> int -> bool
(** Whether {!crash_node} was applied to node [i]. *)

val on_node_crash : t -> (int -> unit) -> unit
(** Register a hook run with the node index on every {!crash_node}. *)

val crash_site : t -> unit
(** Fail-stop the entire active site: every compute node crashes (through
    {!crash_node}, so hooks run and hosted VMs die), and the repository's
    version manager and metadata providers fail-stop with them. The
    disaster-recovery trigger; idempotent, and a no-op when the cluster
    was built without a standby. *)

val site_failed : t -> bool
(** Whether {!crash_site} was applied. [false] without a standby site. *)

val promote_standby : t -> Replicator.promotion
(** Fail over to the standby site: the replicator pipeline is cancelled
    (yielding the loss report), half-applied records are rolled back, and
    [t.nodes]/[t.service]/[t.base_blob] are repointed at the standby so
    existing code keeps working unchanged. Raises [Invalid_argument]
    without a standby or on a second call. *)

val promoted : t -> bool
(** Whether {!promote_standby} was applied. *)

val replicator : t -> Replicator.t option
(** The journal-shipping pipeline, when built with [?dr]. *)

val set_compactor : t -> Blobseer.Compactor.t -> unit
(** Register the deployment's background compactor so fault handlers can
    target it by role ([Faults.Crash_compaction] / [Crash_service]). *)

val compactor : t -> Blobseer.Compactor.t option
(** The registered compactor, if any. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] executes [f] inside a fresh fiber and drives the engine until
    the event queue drains; returns [f]'s result. The entry point every
    experiment and example uses. *)

val now : t -> float
(** Current simulated time of the underlying engine, seconds. *)
