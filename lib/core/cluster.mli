(** Experiment rig: an IaaS cloud in the shape of the paper's testbed.

    Builds the simulated platform — compute nodes with local disks and a
    shared network, the BlobSeer checkpoint repository aggregated from the
    compute nodes' disks (Section 3.1.1), the PVFS deployment the baselines
    use, dedicated service nodes (version manager, provider manager,
    metadata providers, PVFS metadata server), the cooperative prefetcher,
    and the base disk image uploaded both as a BLOB and as a raw PVFS
    file. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

type node = { index : int; host : Net.host; disk : Disk.t }

type t = {
  engine : Engine.t;
  net : Net.t;
  cal : Calibration.t;
  nodes : node array;  (** compute nodes *)
  service : Client.t;  (** BlobSeer over the compute nodes *)
  pvfs : Pvfs.t;  (** PVFS over the compute nodes *)
  prefetch : Prefetch.t;
  base_blob : Client.blob;
  base_version : int;
  base_raw : Pvfs.file;
  supervisor_host : Net.host;  (** where the supervisor service runs *)
  mutable failed_nodes : int list;  (** crash-stopped compute nodes *)
  mutable crash_hooks : (int -> unit) list;  (** run on each node crash *)
}

val build : ?seed:int -> ?schedule:Event_queue.schedule -> Calibration.t -> t
(** Stand up the platform and upload the base image (simulated time
    advances through the upload; experiments measure durations from their
    own start stamps). [schedule] is the engine's event-queue tie-break
    policy (default {!Event_queue.Fifo}); schedule fuzzing passes non-FIFO
    policies here to explore alternative interleavings of simultaneous
    events. *)

val node : t -> int -> node
(** Compute node [i] (0-based). *)

val node_count : t -> int
(** Number of compute nodes stood up by {!build}. *)

val crash_node : t -> int -> unit
(** Crash-stop compute node [i]: its BlobSeer data provider fail-stops
    (local chunks are lost with the machine) and every registered crash
    hook runs, so VM owners can fail-stop instances placed there.
    Idempotent; PVFS-striped data survives. *)

val node_failed : t -> int -> bool
(** Whether {!crash_node} was applied to node [i]. *)

val on_node_crash : t -> (int -> unit) -> unit
(** Register a hook run with the node index on every {!crash_node}. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] executes [f] inside a fresh fiber and drives the engine until
    the event queue drains; returns [f]'s result. The entry point every
    experiment and example uses. *)

val now : t -> float
(** Current simulated time of the underlying engine, seconds. *)
