(** Deterministic, seed-driven fault injection.

    The injector schedules a {e script} of failure events — crash-stop host
    failures, data/metadata-provider fail-stops, transient disk I/O errors
    and link degradation/partitions — against an embedder through a record
    of {!handlers}. Scripts are either written explicitly or generated from
    an MTBF-parameterized profile with an engine-owned {!Simcore.Rng}, so
    the same seed reproduces the exact failure timeline.

    The injector is deliberately generic: it names targets by small integer
    indices and leaves their resolution (which host, which provider, which
    disk) to the handlers, so the embedding layer can make crashes track a
    migrating deployment deterministically. *)

open Simcore

exception Injected_error of string
(** A transient, retryable I/O error planted by the injector. Recovery
    paths match on this constructor — never on [Failure] strings. *)

(** One failure to inject. Integer targets are indices into whatever space
    the handlers resolve them over (compute nodes, providers, ...). *)
type action =
  | Crash_host of int  (** fail-stop a machine and everything on it *)
  | Fail_provider of int  (** fail-stop one data provider *)
  | Fail_metadata of int  (** fail-stop one metadata provider *)
  | Transient_disk of { target : int; ops : int }
      (** the target's next [ops] disk operations raise {!Injected_error} *)
  | Degrade_links of { factor : float; duration : float }
      (** scale effective network bandwidth down by [factor] (>= 1) *)
  | Partition of { group : int list; duration : float }
      (** cut the group's hosts off from the rest until healed *)
  | Silent_corruption of { provider : int; chunk : int }
      (** flip bytes of one stored replica without any error signal; [chunk]
          is an ordinal the handler resolves against the provider's stored
          chunks (mod count), so scripts stay valid whatever is stored *)
  | Crash_commit of { point : int }
      (** crash the version manager at crash point [point] (0 = before any
          state mutation, 1 = mid-apply) of its next publication/clone *)
  | Crash_compaction of { point : int }
      (** crash the compactor at crash point [point] (0 = before-flatten,
          1 = mid-retire, 2 = after-retire) of its next compaction
          transaction *)
  | Crash_service of int
      (** fail-stop a background-service host: 0 = scrubber, 1 = compactor
          (fail-stop, recovered by its own next tick), 2 = compactor armed
          crash (the handler rotates the crash point) — a no-op for
          embedders without the named service *)
  | Crash_site
      (** fail-stop an entire site — every compute node, the version
          manager and the metadata providers of the active repository go
          down together (the disaster-recovery trigger; a no-op for
          embedders without a standby site) *)

type event = { at : float; action : action }
(** [at] is relative to injector start (seconds). *)

type script = event list

val pp_action : Format.formatter -> action -> unit
(** One-line rendering of an action, e.g. ["crash-host 3"]. *)

val pp_event : Format.formatter -> event -> unit
(** ["t=+<at>s <action>"] — for traces and test transcripts. *)

val of_profile :
  rng:Rng.t ->
  mtbf:float ->
  ?start:float ->
  horizon:float ->
  hosts:int ->
  providers:int ->
  ?weights:int * int * int * int ->
  ?corrupt_weight:int ->
  ?service_weight:int ->
  ?transient_ops:int ->
  ?degrade_factor:float ->
  ?degrade_duration:float ->
  unit ->
  script
(** Generate a failure timeline: inter-arrival times are exponential with
    mean [mtbf], starting at [start] (default 0) and stopping at [horizon].
    Each event picks its class by the [weights] quadruple
    [(crash, provider, transient, degrade)] (default [(5, 3, 2, 1)]),
    extended by [corrupt_weight] (default 0) for {!Silent_corruption} and
    [service_weight] (default 0) for {!Crash_service} draws targeting the
    background-service hosts (scrubber/compactor), and a uniform target
    below [hosts] / [providers]. All randomness is drawn
    from [rng]: the same generator state yields the same script. *)

(** Callbacks through which events reach the simulated platform. Handlers
    must be total — applying a fault to an already-failed target is a
    no-op, not an error. *)
type handlers = {
  crash_host : int -> unit;
  fail_provider : int -> unit;
  fail_metadata : int -> unit;
  transient_disk : target:int -> ops:int -> unit;
  degrade_links : factor:float -> duration:float -> unit;
  partition : group:int list -> duration:float -> unit;
  silent_corruption : provider:int -> chunk:int -> unit;
  crash_commit : point:int -> unit;
  crash_compaction : point:int -> unit;
  crash_service : int -> unit;
  crash_site : unit -> unit;
}

val null_handlers : handlers
(** Ignores every event (useful for dry runs and tests of the scheduler). *)

type t

val start : Engine.t -> script:script -> handlers:handlers -> t
(** Spawn the injector fiber: it walks the script in time order (events at
    equal times apply in script order), sleeping between events and
    applying each through the handlers. May be called from inside or
    outside a fiber; event times are relative to the moment of the call. *)

val stop : t -> unit
(** Cancel the injector; pending events are dropped. *)

val applied : t -> event list
(** Events applied so far, in application order, with [at] rewritten to the
    absolute simulation time of application. *)

val with_retries :
  Engine.t -> ?retries:int -> ?backoff:float -> label:string -> (unit -> 'a) -> 'a
(** [with_retries engine ~label f] runs [f], retrying up to [retries]
    (default 3) additional times when it raises {!Injected_error} — the
    transient-fault recovery discipline. Waits [backoff * 2^attempt]
    (default base 0.01 s) between attempts and emits a trace line per
    retry. Any other exception, including {!Engine.Cancelled}, passes
    through untouched. *)
