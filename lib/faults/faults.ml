open Simcore

exception Injected_error of string

let () =
  Printexc.register_printer (function
    | Injected_error what -> Some (Fmt.str "Faults.Injected_error(%s)" what)
    | _ -> None)

type action =
  | Crash_host of int
  | Fail_provider of int
  | Fail_metadata of int
  | Transient_disk of { target : int; ops : int }
  | Degrade_links of { factor : float; duration : float }
  | Partition of { group : int list; duration : float }
  | Silent_corruption of { provider : int; chunk : int }
  | Crash_commit of { point : int }
  | Crash_compaction of { point : int }
  | Crash_service of int
  | Crash_site

type event = { at : float; action : action }
type script = event list

let pp_action ppf = function
  | Crash_host i -> Fmt.pf ppf "crash-host %d" i
  | Fail_provider i -> Fmt.pf ppf "fail-provider %d" i
  | Fail_metadata i -> Fmt.pf ppf "fail-metadata %d" i
  | Transient_disk { target; ops } -> Fmt.pf ppf "transient-disk %d (%d ops)" target ops
  | Degrade_links { factor; duration } ->
      Fmt.pf ppf "degrade-links x%.2f for %.1fs" factor duration
  | Partition { group; duration } ->
      Fmt.pf ppf "partition {%a} for %.1fs" Fmt.(list ~sep:comma int) group duration
  | Silent_corruption { provider; chunk } ->
      Fmt.pf ppf "silent-corruption provider %d chunk %d" provider chunk
  | Crash_commit { point } -> Fmt.pf ppf "crash-commit point %d" point
  | Crash_compaction { point } -> Fmt.pf ppf "crash-compaction point %d" point
  | Crash_service i -> Fmt.pf ppf "crash-service %d" i
  | Crash_site -> Fmt.pf ppf "crash-site"

let pp_event ppf e = Fmt.pf ppf "t=%.3f %a" e.at pp_action e.action

(* ------------------------------------------------------------------ *)
(* Profile-driven script generation *)

let of_profile ~rng ~mtbf ?(start = 0.0) ~horizon ~hosts ~providers
    ?(weights = (5, 3, 2, 1)) ?(corrupt_weight = 0) ?(service_weight = 0)
    ?(transient_ops = 3) ?(degrade_factor = 4.0) ?(degrade_duration = 10.0) () =
  if mtbf <= 0.0 then invalid_arg "Faults.of_profile: mtbf must be positive";
  if hosts < 1 then invalid_arg "Faults.of_profile: hosts must be positive";
  let wc, wp, wt, wd = weights in
  let total = wc + wp + wt + wd + corrupt_weight + service_weight in
  if total <= 0 then invalid_arg "Faults.of_profile: weights sum to zero";
  let pick_action () =
    let roll = Rng.int rng total in
    if roll < wc then Crash_host (Rng.int rng hosts)
    else if roll < wc + wp then
      Fail_provider (Rng.int rng (max 1 providers))
    else if roll < wc + wp + wt then
      Transient_disk { target = Rng.int rng hosts; ops = 1 + Rng.int rng transient_ops }
    else if roll < wc + wp + wt + wd then
      Degrade_links { factor = degrade_factor; duration = degrade_duration }
    else if roll < wc + wp + wt + wd + service_weight then
      (* Background-service hosts: 0 = scrubber, 1 = compactor fail-stop,
         2 = compactor armed crash point (the handler rotates the point). *)
      Crash_service (Rng.int rng 3)
    else
      (* [chunk] is an abstract ordinal the handler resolves against the
         provider's stored-chunk list (mod its length), so the script stays
         meaningful whatever the store holds at injection time. *)
      Silent_corruption
        { provider = Rng.int rng (max 1 providers); chunk = Rng.int rng 1024 }
  in
  let rec go t acc =
    let t = t +. Rng.exponential rng mtbf in
    if t >= horizon then List.rev acc
    else go t ({ at = t; action = pick_action () } :: acc)
  in
  go start []

(* ------------------------------------------------------------------ *)
(* Injection *)

type handlers = {
  crash_host : int -> unit;
  fail_provider : int -> unit;
  fail_metadata : int -> unit;
  transient_disk : target:int -> ops:int -> unit;
  degrade_links : factor:float -> duration:float -> unit;
  partition : group:int list -> duration:float -> unit;
  silent_corruption : provider:int -> chunk:int -> unit;
  crash_commit : point:int -> unit;
  crash_compaction : point:int -> unit;
  crash_service : int -> unit;
  crash_site : unit -> unit;
}

let null_handlers =
  {
    crash_host = (fun _ -> ());
    fail_provider = (fun _ -> ());
    fail_metadata = (fun _ -> ());
    transient_disk = (fun ~target:_ ~ops:_ -> ());
    degrade_links = (fun ~factor:_ ~duration:_ -> ());
    partition = (fun ~group:_ ~duration:_ -> ());
    silent_corruption = (fun ~provider:_ ~chunk:_ -> ());
    crash_commit = (fun ~point:_ -> ());
    crash_compaction = (fun ~point:_ -> ());
    crash_service = (fun _ -> ());
    crash_site = (fun () -> ());
  }

type t = {
  engine : Engine.t;
  fiber : Engine.fiber;
  applied_rev : event list ref; (* newest first *)
}

let apply handlers = function
  | Crash_host i -> handlers.crash_host i
  | Fail_provider i -> handlers.fail_provider i
  | Fail_metadata i -> handlers.fail_metadata i
  | Transient_disk { target; ops } -> handlers.transient_disk ~target ~ops
  | Degrade_links { factor; duration } -> handlers.degrade_links ~factor ~duration
  | Partition { group; duration } -> handlers.partition ~group ~duration
  | Silent_corruption { provider; chunk } -> handlers.silent_corruption ~provider ~chunk
  | Crash_commit { point } -> handlers.crash_commit ~point
  | Crash_compaction { point } -> handlers.crash_compaction ~point
  | Crash_service i -> handlers.crash_service i
  | Crash_site -> handlers.crash_site ()

let start engine ~script ~handlers =
  (* Stable sort keeps script order for events at equal times. *)
  let ordered = List.stable_sort (fun a b -> Float.compare a.at b.at) script in
  let applied_rev = ref [] in
  let start_time = Engine.now engine in
  let injector () =
    List.iter
      (fun e ->
        let due = start_time +. e.at in
        let dt = due -. Engine.now engine in
        if dt > 0.0 then Engine.sleep engine dt;
        Trace.emit engine ~component:"faults" "inject: %a" pp_action e.action;
        apply handlers e.action;
        applied_rev := { e with at = Engine.now engine } :: !applied_rev)
      ordered
  in
  let fiber = Engine.Fiber.spawn engine ~name:"faults.injector" injector in
  { engine; fiber; applied_rev }

let stop t = Engine.Fiber.cancel t.fiber
let applied t = List.rev !(t.applied_rev)

(* ------------------------------------------------------------------ *)
(* Transient-fault retry discipline *)

let with_retries engine ?(retries = 3) ?(backoff = 0.01) ~label f =
  let rec go attempt =
    try f ()
    with Injected_error what when attempt < retries ->
      Trace.emit engine ~component:label "transient fault (%s), retry %d/%d" what
        (attempt + 1) retries;
      Engine.sleep engine (backoff *. float_of_int (1 lsl attempt));
      go (attempt + 1)
  in
  go 0
