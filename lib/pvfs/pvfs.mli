(** PVFS-style parallel file system (the paper's baseline substrate).

    Files are striped round-robin across I/O servers for parallel
    bandwidth; a single metadata server handles every namespace operation
    (create, open, delete, stat), which is the system's serialization point
    under concurrent checkpoint storms. Unlike BlobSeer there is no
    versioning: writes mutate file contents in place, and snapshotting a
    qcow2 image means copying the whole file in as a new object.

    Cost model per stripe operation: network transfer between client and
    the I/O server holding the stripe, a fixed request-service overhead
    (the kernel/VFS + server request path, higher than BlobSeer's
    lightweight chunk service), and disk time at the server. *)

open Simcore
open Netsim
open Storage

type t
type file

type params = {
  stripe_size : int;
  metadata_op_cost : float;  (** serialized cost per namespace operation *)
  request_overhead : float;  (** per-stripe service cost at an I/O server *)
  write_window : int;
  read_window : int;
}

val default_params : params
(** 256 KiB stripes, 5 ms metadata ops, 1 ms per stripe request,
    window 4. *)

val deploy :
  Engine.t ->
  Net.t ->
  ?params:params ->
  metadata_host:Net.host ->
  io_servers:(Net.host * Disk.t) list ->
  unit ->
  t
(** Stand up a deployment: one metadata server plus an I/O server per
    [(host, disk)] pair. *)

val engine : t -> Engine.t
(** The engine the deployment runs on. *)

val params : t -> params
(** The parameters the deployment was stood up with. *)

val server_count : t -> int
(** Number of I/O servers. *)

val total_bytes : t -> int
(** Physical bytes stored across all I/O servers. *)

val create : t -> from:Net.host -> path:string -> file
(** Namespace operation through the metadata server. Raises
    [Invalid_argument] if the path already exists. *)

val open_file : t -> from:Net.host -> path:string -> file
(** Raises [Not_found] for missing paths. *)

val exists : t -> path:string -> bool
(** Cost-free namespace peek (tests and idempotence checks). *)

val delete : t -> from:Net.host -> path:string -> unit
(** Frees the stripes on the I/O servers. *)

val path : file -> string
(** The path the file was created under. *)

val size : file -> int
(** Current logical file size (writes extend it). *)

val write : file -> from:Net.host -> offset:int -> Payload.t -> unit
(** In-place striped write; extends the file if needed. *)

val read : file -> from:Net.host -> offset:int -> len:int -> Payload.t
(** Raises [Invalid_argument] when reading past end of file. Holes left by
    sparse writes read as zeros. *)
