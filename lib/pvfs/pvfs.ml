open Simcore
open Netsim
open Storage

type params = {
  stripe_size : int;
  metadata_op_cost : float;
  request_overhead : float;
  write_window : int;
  read_window : int;
}

let default_params =
  {
    stripe_size = 256 * Size.kib;
    metadata_op_cost = 5e-3;
    request_overhead = 1e-3;
    write_window = 4;
    read_window = 4;
  }

type io_server = { shost : Net.host; sdisk : Disk.t; service : Rate_server.t }

type file = {
  fs : t;
  fpath : string;
  start_server : int;
  mutable stripes : Payload.t option array;
  mutable fsize : int;
}

and t = {
  engine : Engine.t;
  net : Net.t;
  prm : params;
  metadata_host : Net.host;
  metadata : Rate_server.t;
  servers : io_server array;
  files : (string, file) Hashtbl.t;
  mutable next_start : int;
}

let deploy engine net ?(params = default_params) ~metadata_host ~io_servers () =
  if io_servers = [] then invalid_arg "Pvfs.deploy: no I/O servers";
  let mk i (shost, sdisk) =
    {
      shost;
      sdisk;
      service =
        Rate_server.create engine ~rate:1e12 ~per_op:params.request_overhead
          ~name:(Fmt.str "pvfs.io%d" i) ();
    }
  in
  {
    engine;
    net;
    prm = params;
    metadata_host;
    metadata =
      Rate_server.create engine ~rate:1e12 ~per_op:params.metadata_op_cost ~name:"pvfs.md" ();
    servers = Array.of_list (List.mapi mk io_servers);
    files = Hashtbl.create 256;
    next_start = 0;
  }

let engine t = t.engine
let params t = t.prm
let server_count t = Array.length t.servers

let total_bytes t =
  (* lint: allow hashtbl-order — commutative sum *)
  Hashtbl.fold
    (fun _ file acc ->
      Array.fold_left
        (fun acc stripe ->
          acc + match stripe with Some p -> Payload.length p | None -> 0)
        acc file.stripes)
    t.files 0

(* Every namespace operation goes through the single metadata server. *)
let metadata_op t ~from =
  Net.message t.net ~src:from ~dst:t.metadata_host;
  Rate_server.process t.metadata 0;
  Net.message t.net ~src:t.metadata_host ~dst:from

let create t ~from ~path =
  metadata_op t ~from;
  if Hashtbl.mem t.files path then invalid_arg (Fmt.str "Pvfs.create: %s exists" path);
  let file = { fs = t; fpath = path; start_server = t.next_start; stripes = [||]; fsize = 0 } in
  t.next_start <- (t.next_start + 1) mod Array.length t.servers;
  Hashtbl.replace t.files path file;
  file

let open_file t ~from ~path =
  metadata_op t ~from;
  match Hashtbl.find_opt t.files path with
  | Some file -> file
  | None -> raise Not_found

let exists t ~path = Hashtbl.mem t.files path

let server_of file index =
  let t = file.fs in
  t.servers.((file.start_server + index) mod Array.length t.servers)

let stored_len file index =
  if index >= Array.length file.stripes then 0
  else match file.stripes.(index) with Some p -> Payload.length p | None -> 0

let delete t ~from ~path =
  metadata_op t ~from;
  match Hashtbl.find_opt t.files path with
  | None -> raise Not_found
  | Some file ->
      Array.iteri
        (fun index stripe ->
          match stripe with
          | Some p -> Disk.free (server_of file index).sdisk (Payload.length p)
          | None -> ())
        file.stripes;
      Hashtbl.remove t.files path

let path file = file.fpath
let size file = file.fsize

let ensure_stripes file count =
  let current = Array.length file.stripes in
  if count > current then begin
    let grown = Array.make count None in
    Array.blit file.stripes 0 grown 0 current;
    file.stripes <- grown
  end

let stripe_content file index extent =
  match if index < Array.length file.stripes then file.stripes.(index) else None with
  | Some p ->
      if Payload.length p >= extent then Payload.sub p ~pos:0 ~len:extent
      else Payload.concat [ p; Payload.zero (extent - Payload.length p) ]
  | None -> Payload.zero extent

let m_bytes_written = Obs.Metrics.counter ~component:"pvfs" ~name:"bytes_written"
let m_bytes_read = Obs.Metrics.counter ~component:"pvfs" ~name:"bytes_read"

let write file ~from ~offset payload =
  let t = file.fs in
  let len = Payload.length payload in
  if offset < 0 then invalid_arg "Pvfs.write: negative offset";
  if len > 0 then begin
    Obs.Metrics.add m_bytes_written (float_of_int len);
    let stripe = t.prm.stripe_size in
    let first = offset / stripe and last = (offset + len - 1) / stripe in
    ensure_stripes file (last + 1);
    let write_stripe index () =
      let cstart = index * stripe in
      let wstart = max cstart offset and wend = min (cstart + stripe) (offset + len) in
      let written = wend - wstart in
      (* New stripe content: splice the written bytes over the old ones,
         extending with the write when it grows the stripe. *)
      let old_len = stored_len file index in
      let keep_prefix = min old_len (wstart - cstart) in
      let old = stripe_content file index (max old_len (wend - cstart)) in
      let content =
        Payload.concat
          [
            Payload.sub old ~pos:0 ~len:keep_prefix;
            Payload.zero (wstart - cstart - keep_prefix);
            Payload.sub payload ~pos:(wstart - offset) ~len:written;
            (if old_len > wend - cstart then
               Payload.sub old ~pos:(wend - cstart) ~len:(old_len - (wend - cstart))
             else Payload.zero 0);
          ]
      in
      let server = server_of file index in
      Net.transfer t.net ~src:from ~dst:server.shost written;
      Rate_server.process server.service 0;
      (* In-place stripe update: interleaved clients make the server disk
         seek between file regions. *)
      Disk.write server.sdisk ~stream:(2_000_000 + Net.host_id from) written;
      (* Disk.write accounted [written] bytes; the stored stripe grew by
         [delta] (more when a hole was zero-filled, less when overwriting
         in place) — reconcile the usage accounting. *)
      let delta = Payload.length content - old_len in
      if delta >= written then Disk.reserve server.sdisk (delta - written)
      else Disk.free server.sdisk (written - delta);
      file.stripes.(index) <- Some content
    in
    Parallel.windowed t.engine ~window:t.prm.write_window
      (List.init (last - first + 1) (fun k -> write_stripe (first + k)));
    file.fsize <- max file.fsize (offset + len)
  end

let read file ~from ~offset ~len =
  let t = file.fs in
  if offset < 0 || len < 0 || offset + len > file.fsize then
    invalid_arg "Pvfs.read: range out of bounds";
  if len = 0 then Payload.zero 0
  else begin
    Obs.Metrics.add m_bytes_read (float_of_int len);
    let stripe = t.prm.stripe_size in
    let first = offset / stripe and last = (offset + len - 1) / stripe in
    let read_stripe index =
      let cstart = index * stripe in
      let extent = min stripe (file.fsize - cstart) in
      (* Only the requested overlap is served and shipped. *)
      let rstart = max cstart offset and rend = min (cstart + extent) (offset + len) in
      let requested = rend - rstart in
      let server = server_of file index in
      Rate_server.process server.service 0;
      Disk.read server.sdisk ~stream:(2_000_000 + Net.host_id from) requested;
      Net.transfer t.net ~src:server.shost ~dst:from requested;
      Payload.sub (stripe_content file index extent) ~pos:(rstart - cstart)
        ~len:requested
    in
    let parts =
      Parallel.map_windowed t.engine ~window:t.prm.read_window read_stripe
        (List.init (last - first + 1) (fun k -> first + k))
    in
    (* Each part is exactly its stripe's overlap with the request. *)
    Payload.concat parts
  end
