(** Local disk model.

    A single spindle serving reads and writes FIFO at a sequential rate with
    a per-operation positioning overhead. Matches the paper's testbed
    ("local disk storage of 278 GB, access speed ~55 MB/s"). *)

open Simcore

type t

exception Full of { disk : string; need : int; capacity : int }
(** Raised when a write or reservation would exceed capacity: [need] is the
    total the operation would have used. Typed so recovery code can match
    on it instead of on [Failure] strings. *)

val create :
  Engine.t ->
  ?rate:float ->
  ?per_op:float ->
  ?seek:float ->
  ?capacity:int ->
  ?name:string ->
  unit ->
  t
(** Defaults: 55 MiB/s, 0.5 ms per operation, 8 ms seek on stream switch,
    278 GiB capacity. *)

val read : t -> ?stream:int -> int -> unit
(** Block for the service time of reading [bytes]. [stream] identifies the
    logical access stream: consecutive requests from the same stream are
    sequential; switching streams pays a seek.
    Raises {!Faults.Injected_error} while a transient fault is armed. *)

val write : t -> ?stream:int -> int -> unit
(** Block for the service time of writing [bytes]. Accounts the bytes
    against capacity. Raises {!Full} when the disk is full and
    {!Faults.Injected_error} while a transient fault is armed. *)

val free : t -> int -> unit
(** Return previously written bytes to the free pool (deletion). *)

val reserve : t -> int -> unit
(** Account bytes against capacity without charging service time (e.g.
    sparse-extension bookkeeping). Raises {!Full} when full. *)

val inject_transient : t -> ops:int -> unit
(** Arm [ops] transient faults: each of the next [ops] read/write calls
    raises {!Faults.Injected_error} before touching the media (no service
    time, no state change). Fault-injection hook. *)

val armed_faults : t -> int
(** Transient faults still armed. *)

val name : t -> string
(** The name passed at creation (for traces and error reports). *)

val capacity : t -> int
(** Total capacity in bytes. *)

val used : t -> int
(** Bytes currently accounted against capacity. *)

val bytes_read : t -> int
(** Total bytes read over the disk's lifetime. *)

val bytes_written : t -> int
(** Total bytes written over the disk's lifetime. *)

val busy_time : t -> float
(** Simulated seconds spent serving requests. *)
