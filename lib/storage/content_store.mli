(** In-memory chunk content store with reference counting.

    Holds the payload of every stored chunk. Chunks are immutable;
    structural sharing across snapshots is expressed by multiple references
    to the same chunk id. The store tracks logical bytes held, which is what
    the storage-utilization experiments report. *)

open Simcore

type t
type chunk_id = int

val create : unit -> t
(** An empty store. *)

val put : t -> Payload.t -> chunk_id
(** Store a payload with reference count 1. *)

val get : t -> chunk_id -> Payload.t
(** Raises [Not_found] for dead or unknown ids. *)

val incr_ref : t -> chunk_id -> unit
(** Add one reference to a live chunk. *)

val decr_ref : t -> chunk_id -> unit
(** Drops the chunk when the count reaches zero. *)

val refs : t -> chunk_id -> int
(** 0 for dead/unknown chunks. *)

val recorded_digest : t -> chunk_id -> int64
(** The {!Simcore.Payload.digest} recorded when the chunk was stored. Silent
    corruption ({!corrupt}) mutates the payload but not this record, so a
    scrub comparing the two detects the damage. Raises [Not_found] for
    dead/unknown ids. *)

val corrupt : t -> chunk_id -> Payload.t -> unit
(** Replace the stored payload in place, keeping the originally recorded
    digest — models silent media corruption. Raises [Not_found] for
    dead/unknown ids. *)

val mem : t -> chunk_id -> bool
(** Whether the id refers to a live chunk. *)

(** Live chunk ids, ascending (GC sweep enumeration). *)
val ids : t -> chunk_id list

val chunk_count : t -> int
(** Number of live chunks. *)

val total_bytes : t -> int
(** Sum of payload lengths of live chunks. *)
