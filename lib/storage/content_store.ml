open Simcore

type chunk_id = int

(* [digest] is recorded once at [put] time and deliberately NOT refreshed by
   [corrupt]: it models the checksum the provider wrote alongside the chunk,
   which silent media corruption does not update. *)
type entry = { mutable payload : Payload.t; digest : int64; mutable refs : int }

type t = {
  table : (chunk_id, entry) Hashtbl.t;
  mutable next_id : chunk_id;
  mutable total_bytes : int;
}

let create () = { table = Hashtbl.create 1024; next_id = 0; total_bytes = 0 }

let put t payload =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.table id { payload; digest = Payload.digest payload; refs = 1 };
  t.total_bytes <- t.total_bytes + Payload.length payload;
  id

let get t id =
  let entry = Hashtbl.find t.table id in
  entry.payload

let incr_ref t id =
  let entry = Hashtbl.find t.table id in
  entry.refs <- entry.refs + 1

let decr_ref t id =
  let entry = Hashtbl.find t.table id in
  entry.refs <- entry.refs - 1;
  if entry.refs <= 0 then begin
    Hashtbl.remove t.table id;
    t.total_bytes <- t.total_bytes - Payload.length entry.payload
  end

let refs t id = match Hashtbl.find_opt t.table id with Some e -> e.refs | None -> 0

let recorded_digest t id =
  let entry = Hashtbl.find t.table id in
  entry.digest

let corrupt t id payload =
  let entry = Hashtbl.find t.table id in
  t.total_bytes <- t.total_bytes - Payload.length entry.payload + Payload.length payload;
  entry.payload <- payload

let ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.table [] |> List.sort compare
let mem t id = Hashtbl.mem t.table id
let chunk_count t = Hashtbl.length t.table
let total_bytes t = t.total_bytes
