open Simcore

exception Full of { disk : string; need : int; capacity : int }

let () =
  Printexc.register_printer (function
    | Full { disk; need; capacity } ->
        Some (Fmt.str "Disk.Full(%s: need %d of %d)" disk need capacity)
    | _ -> None)

type t = {
  engine : Engine.t;
  dname : string;
  server : Rate_server.t;
  capacity : int;
  mutable used : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable armed_faults : int;
}

let default_rate = 55.0 *. float_of_int Size.mib
let default_per_op = 5e-4
let default_seek = 8e-3

let create engine ?(rate = default_rate) ?(per_op = default_per_op) ?(seek = default_seek)
    ?(capacity = Size.gib_n 278) ?(name = "disk") () =
  {
    engine;
    dname = name;
    server = Rate_server.create engine ~rate ~per_op ~seek ~name ();
    capacity;
    used = 0;
    bytes_read = 0;
    bytes_written = 0;
    armed_faults = 0;
  }

let inject_transient t ~ops =
  if ops < 0 then invalid_arg "Disk.inject_transient";
  t.armed_faults <- t.armed_faults + ops

let armed_faults t = t.armed_faults

(* An armed fault fires before the operation touches the media: no service
   time is charged and no state changes — the retry pays the backoff. *)
let maybe_fault t =
  if t.armed_faults > 0 then begin
    t.armed_faults <- t.armed_faults - 1;
    Trace.emit t.engine ~component:t.dname "transient I/O error injected";
    raise (Faults.Injected_error (t.dname ^ ": I/O error"))
  end

let read t ?stream bytes =
  maybe_fault t;
  Rate_server.process t.server ?stream bytes;
  t.bytes_read <- t.bytes_read + bytes

let write t ?stream bytes =
  maybe_fault t;
  if t.used + bytes > t.capacity then
    raise (Full { disk = t.dname; need = t.used + bytes; capacity = t.capacity });
  Rate_server.process t.server ?stream bytes;
  t.used <- t.used + bytes;
  t.bytes_written <- t.bytes_written + bytes

let free t bytes =
  if bytes < 0 || bytes > t.used then invalid_arg "Disk.free";
  t.used <- t.used - bytes

let reserve t bytes =
  if bytes < 0 then invalid_arg "Disk.reserve";
  if t.used + bytes > t.capacity then
    raise (Full { disk = t.dname; need = t.used + bytes; capacity = t.capacity });
  t.used <- t.used + bytes

let name t = t.dname
let capacity t = t.capacity
let used t = t.used
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let busy_time t = Rate_server.busy_time t.server
