(** Registry of named counters, gauges and histograms.

    A handle is minted once, at module-initialization time, with
    {!counter}/{!gauge}/{!histogram}; minting registers the metric's
    (component, name, kind) in a global schema, so every run snapshot lists
    all registered metrics — touched or not — with a stable order. Updates
    through a handle are no-ops unless a {!Record.capture} is active. *)

type handle
(** A registered metric. Cheap to store in module globals. *)

val counter : component:string -> name:string -> handle
(** A monotonically accumulating sum (events, bytes). Snapshot reports the
    total. Registering the same (component, name) twice with the same kind
    returns an equivalent handle; with a different kind it raises. *)

val gauge : component:string -> name:string -> handle
(** A last-value-wins level (bytes currently resident, live entries).
    Snapshot reports the last set value plus the observed min/max. *)

val histogram : component:string -> name:string -> handle
(** A distribution of observations (per-commit seconds). Snapshot reports
    count, sum, min, max and last. *)

val incr : ?by:int -> handle -> unit
(** Add [by] (default 1) to a counter. *)

val add : handle -> float -> unit
(** Add a float amount to a counter. *)

val set : handle -> int -> unit
(** Set a gauge to an integer level. *)

val observe : handle -> float -> unit
(** Record one histogram observation. *)
