open Simcore

type value = Int of int | Bytes of int | Float of float | Str of string

let pp_value ppf = function
  | Int n -> Fmt.int ppf n
  | Bytes n -> Fmt.string ppf (Size.to_string n)
  | Float v -> Fmt.pf ppf "%.6g" v
  | Str s -> Fmt.string ppf s

type span = {
  id : int;
  parent : int option;
  track : int;
  fiber : int;
  fiber_name : string;
  component : string;
  name : string;
  start_time : float;
  duration : float;
  attrs : (string * value) list;
}

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type metric = {
  m_component : string;
  m_name : string;
  m_kind : kind;
  samples : int;
  total : float;
  vmin : float;
  vmax : float;
  last : float;
}

type run = {
  spans : span list; (* in completion order *)
  metrics : metric list; (* sorted by (component, name) *)
  tracks : (int * string) list; (* track id -> label, in creation order *)
}

(* ------------------------------------------------------------------ *)
(* The metrics registry: every handle minted by [Metrics] registers its
   (component, name, kind) here, at module-initialization time, so a run
   snapshot lists each registered metric even when it was never touched —
   the table schema is stable across runs, which is what the determinism
   checks compare. *)

let registry : (string * string * kind) list ref = ref []

let register ~component ~name kind =
  if
    List.exists
      (fun (c, n, k) -> c = component && n = name && k <> kind)
      !registry
  then invalid_arg (Fmt.str "Obs: metric %s/%s re-registered with another kind" component name);
  if not (List.exists (fun (c, n, _) -> c = component && n = name) !registry) then
    registry := (component, name, kind) :: !registry

(* ------------------------------------------------------------------ *)
(* Collector state *)

type open_span = {
  o_id : int;
  o_parent : int option;
  o_track : int;
  o_fiber : int;
  o_fiber_name : string;
  o_component : string;
  o_name : string;
  o_start : float;
  mutable o_attrs : (string * value) list; (* reversed *)
}

type cell = {
  mutable c_samples : int;
  mutable c_total : float;
  mutable c_min : float;
  mutable c_max : float;
  mutable c_last : float;
}

type collector = {
  mutable spans_rev : span list;
  mutable next_span : int;
  (* Track assignment: one per engine seen, by physical equality — each
     engine is an independent simulated timeline. *)
  mutable engines : (Engine.t * int) list;
  mutable track_labels : (int * string) list; (* reversed *)
  mutable next_track : int;
  (* Innermost-first stacks of open spans, one per (track, fiber). *)
  stacks : (int * int, open_span list) Hashtbl.t;
  cells : (string * string, cell) Hashtbl.t;
  with_detail : bool;
}

let current : collector option ref = ref None

let recording () = !current <> None
let detail_enabled () = match !current with Some c -> c.with_detail | None -> false

let fresh_collector ~detail =
  {
    spans_rev = [];
    next_span = 0;
    engines = [];
    track_labels = [];
    next_track = 0;
    stacks = Hashtbl.create 64;
    cells = Hashtbl.create 64;
    with_detail = detail;
  }

let track_of c engine =
  match List.find_opt (fun (e, _) -> e == engine) c.engines with
  | Some (_, id) -> id
  | None ->
      let id = c.next_track in
      c.next_track <- id + 1;
      c.engines <- (engine, id) :: c.engines;
      c.track_labels <- (id, Fmt.str "sim%d" id) :: c.track_labels;
      id

let label_track engine label =
  match !current with
  | None -> ()
  | Some c ->
      let id = track_of c engine in
      c.track_labels <-
        List.map (fun (i, l) -> if i = id then (i, label) else (i, l)) c.track_labels

(* The logical thread of the caller: the running fiber, or the synthetic
   "scheduler" thread (-1) when called from outside any fiber. *)
let fiber_key engine =
  match Engine.current_fiber engine with
  | Some f -> (Engine.Fiber.id f, Engine.Fiber.name f)
  | None -> (-1, "scheduler")

(* ------------------------------------------------------------------ *)
(* Span plumbing (used by [Span]) *)

let open_span engine ~component ~name ~attrs =
  match !current with
  | None -> None
  | Some c ->
      let track = track_of c engine in
      let fiber, fiber_name = fiber_key engine in
      let stack = Option.value ~default:[] (Hashtbl.find_opt c.stacks (track, fiber)) in
      let parent = match stack with [] -> None | o :: _ -> Some o.o_id in
      let o =
        {
          o_id = c.next_span;
          o_parent = parent;
          o_track = track;
          o_fiber = fiber;
          o_fiber_name = fiber_name;
          o_component = component;
          o_name = name;
          o_start = Engine.now engine;
          o_attrs = List.rev attrs;
        }
      in
      c.next_span <- c.next_span + 1;
      Hashtbl.replace c.stacks (track, fiber) (o :: stack);
      Trace.emit engine ~component "span %s begin" name;
      Some o

let close_span engine o =
  match !current with
  | None -> ()
  | Some c -> (
      let key = (o.o_track, o.o_fiber) in
      match Hashtbl.find_opt c.stacks key with
      | Some (top :: rest) when top == o ->
          Hashtbl.replace c.stacks key rest;
          let stop = Engine.now engine in
          let span =
            {
              id = o.o_id;
              parent = o.o_parent;
              track = o.o_track;
              fiber = o.o_fiber;
              fiber_name = o.o_fiber_name;
              component = o.o_component;
              name = o.o_name;
              start_time = o.o_start;
              duration = stop -. o.o_start;
              attrs = List.rev o.o_attrs;
            }
          in
          c.spans_rev <- span :: c.spans_rev;
          Trace.emit engine ~component:o.o_component "span %s end (%.6fs)" o.o_name
            span.duration
      | _ ->
          (* Mismatched close (span stack corrupted by a non-nested close):
             fail loudly — this is a programming error in instrumentation. *)
          invalid_arg (Fmt.str "Obs: span %s closed out of order" o.o_name))

let add_attr engine key value =
  match !current with
  | None -> ()
  | Some c -> (
      let track = track_of c engine in
      let fiber, _ = fiber_key engine in
      match Hashtbl.find_opt c.stacks (track, fiber) with
      | Some (o :: _) -> o.o_attrs <- (key, value) :: o.o_attrs
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Metric plumbing (used by [Metrics]) *)

let cell_of c ~component ~name =
  let key = (component, name) in
  match Hashtbl.find_opt c.cells key with
  | Some cell -> cell
  | None ->
      let cell =
        { c_samples = 0; c_total = 0.0; c_min = infinity; c_max = neg_infinity; c_last = 0.0 }
      in
      Hashtbl.replace c.cells key cell;
      cell

let observe ~component ~name v =
  match !current with
  | None -> ()
  | Some c ->
      let cell = cell_of c ~component ~name in
      cell.c_samples <- cell.c_samples + 1;
      cell.c_total <- cell.c_total +. v;
      cell.c_min <- Float.min cell.c_min v;
      cell.c_max <- Float.max cell.c_max v;
      cell.c_last <- v

let set ~component ~name v =
  match !current with
  | None -> ()
  | Some c ->
      let cell = cell_of c ~component ~name in
      cell.c_samples <- cell.c_samples + 1;
      cell.c_min <- Float.min cell.c_min v;
      cell.c_max <- Float.max cell.c_max v;
      cell.c_last <- v;
      cell.c_total <- v

(* ------------------------------------------------------------------ *)
(* Capture *)

let snapshot c =
  let metrics =
    List.map
      (fun (component, name, kind) ->
        match Hashtbl.find_opt c.cells (component, name) with
        | None ->
            {
              m_component = component;
              m_name = name;
              m_kind = kind;
              samples = 0;
              total = 0.0;
              vmin = 0.0;
              vmax = 0.0;
              last = 0.0;
            }
        | Some cell ->
            {
              m_component = component;
              m_name = name;
              m_kind = kind;
              samples = cell.c_samples;
              total = cell.c_total;
              vmin = (if cell.c_samples = 0 then 0.0 else cell.c_min);
              vmax = (if cell.c_samples = 0 then 0.0 else cell.c_max);
              last = cell.c_last;
            })
      !registry
    |> List.sort (fun a b ->
           match String.compare a.m_component b.m_component with
           | 0 -> String.compare a.m_name b.m_name
           | c -> c)
  in
  {
    (* Spans of fibers still blocked at capture end never closed; they are
       simply absent (their children that did close are kept). *)
    spans = List.rev c.spans_rev;
    metrics;
    tracks = List.rev c.track_labels;
  }

let capture ?(detail = false) f =
  let saved = !current in
  let c = fresh_collector ~detail in
  current := Some c;
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      let result = f () in
      (result, snapshot c))
