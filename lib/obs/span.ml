let with_ engine ~component ~name ?(attrs = []) f =
  match Record.open_span engine ~component ~name ~attrs with
  | None -> f ()
  | Some o ->
      Fun.protect ~finally:(fun () -> Record.close_span engine o) f

let add_attr engine key value = Record.add_attr engine key value

let with_detail engine ~component ~name ?attrs f =
  if Record.detail_enabled () then with_ engine ~component ~name ?attrs f
  else f ()
