let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_value b (v : Record.value) =
  match v with
  | Record.Int n | Record.Bytes n -> Buffer.add_string b (string_of_int n)
  | Record.Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Record.Str s -> buf_add_json_string b s

(* Chrome trace event format: "X" complete events (ts/dur in microseconds),
   plus "M" metadata naming each pid (simulation track) and tid (fiber).
   Load the result at chrome://tracing or https://ui.perfetto.dev. *)
let chrome_trace (run : Record.run) =
  let b = Buffer.create 4096 in
  let first = ref true in
  let event add_fields =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_char b '{';
    add_fields ();
    Buffer.add_char b '}'
  in
  let field ?(sep = true) name add_val =
    if sep then Buffer.add_char b ',';
    buf_add_json_string b name;
    Buffer.add_char b ':';
    add_val ()
  in
  let str s () = buf_add_json_string b s in
  let int n () = Buffer.add_string b (string_of_int n) in
  let us t () = Buffer.add_string b (Printf.sprintf "%.3f" (t *. 1e6)) in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iter
    (fun (track, label) ->
      event (fun () ->
          field ~sep:false "name" (str "process_name");
          field "ph" (str "M");
          field "pid" (int track);
          field "tid" (int 0);
          field "args" (fun () ->
              Buffer.add_char b '{';
              field ~sep:false "name" (str label);
              Buffer.add_char b '}')))
    run.tracks;
  (* One thread_name record per distinct (track, fiber). Fiber -1 is the
     scheduler; tids are shifted by one so it gets tid 0. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Record.span) ->
      let key = (s.track, s.fiber) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        event (fun () ->
            field ~sep:false "name" (str "thread_name");
            field "ph" (str "M");
            field "pid" (int s.track);
            field "tid" (int (s.fiber + 1));
            field "args" (fun () ->
                Buffer.add_char b '{';
                field ~sep:false "name" (str s.fiber_name);
                Buffer.add_char b '}'))
      end)
    run.spans;
  List.iter
    (fun (s : Record.span) ->
      event (fun () ->
          field ~sep:false "name" (str s.name);
          field "cat" (str s.component);
          field "ph" (str "X");
          field "ts" (us s.start_time);
          field "dur" (us s.duration);
          field "pid" (int s.track);
          field "tid" (int (s.fiber + 1));
          field "args" (fun () ->
              Buffer.add_char b '{';
              let afirst = ref true in
              List.iter
                (fun (k, v) ->
                  field ~sep:(not !afirst) k (fun () -> buf_add_value b v);
                  afirst := false)
                s.attrs;
              Buffer.add_char b '}')))
    run.spans;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* A minimal JSON well-formedness checker (no external deps): parses the
   full grammar without building a value, reporting the first offending
   byte offset. Used by the exporter tests and the CLI --timeline path. *)

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "offset %d: %s" !pos msg) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then begin incr pos; Ok () end
    else error (Printf.sprintf "expected %c" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin pos := !pos + l; Ok () end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    match expect '"' with
    | Error _ as e -> e
    | Ok () ->
        let rec go () =
          if !pos >= n then error "unterminated string"
          else
            match s.[!pos] with
            | '"' -> incr pos; Ok ()
            | '\\' ->
                incr pos;
                if !pos >= n then error "unterminated escape"
                else (
                  match s.[!pos] with
                  | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> incr pos; go ()
                  | 'u' ->
                      if !pos + 4 < n
                         && (let hex c =
                               (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
                               || (c >= 'A' && c <= 'F')
                             in
                             hex s.[!pos + 1] && hex s.[!pos + 2] && hex s.[!pos + 3]
                             && hex s.[!pos + 4])
                      then begin pos := !pos + 5; go () end
                      else error "bad \\u escape"
                  | _ -> error "bad escape")
            | c when Char.code c < 0x20 -> error "control char in string"
            | _ -> incr pos; go ()
        in
        go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do incr pos done;
    if peek () = Some '.' then begin
      incr pos;
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do incr pos done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do incr pos done
    | _ -> ());
    if !pos > start then Ok () else error "expected number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Ok () end
        else
          let rec members () =
            skip_ws ();
            match parse_string () with
            | Error _ as e -> e
            | Ok () -> (
                skip_ws ();
                match expect ':' with
                | Error _ as e -> e
                | Ok () -> (
                    match parse_value () with
                    | Error _ as e -> e
                    | Ok () -> (
                        skip_ws ();
                        match peek () with
                        | Some ',' -> incr pos; members ()
                        | Some '}' -> incr pos; Ok ()
                        | _ -> error "expected , or }")))
          in
          members ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Ok () end
        else
          let rec elements () =
            match parse_value () with
            | Error _ as e -> e
            | Ok () -> (
                skip_ws ();
                match peek () with
                | Some ',' -> incr pos; elements ()
                | Some ']' -> incr pos; Ok ()
                | _ -> error "expected , or ]")
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | Error _ as e -> e
  | Ok () ->
      skip_ws ();
      if !pos = n then Ok () else error "trailing garbage"

(* ------------------------------------------------------------------ *)
(* Tables *)

let render_columns rows =
  match rows with
  | [] -> ""
  | header :: _ ->
      let ncols = List.length header in
      let widths = Array.make ncols 0 in
      List.iter
        (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
        rows;
      let b = Buffer.create 256 in
      List.iteri
        (fun ri row ->
          List.iteri
            (fun i cell ->
              let pad = widths.(i) - String.length cell in
              (* Left-align the first two columns, right-align the rest. *)
              if i > 1 then Buffer.add_string b (String.make pad ' ');
              Buffer.add_string b cell;
              if i <= 1 then Buffer.add_string b (String.make pad ' ');
              if i < ncols - 1 then Buffer.add_string b "  ")
            row;
          Buffer.add_char b '\n';
          if ri = 0 then begin
            Array.iteri
              (fun i w ->
                Buffer.add_string b (String.make w '-');
                if i < ncols - 1 then Buffer.add_string b "  ")
              widths;
            Buffer.add_char b '\n'
          end)
        rows;
      Buffer.contents b

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let metrics_table (run : Record.run) =
  let rows =
    [ "component"; "metric"; "kind"; "samples"; "total"; "min"; "max"; "last" ]
    :: List.map
         (fun (m : Record.metric) ->
           [
             m.m_component;
             m.m_name;
             Record.kind_name m.m_kind;
             string_of_int m.samples;
             fnum m.total;
             fnum m.vmin;
             fnum m.vmax;
             fnum m.last;
           ])
         run.metrics
  in
  render_columns rows

(* ------------------------------------------------------------------ *)
(* Critical-path phase breakdown *)

type breakdown = {
  b_track : int;
  b_label : string;
  b_root : Record.span;
  b_phases : (string * float) list;
  b_leaf_total : float;
  b_residual : float;
}

let breakdown (run : Record.run) ~root =
  let spans = Array.of_list run.spans in
  let by_id = Hashtbl.create (Array.length spans) in
  Array.iter (fun (s : Record.span) -> Hashtbl.replace by_id s.id s) spans;
  let children = Hashtbl.create (Array.length spans) in
  Array.iter
    (fun (s : Record.span) ->
      match s.parent with
      | Some p ->
          Hashtbl.replace children p (s :: Option.value ~default:[] (Hashtbl.find_opt children p))
      | None -> ())
    spans;
  let tracks =
    List.filter
      (fun (tr, _) ->
        Array.exists (fun (s : Record.span) -> s.track = tr && s.parent = None && s.name = root) spans)
      run.tracks
  in
  List.map
    (fun (tr, label) ->
      (* The run's completion time is the latest root to finish; its leaf
         spans are the critical path's phases. *)
      let roots =
        Array.to_list spans
        |> List.filter (fun (s : Record.span) -> s.track = tr && s.parent = None && s.name = root)
      in
      let longest =
        List.fold_left
          (fun best (s : Record.span) ->
            if s.start_time +. s.duration > best.Record.start_time +. best.Record.duration then s
            else best)
          (List.hd roots) roots
      in
      (* Collect the leaf descendants of the longest root, in start order,
         summing durations by phase name. *)
      let leaves = ref [] in
      let rec walk (s : Record.span) =
        match Hashtbl.find_opt children s.id with
        | None | Some [] -> leaves := s :: !leaves
        | Some kids -> List.iter walk kids
      in
      (match Hashtbl.find_opt children longest.id with
      | None | Some [] -> ()
      | Some kids -> List.iter walk kids);
      let leaves =
        List.sort
          (fun (a : Record.span) (b : Record.span) ->
            match Float.compare a.start_time b.start_time with
            | 0 -> Int.compare a.id b.id
            | c -> c)
          !leaves
      in
      let phases =
        List.fold_left
          (fun acc (s : Record.span) ->
            match List.assoc_opt s.name acc with
            | Some _ ->
                List.map (fun (n, v) -> if n = s.name then (n, v +. s.duration) else (n, v)) acc
            | None -> acc @ [ (s.name, s.duration) ])
          [] leaves
      in
      let leaf_total = List.fold_left (fun a (_, d) -> a +. d) 0.0 phases in
      {
        b_track = tr;
        b_label = label;
        b_root = longest;
        b_phases = phases;
        b_leaf_total = leaf_total;
        b_residual = longest.duration -. leaf_total;
      })
    tracks

let phase_table (run : Record.run) ~root =
  let bds = breakdown run ~root in
  let b = Buffer.create 256 in
  List.iter
    (fun bd ->
      Buffer.add_string b
        (Printf.sprintf "%s: critical-path %s = %.3fs (start t=%.3fs)\n" bd.b_label root
           bd.b_root.duration bd.b_root.start_time);
      let rows =
        [ "phase"; "component"; "seconds"; "share" ]
        :: List.map
             (fun (name, d) ->
               let comp =
                 match
                   List.find_opt (fun (s : Record.span) -> s.name = name) run.spans
                 with
                 | Some s -> s.component
                 | None -> ""
               in
               [
                 name;
                 comp;
                 Printf.sprintf "%.3f" d;
                 Printf.sprintf "%.1f%%" (100.0 *. d /. Float.max bd.b_root.duration 1e-9);
               ])
             bd.b_phases
        @ [
            [
              "(total)";
              "";
              Printf.sprintf "%.3f" bd.b_leaf_total;
              Printf.sprintf "%.1f%%"
                (100.0 *. bd.b_leaf_total /. Float.max bd.b_root.duration 1e-9);
            ];
          ]
      in
      Buffer.add_string b (render_columns rows);
      Buffer.add_char b '\n')
    bds;
  Buffer.contents b
