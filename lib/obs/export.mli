(** Exporters for captured observability runs: Chrome-trace timelines,
    flat metric tables and critical-path phase breakdowns. *)

val chrome_trace : Record.run -> string
(** Serialize a run as Chrome trace event format JSON (["X"] complete
    events in microseconds, one pid per simulation track, one tid per
    fiber, ["M"] metadata naming both). Open the file at [chrome://tracing]
    or [ui.perfetto.dev]. *)

val validate_json : string -> (unit, string) result
(** Check that a string is one well-formed JSON value (full grammar, no
    value built). [Error] carries the first offending byte offset. *)

val metrics_table : Record.run -> string
(** Render the metric snapshot as an aligned text table, one row per
    registered metric: component, name, kind, samples, total, min, max,
    last. *)

type breakdown = {
  b_track : int;  (** Track the breakdown describes. *)
  b_label : string;  (** The track's label. *)
  b_root : Record.span;  (** The latest-finishing root span — the run's critical path. *)
  b_phases : (string * float) list;  (** Leaf phase name to summed seconds, in start order. *)
  b_leaf_total : float;  (** Sum of all leaf phase durations. *)
  b_residual : float;  (** Root duration minus [b_leaf_total] (uninstrumented gap). *)
}
(** Phase decomposition of one track's critical path. *)

val breakdown : Record.run -> root:string -> breakdown list
(** [breakdown run ~root] decomposes, for each track containing top-level
    spans named [root], the latest-finishing such span into its leaf
    descendants. Because every branch starts together and simulated time
    only advances inside instrumented blocking operations, the leaf phases
    tile the root: [b_leaf_total] matches the root duration up to
    uninstrumented residual. *)

val phase_table : Record.run -> root:string -> string
(** Render {!breakdown} as aligned text tables, one per track: phase,
    component, seconds and share of the critical-path duration. *)
