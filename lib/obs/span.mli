(** Nested timing spans over simulated time.

    A span brackets a region of fiber code: it records the simulated times
    at entry and exit, the enclosing span on the same fiber (if any) as its
    parent, and a list of typed attributes. When no collector is installed
    ({!Record.capture} is not active) every function here is a pass-through
    with zero simulation effect. *)

val with_ :
  Simcore.Engine.t ->
  component:string ->
  name:string ->
  ?attrs:(string * Record.value) list ->
  (unit -> 'a) ->
  'a
(** [with_ engine ~component ~name f] runs [f] inside a span. The span
    closes when [f] returns or raises. [component] is the subsystem (same
    vocabulary as {!Simcore.Trace.emit}); [name] is the phase, dotted by
    convention (e.g. ["ckpt.ship"]). Initial [attrs] may be extended from
    inside [f] with {!add_attr}. *)

val add_attr : Simcore.Engine.t -> string -> Record.value -> unit
(** Attach an attribute to the innermost open span of the calling fiber.
    No-op when not recording or when no span is open. *)

val with_detail :
  Simcore.Engine.t ->
  component:string ->
  name:string ->
  ?attrs:(string * Record.value) list ->
  (unit -> 'a) ->
  'a
(** Like {!with_}, but only records when the capture asked for per-chunk
    detail ([Record.capture ~detail:true]); otherwise runs [f] bare. Use
    for high-volume spans (per-chunk stages) that would swamp a timeline. *)
