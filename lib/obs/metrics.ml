type handle = { component : string; name : string }

let counter ~component ~name =
  Record.register ~component ~name Record.Counter;
  { component; name }

let gauge ~component ~name =
  Record.register ~component ~name Record.Gauge;
  { component; name }

let histogram ~component ~name =
  Record.register ~component ~name Record.Histogram;
  { component; name }

let incr ?(by = 1) h =
  Record.observe ~component:h.component ~name:h.name (float_of_int by)

let add h v = Record.observe ~component:h.component ~name:h.name v
let set h v = Record.set ~component:h.component ~name:h.name (float_of_int v)
let observe h v = Record.observe ~component:h.component ~name:h.name v
