(** Observability collector: spans, metric cells and run snapshots.

    A {e collector} is installed for the duration of one {!capture} call (a
    global, like {!Simcore.Trace.set_sink}); while installed, {!Span} and
    {!Metrics} record into it. When no collector is installed every
    recording entry point is a no-op that reads neither the clock nor the
    RNG, so observability-off runs are bit-identical to uninstrumented
    ones. *)

type value = Int of int | Bytes of int | Float of float | Str of string
(** A typed span attribute. [Bytes] renders with binary size units. *)

val pp_value : Format.formatter -> value -> unit
(** Render an attribute value ([Bytes] as ["12.5 MB"], floats with [%.6g]). *)

type span = {
  id : int;  (** Unique per capture, in open order. *)
  parent : int option;  (** Enclosing span on the same fiber, if any. *)
  track : int;  (** Timeline index: one per engine seen by the capture. *)
  fiber : int;  (** Engine fiber id, or [-1] outside any fiber. *)
  fiber_name : string;  (** The fiber's name, or ["scheduler"]. *)
  component : string;  (** Subsystem, e.g. ["mirror"] — the trace component. *)
  name : string;  (** Phase name, e.g. ["ckpt.commit"]. *)
  start_time : float;  (** Simulated start time (seconds). *)
  duration : float;  (** Simulated duration (seconds). *)
  attrs : (string * value) list;  (** Attributes, in attachment order. *)
}
(** One closed begin/end interval of simulated time. *)

type kind = Counter | Gauge | Histogram
(** Metric flavour: monotonic sum, last-value, or value distribution. *)

val kind_name : kind -> string
(** Lower-case name of the kind, for tables and JSON. *)

type metric = {
  m_component : string;  (** Registering subsystem. *)
  m_name : string;  (** Metric name, unique within the component. *)
  m_kind : kind;  (** Declared flavour. *)
  samples : int;  (** Number of recorded observations. *)
  total : float;  (** Sum of observations (counters), or last value (gauges). *)
  vmin : float;  (** Smallest observation, [0.] when none. *)
  vmax : float;  (** Largest observation, [0.] when none. *)
  last : float;  (** Most recent observation, [0.] when none. *)
}
(** Snapshot of one metric cell at capture end. *)

type run = {
  spans : span list;  (** All closed spans, in completion order. *)
  metrics : metric list;  (** Every registered metric, sorted by (component, name). *)
  tracks : (int * string) list;  (** Track id to label, in creation order. *)
}
(** Everything one {!capture} observed. *)

val capture : ?detail:bool -> (unit -> 'a) -> 'a * run
(** [capture f] installs a fresh collector, runs [f], and returns its result
    with the recorded {!run}. [detail] (default [false]) additionally enables
    per-chunk spans (see {!detail_enabled}); leave it off for timelines of
    manageable size. Captures nest: the previous collector is restored on
    exit, including on exception. Spans still open when [f] returns (fibers
    left blocked at quiescence) are dropped from the snapshot. *)

val recording : unit -> bool
(** Whether a collector is currently installed. Instrumentation uses this to
    skip attribute computation entirely when observability is off. *)

val detail_enabled : unit -> bool
(** Whether the installed collector wants high-volume per-chunk spans.
    [false] when not recording. *)

val label_track : Simcore.Engine.t -> string -> unit
(** [label_track engine l] names the timeline of [engine] (e.g.
    ["BlobCR-app n=120"]) in exports. No-op when not recording. *)

(**/**)

(* Internal plumbing for Span and Metrics; not for direct use. *)

type open_span

val open_span :
  Simcore.Engine.t ->
  component:string ->
  name:string ->
  attrs:(string * value) list ->
  open_span option

val close_span : Simcore.Engine.t -> open_span -> unit
val add_attr : Simcore.Engine.t -> string -> value -> unit
val register : component:string -> name:string -> kind -> unit
val observe : component:string -> name:string -> float -> unit
val set : component:string -> name:string -> float -> unit

(**/**)
