open Simcore
open Netsim
open Vdisk

type boot_profile = {
  boot_read_bytes : int;
  boot_read_chunk : int;
  boot_cpu_time : float;
  boot_jitter : float;
  noise_files : int;
  noise_file_bytes : int;
  scattered_touches : int;
  touch_bytes : int;
}

let default_boot_profile =
  {
    boot_read_bytes = 180 * Size.mib;
    boot_read_chunk = Size.mib;
    boot_cpu_time = 18.0;
    boot_jitter = 2.0;
    noise_files = 8;
    noise_file_bytes = 100 * Size.kib;
    scattered_touches = 36;
    touch_bytes = 64 * Size.kib;
  }

type state = Created | Booting | Running | Suspended | Dead

type t = {
  engine : Engine.t;
  vhost : Net.host;
  vdevice : Block_dev.t;
  vname : string;
  ram : int;
  os_ram_overhead : int;
  boot_profile : boot_profile;
  vgroup : Engine.Group.t;
  rng : Rng.t;
  mutable vstate : state;
  mutable vfs : Guest_fs.t option;
  mutable procs : Process.t list; (* newest first *)
  mutable resume_signal : unit Engine.Ivar.t option;
}

let create engine ~host ~device ?(ram = Size.gib_n 2) ?(os_ram_overhead = 118 * Size.mib)
    ?(boot = default_boot_profile) ~name () =
  {
    engine;
    vhost = host;
    vdevice = device;
    vname = name;
    ram;
    os_ram_overhead;
    boot_profile = boot;
    vgroup = Engine.Group.create ();
    (* Keyed by VM name, not split from the shared engine stream: VMs are
       created inside deploy fibers whose events tie, so split order — and
       with it every boot-jitter draw — would depend on the tie-break
       schedule. *)
    rng = Engine.derived_rng engine ("vm." ^ name);
    vstate = Created;
    vfs = None;
    procs = [];
    resume_signal = None;
  }

let name t = t.vname
let host t = t.vhost
let state t = t.vstate
let device t = t.vdevice
let engine t = t.engine
let group t = t.vgroup

let fs t =
  match t.vfs with
  | Some fs -> fs
  | None -> failwith (Fmt.str "Vm.fs: %s not booted" t.vname)

let pause_point t =
  match t.vstate with
  | Dead -> raise Engine.Cancelled
  | Suspended ->
      let signal =
        match t.resume_signal with
        | Some s -> s
        | None ->
            let s = Engine.Ivar.create t.engine in
            t.resume_signal <- Some s;
            s
      in
      Engine.Ivar.read signal
  | Created | Booting | Running -> ()

(* Background OS activity: appends a little log data periodically; the
   writes land in the guest page cache and reach the disk at the next
   sync — part of the "minor updates performed by the guest operating
   system" the paper measures in Figure 4. *)
let os_logger t () =
  let fs = fs t in
  let rec loop i =
    Engine.sleep t.engine (20.0 +. Rng.float t.rng 10.0);
    pause_point t;
    Guest_fs.append_file fs ~path:"/var/log/syslog" (Payload.pattern ~seed:77L 2048);
    loop (i + 1)
  in
  loop 0

let boot t ~format_fs =
  if t.vstate <> Created then failwith (Fmt.str "Vm.boot: %s already booted" t.vname);
  t.vstate <- Booting;
  let p = t.boot_profile in
  (* The hot set: scattered reads across the image (kernel, init, shared
     libraries) — this is the traffic lazy transfer saves on. *)
  let capacity = t.vdevice.Block_dev.capacity in
  let reads = Size.div_ceil p.boot_read_bytes p.boot_read_chunk in
  let stride = max 1 (capacity / max 1 reads) in
  for i = 0 to reads - 1 do
    let offset = min (i * stride) (max 0 (capacity - p.boot_read_chunk)) in
    let len = min p.boot_read_chunk (capacity - offset) in
    ignore (Block_dev.read t.vdevice ~offset ~len)
  done;
  Engine.sleep t.engine (p.boot_cpu_time +. Rng.float t.rng p.boot_jitter);
  let fs =
    if format_fs then Guest_fs.format t.vdevice ()
    else Guest_fs.mount t.vdevice
  in
  t.vfs <- Some fs;
  (* Boot-time noise: config files and logs the OS touches, which end up in
     every disk snapshot. *)
  for i = 0 to p.noise_files - 1 do
    Guest_fs.write_file fs
      ~path:(Fmt.str "/var/boot-noise/%d" i)
      (Payload.pattern ~seed:(Int64.of_int (1000 + i)) p.noise_file_bytes)
  done;
  (* In-place updates to existing OS files, scattered across the upper
     half of the image (the file system allocates from the lower half).
     Each touch dirties whole copy-on-write units in the underlying image,
     so the same guest behaviour costs more snapshot space at coarser COW
     granularity. *)
  let capacity = t.vdevice.Block_dev.capacity in
  for _ = 1 to p.scattered_touches do
    let span = capacity / 2 - p.touch_bytes in
    let offset = (capacity / 2) + Rng.int t.rng (max 1 span) in
    Block_dev.write t.vdevice ~offset (Payload.pattern ~seed:0x905EL p.touch_bytes)
  done;
  (* Boot ends with a quiescent, synced file system on the virtual disk. *)
  Guest_fs.sync fs;
  t.vstate <- Running;
  Trace.emit t.engine ~component:t.vname "booted (format=%b)" format_fs;
  ignore (Engine.Fiber.spawn t.engine ~name:(t.vname ^ ".os-logger") ~group:t.vgroup (os_logger t))

let restore_running t =
  if t.vstate <> Created then failwith (Fmt.str "Vm.restore_running: %s already started" t.vname);
  t.vstate <- Booting;
  (* Resuming from a full snapshot: device attach plus hypervisor resume,
     no guest reboot. *)
  Engine.sleep t.engine 1.0;
  t.vfs <- Some (Guest_fs.mount t.vdevice);
  t.vstate <- Running;
  ignore (Engine.Fiber.spawn t.engine ~name:(t.vname ^ ".os-logger") ~group:t.vgroup (os_logger t))

let suspend t =
  match t.vstate with
  | Running ->
      t.vstate <- Suspended;
      Trace.emit t.engine ~component:t.vname "suspended";
      Obs.Span.with_ t.engine ~component:"vm" ~name:"vm.suspend" (fun () ->
          Engine.sleep t.engine 0.05)
  | Suspended -> ()
  | Dead ->
      (* Fail-stop mid-checkpoint: the caller's fiber belongs to a
         cancelled gang, behave like any other blocking point. *)
      raise Engine.Cancelled
  | Created | Booting -> failwith (Fmt.str "Vm.suspend: %s not running" t.vname)

let resume t =
  match t.vstate with
  | Suspended ->
      t.vstate <- Running;
      (match t.resume_signal with
      | Some s ->
          t.resume_signal <- None;
          Engine.Ivar.fill s ()
      | None -> ());
      Obs.Span.with_ t.engine ~component:"vm" ~name:"vm.resume" (fun () ->
          Engine.sleep t.engine 0.05)
  | Running -> ()
  | Dead -> raise Engine.Cancelled
  | Created | Booting -> failwith (Fmt.str "Vm.resume: %s not suspended" t.vname)

let kill t =
  if t.vstate <> Dead then begin
    t.vstate <- Dead;
    Trace.emit t.engine ~component:t.vname "killed (fail-stop)";
    Engine.Group.cancel t.engine t.vgroup
  end

let spawn_process t ~name ~mem f =
  let proc = Process.create ~name ~mem in
  t.procs <- proc :: t.procs;
  ignore (Engine.Fiber.spawn t.engine ~name:(t.vname ^ "." ^ name) ~group:t.vgroup f);
  proc

let register_process t ~name ~mem =
  let proc = Process.create ~name ~mem in
  t.procs <- proc :: t.procs;
  proc

let processes t = List.rev t.procs
let process_memory t = List.fold_left (fun acc p -> acc + Process.mem p) 0 t.procs
let ram_state_bytes t = min t.ram (process_memory t + t.os_ram_overhead)
