(** BLCR-style process-level checkpointing.

    Dumps the full memory footprint of every registered guest process into
    per-process files in the guest file system — transparently, without
    application cooperation, and {e indiscriminately}: all allocated memory
    is written, which is why blcr checkpoints exceed application-level ones
    (Table 1 of the paper). *)

open Simcore

val checkpoint_dir : string
(** ["/ckpt/blcr"] — where dump files are written. *)

val dump : Vm.t -> int
(** Dump every process of the VM into the guest FS and [sync] (the paper's
    added step: flush before requesting the disk snapshot). Returns the
    total bytes dumped. The VM must be booted. CPU cost of serializing
    memory is charged. *)

val restore : Vm.t -> int
(** Read every dump file back (repopulating process memory on restart);
    re-registers each dumped process on the VM. Returns bytes read.
    Raises [Failure] if no dumps are present. *)

val dump_payload : vm:string -> name:string -> mem:int -> epoch:int -> Payload.t
(** The deterministic payload a dump writes for process [name] of VM [vm]
    at its [epoch]-th dump — a stand-in for the process's memory image, so
    it is unique per (VM, process) and changes between dumps (exposed so
    tests can verify restored content byte-for-byte). *)

val newest_dump : Vm.t -> name:string -> Payload.t
(** The most recent context file dumped for the named process. Raises
    [Not_found]. *)
