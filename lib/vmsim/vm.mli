(** Virtual machine instance model.

    A VM runs on a compute node (sharing its NIC), executes guest processes
    as engine fibers, and sees its virtual disk through a
    {!Vdisk.Block_dev.t} (BlobCR mirror or qcow2). The lifecycle follows
    the paper: deploy → boot (reads the hot set of the image, mounts the
    guest file system, starts OS background activity) → run → suspend /
    resume around disk snapshots → kill (fail-stop or planned
    termination).

    Guest processes must call {!pause_point} at their loop boundaries; a
    suspended VM blocks them there, which models freezing the instance
    while its disk is snapshotted. *)

open Simcore
open Netsim
open Vdisk

type t

type boot_profile = {
  boot_read_bytes : int;  (** hot set of the image read during boot *)
  boot_read_chunk : int;  (** granularity of boot-time reads *)
  boot_cpu_time : float;  (** non-I/O boot time, seconds *)
  boot_jitter : float;  (** max extra random delay, seconds *)
  noise_files : int;  (** files the OS dirties at boot (logs, configs) *)
  noise_file_bytes : int;  (** size of each *)
  scattered_touches : int;
      (** small in-place updates to existing OS files spread across the
          image (utmp, config rewrites) — each dirties a full COW unit, so
          their footprint in a snapshot depends on the image format's
          granularity (the 13 MB vs 7 MB effect of Figure 4) *)
  touch_bytes : int;  (** size of each scattered update *)
}

val default_boot_profile : boot_profile
(** 180 MiB hot set in 1 MiB reads, 18 s CPU, 2 s jitter, 8 noise files of
    100 KiB, 36 scattered 64 KiB touches. *)

type state = Created | Booting | Running | Suspended | Dead

val create :
  Engine.t ->
  host:Net.host ->
  device:Block_dev.t ->
  ?ram:int ->
  ?os_ram_overhead:int ->
  ?boot:boot_profile ->
  name:string ->
  unit ->
  t
(** Default RAM 2 GiB; [os_ram_overhead] (default 118 MiB, the paper's
    measured figure) is what a full VM snapshot carries beyond process
    memory. *)

val name : t -> string
(** The name passed at creation. *)

val host : t -> Net.host
(** The compute host the VM runs on. *)

val state : t -> state
(** Current lifecycle state. *)

val device : t -> Block_dev.t
(** The virtual disk attached at creation. *)

val engine : t -> Engine.t
(** The engine the VM runs on. *)

val boot : t -> format_fs:bool -> unit
(** Blocks through the boot sequence. [format_fs] formats a fresh guest
    file system (first deployment) instead of mounting the one found on the
    image (restart path). Must be called from a fiber. *)

val restore_running : t -> unit
(** Resume path for full-VM snapshots: attach the device, mount the file
    system and mark the VM running without a guest reboot (the caller
    restores process state separately). *)

val fs : t -> Guest_fs.t
(** Raises [Failure] before {!boot}. *)

val suspend : t -> unit
(** Freeze guest execution (fast hypervisor operation). Idempotent.
    Raises {!Simcore.Engine.Cancelled} if the VM died — the caller's
    fiber is part of a cancelled gang and should unwind like any other
    blocking point. *)

val resume : t -> unit
(** Raises {!Simcore.Engine.Cancelled} if the VM died while suspended. *)

val kill : t -> unit
(** Fail-stop: cancel every guest fiber; the VM never runs again. *)

val pause_point : t -> unit
(** Called by guest code between steps: blocks while the VM is suspended,
    raises {!Simcore.Engine.Cancelled} if the VM was killed. *)

val spawn_process : t -> name:string -> mem:int -> (unit -> unit) -> Process.t
(** Run guest code in a fiber belonging to this VM, with [mem] bytes of
    tracked process memory (what BLCR would dump). *)

val register_process : t -> name:string -> mem:int -> Process.t
(** Track a process without running code (driver-managed workloads). *)

val processes : t -> Process.t list
(** In registration order. *)

val process_memory : t -> int
(** Total tracked process memory. *)

val ram_state_bytes : t -> int
(** Size of a full VM snapshot's memory image: process memory plus OS
    overhead (used by savevm / qcow2-full). *)

val group : t -> Engine.Group.t
(** The VM's fiber group (for attaching auxiliary guest activity). *)
