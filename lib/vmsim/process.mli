(** Guest process descriptor: name plus tracked memory footprint.

    The footprint is what process-level checkpointing (BLCR) dumps —
    indiscriminately, the paper notes, which is why blcr snapshots are
    larger than application-level ones. *)

type t

val create : name:string -> mem:int -> t
(** A process descriptor with an initial footprint of [mem] bytes. *)

val name : t -> string
(** The name passed at creation. *)

val mem : t -> int
(** Current tracked memory footprint in bytes. *)

val set_mem : t -> int -> unit
(** Update the tracked footprint as the application allocates. *)
