(** Guest file system.

    A simple extent-based file system living on a {!Vdisk.Block_dev.t} —
    the guest-visible persistence layer that the paper's checkpoint
    protocols dump process state into. Two properties matter for BlobCR:

    - writes are buffered in the page cache and only reach the virtual disk
      on {!sync} (the paper inserts an explicit [sync] before requesting a
      disk snapshot to avoid corruption);
    - all metadata is serialized onto the device, so a file system written
      by one VM can be {!mount}ed by a replacement VM booted from a disk
      snapshot — which is how restart recovers checkpoint files, and how
      rolled-back file modifications vanish. *)

open Simcore
open Vdisk

type t

exception Fs_full

val format : Block_dev.t -> ?block_size:int -> ?meta_region:int -> unit -> t
(** Create an empty file system. Default 4 KiB blocks and a 4 MiB metadata
    region. Writes the initial superblock (buffered until {!sync}). *)

val mount : Block_dev.t -> t
(** Read the superblock and file table back from the device (charging the
    device reads). Raises [Failure] if the device holds no valid file
    system. *)

val block_size : t -> int
(** Allocation granularity fixed at {!format} time. *)

val write_file : t -> path:string -> Payload.t -> unit
(** Create or replace a file (page cache only until {!sync}). *)

val append_file : t -> path:string -> Payload.t -> unit
(** Extend a file (creating it if missing); page cache only until
    {!sync}. *)

val read_file : t -> path:string -> Payload.t
(** From the page cache, or loaded from the device on first access.
    Raises [Not_found]. *)

val file_size : t -> path:string -> int
(** Logical size in bytes. Raises [Not_found]. *)

val exists : t -> path:string -> bool
(** Whether a file exists at [path]. *)

val list_files : t -> string list
(** Sorted. *)

val delete_file : t -> path:string -> unit
(** Frees the file's extents for reuse. *)

val sync : t -> unit
(** Flush dirty file contents and metadata to the device, then flush the
    device itself. After [sync], a disk snapshot captures a consistent
    image. *)

val dirty_bytes : t -> int
(** Bytes the next {!sync} will write (data only). *)

val used_bytes : t -> int
(** Device bytes allocated to files (block-granular). *)
