open Simcore
open Vdisk

exception Fs_full

let magic = "BLOBCRFS"

type entry = {
  mutable size : int;
  mutable extents : (int * int) list; (* (offset, len), block-aligned, in order *)
  mutable cache : Payload.t option;
  mutable dirty : bool;
  mutable persisted_size : int; (* bytes the on-disk extents actually cover *)
  mutable generation : int; (* bumped on every cache mutation *)
}

type t = {
  dev : Block_dev.t;
  block_size : int;
  meta_region : int;
  files : (string, entry) Hashtbl.t;
  mutable next_free : int;
  mutable free_list : (int * int) list;
  mutable meta_dirty : bool;
}

type persisted = {
  p_block_size : int;
  p_meta_region : int;
  p_next_free : int;
  p_free_list : (int * int) list;
  p_files : (string * int * (int * int) list) list;
}

let format dev ?(block_size = 4 * Size.kib) ?(meta_region = 4 * Size.mib) () =
  if meta_region >= dev.Block_dev.capacity then invalid_arg "Guest_fs.format: device too small";
  {
    dev;
    block_size;
    meta_region;
    files = Hashtbl.create 64;
    next_free = meta_region;
    free_list = [];
    meta_dirty = true;
  }

let block_size t = t.block_size

(* ------------------------------------------------------------------ *)
(* Metadata persistence *)

let serialize t =
  (* Metadata describes what is durably on disk ([persisted_size]), never
     in-flight page-cache state: a snapshot taken between syncs must mount
     to the last synced contents, not to torn ones. *)
  let files =
    Hashtbl.fold (fun path e acc -> (path, e.persisted_size, e.extents) :: acc) t.files []
    |> List.sort compare
  in
  let persisted =
    {
      p_block_size = t.block_size;
      p_meta_region = t.meta_region;
      p_next_free = t.next_free;
      p_free_list = t.free_list;
      p_files = files;
    }
  in
  let body = Marshal.to_bytes persisted [] in
  let header = Bytes.create 16 in
  Bytes.blit_string magic 0 header 0 8;
  Bytes.set_int64_le header 8 (Int64.of_int (Bytes.length body));
  Payload.concat [ Payload.of_bytes header; Payload.of_bytes body ]

let write_metadata t =
  let meta = serialize t in
  if Payload.length meta > t.meta_region then failwith "Guest_fs: metadata region overflow";
  Block_dev.write t.dev ~offset:0 meta;
  t.meta_dirty <- false

let mount dev =
  let header = Payload.to_string (Block_dev.read dev ~offset:0 ~len:16) in
  if String.sub header 0 8 <> magic then failwith "Guest_fs.mount: no file system found";
  let len = Int64.to_int (Bytes.get_int64_le (Bytes.of_string header) 8) in
  let body = Payload.to_string (Block_dev.read dev ~offset:16 ~len) in
  let persisted : persisted = Marshal.from_string body 0 in
  let t =
    {
      dev;
      block_size = persisted.p_block_size;
      meta_region = persisted.p_meta_region;
      files = Hashtbl.create 64;
      next_free = persisted.p_next_free;
      free_list = persisted.p_free_list;
      meta_dirty = false;
    }
  in
  List.iter
    (fun (path, size, extents) ->
      Hashtbl.replace t.files path
        { size; extents; cache = None; dirty = false; persisted_size = size; generation = 0 })
    persisted.p_files;
  t

(* ------------------------------------------------------------------ *)
(* Allocation *)

let extent_bytes extents = List.fold_left (fun acc (_, len) -> acc + len) 0 extents

(* First fit from the free list, else bump allocation. Returns a list of
   extents totalling exactly [bytes] (block-aligned). *)
let allocate t bytes =
  assert (bytes mod t.block_size = 0);
  let rec take_free acc needed = function
    | [] -> (acc, needed, [])
    | (off, len) :: rest when needed = 0 -> (acc, 0, (off, len) :: rest)
    | (off, len) :: rest ->
        if len <= needed then take_free ((off, len) :: acc) (needed - len) rest
        else ((off, needed) :: acc, 0, (off + needed, len - needed) :: rest)
  in
  let taken, still_needed, free_list = take_free [] bytes t.free_list in
  t.free_list <- free_list;
  let extents =
    if still_needed = 0 then List.rev taken
    else begin
      if t.next_free + still_needed > t.dev.Block_dev.capacity then raise Fs_full;
      let fresh = (t.next_free, still_needed) in
      t.next_free <- t.next_free + still_needed;
      List.rev (fresh :: taken)
    end
  in
  t.meta_dirty <- true;
  extents

let release t extents =
  t.free_list <- t.free_list @ extents;
  t.meta_dirty <- true

(* ------------------------------------------------------------------ *)
(* File operations *)

let find t path =
  match Hashtbl.find_opt t.files path with Some e -> e | None -> raise Not_found

let write_file t ~path payload =
  match Hashtbl.find_opt t.files path with
  | Some e ->
      e.cache <- Some payload;
      e.size <- Payload.length payload;
      e.generation <- e.generation + 1;
      e.dirty <- true
  | None ->
      Hashtbl.replace t.files path
        {
          size = Payload.length payload;
          extents = [];
          cache = Some payload;
          dirty = true;
          persisted_size = 0;
          generation = 0;
        };
      t.meta_dirty <- true

let load t e =
  match e.cache with
  | Some payload -> payload
  | None ->
      let parts =
        List.map (fun (offset, len) -> Block_dev.read t.dev ~offset ~len) e.extents
      in
      let payload = Payload.sub (Payload.concat parts) ~pos:0 ~len:e.persisted_size in
      e.cache <- Some payload;
      payload

let read_file t ~path = load t (find t path)

let append_file t ~path payload =
  match Hashtbl.find_opt t.files path with
  | None -> write_file t ~path payload
  | Some e ->
      let current = load t e in
      e.cache <- Some (Payload.concat [ current; payload ]);
      e.size <- e.size + Payload.length payload;
      e.generation <- e.generation + 1;
      e.dirty <- true

let file_size t ~path = (find t path).size
let exists t ~path = Hashtbl.mem t.files path

let list_files t =
  Hashtbl.fold (fun path _ acc -> path :: acc) t.files [] |> List.sort compare

let delete_file t ~path =
  let e = find t path in
  release t e.extents;
  Hashtbl.remove t.files path;
  t.meta_dirty <- true

let dirty_bytes t =
  (* lint: allow hashtbl-order — commutative sum *)
  Hashtbl.fold (fun _ e acc -> if e.dirty then acc + e.size else acc) t.files 0

let used_bytes t = Hashtbl.fold (fun _ e acc -> acc + extent_bytes e.extents) t.files 0 (* lint: allow hashtbl-order — commutative sum *)

let flush_file t e =
  let generation = e.generation in
  let payload = load t e in
  let size = Payload.length payload in
  let needed = Size.round_up size t.block_size in
  let have = extent_bytes e.extents in
  if needed > have then e.extents <- e.extents @ allocate t (needed - have)
  else if needed < have then begin
    (* Shrink: give surplus whole extents back. *)
    let rec keep acc remaining = function
      | [] -> (List.rev acc, [])
      | (off, len) :: rest ->
          if remaining >= len then keep ((off, len) :: acc) (remaining - len) rest
          else if remaining > 0 then keep ((off, remaining) :: acc) 0 ((off + remaining, len - remaining) :: rest)
          else (List.rev acc, (off, len) :: rest)
    in
    let kept, surplus = keep [] needed e.extents in
    e.extents <- kept;
    release t surplus
  end;
  (* Write the content across the extents. *)
  let rec emit pos = function
    | [] -> ()
    | (offset, len) :: rest ->
        let chunk = min len (size - pos) in
        if chunk > 0 then
          Block_dev.write t.dev ~offset (Payload.sub payload ~pos ~len:chunk);
        emit (pos + chunk) rest
  in
  emit 0 e.extents;
  e.persisted_size <- size;
  t.meta_dirty <- true;
  (* Concurrent guest writes may have landed while our device writes were
     blocked; they stay dirty for the next sync. *)
  if e.generation = generation then e.dirty <- false

let sync t =
  (* lint: allow hashtbl-order — flush_file only flips per-file flags *)
  Hashtbl.iter (fun _ e -> if e.dirty then flush_file t e) t.files;
  if t.meta_dirty then write_metadata t;
  Block_dev.flush t.dev
