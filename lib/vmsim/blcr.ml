open Simcore

let checkpoint_dir = "/ckpt/blcr"

(* Serializing memory costs CPU: ~1 GiB/s. *)
let serialize_rate = float_of_int Size.gib

(* A dump is an image of the process's memory, so its content is unique to
   the (VM, process) that owns it and changes as the application mutates
   state between checkpoints (here: per dump epoch). Seeding by sequence
   number alone would make dumps identical across a gang of instances and
   let content-addressed dedup suppress shipping that a real deployment
   must pay for. *)
let dump_payload ~vm ~name ~mem ~epoch =
  Payload.pattern ~seed:(Int64.of_int (Hashtbl.hash (0xB1C4, vm, name, epoch))) mem

let dump_path ~name ~epoch = Fmt.str "%s/%s.ctx.%d" checkpoint_dir name epoch

(* Dump files found in [fs], as (process name, newest epoch) pairs. *)
let scan fs =
  let prefix = checkpoint_dir ^ "/" in
  let newest = Hashtbl.create 8 in
  List.iter
    (fun path ->
      if String.length path > String.length prefix
         && String.sub path 0 (String.length prefix) = prefix
      then
        match String.rindex_opt path '.' with
        | Some dot -> (
            let stem = String.sub path (String.length prefix) (dot - String.length prefix) in
            match
              ( Filename.check_suffix stem ".ctx",
                int_of_string_opt (String.sub path (dot + 1) (String.length path - dot - 1)) )
            with
            | true, Some epoch ->
                let name = Filename.chop_suffix stem ".ctx" in
                let current = Option.value ~default:(-1) (Hashtbl.find_opt newest name) in
                if epoch > current then Hashtbl.replace newest name epoch
            | _ -> ())
        | None -> ())
    (Guest_fs.list_files fs);
  Hashtbl.fold (fun name epoch acc -> (name, epoch) :: acc) newest []
  |> List.sort compare

let dump vm =
  let fs = Vm.fs vm in
  let engine = Vm.engine vm in
  let existing = scan fs in
  let next_epoch name =
    match List.assoc_opt name existing with Some e -> e + 1 | None -> 0
  in
  let total = ref 0 in
  List.iter
    (fun proc ->
      let mem = Process.mem proc in
      let name = Process.name proc in
      let epoch = next_epoch name in
      Engine.sleep engine (float_of_int mem /. serialize_rate);
      (* Each checkpoint request produces a fresh context file. *)
      Guest_fs.write_file fs
        ~path:(dump_path ~name ~epoch)
        (dump_payload ~vm:(Vm.name vm) ~name ~mem ~epoch);
      total := !total + mem)
    (Vm.processes vm);
  Guest_fs.sync fs;
  !total

let restore vm =
  let fs = Vm.fs vm in
  let dumps = scan fs in
  if dumps = [] then failwith "Blcr.restore: no process dumps found";
  List.fold_left
    (fun acc (name, epoch) ->
      let payload = Guest_fs.read_file fs ~path:(dump_path ~name ~epoch) in
      ignore (Vm.register_process vm ~name ~mem:(Payload.length payload));
      acc + Payload.length payload)
    0 dumps

let newest_dump vm ~name =
  let fs = Vm.fs vm in
  match List.assoc_opt name (scan fs) with
  | Some epoch -> Guest_fs.read_file fs ~path:(dump_path ~name ~epoch)
  | None -> raise Not_found
