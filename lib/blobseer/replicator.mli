(** Geo-replication: asynchronous commit-journal shipping to a standby
    repository, and standby promotion on primary-site disaster.

    The replicator tails the primary version manager's commit stream
    ({!Version_manager.set_on_commit}) and applies each record to an
    independent standby deployment — its own providers, metadata service,
    version manager and dedup index — across a fault-injectable WAN link
    modelled by a gateway host pair. The design is availability over
    consistency: the primary's commit path only ever pays a mailbox push,
    and link partitions, degradations or provider failures make the
    replica {e lag} (bounded-window pipelining, capped exponential backoff
    with jitter), never block or fail the primary.

    On a primary-site disaster, {!promote} cancels the shipping pipeline,
    rolls half-applied records back through the standby's own journals and
    reports what was lost — the RPO the disaster-recovery experiments
    sweep. *)

open Simcore
open Netsim

type t

type config = {
  window : int;  (** max commit records in flight (fetch + ship) at once *)
  link_latency : float;  (** one-way WAN latency on top of LAN costs, seconds *)
  ship_delay : float;
      (** batching delay before a committed record is fetched, seconds —
          defers replication reads past the checkpoint burst that produced
          the record (primary overhead down, RPO up) *)
  stall_retries : int;
      (** attempts before a record is counted as stalled (lagging made
          visible in {!stats}); retrying continues regardless *)
  backoff_base : float;  (** first retry delay, doubled per attempt *)
  backoff_cap : float;  (** ceiling on the retry delay *)
}

val default_config : config
(** Window 4, 50 ms link latency, 1 s shipping delay, 8 attempts before a
    stall is counted, 20 ms base backoff capped at 2 s. *)

val create :
  Engine.t ->
  Net.t ->
  primary:Client.t ->
  standby:Client.t ->
  gateway_primary:Net.host ->
  gateway_standby:Net.host ->
  ?config:config ->
  unit ->
  t
(** Stand up the shipping pipeline (tail, per-record fetch, in-order
    apply fibers) between the two deployments. Nothing flows until
    {!attach} installs the commit hook. *)

val attach : t -> unit
(** Install the commit hook on the primary version manager and enqueue an
    initial sync of everything already committed (per blob: a creation
    record, then each published version, oldest first). *)

val inject : t -> Version_manager.commit_record -> unit
(** Enqueue one record as if the primary had just committed it — the test
    hook for duplicate-delivery and idempotence scenarios. *)

val quiesce : t -> unit
(** Block the calling fiber (in simulated time) until every announced
    record has been applied — replication lag zero, or the replicator
    promoted. The drain step tests and operators use before comparing the
    two sites. *)

type promotion = {
  promoted_at : float;  (** simulation time of the promotion *)
  lost_versions : int;  (** publications announced but never applied *)
  lost_bytes : int;  (** changed bytes of those publications (primary-side) *)
  lost_records : int;  (** all lost records, including creations/clones *)
}

val promote : t -> promotion
(** Fail over: cancel the pipeline, roll back any half-applied record
    through the standby's journals ({!Version_manager.restart} and
    metadata journal recovery), and report the data loss. A record whose
    effect fully landed before the cancellation is not counted lost.
    Raises [Invalid_argument] on a second call. *)

val version_ok : t -> blob:int -> version:int -> bool
(** Whether the standby can restore this version: it was fully applied
    and every chunk descriptor still has a live, digest-clean replica on
    the standby's providers. Cost-free (audit-style peek). *)

type stats = {
  records_seen : int;  (** commit records announced (hook + initial sync) *)
  records_applied : int;  (** records whose effect landed on the standby *)
  duplicate_skips : int;  (** records skipped because already applied *)
  skipped_repairs : int;  (** digest-preserving repairs (logical no-ops) *)
  bytes_shipped : int;  (** chunk bytes carried across the WAN link *)
  retries : int;  (** transient-error retries across fetch and apply *)
  stalls : int;  (** records that exceeded [stall_retries] attempts *)
  backoff_time : float;  (** total seconds spent backing off *)
  max_inflight : int;  (** high-water mark of in-flight records *)
  max_lag : int;  (** high-water mark of announced-but-unapplied records *)
  lag : int;  (** current announced-but-unapplied records *)
}

val stats : t -> stats
(** Lifetime shipping statistics (kept outside [Obs] so they are available
    without an active metrics capture). *)

val lag : t -> int
(** Records announced but not yet fully applied — the replication lag. *)

val inflight : t -> int
(** Records currently inside the bounded fetch/ship window. *)

val unsettled : t -> (int * int) list
(** The in-flight window as [(blob, version)] pairs on the {e primary}
    that pending records still read from (published versions being
    fetched, clone sources, repaired versions) — the compactor registers
    this as a pin source so retention never retires a version out from
    under the replication pipeline. Cost-free. *)

val config : t -> config
(** The configuration passed at creation. *)

val promoted : t -> bool
(** Whether {!promote} has run. *)

val primary : t -> Client.t
(** The primary deployment (for audits and RPO accounting). *)

val standby : t -> Client.t
(** The standby deployment (for audits and post-promotion use). *)

(** {1 Audit view}

    Replicators register themselves with their engine as
    {!Audit_replicator} subjects; [Analysis.Invariants] checks the window
    bound and standby/primary tree agreement at teardown. *)

type Engine.audit_subject += Audit_replicator of t
