open Simcore
open Netsim

type config = {
  window : int;
  link_latency : float;
  ship_delay : float;
  stall_retries : int;
  backoff_base : float;
  backoff_cap : float;
}

let default_config =
  { window = 4; link_latency = 0.05; ship_delay = 1.0; stall_retries = 8;
    backoff_base = 0.02; backoff_cap = 2.0 }

type stats = {
  records_seen : int;
  records_applied : int;
  duplicate_skips : int;
  skipped_repairs : int;
  bytes_shipped : int;
  retries : int;
  stalls : int;
  backoff_time : float;
  max_inflight : int;
  max_lag : int;
  lag : int;
}

type promotion = {
  promoted_at : float;
  lost_versions : int;
  lost_bytes : int;
  lost_records : int;
}

(* What the fetch stage hands the apply stage: the changed chunk contents
   of a publication (already carried across the WAN link), or nothing for
   control records. *)
type prepared = Chunks of (int * Payload.t) list | Control

type t = {
  engine : Engine.t;
  net : Net.t;
  config : config;
  primary : Client.t;
  standby : Client.t;
  gateway_primary : Net.host;
  gateway_standby : Net.host;
  (* Identity-keyed jitter stream: replays are schedule-independent. *)
  jitter : Rng.t;
  (* Blob handles opened once per side and reused: an open is a version
     manager round trip, and the primary's manager serializes publishes —
     re-opening per record would queue behind (and delay) live commits. *)
  primary_handles : (int, Client.blob) Hashtbl.t;
  standby_handles : (int, Client.blob) Hashtbl.t;
  inbox : (Version_manager.commit_record * float) Engine.Mailbox.t;
  ready :
    (Version_manager.commit_record * float * prepared Engine.Ivar.t)
    Engine.Mailbox.t;
  window_sem : Engine.Semaphore.t;
  group : Engine.Group.t;
  (* Records announced by the primary but not yet fully applied to the
     standby, in commit order — the replication lag, and at promotion time
     the RPO. *)
  pending_q : Version_manager.commit_record Queue.t;
  mutable inflight : int;
  mutable promoted : bool;
  mutable records_seen : int;
  mutable records_applied : int;
  mutable duplicate_skips : int;
  mutable skipped_repairs : int;
  mutable bytes_shipped : int;
  mutable retries : int;
  mutable stalls : int;
  mutable backoff_time : float;
  mutable max_inflight : int;
  mutable max_lag : int;
}

type Engine.audit_subject += Audit_replicator of t

let m_lag = Obs.Metrics.gauge ~component:"repl" ~name:"lag_records"
let m_in_flight = Obs.Metrics.gauge ~component:"repl" ~name:"in_flight"
let m_apply_lag = Obs.Metrics.histogram ~component:"repl" ~name:"apply_lag_s"
let m_records = Obs.Metrics.counter ~component:"repl" ~name:"records_applied"
let m_bytes = Obs.Metrics.counter ~component:"repl" ~name:"bytes_shipped"
let m_retries = Obs.Metrics.counter ~component:"repl" ~name:"retries"
let m_backoff = Obs.Metrics.counter ~component:"repl" ~name:"backoff_s"
let m_dup_skips = Obs.Metrics.counter ~component:"repl" ~name:"duplicate_skips"

let trace t fmt = Trace.emit t.engine ~component:"replicator" fmt
let lag t = Queue.length t.pending_q
let stats_lag = lag

let stats t =
  {
    records_seen = t.records_seen;
    records_applied = t.records_applied;
    duplicate_skips = t.duplicate_skips;
    skipped_repairs = t.skipped_repairs;
    bytes_shipped = t.bytes_shipped;
    retries = t.retries;
    stalls = t.stalls;
    backoff_time = t.backoff_time;
    max_inflight = t.max_inflight;
    max_lag = t.max_lag;
    lag = stats_lag t;
  }

let config t = t.config
let promoted t = t.promoted
let primary t = t.primary
let standby t = t.standby
let inflight t = t.inflight

(* The in-flight window as (blob, version) pins: every pending record
   still reads primary-side snapshot state (fetch walks the published
   tree; a clone's apply reads the source snapshot), so the compactor
   must not retire these versions out from under the pipeline. *)
let unsettled t =
  Queue.fold
    (fun acc (record : Version_manager.commit_record) ->
      match record with
      | Published { blob; version } -> (blob, version) :: acc
      | Cloned { src_blob; version; _ } -> (src_blob, version) :: acc
      | Repaired { blob; version; _ } -> (blob, version) :: acc
      | Blob_created _ -> acc)
    [] t.pending_q
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Intake: runs synchronously inside the primary's committing operation,
   so it must never block — availability over consistency, the primary
   commit path only ever pays a mailbox push. *)

let enqueue t record =
  Queue.add record t.pending_q;
  t.records_seen <- t.records_seen + 1;
  let l = lag t in
  if l > t.max_lag then t.max_lag <- l;
  Obs.Metrics.set m_lag l;
  Engine.Mailbox.send t.inbox (record, Engine.now t.engine)

let inject = enqueue

(* ------------------------------------------------------------------ *)
(* Retry discipline: transient link/provider/service errors back off
   exponentially (with identity-keyed jitter) up to [backoff_cap] and
   retry indefinitely — a partitioned or degraded link makes the
   replicator lag, never fail. Past [stall_retries] attempts the record
   is counted as stalled (the lagging degradation made visible). *)

let with_backoff t ~label f =
  let rec go n =
    try f ()
    with Types.Provider_down _ | Types.Service_crashed _ | Faults.Injected_error _ ->
      if n = t.config.stall_retries then begin
        t.stalls <- t.stalls + 1;
        trace t "%s stalled after %d attempts; lagging" label n
      end;
      let expo = t.config.backoff_base *. float_of_int (1 lsl min n 16) in
      let delay =
        Float.min t.config.backoff_cap expo *. (1.0 +. (0.25 *. Rng.float t.jitter 1.0))
      in
      t.retries <- t.retries + 1;
      t.backoff_time <- t.backoff_time +. delay;
      Obs.Metrics.incr m_retries;
      Obs.Metrics.add m_backoff delay;
      Engine.sleep t.engine delay;
      go (n + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Fetch stage: read the record's changed chunk contents off the primary
   (digest-verified, with the client's replica failover) and carry them
   across the WAN link. One fiber per in-flight record. *)

let primary_handle t blob =
  match Hashtbl.find_opt t.primary_handles blob with
  | Some b -> b
  | None ->
      let b = Client.open_blob t.primary ~from:t.gateway_primary ~id:blob in
      Hashtbl.replace t.primary_handles blob b;
      b

let standby_handle t blob =
  match Hashtbl.find_opt t.standby_handles blob with
  | Some b -> b
  | None ->
      let b = Client.open_blob t.standby ~from:t.gateway_standby ~id:blob in
      Hashtbl.replace t.standby_handles blob b;
      b

let ship_bytes t bytes =
  Net.transfer t.net ~src:t.gateway_primary ~dst:t.gateway_standby bytes;
  Engine.sleep t.engine t.config.link_latency

let ship_control t =
  Net.message t.net ~src:t.gateway_primary ~dst:t.gateway_standby;
  Engine.sleep t.engine t.config.link_latency

let fetch t record =
  match (record : Version_manager.commit_record) with
  | Published { blob; version } ->
      let pvm = Client.version_manager t.primary in
      let b = primary_handle t blob in
      let old_tree = Version_manager.peek_tree pvm ~blob ~version:(version - 1) in
      let new_tree = Version_manager.peek_tree pvm ~blob ~version in
      let changed =
        List.filter_map
          (fun (i, _, fresh) -> Option.map (fun d -> (i, d)) fresh)
          (Segment_tree.diff_leaves old_tree new_tree)
      in
      (* The journal record carries the tree delta, so the fetch pays
         provider and network cost only ({!Client.read_desc}) — no
         version-manager or metadata round trips that would queue behind
         (and slow) the primary's live commits. *)
      let chunks =
        List.map
          (fun (i, desc) -> (i, Client.read_desc b ~from:t.gateway_primary desc))
          changed
      in
      let bytes = List.fold_left (fun acc (_, p) -> acc + Payload.length p) 0 chunks in
      ship_bytes t bytes;
      t.bytes_shipped <- t.bytes_shipped + bytes;
      Obs.Metrics.incr ~by:bytes m_bytes;
      Chunks chunks
  | Blob_created _ | Cloned _ | Repaired _ ->
      ship_control t;
      Control

(* ------------------------------------------------------------------ *)
(* Apply stage: one fiber, strictly in commit order. Every branch is
   idempotent — a record whose effect is already visible on the standby
   (duplicate delivery, or a retried half-applied record) is skipped
   without touching state, including the standby's dedup refcounts. *)

let standby_has_blob t blob =
  List.mem blob (Version_manager.blob_ids (Client.version_manager t.standby))

let apply t record prep =
  let svm = Client.version_manager t.standby in
  match (record : Version_manager.commit_record) with
  | Blob_created { blob; capacity; stripe_size } ->
      if standby_has_blob t blob then `Duplicate
      else begin
        let info = Version_manager.create_blob svm ~from:t.gateway_standby ~capacity ~stripe_size in
        if info.Version_manager.blob_id <> blob then
          failwith "Replicator: standby blob id diverged";
        `Applied
      end
  | Cloned { src_blob; version; new_blob } ->
      if standby_has_blob t new_blob then `Duplicate
      else begin
        let src = standby_handle t src_blob in
        let cl = Client.clone src ~from:t.gateway_standby ~version in
        if Client.blob_id cl <> new_blob then
          failwith "Replicator: standby clone id diverged";
        `Applied
      end
  | Repaired _ ->
      (* Digest-preserving in-place repair: a logical no-op for the
         replica — the standby placed its own copies of the same bytes. *)
      `Skipped_repair
  | Published { blob; version } ->
      if Version_manager.peek_latest svm blob >= version then `Duplicate
      else begin
        let b = standby_handle t blob in
        let jobs =
          match prep with
          | Chunks chunks -> List.map (fun (i, p) -> (i, fun () -> p)) chunks
          | Control -> []
        in
        let v, _stats = Client.write_chunks b ~from:t.gateway_standby ~base:(version - 1) jobs in
        if v <> version then failwith "Replicator: standby version diverged";
        `Applied
      end

(* ------------------------------------------------------------------ *)
(* Pipeline fibers *)

let rec apply_loop t =
  let record, enqueued_at, ivar = Engine.Mailbox.recv t.ready in
  let prep = Engine.Ivar.read ivar in
  (match with_backoff t ~label:"apply" (fun () -> apply t record prep) with
  | `Applied ->
      t.records_applied <- t.records_applied + 1;
      Obs.Metrics.incr m_records
  | `Duplicate ->
      t.duplicate_skips <- t.duplicate_skips + 1;
      Obs.Metrics.incr m_dup_skips
  | `Skipped_repair -> t.skipped_repairs <- t.skipped_repairs + 1);
  ignore (Queue.pop t.pending_q);
  t.inflight <- t.inflight - 1;
  Obs.Metrics.set m_in_flight t.inflight;
  Engine.Semaphore.release t.window_sem;
  Obs.Metrics.observe m_apply_lag (Engine.now t.engine -. enqueued_at);
  Obs.Metrics.set m_lag (lag t);
  apply_loop t

let rec tail_loop t =
  let record, enqueued_at = Engine.Mailbox.recv t.inbox in
  Engine.Semaphore.acquire t.window_sem;
  t.inflight <- t.inflight + 1;
  Obs.Metrics.set m_in_flight t.inflight;
  if t.inflight > t.max_inflight then t.max_inflight <- t.inflight;
  let ivar = Engine.Ivar.create t.engine in
  Engine.Mailbox.send t.ready (record, enqueued_at, ivar);
  ignore
    (Engine.Fiber.spawn t.engine ~name:"replicator.fetch" ~group:t.group (fun () ->
         (* Batched shipping: a record becomes eligible [ship_delay] after
            its commit, so replication reads land in the primary's compute
            phase instead of stealing provider disk and service time from
            the checkpoint burst that produced the record. A record held
            back by window backpressure past its eligibility pays nothing
            extra. *)
         let eligible = enqueued_at +. t.config.ship_delay in
         let now = Engine.now t.engine in
         if eligible > now then Engine.sleep t.engine (eligible -. now);
         let prep = with_backoff t ~label:"fetch" (fun () -> fetch t record) in
         Engine.Ivar.fill ivar prep));
  tail_loop t

(* ------------------------------------------------------------------ *)

let create engine net ~primary ~standby ~gateway_primary ~gateway_standby
    ?(config = default_config) () =
  if config.window < 1 then invalid_arg "Replicator.create: window must be >= 1";
  if config.ship_delay < 0.0 then invalid_arg "Replicator.create: ship_delay";
  if config.backoff_base <= 0.0 || config.backoff_cap < config.backoff_base then
    invalid_arg "Replicator.create: bad backoff bounds";
  let t =
    {
      engine;
      net;
      config;
      primary;
      standby;
      gateway_primary;
      gateway_standby;
      jitter = Engine.derived_rng engine "replicator.jitter";
      inbox = Engine.Mailbox.create engine;
      ready = Engine.Mailbox.create engine;
      window_sem = Engine.Semaphore.create engine config.window;
      group = Engine.Group.create ();
      primary_handles = Hashtbl.create 8;
      standby_handles = Hashtbl.create 8;
      pending_q = Queue.create ();
      inflight = 0;
      promoted = false;
      records_seen = 0;
      records_applied = 0;
      duplicate_skips = 0;
      skipped_repairs = 0;
      bytes_shipped = 0;
      retries = 0;
      stalls = 0;
      backoff_time = 0.0;
      max_inflight = 0;
      max_lag = 0;
    }
  in
  Engine.register_audit_subject engine (Audit_replicator t);
  ignore (Engine.Fiber.spawn engine ~name:"replicator.tail" ~group:t.group (fun () -> tail_loop t));
  ignore (Engine.Fiber.spawn engine ~name:"replicator.apply" ~group:t.group (fun () -> apply_loop t));
  t

let attach t =
  let pvm = Client.version_manager t.primary in
  Version_manager.set_on_commit pvm (fun record -> enqueue t record);
  (* Initial sync: announce everything already committed, oldest first.
     Blobs that pre-date the attach were created (not cloned), so a
     creation record plus each publication reconstructs them. *)
  List.iter
    (fun blob ->
      let info = Version_manager.blob_info pvm blob in
      enqueue t
        (Version_manager.Blob_created
           { blob; capacity = info.Version_manager.capacity;
             stripe_size = info.Version_manager.stripe_size });
      for version = 1 to Version_manager.peek_latest pvm blob do
        enqueue t (Version_manager.Published { blob; version })
      done)
    (Version_manager.blob_ids pvm)

(* Wait (in simulated time) until the standby has caught up. Polling is
   fine here: this is a test/operator convenience, not a hot path. *)
let rec quiesce t =
  if not t.promoted && lag t > 0 then begin
    Engine.sleep t.engine 0.05;
    quiesce t
  end

(* ------------------------------------------------------------------ *)
(* Failover *)

let promote t =
  if t.promoted then invalid_arg "Replicator.promote: already promoted";
  t.promoted <- true;
  Engine.Group.cancel t.engine t.group;
  (* Roll back any record the apply fiber was cancelled in the middle of:
     the standby's own journals make half-applied publications vanish. *)
  let svm = Client.version_manager t.standby in
  Version_manager.restart svm;
  Metadata_service.recover_journal (Client.metadata_service t.standby);
  (* Whatever was announced but never (fully) applied is the data loss.
     A record whose effect did land before the cancel is not lost. *)
  let pending = List.of_seq (Queue.to_seq t.pending_q) in
  let really_lost =
    List.filter
      (fun (r : Version_manager.commit_record) ->
        match r with
        | Published { blob; version } -> (
            match Version_manager.peek_latest svm blob with
            | latest -> latest < version
            | exception Not_found -> true)
        | Blob_created { blob; _ } -> not (standby_has_blob t blob)
        | Cloned { new_blob; _ } -> not (standby_has_blob t new_blob)
        | Repaired _ -> false)
      pending
  in
  let lost_versions =
    List.length
      (List.filter
         (function Version_manager.Published _ -> true | _ -> false)
         really_lost)
  in
  (* Size the loss from the primary's metadata alone: cost-free peeks
     still work on a fail-stopped site, where a client round trip would
     not. *)
  let pvm = Client.version_manager t.primary in
  let lost_bytes =
    List.fold_left
      (fun acc (r : Version_manager.commit_record) ->
        match r with
        | Published { blob; version } -> (
            try
              let old_tree = Version_manager.peek_tree pvm ~blob ~version:(version - 1) in
              let new_tree = Version_manager.peek_tree pvm ~blob ~version in
              List.fold_left
                (fun a (_, _, fresh) ->
                  match fresh with
                  | Some (d : Types.chunk_desc) -> a + d.Types.size
                  | None -> a)
                acc
                (Segment_tree.diff_leaves old_tree new_tree)
            with Not_found -> acc)
        | _ -> acc)
      0 really_lost
  in
  Queue.clear t.pending_q;
  Obs.Metrics.set m_lag 0;
  trace t "promoted standby: %d record(s) lost (%d version(s), %d bytes)"
    (List.length really_lost) lost_versions lost_bytes;
  {
    promoted_at = Engine.now t.engine;
    lost_versions;
    lost_bytes;
    lost_records = List.length really_lost;
  }

(* A version is restorable from the standby iff it was fully applied and
   every chunk still has a live, digest-clean replica there. *)
let version_ok t ~blob ~version =
  let svm = Client.version_manager t.standby in
  match Version_manager.peek_tree svm ~blob ~version with
  | exception Not_found -> false
  | tree ->
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) ok ->
          ok
          && List.exists
               (fun (r : Types.replica) ->
                 let p = Client.data_provider t.standby r.provider in
                 Data_provider.is_alive p && Data_provider.verify_chunk p r.chunk)
               desc.replicas)
        tree true
