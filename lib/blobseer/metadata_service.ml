open Simcore
open Netsim

type provider = { mhost : Net.host; server : Rate_server.t; mutable malive : bool }

type t = {
  engine : Engine.t;
  net : Net.t;
  providers : provider array;
  node_bytes : int;
  mutable cursor : int;
  mutable stored : int;
  journal : int Journal.t; (* intent = node count of an in-flight commit *)
  mutable armed_crash : bool;
  mutable recovered : int;
}

let create engine net ~hosts ?(node_bytes = Types.default_params.metadata_node_bytes)
    ?(node_cost = Types.default_params.metadata_node_cost) () =
  if hosts = [] then invalid_arg "Metadata_service.create: no hosts";
  let mk i mhost =
    {
      mhost;
      server =
        Rate_server.create engine ~rate:1e12 ~per_op:node_cost
          ~name:(Fmt.str "metadata.%d" i) ();
      malive = true;
    }
  in
  {
    engine;
    net;
    providers = Array.of_list (List.mapi mk hosts);
    node_bytes;
    cursor = 0;
    stored = 0;
    journal = Journal.create ~name:"metadata" ();
    armed_crash = false;
    recovered = 0;
  }

let provider_count t = Array.length t.providers

let fail t i =
  if i < 0 || i >= Array.length t.providers then invalid_arg "Metadata_service.fail";
  t.providers.(i).malive <- false

let recover t i =
  if i < 0 || i >= Array.length t.providers then invalid_arg "Metadata_service.recover";
  t.providers.(i).malive <- true

let alive_count t =
  Array.fold_left (fun acc p -> if p.malive then acc + 1 else acc) 0 t.providers

(* Spread [n] nodes over the live providers starting at the rotating cursor,
   so successive small commits do not all hit provider 0. Each provider's
   batch is shipped and served in parallel; per-node cost is charged through
   the provider's serial service queue. A replicated segment-tree node set
   survives individual provider failures, so batches simply route around
   dead providers; with no live provider at all the service is down. *)
let spread t n =
  let live = Array.to_list t.providers |> List.filter (fun p -> p.malive) in
  let m = List.length live in
  if m = 0 then raise (Types.Provider_down "metadata service: no live provider");
  let live = Array.of_list live in
  let base = n / m and extra = n mod m in
  let start = t.cursor in
  t.cursor <- (t.cursor + 1) mod Array.length t.providers;
  List.filter_map
    (fun i ->
      let count = base + if i < extra then 1 else 0 in
      if count = 0 then None else Some (live.((start + i) mod m), count))
    (List.init m Fun.id)

let run_batches t ~client ~towards_provider batches =
  let task (provider, count) () =
    let bytes = count * t.node_bytes in
    if towards_provider then begin
      Net.transfer t.net ~src:client ~dst:provider.mhost bytes;
      Rate_server.process_many provider.server ~ops:count 0
    end
    else begin
      Rate_server.process_many provider.server ~ops:count 0;
      Net.transfer t.net ~src:provider.mhost ~dst:client bytes
    end
  in
  Engine.all t.engine ~name:"metadata.batch" (List.map task batches)

(* Node commits journal an intent first: a crash while the batches are in
   flight leaves a pending intent and no [stored] bump, and
   [recover_journal] rolls it back so the commit can be retried whole. *)
let commit_nodes t ~from n =
  if n < 0 then invalid_arg "Metadata_service.commit_nodes";
  if n > 0 then begin
    let jid = Journal.append t.journal n in
    if t.armed_crash then begin
      t.armed_crash <- false;
      raise (Types.Service_crashed "metadata service")
    end;
    match run_batches t ~client:from ~towards_provider:true (spread t n) with
    | () ->
        t.stored <- t.stored + n;
        Journal.commit t.journal jid
    | exception e ->
        (* The service survived but the batch run failed client-visibly
           (e.g. no live metadata provider): abort our own intent so the
           journal stays quiescent; the client may retry the whole commit. *)
        Journal.abort t.journal jid;
        raise e
  end

let arm_crash t = t.armed_crash <- true

let recover_journal t =
  List.iter
    (fun (jid, _n) ->
      Journal.abort t.journal jid;
      t.recovered <- t.recovered + 1)
    (Journal.pending t.journal)

let journal_pending t = Journal.pending_count t.journal
let recovered_intents t = t.recovered

let fetch_nodes t ~to_ n =
  if n < 0 then invalid_arg "Metadata_service.fetch_nodes";
  if n > 0 then run_batches t ~client:to_ ~towards_provider:false (spread t n)

let nodes_stored t = t.stored
