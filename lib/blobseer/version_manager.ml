open Simcore
open Netsim

type tree = Types.chunk_desc Segment_tree.t
type blob_info = { blob_id : int; capacity : int; stripe_size : int }

type blob_state = {
  info : blob_info;
  versions : (int, tree) Hashtbl.t;
  mutable latest : int;
  (* Version numbers retired by retention/compaction (or dropped by the
     GC): no longer readable, but remembered so audits can check that
     live ∪ retired still tiles the dense range the manager minted. *)
  mutable retired : int list;
}

(* Intent records journaled before any state mutation: a crash between the
   journal append and the final commit leaves a pending intent that
   [restart] rolls back, so observers see the old state or the new one —
   never a half-published version. *)
type intent =
  | Publish of { blob : int; version : int }
  | Clone of { src_blob : int; version : int; new_blob : int }
  | Repair of { blob : int; version : int; index : int }

type crash_point = Before_apply | Mid_apply

(* Durable mutations in commit order, as seen by a journal-shipping
   replica. Emitted strictly after the journal commit, so a crashed and
   rolled-back operation is never announced. *)
type commit_record =
  | Published of { blob : int; version : int }
  | Cloned of { src_blob : int; version : int; new_blob : int }
  | Blob_created of { blob : int; capacity : int; stripe_size : int }
  | Repaired of { blob : int; version : int; index : int }

type t = {
  engine : Engine.t;
  net : Net.t;
  host : Net.host;
  server : Rate_server.t;
  blobs : (int, blob_state) Hashtbl.t;
  mutable next_blob : int;
  journal : intent Journal.t;
  mutable alive : bool;
  mutable armed : crash_point option;
  mutable recovered : int;
  mutable dedup : Dedup_index.t option;
  mutable on_commit : (commit_record -> unit) option;
}

type Engine.audit_subject += Audit_version_manager of t

let m_publishes = Obs.Metrics.counter ~component:"vmgr" ~name:"publishes"
let m_journal_rollbacks = Obs.Metrics.counter ~component:"vmgr" ~name:"journal_rollbacks"

let create engine net ~host ?(publish_cost = Types.default_params.publish_cost) () =
  let t =
    {
      engine;
      net;
      host;
      server = Rate_server.create engine ~rate:1e12 ~per_op:publish_cost ~name:"vmanager" ();
      blobs = Hashtbl.create 64;
      next_blob = 0;
      journal = Journal.create ~name:"vmanager" ();
      alive = true;
      armed = None;
      recovered = 0;
      dedup = None;
      on_commit = None;
    }
  in
  Engine.register_audit_subject engine (Audit_version_manager t);
  t

let set_dedup_index t index = t.dedup <- Some index
let set_on_commit t f = t.on_commit <- Some f
let notify t record = match t.on_commit with Some f -> f record | None -> ()

let chunk_count ~capacity ~stripe_size = Size.div_ceil capacity stripe_size

let is_alive t = t.alive
let fail t = t.alive <- false
let arm_crash t point = t.armed <- Some point

let maybe_crash t point =
  match t.armed with
  | Some p when p = point ->
      t.armed <- None;
      t.alive <- false;
      raise (Types.Service_crashed "vmanager")
  | _ -> ()

let check_alive t = if not t.alive then raise (Types.Service_crashed "vmanager")

let rpc t ~from f =
  Net.message t.net ~src:from ~dst:t.host;
  check_alive t;
  let result = f () in
  Net.message t.net ~src:t.host ~dst:from;
  result

let register_blob t ~capacity ~stripe_size v0 =
  if capacity <= 0 || stripe_size <= 0 then invalid_arg "Version_manager: bad blob shape";
  let info = { blob_id = t.next_blob; capacity; stripe_size } in
  t.next_blob <- t.next_blob + 1;
  let versions = Hashtbl.create 16 in
  Hashtbl.replace versions 0 v0;
  Hashtbl.replace t.blobs info.blob_id { info; versions; latest = 0; retired = [] };
  info

let create_blob t ~from ~capacity ~stripe_size =
  rpc t ~from (fun () ->
      let chunks = chunk_count ~capacity ~stripe_size in
      let info = register_blob t ~capacity ~stripe_size (Segment_tree.create ~chunks) in
      notify t (Blob_created { blob = info.blob_id; capacity; stripe_size });
      info)

let state t blob = Hashtbl.find t.blobs blob
let blob_info t blob = (state t blob).info
let blob_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.blobs [] |> List.sort compare
let latest t ~from blob = rpc t ~from (fun () -> (state t blob).latest)

let get_tree t ~from ~blob ~version =
  rpc t ~from (fun () -> Hashtbl.find (state t blob).versions version)

(* Merge a stale-based update onto the current latest tree: every leaf the
   writer changed relative to its base wins; everything else keeps the
   latest content. *)
let merge_onto ~latest_tree ~changes =
  List.fold_left
    (fun acc (i, _old, fresh) ->
      let tree, _created = Segment_tree.set_range acc ~start:i [| fresh |] in
      tree)
    latest_tree changes

let publish t ~from ~blob ~base tree =
  Obs.Span.with_ t.engine ~component:"vmgr" ~name:"vmgr.publish"
    ~attrs:[ ("blob", Obs.Record.Int blob) ]
  @@ fun () ->
  Obs.Metrics.incr m_publishes;
  rpc t ~from (fun () ->
      Rate_server.process t.server 0;
      let st = state t blob in
      let base_tree = Hashtbl.find st.versions base in
      (* The writer's own changes relative to its base: exactly what a
         stale-based merge lands, and exactly what reference counting
         must see (leaves other writers changed since [base] were counted
         by their own publications). *)
      let changes = Segment_tree.diff_leaves base_tree tree in
      let tree =
        if base = st.latest then tree
        else merge_onto ~latest_tree:(Hashtbl.find st.versions st.latest) ~changes
      in
      let version = st.latest + 1 in
      let jid = Journal.append t.journal (Publish { blob; version }) in
      maybe_crash t Before_apply;
      Hashtbl.replace st.versions version tree;
      maybe_crash t Mid_apply;
      st.latest <- version;
      Journal.commit t.journal jid;
      (* Reference counting happens strictly after the journal commit, so
         a publication rolled back by [restart] never counts. *)
      (match t.dedup with
      | Some index ->
          List.iter
            (fun (_, _, fresh) ->
              match (fresh : Types.chunk_desc option) with
              | Some desc -> Dedup_index.add_ref index desc.digest
              | None -> ())
            changes
      | None -> ());
      notify t (Published { blob; version });
      version)

let clone t ~from ~blob ~version =
  rpc t ~from (fun () ->
      Rate_server.process t.server 0;
      let st = state t blob in
      let snapshot = Hashtbl.find st.versions version in
      let jid =
        Journal.append t.journal (Clone { src_blob = blob; version; new_blob = t.next_blob })
      in
      maybe_crash t Before_apply;
      let info =
        register_blob t ~capacity:st.info.capacity ~stripe_size:st.info.stripe_size snapshot
      in
      maybe_crash t Mid_apply;
      Journal.commit t.journal jid;
      notify t (Cloned { src_blob = blob; version; new_blob = info.blob_id });
      info)

(* Scrubber repair: swap the chunk descriptor of one leaf of one published
   version in place, without minting a new version number. Journaled like a
   publication; returns the count of fresh tree nodes so the caller can
   charge the metadata commit. *)
let replace_desc t ~blob ~version ~index desc =
  check_alive t;
  let st = state t blob in
  let tree = Hashtbl.find st.versions version in
  let jid = Journal.append t.journal (Repair { blob; version; index }) in
  let tree', created = Segment_tree.set_range tree ~start:index [| Some desc |] in
  Hashtbl.replace st.versions version tree';
  Journal.commit t.journal jid;
  notify t (Repaired { blob; version; index });
  created

(* Roll a pending intent back to the pre-mutation state. A pending Publish
   may or may not have inserted the version root, but can never have bumped
   [latest] (the bump precedes the journal commit immediately); likewise a
   pending Clone may have registered the new blob. Repair's apply step is a
   single atomic leaf swap, so a pending Repair did not mutate. *)
let rollback t = function
  | Publish { blob; version } -> (
      match Hashtbl.find_opt t.blobs blob with
      | Some st -> if st.latest < version then Hashtbl.remove st.versions version
      | None -> ())
  | Clone { new_blob; _ } -> Hashtbl.remove t.blobs new_blob
  | Repair _ -> ()

let restart t =
  List.iter
    (fun (jid, intent) ->
      rollback t intent;
      Journal.abort t.journal jid;
      Obs.Metrics.incr m_journal_rollbacks;
      t.recovered <- t.recovered + 1)
    (Journal.pending t.journal);
  t.armed <- None;
  t.alive <- true

let journal_pending t = Journal.pending_count t.journal
let recovered_intents t = t.recovered

let mark_retired st version =
  if not (List.mem version st.retired) then
    st.retired <- List.sort Int.compare (version :: st.retired)

let drop_version t ~blob ~version =
  let st = state t blob in
  if Hashtbl.mem st.versions version then begin
    Hashtbl.remove st.versions version;
    mark_retired st version
  end

(* Retire one version for the compactor: a cost-free atomic map move (the
   compactor journals the surrounding transaction itself). Returns the
   retired tree so the caller can release dedup references and sweep the
   chunks only it referenced. *)
let retire_version t ~blob ~version =
  check_alive t;
  let st = state t blob in
  if version = st.latest then invalid_arg "Version_manager.retire_version: latest";
  match Hashtbl.find_opt st.versions version with
  | None -> invalid_arg "Version_manager.retire_version: not a live version"
  | Some tree ->
      Hashtbl.remove st.versions version;
      mark_retired st version;
      tree

let retired_versions t ~blob = (state t blob).retired

let unsafe_forget_version t ~blob ~version =
  Hashtbl.remove (state t blob).versions version

let versions t ~blob =
  let st = state t blob in
  Hashtbl.fold (fun v _ acc -> v :: acc) st.versions [] |> List.sort compare

(* Retention planning lives with the version manager (it owns the version
   sets the policies partition); evaluation itself is {!Retention.plan}. *)
let retention_plan t ~blob ~policy ~pins =
  let st = state t blob in
  let pins =
    List.filter_map (fun ((b, v), source) -> if b = blob then Some (v, source) else None) pins
  in
  Retention.plan policy ~versions:(versions t ~blob) ~latest:st.latest ~pins

let peek_latest t blob = (state t blob).latest
let peek_tree t ~blob ~version = Hashtbl.find (state t blob).versions version

(* Iterate in sorted (blob, version) order: callers fold arbitrary state
   over the trees (the GC builds its mark set here), so hash order must not
   escape into results. *)
let iter_live_trees t f =
  List.iter
    (fun blob ->
      List.iter (fun version -> f ~blob ~version (peek_tree t ~blob ~version)) (versions t ~blob))
    (blob_ids t)
