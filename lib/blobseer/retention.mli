(** Retention policies for snapshot chains.

    A policy decides, per blob, which published versions of a chain stay
    and which the compactor may retire. Evaluation is pure and
    deterministic: the same version list, pins and policy always produce
    the same plan. The latest version of a blob is never retirable — a
    blob always stays restorable from its tip — and pinned versions
    (GC/supervisor snapshots, scrub-in-progress marks, replicator
    in-flight windows) are forced into the keep set whatever the policy
    says. *)

type policy =
  | Keep_all  (** retire nothing — compaction disabled *)
  | Keep_last of int
      (** keep the newest [k] versions; [k <= 1] (including the
          [keep_last_0] edge case) clamps to keeping only the latest *)
  | Thin_exponential of { base : int }
      (** exponential thinning: every version younger than [base] is
          kept, then one survivor per power-of-[base] age bucket
          [[base^i, base^(i+1))]. A chain shorter than [base] is kept
          whole. [base] must be >= 2. *)

type plan = {
  keep : int list;  (** surviving versions, ascending *)
  retire : int list;  (** versions the policy retires, ascending *)
  pinned_kept : (int * string) list;
      (** versions the policy would have retired but a pin saved,
          with the pin source's name — ascending by version *)
}

val pp_policy : Format.formatter -> policy -> unit
(** Renders as ["keep-all"], ["keep-last-k"] or ["thin-b"]. *)

val policy_to_string : policy -> string
(** Same rendering as {!pp_policy}, as a string (table series labels). *)

val plan : policy -> versions:int list -> latest:int -> pins:(int * string) list -> plan
(** [plan policy ~versions ~latest ~pins] partitions [versions] (the
    blob's live version numbers, any order) into keep and retire sets.
    [latest] is always kept; [pins] maps pinned version numbers to the
    name of the pin's source. Raises [Invalid_argument] on a
    [Thin_exponential] base < 2 or a negative [Keep_last]. *)
