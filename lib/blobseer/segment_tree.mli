(** Persistent segment trees over a blob's chunk space.

    This is BlobSeer's versioning metadata structure: the offset space of a
    BLOB is divided into fixed-size chunks, and each snapshot version is the
    root of a balanced binary tree whose leaves describe the chunk stored
    for that range (or nothing, for never-written ranges). Updating a range
    rebuilds only the paths from the affected leaves to the root, so
    successive versions share all untouched subtrees — this is what the
    paper calls {e shadowing}, and what makes incremental disk-image
    snapshots cheap in both space and metadata traffic.

    The structure is polymorphic in the leaf descriptor so it can be tested
    in isolation; BlobSeer instantiates it with chunk locations. *)

type 'a t

val create : chunks:int -> 'a t
(** A tree over [chunks] leaves, all initially empty. Requires
    [chunks >= 1]. *)

val chunks : 'a t -> int
(** Number of addressable leaves. *)

val get : 'a t -> int -> 'a option
(** [get t i] is the descriptor at leaf [i], if ever set in this version's
    history. Requires [0 <= i < chunks t]. *)

val get_range : 'a t -> start:int -> len:int -> 'a option array
(** The descriptors of leaves [\[start, start+len)], in order. *)

val set_range : 'a t -> start:int -> 'a option array -> 'a t * int
(** [set_range t ~start leaves] is a new version with
    [leaves.(k)] at position [start + k] (a [None] entry punches the leaf
    back to empty), together with the number of fresh tree nodes the update
    allocated — the amount of metadata a commit must push to the metadata
    providers. The original tree is unchanged. *)

val fold_set : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over all non-empty leaves in increasing index order. *)

val live_nodes : 'a t -> int
(** Number of distinct nodes reachable from this root (for sharing
    diagnostics and metadata accounting). *)

val shared_nodes : 'a t -> 'a t -> int
(** Number of physically shared nodes between two versions — evidence of
    shadowing in tests. *)

val terminal_spans : 'a t -> (int * int * bool) list
(** [(lo, extent, occupied)] for every terminal node — occupied leaves and
    shared empty runs — in ascending [lo] order. A well-formed tree's spans
    partition the padded power-of-two chunk space with no gaps or overlaps;
    [Analysis.Invariants] audits exactly that. *)

val diff_leaves : 'a t -> 'a t -> (int * 'a option * 'a option) list
(** [(i, in_old, in_new)] for every leaf whose descriptor differs, cheap on
    shared subtrees (O(changed · log n)). *)

val merkle_digest : digest:('a -> int64) -> 'a t -> int64
(** Merkle root of the tree: leaves hash to [mix (digest value)], interior
    nodes combine their children's digests with the node span. The digest is
    memoized {e in the node} by physical identity, so shadow-shared subtrees
    are hashed at most once across all versions that share them — successive
    versions pay O(changed · log n), not O(n). Contract: a given tree family
    (trees that may share nodes) must always be digested with the same
    [digest] function; use {!merkle_digest_with} for state-dependent
    functions. Versions agree on content iff their roots agree (64-bit
    collisions aside). *)

val merkle_digest_with :
  memo:(int, int64) Hashtbl.t -> digest:('a -> int64) -> 'a t -> int64
(** Same digest values as {!merkle_digest}, but memoized in the caller-held
    [memo] (keyed by node id) instead of in the node — for digest functions
    that depend on external state (e.g. storage health), where in-node
    memoization would go stale. Reuse one [memo] per consistent snapshot of
    that state and discard it afterwards. *)

val merkle_counters : unit -> int * int
(** [(hashes, reuses)]: monotonic counts of Merkle node digests computed
    fresh vs served from a memo, across all trees since process start —
    deltas measure the incremental-digest win. *)
