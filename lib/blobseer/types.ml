(** Shared BlobSeer datatypes. *)

(** One stored copy of a chunk: which data provider holds it, under which
    content-store id. *)
type replica = { provider : int; chunk : Storage.Content_store.chunk_id }

(** Descriptor stored in segment-tree leaves: where the chunk for this
    stripe lives, how many bytes of it are meaningful, and the content
    digest computed by the writer — the end-to-end integrity reference
    every reader and the scrubber verify replicas against. [serial] is a
    client-minted identity distinguishing descriptors that reference the
    same physical replicas through the dedup index; the refcount audit
    counts distinct serials per digest. *)
type chunk_desc = { serial : int; size : int; digest : int64; replicas : replica list }

(** Tunable service parameters. Costs are in seconds, sizes in bytes. *)
type params = {
  stripe_size : int;  (** chunk granularity; the paper uses 256 KiB *)
  replication : int;  (** copies per chunk, on distinct providers *)
  write_window : int;  (** outstanding chunk writes per client *)
  read_window : int;  (** outstanding chunk reads per client *)
  request_overhead : float;  (** per-chunk service cost at a data provider *)
  metadata_node_bytes : int;  (** wire size of one tree node *)
  metadata_node_cost : float;  (** per-node service cost at a metadata provider *)
  publish_cost : float;  (** serialized cost of one version publication *)
  allocate_cost : float;  (** per-chunk cost at the provider manager *)
  read_retries : int;  (** failover rounds over surviving replicas *)
  retry_backoff : float;  (** base delay between failover rounds, doubled per round *)
  retry_backoff_cap : float;  (** ceiling on the per-round failover delay *)
  allow_degraded_writes : bool;
      (** place fewer than [replication] copies when live distinct hosts run
          short, leaving repair to the scrubber, instead of failing the write *)
  dedup : bool;
      (** consult the provider manager's content-addressed index before
          allocating placements: a digest hit reuses the existing replicas
          (zero data movement), a miss writes and registers the chunk *)
  digest_cache : bool;
      (** carry per-chunk content digests across commit epochs (mirror-side
          clean-rewrite skips, descriptor-digest reuse for dirty-set hints);
          off = every commit re-digests every chunk it ships, the pre-PR-9
          behavior, kept as an ablation/bench knob *)
}

let default_params =
  {
    stripe_size = 256 * Simcore.Size.kib;
    replication = 1;
    write_window = 8;
    read_window = 8;
    request_overhead = 3e-4;
    metadata_node_bytes = 64;
    metadata_node_cost = 5e-5;
    publish_cost = 1e-3;
    allocate_cost = 2e-5;
    read_retries = 3;
    retry_backoff = 0.05;
    retry_backoff_cap = 1.0;
    allow_degraded_writes = true;
    dedup = true;
    digest_cache = true;
  }

(* Merkle leaf input of a descriptor: the logical content (digest, size)
   only. Serial and replica placement are deliberately excluded so that
   descriptors minted independently for identical content — dedup
   references, scrub-repaired replicas, geo-replicated copies on another
   site's providers — agree, making Merkle roots compare logical content
   across versions, sites and repairs. *)
let desc_content_digest d = Int64.add (Int64.mul d.digest 0x100000001B3L) (Int64.of_int d.size)

exception Provider_down of string
(** Raised when an operation needs a data provider whose machine failed and
    no live replica remains. *)

exception Service_crashed of string
(** Raised when a metadata-plane service (version manager, metadata
    provider) crashed mid-operation; the caller must run journal recovery
    ([restart]) before retrying. *)
