(** Background scrub & repair: the repository's self-healing loop.

    A scrubber walks every live (blob, version) segment tree, verifies each
    chunk's replica set against the digest the writer recorded in the
    descriptor, and repairs what it finds:

    - {e corrupt} copies (payload digest ≠ recorded digest, or recorded ≠
      descriptor digest) are deleted and replaced;
    - {e missing} copies (provider dead, or chunk lost with its machine)
      are re-replicated from a surviving good copy onto live providers on
      hosts that hold no copy yet.

    Repairs follow a quorum-write policy: the new replica set is published
    (an in-place, journaled descriptor swap — no new version number) only
    when good + freshly written copies reach the quorum (default
    ⌈(replication+1)/2⌉); otherwise the chunk is counted a quorum failure
    and retried next pass. A chunk with {e zero} good copies is
    unrepairable — its (blob, version) is reported so the supervisor can
    pick an older rollback target.

    Structurally shared leaves are repaired once per pass (memoized by
    descriptor identity) and every referencing site is rewritten to the
    same new descriptor, so sharing survives repair.

    All scheduling is deterministic: same seed and same fault script give
    the same scrub/repair event log. *)

open Netsim

type t

type config = {
  interval : float;  (** seconds between background passes *)
  quorum : int option;  (** copies required to publish a repair; default majority *)
  merkle_precheck : bool;
      (** compare per-version Merkle roots (descriptor side vs. a
          storage-health leaf function) before enumerating sites; a version
          whose roots agree is verified healthy wholesale and skipped. A
          per-pass memo verifies shadow-shared subtrees once per pass
          rather than once per referencing version. Detection power is
          unchanged — any unhealthy replica set poisons the storage root —
          only the per-site walk on clean data is elided. *)
}

val default_config : config
(** 5 s interval, majority quorum, Merkle precheck on. *)

type event =
  | Scan_started of { at : float; pass : int }
  | Repaired of {
      at : float;
      blob : int;
      version : int;
      index : int;
      bytes : int;  (** logical chunk size *)
      added : int;  (** fresh copies written *)
      dropped : int;  (** dead/corrupt replicas removed from the descriptor *)
    }
  | Quorum_failed of { at : float; blob : int; version : int; index : int; good : int }
  | Unrepairable of { at : float; blob : int; version : int; index : int }
  | Scan_finished of {
      at : float;
      pass : int;
      checked : int;
      repaired : int;
      unrepairable : int;
    }

val pp_event : Format.formatter -> event -> unit
(** One-line rendering for traces and test transcripts. *)

type stats = {
  passes : int;
  chunks_checked : int;  (** sites visited across all passes *)
  repairs : int;  (** descriptors rewritten with a healthy replica set *)
  repair_bytes : int;  (** bytes re-replicated (repair traffic) *)
  quorum_failures : int;
  unrepairable : int;
  merkle_clean_versions : int;
      (** versions skipped wholesale by the Merkle precheck (their occupied
          leaves still count into [chunks_checked]) *)
}

val create : Client.t -> home:Net.host -> ?config:config -> unit -> t
(** [home] is the host the scrubber runs on; metadata commits for repaired
    descriptors are charged from it. *)

val scan : t -> unit
(** One synchronous scrub pass. Blocks for the simulated cost of repair
    copies and metadata commits (verification itself is provider-local and
    free). Safe to call while the background fiber is stopped or between
    its passes. *)

val start : t -> unit
(** Spawn the background fiber: one {!scan} every [config.interval]
    seconds. No-op if already running. *)

val stop : t -> unit
(** Cancel the background fiber (a pass in progress unwinds). *)

val version_ok : t -> blob:int -> version:int -> bool
(** [false] iff the most recent pass found an unrepairable (or
    quorum-failed, or unpublishable) chunk in this snapshot — the
    supervisor's rollback-target filter. *)

val pins : t -> (int * int) list
(** (blob, version) pairs currently under repair; the GC must not prune
    them mid-pass. Empty between passes. *)

val stats : t -> stats
(** Cumulative pass/repair counters. *)

val events : t -> event list
(** Chronological scrub/repair log — the replay-determinism subject. *)
