(** Background snapshot-chain compactor: crash-safe retention enforcement.

    The compactor is the maintenance plane of the repository. On every
    pass it evaluates the configured {!Retention.policy} against each
    blob's live version chain (through
    {!Version_manager.retention_plan}), {e flattens} across every chain
    segment the plan retires — verifying the surviving boundary versions'
    cold chunks (by default with one Merkle subtree-digest compare per
    boundary, falling back to provider-local and then remote verify-reads)
    so a restart from them never depends on data
    that only the retired intermediates pinned — and then retires the
    intermediates, releases their dedup references and reclaims the
    physical chunks only they referenced.

    Every compaction is a journaled transaction with three armable crash
    points ({!crash_point}): the intent record names the blob and the
    exact versions to retire, so {!restart} can roll an interrupted
    transaction {e back} (nothing was retired yet — the intent aborts and
    state is untouched) or {e forward} (some versions already left the
    live set — the remainder is retired, the dedup index reconciled and
    the repository mark-swept, so the committed outcome is reached).

    Retirement is gated: any pin source registered with
    {!add_pin_source} (GC/rollback pins, the scrubber's in-progress
    marks, the replicator's in-flight window) vetoes the retire of a
    pinned version with a {e typed refusal} — never a silent skip — and
    retires only proceed when the dedup index's refcounts agree with the
    live trees for every digest involved (parity gate).

    Physical reclamation is {e deferred}: chunks that lost their last
    live reference are queued and deleted one pass later, and their
    dedup entries are dropped immediately, which closes the race with a
    writer that resolved a dedup hit on soon-dead replicas but has not
    yet published. *)

open Simcore
open Netsim

type config = {
  interval : float;  (** seconds between background passes *)
  policy : Retention.policy;  (** evaluated per blob on every pass *)
  read_retries : int;  (** flatten-read retry budget per chunk *)
  read_backoff : float;  (** base backoff between flatten-read retries *)
  deep_verify : bool;
      (** force a full remote verify-read of every cold chunk during
          flattens, bypassing the Merkle subtree-digest compare and
          provider-local verification — the pre-Merkle behavior, kept for
          ablation and for drills that need flatten reads to exercise the
          data path *)
}

val default_config : config
(** 10 s interval, [Keep_last 4], 3 retries, 10 ms base backoff, Merkle
    verification (no deep reads). *)

(** Armable crash points of the compaction transaction (fault-injection
    hooks; see {!arm_crash}). *)
type crash_point =
  | Before_flatten  (** intent journaled, nothing read or retired *)
  | Mid_retire  (** after the first version left the live set *)
  | After_retire  (** all retires applied; refs not yet released *)

type refusal = { rblob : int; rversion : int; rsource : string }
(** A retire the policy wanted that a pin vetoed: the blob, the pinned
    version and the name of the pin source that held it. *)

(** Observable compactor history (deterministic under a fixed seed). *)
type event =
  | Pass_started of { at : float; pass : int }
  | Flattened of {
      at : float;
      blob : int;
      boundary : int;  (** youngest surviving version verified *)
      verified : int;  (** cold chunks verified (locally or by read) *)
      shared : int;  (** chunks skipped via tip-sharing or dedup memo *)
      bytes_read : int;  (** bytes remotely verify-read (fallback path) *)
      bytes_local : int;  (** bytes verified provider-locally, no read *)
    }
  | Flatten_failed of { at : float; blob : int; reason : string }
      (** the transaction aborted before any retire (intent rolled back) *)
  | Refused of { at : float; refusal : refusal }
  | Parity_failed of { at : float; blob : int; digest : int64 }
      (** dedup refcount parity gate vetoed the blob's compaction *)
  | Compacted of { at : float; blob : int; retired : int list }
  | Reclaimed of { at : float; chunks : int; bytes : int }
      (** deferred sweep deleted chunks queued on an earlier pass *)
  | Crashed of { at : float; point : crash_point }
  | Recovered of { at : float; rolled_forward : int; rolled_back : int }
  | Pass_finished of { at : float; pass : int; retired : int }

val pp_event : Format.formatter -> event -> unit
(** One-line rendering for traces and test transcripts. *)

type stats = {
  passes : int;  (** compaction passes started *)
  flattens : int;  (** boundary flattens completed *)
  flatten_failures : int;  (** transactions aborted on the read path *)
  chunks_verified : int;  (** cold chunks verified during flattens *)
  chunks_shared : int;  (** flatten verifies skipped (sharing/dedup) *)
  flatten_bytes_read : int;  (** bytes remotely verify-read (fallback) *)
  flatten_bytes_local : int;  (** bytes verified provider-locally *)
  merkle_clean_bounds : int;
      (** boundary versions verified wholesale by the subtree-digest
          compare (no per-chunk work at all) *)
  read_retries : int;  (** transient-error retries on flatten reads *)
  versions_retired : int;  (** versions moved out of the live set *)
  chunks_reclaimed : int;  (** physical chunks deleted by the sweep *)
  bytes_reclaimed : int;  (** physical bytes deleted by the sweep *)
  refusals : int;  (** pin-vetoed retires (typed, counted) *)
  parity_failures : int;  (** blobs vetoed by the parity gate *)
  crashes : int;  (** armed crashes fired *)
  rolled_forward : int;  (** recoveries that completed the intent *)
  rolled_back : int;  (** recoveries that aborted the intent *)
}

type t

val create : Client.t -> home:Net.host -> ?config:config -> unit -> t
(** A compactor for the deployment, reading flatten traffic from [home].
    Registers itself as an {!Audit_compactor} subject. *)

val add_pin_source : t -> name:string -> (unit -> (int * int) list) -> unit
(** Register a pin source: a cost-free closure returning the
    [(blob, version)] pairs currently pinned. Consulted at planning time
    and re-consulted immediately before every retire; [name] is carried
    in the {!refusal} it causes. Sources are consulted in registration
    order and the first pin of a version wins. *)

val scan : t -> unit
(** One synchronous compaction pass over every blob (the background
    fiber calls this every [interval]). Raises {!Types.Service_crashed}
    if the compactor is down or an armed crash fires mid-pass. *)

val start : t -> unit
(** Spawn the background fiber: sleep [interval], recover if crashed,
    scan, repeat. Idempotent while running. *)

val stop : t -> unit
(** Cancel the background fiber (pending journal intents stay for
    {!restart}). *)

(** {1 Crash consistency} *)

val is_alive : t -> bool
(** [false] between a crash firing and {!restart}. *)

val arm_crash : t -> crash_point -> unit
(** Plant a one-shot crash at the given point of the next compaction
    transaction. *)

val crash : t -> unit
(** Fail-stop the compactor immediately (fault-injection hook); the
    background fiber recovers it on its next tick. *)

val restart : t -> unit
(** Journal recovery. For each pending intent: if no named version has
    left the live set the intent rolls {e back} (abort, state
    untouched); otherwise it rolls {e forward} — the remaining non-pinned
    versions are retired, the dedup index is reconciled against the live
    trees and every unreferenced chunk is queued for the deferred sweep,
    then the intent commits. Idempotent; resumes serving. *)

val journal_pending : t -> int
(** Intents neither committed nor rolled back; 0 whenever the compactor
    is quiescent (audited at teardown while alive). *)

(** {1 Introspection} *)

val service : t -> Client.t
(** The deployment this compactor maintains. *)

val stats : t -> stats
(** Lifetime counters. *)

val events : t -> event list
(** Event history in occurrence order. *)

val refusals : t -> refusal list
(** Every pin-vetoed retire, in occurrence order. *)

val boundary_roots : t -> (int * int * int64) list
(** [(blob, version, merkle_root)] recorded for every boundary version a
    flatten verified, in occurrence order — the content fingerprint a
    restart from that boundary must still agree with ({!Client.merkle_root}
    over the same leaf function). *)

val reclaimed_chunks : t -> (int * int) list
(** Physical [(provider, chunk_id)] pairs the sweep deleted, newest
    first. Chunk ids are never reused, so the audit can assert no live
    tree references any of them. *)

val pending_reclaim : t -> int
(** Chunks queued for the deferred sweep but not yet deleted. *)

type Engine.audit_subject += Audit_compactor of t
(** Registered at {!create}; lets [Analysis.Invariants] audit journal
    quiescence and that no live version references a reclaimed chunk. *)
