type 'a node =
  | Empty of { espan : int; mutable edig : int64 option }
  | Leaf of { id : int; value : 'a; mutable mdig : int64 option }
  | Branch of {
      id : int;
      span : int;
      left : 'a node;
      right : 'a node;
      mutable mdig : int64 option;
    }

type 'a t = { chunks : int; root : 'a node }

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let span = function
  | Empty { espan; _ } -> espan
  | Leaf _ -> 1
  | Branch { span; _ } -> span

(* Canonical empty nodes, shared across all trees, so untouched space costs
   no metadata. *)
let empty_table : (int, Obj.t) Hashtbl.t = Hashtbl.create 64

let empty_node espan : 'a node =
  match Hashtbl.find_opt empty_table espan with
  | Some node -> (Obj.obj node : 'a node) (* lint: allow obj-magic — see above *)
  | None ->
      let node = Empty { espan; edig = None } in
      (* lint: allow obj-magic — Empty carries no 'a, sharing is sound *)
      Hashtbl.add empty_table espan (Obj.repr node);
      node

let rec pow2_ge n = if n <= 1 then 1 else 2 * pow2_ge ((n + 1) / 2)

let create ~chunks =
  if chunks < 1 then invalid_arg "Segment_tree.create: chunks must be >= 1";
  { chunks; root = empty_node (pow2_ge chunks) }

let chunks t = t.chunks

let get t i =
  if i < 0 || i >= t.chunks then invalid_arg "Segment_tree.get: index out of range";
  let rec go node i =
    match node with
    | Empty _ -> None
    | Leaf { value; _ } -> Some value
    | Branch { left; right; _ } ->
        let half = span left in
        if i < half then go left i else go right (i - half)
  in
  go t.root i

let get_range t ~start ~len =
  if start < 0 || len < 0 || start + len > t.chunks then
    invalid_arg "Segment_tree.get_range";
  Array.init len (fun k -> get t (start + k))

let set_range t ~start leaves =
  let len = Array.length leaves in
  if start < 0 || start + len > t.chunks then invalid_arg "Segment_tree.set_range";
  if len = 0 then (t, 0)
  else begin
    let created = ref 0 in
    let alloc_leaf value =
      incr created;
      Leaf { id = fresh_id (); value; mdig = None }
    in
    let alloc_branch span left right =
      incr created;
      Branch { id = fresh_id (); span; left; right; mdig = None }
    in
    (* [update node lo] rewrites the subtree covering [lo, lo + span node). *)
    let rec update node lo =
      let sp = span node in
      if start + len <= lo || lo + sp <= start then node
      else if sp = 1 then (
        match leaves.(lo - start) with
        | Some value -> alloc_leaf value
        | None -> empty_node 1)
      else
        let left, right =
          match node with
          | Branch { left; right; _ } -> (left, right)
          | Empty _ -> (empty_node (sp / 2), empty_node (sp / 2))
          | Leaf _ -> assert false
        in
        let left' = update left lo in
        let right' = update right (lo + (sp / 2)) in
        if left' == left && right' == right then node
        else (
          match (left', right') with
          | Empty _, Empty _ -> empty_node sp
          | _ -> alloc_branch sp left' right')
    in
    let root = update t.root 0 in
    ({ t with root }, !created)
  end

let fold_set f t init =
  let rec go node lo acc =
    match node with
    | Empty _ -> acc
    | Leaf { value; _ } -> if lo < t.chunks then f lo value acc else acc
    | Branch { left; right; _ } ->
        let half = span left in
        go right (lo + half) (go left lo acc)
  in
  go t.root 0 init

let node_ids t =
  let ids = Hashtbl.create 64 in
  let rec go node =
    match node with
    | Empty _ -> ()
    | Leaf { id; _ } -> Hashtbl.replace ids id ()
    | Branch { id; left; right; _ } ->
        if not (Hashtbl.mem ids id) then begin
          Hashtbl.replace ids id ();
          go left;
          go right
        end
  in
  go t.root;
  ids

let live_nodes t = Hashtbl.length (node_ids t)

let shared_nodes a b =
  let ids_a = node_ids a in
  let ids_b = node_ids b in
  (* lint: allow hashtbl-order — commutative count *)
  Hashtbl.fold (fun id () acc -> if Hashtbl.mem ids_a id then acc + 1 else acc) ids_b 0

let terminal_spans t =
  let rec go node lo acc =
    match node with
    | Empty { espan; _ } -> (lo, espan, false) :: acc
    | Leaf _ -> (lo, 1, true) :: acc
    | Branch { left; right; _ } -> go right (lo + span left) (go left lo acc)
  in
  List.rev (go t.root 0 [])

(* ---- Incremental Merkle digests -------------------------------------- *)

(* Finalizer in the murmur3/splitmix family: bijective on int64, spreads
   low-entropy inputs (small leaf digests, spans) across the word. *)
let mix h =
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 33)) 0xff51afd7ed558ccdL in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

(* Left/right asymmetric so sibling swaps change the root; the span is folded
   in so trees of different extents never alias. *)
let combine ~span l r =
  mix
    (Int64.add
       (Int64.mul l 0x9e3779b97f4a7c15L)
       (Int64.add (Int64.mul r 0xbf58476d1ce4e5b9L) (Int64.of_int span)))

let leaf_mark = 0x1eafL
let absent_leaf = mix 0x61626e74L

let merkle_hashes = ref 0
let merkle_reuses = ref 0
let merkle_counters () = (!merkle_hashes, !merkle_reuses)

(* Empty-subtree digests depend only on the extent (never on the leaf digest
   function), so memoizing them on the canonical shared nodes is sound. *)
let rec empty_digest espan =
  match empty_node espan with
  | Empty ({ edig = Some d; _ }) ->
      incr merkle_reuses;
      d
  | Empty ({ edig = None; _ } as e) ->
      let d =
        if espan = 1 then absent_leaf
        else
          let sub = empty_digest (espan / 2) in
          combine ~span:espan sub sub
      in
      incr merkle_hashes;
      e.edig <- Some d;
      d
  | _ -> assert false

let leaf_digest ~digest value = mix (Int64.add (digest value) leaf_mark)

let merkle_digest ~digest t =
  let rec go node =
    match node with
    | Empty { espan; _ } -> empty_digest espan
    | Leaf ({ value; mdig; _ } as l) -> (
        match mdig with
        | Some d ->
            incr merkle_reuses;
            d
        | None ->
            incr merkle_hashes;
            let d = leaf_digest ~digest value in
            l.mdig <- Some d;
            d)
    | Branch ({ span; left; right; mdig; _ } as b) -> (
        match mdig with
        | Some d ->
            incr merkle_reuses;
            d
        | None ->
            let dl = go left in
            let dr = go right in
            incr merkle_hashes;
            let d = combine ~span dl dr in
            b.mdig <- Some d;
            d)
  in
  go t.root

let merkle_digest_with ~memo ~digest t =
  let rec go node =
    match node with
    | Empty { espan; _ } -> empty_digest espan
    | Leaf { id; value; _ } -> (
        match Hashtbl.find_opt memo id with
        | Some d ->
            incr merkle_reuses;
            d
        | None ->
            incr merkle_hashes;
            let d = leaf_digest ~digest value in
            Hashtbl.replace memo id d;
            d)
    | Branch { id; span; left; right; _ } -> (
        match Hashtbl.find_opt memo id with
        | Some d ->
            incr merkle_reuses;
            d
        | None ->
            let dl = go left in
            let dr = go right in
            incr merkle_hashes;
            let d = combine ~span dl dr in
            Hashtbl.replace memo id d;
            d)
  in
  go t.root

let diff_leaves a b =
  if a.chunks <> b.chunks then invalid_arg "Segment_tree.diff_leaves: shape mismatch";
  let leaf_opt node = match node with Leaf { value; _ } -> Some value | _ -> None in
  let rec go na nb lo acc =
    if na == nb then acc
    else
      match (na, nb) with
      | (Empty _ | Leaf _), (Empty _ | Leaf _) ->
          assert (span na = 1 && span nb = 1);
          let va = leaf_opt na and vb = leaf_opt nb in
          if va = vb || lo >= a.chunks then acc else (lo, va, vb) :: acc
      | _ ->
          let sp = max (span na) (span nb) in
          let split node =
            match node with
            | Branch { left; right; _ } -> (left, right)
            | Empty _ -> (empty_node (sp / 2), empty_node (sp / 2))
            | Leaf _ -> assert false
          in
          let la, ra = split na and lb, rb = split nb in
          go ra rb (lo + (sp / 2)) (go la lb lo acc)
  in
  List.rev (go a.root b.root 0 [])
