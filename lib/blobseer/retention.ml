type policy =
  | Keep_all
  | Keep_last of int
  | Thin_exponential of { base : int }

type plan = {
  keep : int list;
  retire : int list;
  pinned_kept : (int * string) list;
}

let pp_policy ppf = function
  | Keep_all -> Fmt.pf ppf "keep-all"
  | Keep_last k -> Fmt.pf ppf "keep-last-%d" k
  | Thin_exponential { base } -> Fmt.pf ppf "thin-%d" base

let policy_to_string p = Fmt.str "%a" pp_policy p

(* Which versions the policy itself keeps, ignoring pins. Ages are
   measured down the chain from [latest] (age 0), so the policy is stable
   as the chain grows: a version's bucket only ever moves outward.

   Thinning keeps the youngest *live* version of each power-of-base age
   bucket (not exact power-of-base ages): on a chain already thinned by
   earlier passes the surviving member of a bucket rarely sits at the
   bucket's floor age, and it must stay the bucket's survivor rather than
   be retired for having drifted off the anchor. *)
let policy_keeps policy ~latest ~versions version =
  match policy with
  | Keep_all -> true
  | Keep_last k ->
      (* keep_last_0 clamps to 1: the latest version is never retirable. *)
      let k = max 1 k in
      latest - version < k
  | Thin_exponential { base } ->
      let age = latest - version in
      if age < base then true
      else begin
        let bucket a =
          let rec go b i = if b * base <= a then go (b * base) (i + 1) else i in
          go base 0
        in
        let mine = bucket age in
        (* Youngest live member of my bucket: no live version of the same
           bucket with a strictly smaller age. *)
        not
          (List.exists
             (fun v ->
               let a = latest - v in
               a >= base && a < age && bucket a = mine)
             versions)
      end

let plan policy ~versions ~latest ~pins =
  (match policy with
  | Keep_last k when k < 0 -> invalid_arg "Retention.plan: negative keep_last"
  | Thin_exponential { base } when base < 2 ->
      invalid_arg "Retention.plan: thinning base must be >= 2"
  | _ -> ());
  let versions = List.sort_uniq Int.compare versions in
  let keep = ref [] and retire = ref [] and pinned = ref [] in
  List.iter
    (fun version ->
      if version = latest || policy_keeps policy ~latest ~versions version then
        keep := version :: !keep
      else
        match List.assoc_opt version pins with
        | Some source ->
            keep := version :: !keep;
            pinned := (version, source) :: !pinned
        | None -> retire := version :: !retire)
    versions;
  { keep = List.rev !keep; retire = List.rev !retire; pinned_kept = List.rev !pinned }
