open Simcore
open Netsim

type t = {
  engine : Engine.t;
  net : Net.t;
  host : Net.host;
  server : Rate_server.t;
  mutable provider_list : Data_provider.t list; (* newest first *)
  mutable table : Data_provider.t array;
  mutable cursor : int;
  mutable degraded_allocs : int;
}

let create engine net ~host ?(allocate_cost = Types.default_params.allocate_cost) () =
  {
    engine;
    net;
    host;
    server = Rate_server.create engine ~rate:1e12 ~per_op:allocate_cost ~name:"pmanager" ();
    provider_list = [];
    table = [||];
    cursor = 0;
    degraded_allocs = 0;
  }

let register t provider =
  t.provider_list <- provider :: t.provider_list;
  t.table <- Array.of_list (List.rev t.provider_list)

let provider_count t = Array.length t.table
let providers t = t.table
let provider t i = t.table.(i)

let index_of t provider =
  let rec find i =
    if i >= Array.length t.table then raise Not_found
    else if t.table.(i) == provider then i
    else find (i + 1)
  in
  find 0

let host_of t i = Net.host_id (Data_provider.host t.table.(i))

(* Number of distinct hosts backed by at least one live provider — the real
   fault-isolation bound for replica placement. Counting live *providers*
   here was the original bug: two providers on one host count as one failure
   domain, and a crash of that host must not be able to take every copy. *)
let live_distinct_hosts t =
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun i p -> if Data_provider.is_alive p then Hashtbl.replace seen (host_of t i) ())
    t.table;
  Hashtbl.length seen

let allocate t ~from ~count ~replication ?(allow_degraded = false) () =
  if count < 0 || replication < 1 then invalid_arg "Provider_manager.allocate";
  Net.message t.net ~src:from ~dst:t.host;
  Rate_server.process_many t.server ~ops:count 0;
  let n = Array.length t.table in
  let hosts = live_distinct_hosts t in
  if hosts = 0 then raise (Types.Provider_down "no live provider");
  if hosts < replication && not allow_degraded then
    raise (Types.Provider_down "not enough live failure domains");
  let want = min replication hosts in
  (* One bounded sweep of the table per chunk: round-robin from the cursor,
     skipping dead providers and hosts already holding a copy. Since
     [want <= hosts], a full sweep always finds [want] distinct hosts. *)
  let placement_for_chunk () =
    let rec pick acc used k inspected =
      if k = 0 || inspected >= n then List.rev acc
      else begin
        let i = t.cursor in
        t.cursor <- (t.cursor + 1) mod n;
        let h = host_of t i in
        if Data_provider.is_alive t.table.(i) && not (List.mem h used) then
          pick (i :: acc) (h :: used) (k - 1) (inspected + 1)
        else pick acc used k (inspected + 1)
      end
    in
    let placement = pick [] [] want 0 in
    if placement = [] then raise (Types.Provider_down "no live provider");
    if List.length placement < replication then t.degraded_allocs <- t.degraded_allocs + 1;
    placement
  in
  let placements = List.init count (fun _ -> placement_for_chunk ()) in
  Net.message t.net ~src:t.host ~dst:from;
  placements

let degraded_allocations t = t.degraded_allocs
