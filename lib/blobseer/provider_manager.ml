open Simcore
open Netsim
open Storage

type t = {
  engine : Engine.t;
  net : Net.t;
  host : Net.host;
  server : Rate_server.t;
  dedup : Dedup_index.t;
  mutable provider_list : Data_provider.t list; (* newest first *)
  mutable table : Data_provider.t array;
  mutable cursor : int;
  mutable degraded_allocs : int;
}

let create engine net ~host ?(allocate_cost = Types.default_params.allocate_cost) () =
  {
    engine;
    net;
    host;
    server = Rate_server.create engine ~rate:1e12 ~per_op:allocate_cost ~name:"pmanager" ();
    dedup = Dedup_index.create engine;
    provider_list = [];
    table = [||];
    cursor = 0;
    degraded_allocs = 0;
  }

let register t provider =
  t.provider_list <- provider :: t.provider_list;
  t.table <- Array.of_list (List.rev t.provider_list)

let provider_count t = Array.length t.table
let providers t = t.table
let provider t i = t.table.(i)
let dedup_index t = t.dedup

let index_of t provider =
  let rec find i =
    if i >= Array.length t.table then raise Not_found
    else if t.table.(i) == provider then i
    else find (i + 1)
  in
  find 0

let host_of t i = Net.host_id (Data_provider.host t.table.(i))

(* Number of distinct hosts backed by at least one live provider — the real
   fault-isolation bound for replica placement. Counting live *providers*
   here was the original bug: two providers on one host count as one failure
   domain, and a crash of that host must not be able to take every copy. *)
let live_distinct_hosts t =
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun i p -> if Data_provider.is_alive p then Hashtbl.replace seen (host_of t i) ())
    t.table;
  Hashtbl.length seen

(* One bounded sweep of the table per chunk: round-robin from the cursor,
   skipping dead providers and hosts already holding a copy. Since
   [want <= hosts], a full sweep always finds [want] distinct hosts. *)
let placement_for_chunk t ~replication ~allow_degraded =
  let n = Array.length t.table in
  let hosts = live_distinct_hosts t in
  if hosts = 0 then raise (Types.Provider_down "no live provider");
  if hosts < replication && not allow_degraded then
    raise (Types.Provider_down "not enough live failure domains");
  let want = min replication hosts in
  let rec pick acc used k inspected =
    if k = 0 || inspected >= n then List.rev acc
    else begin
      let i = t.cursor in
      t.cursor <- (t.cursor + 1) mod n;
      let h = host_of t i in
      if Data_provider.is_alive t.table.(i) && not (List.mem h used) then
        pick (i :: acc) (h :: used) (k - 1) (inspected + 1)
      else pick acc used k (inspected + 1)
    end
  in
  let placement = pick [] [] want 0 in
  if placement = [] then raise (Types.Provider_down "no live provider");
  if List.length placement < replication then t.degraded_allocs <- t.degraded_allocs + 1;
  placement

let allocate t ~from ~count ~replication ?(allow_degraded = false) () =
  if count < 0 || replication < 1 then invalid_arg "Provider_manager.allocate";
  Net.message t.net ~src:from ~dst:t.host;
  Rate_server.process_many t.server ~ops:count 0;
  let placements =
    List.init count (fun _ -> placement_for_chunk t ~replication ~allow_degraded)
  in
  Net.message t.net ~src:t.host ~dst:from;
  placements

(* A replica the index may hand out as a dedup hit must be exactly what
   the original writer stored: live provider, chunk present, and the
   stored bytes verify against the digest being resolved — otherwise a
   silently corrupted or lost copy would propagate into fresh versions.
   Verification is provider-local (no simulated network) and O(1) per
   long-lived chunk thanks to payload digest memoization. *)
let replica_valid t ~digest (r : Types.replica) =
  r.provider >= 0
  && r.provider < Array.length t.table
  &&
  let p = t.table.(r.provider) in
  Data_provider.is_alive p
  && Content_store.mem (Data_provider.store p) r.chunk
  && Content_store.recorded_digest (Data_provider.store p) r.chunk = digest
  && Data_provider.verify_chunk p r.chunk

type chunk_alloc =
  | Dedup of Types.replica list
  | Fresh of int list

let resolve_or_allocate t ~from ~digest ~size ~replication ?(allow_degraded = false) () =
  if replication < 1 then invalid_arg "Provider_manager.resolve_or_allocate";
  Net.message t.net ~src:from ~dst:t.host;
  Rate_server.process t.server 0;
  let validate replicas =
    replicas <> [] && List.for_all (replica_valid t ~digest) replicas
  in
  let outcome =
    match Dedup_index.resolve t.dedup ~digest ~size ~validate with
    | Dedup_index.Hit replicas -> Dedup replicas
    | Dedup_index.Claimed -> (
        (* A failed placement must release the in-flight claim, or every
           concurrent writer of the same content deadlocks on it. *)
        try Fresh (placement_for_chunk t ~replication ~allow_degraded)
        with e ->
          Dedup_index.abandon t.dedup ~digest;
          raise e)
  in
  Net.message t.net ~src:t.host ~dst:from;
  outcome

type batch_alloc =
  | Batch_dedup of Types.replica list
  | Batch_fresh of int list
  | Batch_busy

let resolve_many t ~from ~chunks ~replication ?(allow_degraded = false) () =
  if replication < 1 then invalid_arg "Provider_manager.resolve_many";
  match chunks with
  | [] -> []
  | _ ->
      Net.message t.net ~src:from ~dst:t.host;
      Rate_server.process_many t.server ~ops:(List.length chunks) 0;
      let claimed = ref [] in
      let outcomes =
        try
          List.map
            (fun (digest, size) ->
              let validate replicas =
                replicas <> [] && List.for_all (replica_valid t ~digest) replicas
              in
              match Dedup_index.resolve_nowait t.dedup ~digest ~size ~validate with
              | Dedup_index.Now_hit replicas -> Batch_dedup replicas
              | Dedup_index.Now_busy -> Batch_busy
              | Dedup_index.Now_claimed ->
                  claimed := digest :: !claimed;
                  Batch_fresh (placement_for_chunk t ~replication ~allow_degraded))
            chunks
        with e ->
          (* A failed placement mid-batch must release every claim the batch
             already took, or concurrent writers of those digests deadlock. *)
          List.iter (fun digest -> Dedup_index.abandon t.dedup ~digest) !claimed;
          raise e
      in
      Net.message t.net ~src:t.host ~dst:from;
      outcomes

(* Registration and abandonment piggyback on the write path's data-plane
   acknowledgements, so they carry no separate simulated cost. *)
let commit_dedup t ~digest ~size ~replicas = Dedup_index.publish t.dedup ~digest ~size ~replicas
let abandon_dedup t ~digest = Dedup_index.abandon t.dedup ~digest

let degraded_allocations t = t.degraded_allocs
