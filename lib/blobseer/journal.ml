type status = Pending | Committed | Aborted

type 'a entry = { id : int; intent : 'a; mutable status : status }

type 'a t = {
  jname : string;
  mutable entries_rev : 'a entry list; (* newest first *)
  mutable next_id : int;
  mutable committed : int;
  mutable aborted : int;
}

let create ~name () = { jname = name; entries_rev = []; next_id = 0; committed = 0; aborted = 0 }

let name t = t.jname

let append t intent =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.entries_rev <- { id; intent; status = Pending } :: t.entries_rev;
  id

let find t id =
  match List.find_opt (fun e -> e.id = id) t.entries_rev with
  | Some e -> e
  | None -> invalid_arg (t.jname ^ ": unknown journal entry")

let commit t id =
  let e = find t id in
  if e.status <> Pending then invalid_arg (t.jname ^ ": entry already resolved");
  e.status <- Committed;
  t.committed <- t.committed + 1

let abort t id =
  let e = find t id in
  if e.status <> Pending then invalid_arg (t.jname ^ ": entry already resolved");
  e.status <- Aborted;
  t.aborted <- t.aborted + 1

let pending t =
  List.filter_map
    (fun e -> if e.status = Pending then Some (e.id, e.intent) else None)
    (List.rev t.entries_rev)

let pending_count t = List.length (pending t)
let appended t = t.next_id
let committed t = t.committed
let aborted t = t.aborted

let truncate t =
  t.entries_rev <- List.filter (fun e -> e.status = Pending) t.entries_rev
