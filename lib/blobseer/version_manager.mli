(** Version manager: the serialization point of BlobSeer.

    Assigns version numbers to published snapshots and keeps, per BLOB, the
    mapping version → segment-tree root. Publication is serialized (one at
    a time) but cheap, which is how BlobSeer sustains many concurrent
    writers: the heavy data and metadata traffic is decentralized and only
    this small step funnels through one node.

    Publication reconciles concurrent writers: a publish based on a stale
    version is merged leaf-by-leaf onto the current latest tree, so
    non-overlapping concurrent writes both survive. *)

open Simcore
open Netsim

type t
type tree = Types.chunk_desc Segment_tree.t

type blob_info = { blob_id : int; capacity : int; stripe_size : int }

type crash_point =
  | Before_apply  (** intent journaled, no state touched yet *)
  | Mid_apply  (** version root inserted, [latest] not yet bumped *)

val create : Engine.t -> Net.t -> host:Net.host -> ?publish_cost:float -> unit -> t
(** A version manager on [host] with no blobs; [publish_cost] (default 0)
    is charged per {!publish} on top of the round-trip. *)

val create_blob : t -> from:Net.host -> capacity:int -> stripe_size:int -> blob_info
(** Registers a new BLOB whose version 0 is entirely unwritten. *)

val blob_info : t -> int -> blob_info
(** Lookup by blob id. Raises [Not_found] for unknown ids. Cost-free. *)

val blob_ids : t -> int list
(** Every registered blob id, ascending. Cost-free. *)

val latest : t -> from:Net.host -> int -> int
(** Latest published version number of a blob (0 = empty initial version
    unless the blob was cloned). *)

val get_tree : t -> from:Net.host -> blob:int -> version:int -> tree
(** Raises [Not_found] for unpublished versions. *)

val publish : t -> from:Net.host -> blob:int -> base:int -> tree -> int
(** [publish t ~from ~blob ~base tree] publishes a snapshot derived from
    version [base] and returns its version number. If other versions were
    published since [base], the update is merged onto the latest tree.

    When a dedup index is attached ({!set_dedup_index}), every descriptor
    the writer changed relative to [base] counts one logical reference on
    its digest — strictly after the journal commit, so crashed-and-rolled-
    back publications never count. *)

val set_dedup_index : t -> Dedup_index.t -> unit
(** Attach the deployment's dedup index for publication-time reference
    counting (wired by [Client.deploy]). *)

(** Durable mutations in commit order, as announced to an attached
    journal-shipping replica ({!set_on_commit}). Records are emitted
    strictly after the journal commit of the operation, so a crashed and
    rolled-back mutation is never announced. *)
type commit_record =
  | Published of { blob : int; version : int }
      (** a snapshot publication landed; [version] is the minted number *)
  | Cloned of { src_blob : int; version : int; new_blob : int }
      (** a clone registered [new_blob] from [src_blob]'s [version] *)
  | Blob_created of { blob : int; capacity : int; stripe_size : int }
      (** a fresh empty blob was registered via [create_blob] *)
  | Repaired of { blob : int; version : int; index : int }
      (** the scrubber swapped leaf [index]'s descriptor in place
          (digest-preserving — a logical no-op for replication) *)

val set_on_commit : t -> (commit_record -> unit) -> unit
(** Install the commit hook. The callback runs synchronously inside the
    committing operation and therefore must not block — enqueue and
    return (the replication tail ships asynchronously). At most one hook;
    a second call replaces the first. *)

val fail : t -> unit
(** Fail-stop the service (site-disaster injection): every subsequent
    operation raises {!Types.Service_crashed} until {!restart}. Unlike an
    armed crash, pending journal intents are left as they are. *)

val clone : t -> from:Net.host -> blob:int -> version:int -> blob_info
(** New BLOB whose version 0 is the given snapshot of the source blob —
    shares all chunks, diverges independently (design principle 3.1.3). *)

val drop_version : t -> blob:int -> version:int -> unit
(** Forget a version root (used by the garbage collector). Dropping the
    latest version or version 0 of a blob is allowed; reads of dropped
    versions raise [Not_found]. Dropped versions are recorded as retired
    ({!retired_versions}) so audits can account for the hole. *)

val retire_version : t -> blob:int -> version:int -> tree
(** Compactor retire path: atomically move one version from the live set
    to the retired record and return its tree (the caller releases dedup
    references and sweeps chunks only it referenced). Cost-free — the
    compactor journals the surrounding transaction itself. Raises
    [Invalid_argument] when [version] is the blob's latest (the tip is
    never retirable) or is not live, and {!Types.Service_crashed} when
    the service is down. *)

val retired_versions : t -> blob:int -> int list
(** Versions retired ({!retire_version}) or dropped ({!drop_version})
    over the blob's lifetime, ascending. Cost-free audit view. *)

val unsafe_forget_version : t -> blob:int -> version:int -> unit
(** Test hook: remove a version root {e without} recording it as retired
    — seeds the lost-version defect the invariant audit must catch. *)

val versions : t -> blob:int -> int list
(** Published (non-dropped) version numbers, ascending. *)

val retention_plan :
  t -> blob:int -> policy:Retention.policy -> pins:((int * int) * string) list -> Retention.plan
(** Evaluate a retention policy against the blob's live versions.
    [pins] maps pinned [(blob, version)] pairs to the pin source's name;
    pairs for other blobs are ignored. Cost-free. *)

val iter_live_trees : t -> (blob:int -> version:int -> tree -> unit) -> unit
(** All live (blob, version) roots — the GC roots — in ascending
    (blob, version) order, so iteration order is deterministic. *)

val chunk_count : capacity:int -> stripe_size:int -> int
(** Number of segment-tree leaves a blob of this shape addresses. *)

(** {1 Crash consistency}

    Every publication, clone and repair journals an intent before mutating
    state and commits it after. {!arm_crash} plants a one-shot crash at the
    given point of the next mutation: the service raises
    {!Types.Service_crashed} and stops serving until {!restart} rolls the
    pending intent back — after which the old state is intact and the
    operation can be retried. *)

val is_alive : t -> bool
(** [false] between a planted crash firing and {!restart}. *)

val arm_crash : t -> crash_point -> unit
(** Plant a one-shot crash at the given point of the next mutation
    (fault-injection hook). *)

val restart : t -> unit
(** Journal recovery: roll back every pending intent (removing any
    half-inserted version root or half-registered clone), then resume
    serving. Idempotent. *)

val replace_desc : t -> blob:int -> version:int -> index:int -> Types.chunk_desc -> int
(** Scrubber repair path: journaled in-place swap of one leaf's chunk
    descriptor in one published version — no new version number is minted.
    Returns the number of fresh tree nodes created (for the caller's
    metadata commit). Raises {!Types.Service_crashed} if the service is
    down. *)

val journal_pending : t -> int
(** Intents journaled but neither committed nor rolled back; 0 whenever the
    service is quiescent (audited at teardown). *)

val recovered_intents : t -> int
(** Total intents rolled back by {!restart} over the service's lifetime. *)

(** {1 Audit views}

    Read-only accessors for [Analysis.Invariants]; no simulated network or
    service cost is charged. Version managers register themselves with
    their engine as {!Audit_version_manager} subjects. *)

type Engine.audit_subject += Audit_version_manager of t

val peek_latest : t -> int -> int
(** Like {!latest} but free of simulated cost. *)

val peek_tree : t -> blob:int -> version:int -> tree
(** Like {!get_tree} but free of simulated cost. Raises [Not_found] for
    unpublished versions. *)
