(** Decentralized metadata provider pool.

    BlobSeer distributes segment-tree nodes across many metadata providers
    (the evaluation deploys 20), so metadata traffic scales out instead of
    funnelling through one server. Tree nodes themselves live in process
    memory in this reproduction; the service models the {e cost} of shipping
    and serving node batches, which is what differentiates BlobSeer from a
    centralized-metadata file system under checkpoint storms. *)

open Simcore
open Netsim

type t

val create :
  Engine.t ->
  Net.t ->
  hosts:Net.host list ->
  ?node_bytes:int ->
  ?node_cost:float ->
  unit ->
  t
(** One metadata provider per host. Requires a non-empty host list. *)

val provider_count : t -> int
(** Size of the metadata provider pool. *)

val fail : t -> int -> unit
(** Fail-stop metadata provider [i]: batches route around it (tree nodes
    are replicated across the pool in the real system). *)

val recover : t -> int -> unit
(** Bring provider [i] back into rotation. *)

val alive_count : t -> int
(** Live providers. {!commit_nodes}/{!fetch_nodes} raise
    {!Types.Provider_down} when this reaches zero. *)

val commit_nodes : t -> from:Net.host -> int -> unit
(** [commit_nodes t ~from n] ships [n] freshly created tree nodes from the
    client at [from], spread evenly over the providers and processed in
    parallel. Blocks until all batches are acknowledged. The commit is
    journaled: an intent is logged before any batch ships and committed
    after the last acknowledgement, so a crash mid-commit is recoverable
    via {!recover_journal}. *)

val arm_crash : t -> unit
(** One-shot: the next {!commit_nodes} crashes with
    {!Types.Service_crashed} after journaling its intent and before
    applying anything. *)

val recover_journal : t -> unit
(** Roll back every pending commit intent (nothing was applied for them).
    Idempotent. *)

val journal_pending : t -> int
(** In-flight commit intents; 0 when quiescent (audited at teardown). *)

val recovered_intents : t -> int
(** Total intents rolled back by {!recover_journal}. *)

val fetch_nodes : t -> to_:Net.host -> int -> unit
(** Symmetric read path: retrieve [n] nodes to the client. *)

val nodes_stored : t -> int
(** Total nodes committed so far (capacity accounting). *)
