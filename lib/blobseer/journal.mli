(** Write-ahead intent journal for crash-consistent service mutations.

    A service appends an {e intent} record describing a mutation before
    touching its state, applies the mutation, then marks the record
    committed. The journal models a durable log on the service host's local
    disk: it survives a crash of the service process, so a restart can
    enumerate {!pending} intents — mutations that may have been applied
    partially or not at all — and roll each back (or forward) before
    serving again. Entries are in-memory and cost-free; durability is part
    of the simulation's failure model, not an I/O cost. *)

type 'a t

val create : name:string -> unit -> 'a t
(** An empty journal; [name] labels traces and audit reports. *)

val append : 'a t -> 'a -> int
(** Log an intent; returns its journal id. *)

val commit : 'a t -> int -> unit
(** Mark an intent fully applied. Raises [Invalid_argument] if the entry is
    unknown or already resolved. *)

val abort : 'a t -> int -> unit
(** Mark an intent rolled back (recovery resolution). Raises like
    {!commit}. *)

val pending : 'a t -> (int * 'a) list
(** Intents neither committed nor aborted, in append order — what a
    restart must reconcile. *)

val pending_count : 'a t -> int
(** [List.length (pending t)]; the journal-quiescence audit asserts this
    is 0 at teardown. *)

val appended : 'a t -> int
(** Total intents ever appended. *)

val committed : 'a t -> int
(** Total intents marked committed. *)

val aborted : 'a t -> int
(** Total intents rolled back. *)

val name : 'a t -> string
(** The name passed at creation. *)

val truncate : 'a t -> unit
(** Drop resolved entries (checkpoint the log). Pending entries survive. *)
