open Simcore
open Netsim
open Storage

type config = {
  interval : float;
  quorum : int option;
  merkle_precheck : bool;
}

let default_config = { interval = 5.0; quorum = None; merkle_precheck = true }

type event =
  | Scan_started of { at : float; pass : int }
  | Repaired of {
      at : float;
      blob : int;
      version : int;
      index : int;
      bytes : int;
      added : int;
      dropped : int;
    }
  | Quorum_failed of { at : float; blob : int; version : int; index : int; good : int }
  | Unrepairable of { at : float; blob : int; version : int; index : int }
  | Scan_finished of {
      at : float;
      pass : int;
      checked : int;
      repaired : int;
      unrepairable : int;
    }

let pp_event ppf = function
  | Scan_started { at; pass } -> Fmt.pf ppf "t=%.3f scan %d started" at pass
  | Repaired { at; blob; version; index; bytes; added; dropped } ->
      Fmt.pf ppf "t=%.3f repaired blob %d v%d chunk %d (%d B, +%d -%d replicas)" at blob
        version index bytes added dropped
  | Quorum_failed { at; blob; version; index; good } ->
      Fmt.pf ppf "t=%.3f quorum failed blob %d v%d chunk %d (%d good)" at blob version index
        good
  | Unrepairable { at; blob; version; index } ->
      Fmt.pf ppf "t=%.3f unrepairable blob %d v%d chunk %d" at blob version index
  | Scan_finished { at; pass; checked; repaired; unrepairable } ->
      Fmt.pf ppf "t=%.3f scan %d finished (%d checked, %d repaired, %d unrepairable)" at pass
        checked repaired unrepairable

type stats = {
  passes : int;
  chunks_checked : int;
  repairs : int;
  repair_bytes : int;
  quorum_failures : int;
  unrepairable : int;
  merkle_clean_versions : int;
}

let m_repairs = Obs.Metrics.counter ~component:"scrub" ~name:"repairs"
let m_repair_bytes = Obs.Metrics.counter ~component:"scrub" ~name:"repair_bytes"
let m_merkle_clean = Obs.Metrics.counter ~component:"scrub" ~name:"merkle_clean_versions"

type t = {
  service : Client.t;
  home : Net.host;
  config : config;
  mutable passes : int;
  mutable chunks_checked : int;
  mutable repairs : int;
  mutable repair_bytes : int;
  mutable quorum_failures : int;
  mutable unrepairable : int;
  mutable merkle_clean_versions : int;
  mutable events_rev : event list;
  mutable bad_sites : (int * int) list; (* (blob, version) with unrepairable chunks *)
  mutable pins : (int * int) list; (* versions under repair: GC must not prune *)
  mutable fiber : Engine.fiber option;
}

let create service ~home ?(config = default_config) () =
  {
    service;
    home;
    config;
    passes = 0;
    chunks_checked = 0;
    repairs = 0;
    repair_bytes = 0;
    quorum_failures = 0;
    unrepairable = 0;
    merkle_clean_versions = 0;
    events_rev = [];
    bad_sites = [];
    pins = [];
    fiber = None;
  }

(* Typed (blob, version) ordering for pin and bad-site lists. *)
let compare_site (b1, v1) (b2, v2) =
  match Int.compare b1 b2 with 0 -> Int.compare v1 v2 | c -> c

let engine t = Client.engine t.service
let now t = Engine.now (engine t)
let record t e = t.events_rev <- e :: t.events_rev

let quorum t =
  let replication = (Client.params t.service).Types.replication in
  match t.config.quorum with Some q -> max 1 q | None -> (replication / 2) + 1

(* A replica is good when its provider is live, still holds the chunk, the
   stored bytes match the digest recorded at write time, and that record
   matches the descriptor's digest — i.e. the copy is exactly what the
   writer published. Verification is provider-local (no network). *)
let replica_good service (desc : Types.chunk_desc) (r : Types.replica) =
  let p = Client.data_provider service r.provider in
  Data_provider.is_alive p
  && Content_store.mem (Data_provider.store p) r.chunk
  && Content_store.recorded_digest (Data_provider.store p) r.chunk = desc.digest
  && Data_provider.verify_chunk p r.chunk

(* Live replica that is present but fails verification: a silently
   corrupted copy we can delete to reclaim space. *)
let replica_corrupt service (desc : Types.chunk_desc) (r : Types.replica) =
  let p = Client.data_provider service r.provider in
  Data_provider.is_alive p
  && Content_store.mem (Data_provider.store p) r.chunk
  && not (replica_good service desc r)

let transient = function
  | Types.Provider_down _ | Faults.Injected_error _ | Not_found | Disk.Full _ -> true
  | _ -> false

(* Copy the chunk onto [need] fresh providers, sourcing each copy from a
   good replica. Targets are live providers on hosts holding no copy yet,
   tried in ascending index order (deterministic). The transfer is charged
   source-provider → target-host, then written through the target's local
   disk — one network hop per new copy, which is the repair traffic the
   durability sweep reports. *)
let re_replicate t ~good ~need =
  let service = t.service in
  let provider_host i = Net.host_id (Data_provider.host (Client.data_provider service i)) in
  let exclude = ref (List.map (fun (r : Types.replica) -> provider_host r.provider) good) in
  let sources = ref good in
  let fresh = ref [] in
  let n = Array.length (Client.data_providers service) in
  let rec place need target_index =
    if need = 0 || target_index >= n then ()
    else begin
      let target = Client.data_provider service target_index in
      let h = provider_host target_index in
      if (not (Data_provider.is_alive target)) || List.mem h !exclude then
        place need (target_index + 1)
      else begin
        let copied =
          match !sources with
          | [] -> None
          | (src : Types.replica) :: more_sources -> (
              let src_provider = Client.data_provider service src.provider in
              match
                let payload =
                  Data_provider.read_chunk src_provider ~to_:(Data_provider.host target)
                    src.chunk
                in
                Data_provider.write_chunk target ~from:(Data_provider.host target) payload
              with
              | chunk -> Some ({ provider = target_index; chunk } : Types.replica)
              | exception e when transient e ->
                  (* A source or target that errors mid-copy is rotated
                     out / skipped; the next pass retries. *)
                  sources := more_sources @ [ src ];
                  None)
        in
        match copied with
        | Some replica ->
            fresh := replica :: !fresh;
            exclude := h :: !exclude;
            place (need - 1) (target_index + 1)
        | None -> place need (target_index + 1)
      end
    end
  in
  place need 0;
  List.rev !fresh

(* One scrub pass: walk every live (blob, version) tree, verify every
   chunk's replica set, and repair under the quorum policy. Sites are
   collected first (repairs mutate the trees we walk); repair work is
   memoized by the chunk's physical identity — (digest, replica set) — so
   a chunk referenced by many descriptors (structurally shared leaves,
   dedup'd descriptors with distinct serials) is re-replicated once, and
   every referencing site is rewritten to the repaired replica set while
   keeping its own descriptor serial. The dedup index is repointed at the
   repaired replicas so future hits reference healthy copies. *)
let scan t =
  let service = t.service in
  let vm = Client.version_manager service in
  t.passes <- t.passes + 1;
  let pass = t.passes in
  record t (Scan_started { at = now t; pass });
  let replication = (Client.params service).Types.replication in
  (* Merkle precheck: a version whose storage-side Merkle root (leaf =
     descriptor content digest when the replica set is fully healthy, a
     poisoned marker otherwise) equals the descriptor-side root has every
     chunk verified healthy — skip its site enumeration entirely. The
     per-pass memo dedupes verification across shadow-shared subtrees, so
     a subtree referenced by many versions is walked once per pass, not
     once per referencing version. *)
  let clean_leaves = ref 0 in
  let version_clean =
    if not t.config.merkle_precheck then fun _ -> false
    else begin
      let storage_memo = Hashtbl.create 512 in
      let storage_leaf (desc : Types.chunk_desc) =
        let good = List.filter (replica_good service desc) desc.replicas in
        if List.length good = List.length desc.replicas && List.length good = replication
        then Types.desc_content_digest desc
        else Int64.lognot (Types.desc_content_digest desc)
      in
      fun tree ->
        Client.with_merkle_metrics (fun () ->
            Segment_tree.merkle_digest ~digest:Types.desc_content_digest tree
            = Segment_tree.merkle_digest_with ~memo:storage_memo ~digest:storage_leaf tree)
    end
  in
  let sites = ref [] in
  Version_manager.iter_live_trees vm (fun ~blob ~version tree ->
      if version_clean tree then begin
        clean_leaves := Segment_tree.fold_set (fun _ _ acc -> acc + 1) tree !clean_leaves;
        t.merkle_clean_versions <- t.merkle_clean_versions + 1;
        Obs.Metrics.incr m_merkle_clean
      end
      else
        Segment_tree.fold_set
          (fun index desc () -> sites := (blob, version, index, desc) :: !sites)
          tree ());
  let sites = List.rev !sites in
  t.chunks_checked <- t.chunks_checked + !clean_leaves;
  (* Pin every version with a damaged chunk for the duration of the pass. *)
  let damaged (desc : Types.chunk_desc) =
    let good = List.filter (replica_good service desc) desc.replicas in
    List.length good < List.length desc.replicas || List.length good < replication
  in
  t.pins <-
    List.sort_uniq compare_site
      (List.filter_map
         (fun (blob, version, _, desc) -> if damaged desc then Some (blob, version) else None)
         sites);
  (* Repair work memo, keyed by the chunk's physical identity: every
     descriptor carrying the same digest over the same replica set shares
     one data-plane repair (and one repair_bytes charge), whatever its
     serial. *)
  let repaired_memo : (int64 * Types.replica list, Types.replica list option) Hashtbl.t =
    Hashtbl.create 64
  in
  let dedup = Provider_manager.dedup_index (Client.provider_manager service) in
  let repaired_count = ref 0 and unrepairable_count = ref 0 in
  let bad_sites = ref [] in
  let repair_desc (desc : Types.chunk_desc) =
    (* Returns [`Repaired] with the healthy replica set when the site must
       be rewritten; otherwise the descriptor stays (healthy, quorum
       failure, or unrepairable). *)
    let good = List.filter (replica_good service desc) desc.replicas in
    let corrupt = List.filter (replica_corrupt service desc) desc.replicas in
    (* Reclaim detectably corrupt copies regardless of repair outcome. *)
    List.iter
      (fun (r : Types.replica) ->
        Data_provider.delete_chunk (Client.data_provider service r.provider) r.chunk)
      corrupt;
    if good = [] then `Unrepairable
    else if List.length good = replication && corrupt = [] then `Healthy
    else begin
      let need = replication - List.length good in
      let fresh = if need > 0 then re_replicate t ~good ~need else [] in
      let total = List.length good + List.length fresh in
      if total < quorum t then `Quorum_failed (List.length good)
      else begin
        t.repairs <- t.repairs + 1;
        t.repair_bytes <- t.repair_bytes + (desc.size * List.length fresh);
        Obs.Metrics.incr m_repairs;
        Obs.Metrics.add m_repair_bytes (float_of_int (desc.size * List.length fresh));
        `Repaired
          (good @ fresh, List.length fresh, List.length desc.replicas - List.length good)
      end
    end
  in
  List.iter
    (fun (blob, version, index, (desc : Types.chunk_desc)) ->
      t.chunks_checked <- t.chunks_checked + 1;
      let key = (desc.digest, desc.replicas) in
      let outcome =
        match Hashtbl.find_opt repaired_memo key with
        | Some (Some replicas) -> `Rewrite { desc with Types.replicas }
        | Some None -> `Skip
        | None -> (
            match repair_desc desc with
            | `Healthy ->
                Hashtbl.add repaired_memo key None;
                `Skip
            | `Unrepairable ->
                Hashtbl.add repaired_memo key None;
                incr unrepairable_count;
                t.unrepairable <- t.unrepairable + 1;
                record t (Unrepairable { at = now t; blob; version; index });
                `Lost
            | `Quorum_failed good ->
                Hashtbl.add repaired_memo key None;
                t.quorum_failures <- t.quorum_failures + 1;
                record t (Quorum_failed { at = now t; blob; version; index; good });
                `Lost
            | `Repaired (replicas, added, dropped) ->
                Hashtbl.add repaired_memo key (Some replicas);
                (* Keep the content-addressed index pointing at healthy
                   copies: future dedup hits must reference the repaired
                   replica set, not the damaged one. *)
                Dedup_index.update_replicas dedup ~digest:desc.digest ~replicas;
                incr repaired_count;
                record t
                  (Repaired
                     { at = now t; blob; version; index; bytes = desc.size; added; dropped });
                `Rewrite { desc with Types.replicas })
      in
      match outcome with
      | `Skip -> ()
      | `Lost -> bad_sites := (blob, version) :: !bad_sites
      | `Rewrite new_desc -> (
          match Version_manager.replace_desc vm ~blob ~version ~index new_desc with
          | created -> Metadata_service.commit_nodes (Client.metadata_service service)
                         ~from:t.home created
          | exception Types.Service_crashed _ ->
              (* Version manager down mid-pass: leave the site for the next
                 pass (the memoized copies are already durable). *)
              bad_sites := (blob, version) :: !bad_sites))
    sites;
  t.bad_sites <- List.sort_uniq compare_site !bad_sites;
  t.pins <- [];
  record t
    (Scan_finished
       {
         at = now t;
         pass;
         checked = List.length sites + !clean_leaves;
         repaired = !repaired_count;
         unrepairable = !unrepairable_count;
       });
  Trace.emit (engine t) ~component:"scrubber"
    "pass %d: %d sites (%d merkle-clean), %d repaired, %d unrepairable" pass
    (List.length sites + !clean_leaves)
    !clean_leaves !repaired_count !unrepairable_count

let version_ok t ~blob ~version = not (List.mem (blob, version) t.bad_sites)
let pins t = t.pins

let stats t =
  {
    passes = t.passes;
    chunks_checked = t.chunks_checked;
    repairs = t.repairs;
    repair_bytes = t.repair_bytes;
    quorum_failures = t.quorum_failures;
    unrepairable = t.unrepairable;
    merkle_clean_versions = t.merkle_clean_versions;
  }

let events t = List.rev t.events_rev

let start t =
  match t.fiber with
  | Some _ -> ()
  | None ->
      let body () =
        try
          while true do
            Engine.sleep (engine t) t.config.interval;
            scan t
          done
        with Engine.Cancelled -> ()
      in
      t.fiber <- Some (Engine.Fiber.spawn (engine t) ~name:"scrubber" body)

let stop t =
  match t.fiber with
  | None -> ()
  | Some fiber ->
      t.fiber <- None;
      Engine.Fiber.cancel fiber
