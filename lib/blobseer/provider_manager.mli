(** Provider manager: allocates data providers for new chunk writes.

    One instance per BlobSeer deployment; clients contact it once per write
    to obtain a placement for every chunk of the write. Placement is
    round-robin over live providers (which evens out the write load across
    local disks — design principle 3.1.1), with replicas of the same chunk
    on distinct providers. *)

open Simcore
open Netsim

type t

val create : Engine.t -> Net.t -> host:Net.host -> ?allocate_cost:float -> unit -> t
(** A manager on [host] with no providers yet; [allocate_cost] (default 0)
    is charged per allocation round-trip. *)

val register : t -> Data_provider.t -> unit
(** Add a provider to the placement pool (deployment time). *)

val provider_count : t -> int
(** Number of registered providers. *)

val providers : t -> Data_provider.t array
(** All registered providers, in registration order. *)

val provider : t -> int -> Data_provider.t
(** Lookup by index (as stored in {!Types.replica}). *)

val index_of : t -> Data_provider.t -> int
(** Inverse of {!provider}. Raises [Not_found] for unregistered
    providers. *)

val allocate :
  t ->
  from:Net.host ->
  count:int ->
  replication:int ->
  ?allow_degraded:bool ->
  unit ->
  int list list
(** [allocate t ~from ~count ~replication ()] returns, for each of [count]
    chunks, the indices of [replication] live providers on pairwise
    {e distinct hosts} (so no single machine crash can take every copy).
    Blocks for the control round-trip and per-chunk allocation cost.

    When fewer than [replication] distinct hosts are live: raises
    {!Types.Provider_down} by default; with [~allow_degraded:true] instead
    places one copy per live host (counted in {!degraded_allocations}),
    leaving the shortfall to the scrubber. Raises {!Types.Provider_down}
    when no provider is live at all. *)

val live_distinct_hosts : t -> int
(** Distinct hosts with at least one live provider. *)

val degraded_allocations : t -> int
(** Chunks placed with fewer than the requested number of replicas. *)

(** {1 Content-addressed deduplication}

    The provider manager owns the deployment's {!Dedup_index}. Writers
    resolve each chunk's content digest in the same control round trip
    that would otherwise allocate a placement: a {!Dedup} outcome hands
    back validated existing replicas (the write moves no data), a
    {!Fresh} outcome is a normal placement plus an in-flight claim that
    the writer must settle with {!commit_dedup} or {!abandon_dedup}. *)

(** Per-chunk outcome of {!resolve_or_allocate}. *)
type chunk_alloc =
  | Dedup of Types.replica list
      (** Identical content already stored on these replicas (all live,
          present and content-verified against the digest). *)
  | Fresh of int list
      (** No valid copy: write to these provider indices, then settle the
          claim. *)

val resolve_or_allocate :
  t ->
  from:Net.host ->
  digest:int64 ->
  size:int ->
  replication:int ->
  ?allow_degraded:bool ->
  unit ->
  chunk_alloc
(** One control round trip covering dedup lookup and (on miss) placement.
    Blocks while another writer holds an in-flight claim on the same
    digest, then resolves against that writer's outcome. Placement and
    degraded-write semantics are those of {!allocate}. *)

(** Per-chunk outcome of {!resolve_many}. *)
type batch_alloc =
  | Batch_dedup of Types.replica list  (** as {!chunk_alloc.Dedup} *)
  | Batch_fresh of int list  (** as {!chunk_alloc.Fresh} *)
  | Batch_busy
      (** another writer holds an in-flight claim on this digest; retry
          it through {!resolve_or_allocate} *)

val resolve_many :
  t ->
  from:Net.host ->
  chunks:(int64 * int) list ->
  replication:int ->
  ?allow_degraded:bool ->
  unit ->
  batch_alloc list
(** Batched {!resolve_or_allocate}: one control round trip resolving every
    [(digest, size)] in [chunks] (per-chunk service cost still applies at
    the manager). Never blocks on other writers' in-flight claims —
    contended digests come back [Batch_busy] and must be retried through
    the blocking single-chunk path; this is what makes the batch
    deadlock-free while holding multiple claims. Outcomes are returned in
    input order; [Batch_fresh] claims must be settled with {!commit_dedup}
    or {!abandon_dedup} exactly like {!chunk_alloc.Fresh} ones. *)

val commit_dedup : t -> digest:int64 -> size:int -> replicas:Types.replica list -> unit
(** Register freshly written replicas under their digest and release the
    in-flight claim. Piggybacks on the write acknowledgement: no separate
    simulated cost. *)

val abandon_dedup : t -> digest:int64 -> unit
(** Release an in-flight claim after a failed write (waiters retry). *)

val dedup_index : t -> Dedup_index.t
(** The deployment's index (GC reconciliation, scrub repair, audits). *)
