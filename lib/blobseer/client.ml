open Simcore
open Netsim

(* Digest-work accounting for one deployment: chunks whose commit-path
   digest was computed from content bytes (digested), reused from a carried
   hint (cached), or never needed at all (skipped — clean rewrites caught by
   a hint or at the mirror). *)
type digest_stats = {
  chunks_digested : int;
  chunks_cached : int;
  chunks_skipped : int;
  bytes_digested : int;
  bytes_cached : int;
  bytes_skipped : int;
}

let empty_digest_stats =
  {
    chunks_digested = 0;
    chunks_cached = 0;
    chunks_skipped = 0;
    bytes_digested = 0;
    bytes_cached = 0;
    bytes_skipped = 0;
  }

type t = {
  engine : Engine.t;
  net : Net.t;
  params : Types.params;
  vm : Version_manager.t;
  pm : Provider_manager.t;
  md : Metadata_service.t;
  mutable integrity_failures : int;
  mutable next_serial : int;
  mutable dstats : digest_stats;
}

type blob = { service : t; info : Version_manager.blob_info }

type Engine.audit_subject += Audit_client of t

(* Observability: repository traffic accounting, mirroring [write_stats]
   into the global metrics registry so every experiment's --obs snapshot
   reports commit-path volume without per-experiment code. *)
let m_chunks_shipped = Obs.Metrics.counter ~component:"blob" ~name:"chunks_shipped"
let m_chunks_deduped = Obs.Metrics.counter ~component:"blob" ~name:"chunks_deduped"
let m_chunks_suppressed = Obs.Metrics.counter ~component:"blob" ~name:"chunks_suppressed"
let m_bytes_shipped = Obs.Metrics.counter ~component:"blob" ~name:"bytes_shipped"
let m_bytes_deduped = Obs.Metrics.counter ~component:"blob" ~name:"bytes_deduped"
let m_bytes_suppressed = Obs.Metrics.counter ~component:"blob" ~name:"bytes_suppressed"
let m_read_failovers = Obs.Metrics.counter ~component:"blob" ~name:"read_failovers"
let m_read_retry_rounds = Obs.Metrics.counter ~component:"blob" ~name:"read_retry_rounds"
let m_read_backoff = Obs.Metrics.counter ~component:"blob" ~name:"read_backoff_s"

(* Digest-tax observability (DESIGN.md §16): how much commit-path digest
   work ran against content bytes vs. was served by carried digests. *)
let m_digest_chunks_digested = Obs.Metrics.counter ~component:"blob" ~name:"digest_chunks_digested"
let m_digest_chunks_cached = Obs.Metrics.counter ~component:"blob" ~name:"digest_chunks_cached"
let m_digest_chunks_skipped = Obs.Metrics.counter ~component:"blob" ~name:"digest_chunks_skipped"
let m_digest_bytes_digested = Obs.Metrics.counter ~component:"blob" ~name:"digest_bytes_digested"
let m_digest_bytes_cached = Obs.Metrics.counter ~component:"blob" ~name:"digest_bytes_cached"
let m_digest_bytes_skipped = Obs.Metrics.counter ~component:"blob" ~name:"digest_bytes_skipped"
let m_merkle_hashes = Obs.Metrics.counter ~component:"blob" ~name:"merkle_node_hashes"
let m_merkle_reuses = Obs.Metrics.counter ~component:"blob" ~name:"merkle_node_reuses"

let with_merkle_metrics f =
  let h0, r0 = Segment_tree.merkle_counters () in
  let r = f () in
  let h1, r1 = Segment_tree.merkle_counters () in
  Obs.Metrics.add m_merkle_hashes (float_of_int (h1 - h0));
  Obs.Metrics.add m_merkle_reuses (float_of_int (r1 - r0));
  r

let deploy engine net ?(params = Types.default_params) ~version_manager_host
    ~provider_manager_host ~metadata_hosts ~data_providers () =
  if data_providers = [] then invalid_arg "Client.deploy: no data providers";
  if params.replication > List.length data_providers then
    invalid_arg "Client.deploy: replication exceeds provider count";
  let vm =
    Version_manager.create engine net ~host:version_manager_host
      ~publish_cost:params.publish_cost ()
  in
  let pm =
    Provider_manager.create engine net ~host:provider_manager_host
      ~allocate_cost:params.allocate_cost ()
  in
  let md =
    Metadata_service.create engine net ~hosts:metadata_hosts
      ~node_bytes:params.metadata_node_bytes ~node_cost:params.metadata_node_cost ()
  in
  List.iteri
    (fun i (host, disk) ->
      Provider_manager.register pm
        (Data_provider.create engine net ~host ~disk
           ~request_overhead:params.request_overhead
           ~name:(Fmt.str "provider.%d" i) ()))
    data_providers;
  let t =
    {
      engine;
      net;
      params;
      vm;
      pm;
      md;
      integrity_failures = 0;
      next_serial = 0;
      dstats = empty_digest_stats;
    }
  in
  Version_manager.set_dedup_index vm (Provider_manager.dedup_index pm);
  Engine.register_audit_subject engine (Audit_client t);
  t

(* Descriptor identity: distinguishes descriptors that reference the same
   physical replicas through the dedup index (see {!Types.chunk_desc}).
   Minting order follows the deterministic fiber schedule. *)
let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let engine t = t.engine
let net t = t.net
let params t = t.params
let provider_count t = Provider_manager.provider_count t.pm
let data_provider t i = Provider_manager.provider t.pm i
let data_providers t = Provider_manager.providers t.pm
let version_manager t = t.vm
let metadata_service t = t.md
let provider_manager t = t.pm
let integrity_failures t = t.integrity_failures
let dedup_stats t = Dedup_index.stats (Provider_manager.dedup_index t.pm)
let digest_stats t = t.dstats

let note_digested t size =
  t.dstats <-
    {
      t.dstats with
      chunks_digested = t.dstats.chunks_digested + 1;
      bytes_digested = t.dstats.bytes_digested + size;
    };
  Obs.Metrics.incr m_digest_chunks_digested;
  Obs.Metrics.add m_digest_bytes_digested (float_of_int size)

let note_cached t size =
  t.dstats <-
    {
      t.dstats with
      chunks_cached = t.dstats.chunks_cached + 1;
      bytes_cached = t.dstats.bytes_cached + size;
    };
  Obs.Metrics.incr m_digest_chunks_cached;
  Obs.Metrics.add m_digest_bytes_cached (float_of_int size)

let note_digest_skipped t ~chunks ~bytes =
  t.dstats <-
    {
      t.dstats with
      chunks_skipped = t.dstats.chunks_skipped + chunks;
      bytes_skipped = t.dstats.bytes_skipped + bytes;
    };
  Obs.Metrics.add m_digest_chunks_skipped (float_of_int chunks);
  Obs.Metrics.add m_digest_bytes_skipped (float_of_int bytes)

let repository_bytes t =
  Array.fold_left
    (fun acc p -> acc + Data_provider.stored_bytes p)
    0 (data_providers t)

let create_blob t ~from ~capacity =
  let info =
    Version_manager.create_blob t.vm ~from ~capacity ~stripe_size:t.params.stripe_size
  in
  { service = t; info }

let open_blob t ~from ~id =
  Net.message t.net ~src:from ~dst:from;
  { service = t; info = Version_manager.blob_info t.vm id }

let blob_id b = b.info.Version_manager.blob_id
let capacity b = b.info.Version_manager.capacity
let stripe_size b = b.info.Version_manager.stripe_size
let service b = b.service
let latest_version b ~from = Version_manager.latest b.service.vm ~from (blob_id b)
let versions b = Version_manager.versions b.service.vm ~blob:(blob_id b)

(* Extent of chunk [i]: the last chunk of a blob may be shorter than the
   stripe. Stored chunks are always exactly extent-sized. *)
let chunk_extent b i =
  let stripe = stripe_size b in
  min (capacity b) ((i + 1) * stripe) - (i * stripe)

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let total_chunks b = Size.div_ceil (capacity b) (stripe_size b)

let fetch_tree b ~from ~version =
  let t = b.service in
  let tree = Version_manager.get_tree t.vm ~from ~blob:(blob_id b) ~version in
  tree

(* Replica reading order: prefer one whose provider runs on the reading
   host (free network), then the remaining live ones in descriptor order. *)
let replica_order t ~from (desc : Types.chunk_desc) =
  let live =
    List.filter
      (fun (r : Types.replica) -> Data_provider.is_alive (data_provider t r.provider))
      desc.replicas
  in
  let local, remote =
    List.partition
      (fun (r : Types.replica) ->
        Data_provider.host (data_provider t r.provider) == from)
      live
  in
  local @ remote

(* Chunk reads fail over across surviving replicas: a replica whose
   provider died mid-request (or lost the chunk with its machine, or keeps
   erroring after the provider-side transient retries) is skipped and the
   next one tried. When a whole round finds no working replica the client
   backs off and re-polls liveness — a provider-manager failure report may
   still be propagating — for a bounded number of rounds. *)
let read_chunk_payload b ~from (desc : Types.chunk_desc) =
  let t = b.service in
  let try_replica (r : Types.replica) =
    let provider = data_provider t r.provider in
    match Data_provider.read_chunk provider ~to_:from r.chunk with
    | payload ->
        (* End-to-end integrity: verify against the digest the writer put
           in the descriptor. A mismatch is a silently corrupted replica —
           treated exactly like a dead one: skip and fail over. *)
        if Payload.digest payload = desc.digest then Some payload
        else begin
          t.integrity_failures <- t.integrity_failures + 1;
          Obs.Metrics.incr m_read_failovers;
          Trace.emit t.engine ~component:"blobseer.client"
            "read failover: checksum mismatch at %s" (Data_provider.name provider);
          None
        end
    | exception (Types.Provider_down _ | Faults.Injected_error _ | Not_found) ->
        Obs.Metrics.incr m_read_failovers;
        Trace.emit t.engine ~component:"blobseer.client" "read failover: replica at %s failed"
          (Data_provider.name provider);
        None
  in
  let rec round n =
    match List.find_map try_replica (replica_order t ~from desc) with
    | Some payload -> payload
    | None ->
        if n >= t.params.read_retries then
          raise (Types.Provider_down "all replicas failed")
        else begin
          let delay =
            Float.min t.params.retry_backoff_cap
              (t.params.retry_backoff *. float_of_int (1 lsl n))
          in
          Obs.Metrics.incr m_read_retry_rounds;
          Obs.Metrics.add m_read_backoff delay;
          Engine.sleep t.engine delay;
          round (n + 1)
        end
  in
  round 0

(* Content that chunk [i] of [tree] currently holds (zeros if unwritten). *)
let current_chunk_content b ~from tree i =
  match Segment_tree.get tree i with
  | None -> Payload.zero (chunk_extent b i)
  | Some desc -> read_chunk_payload b ~from desc

let read b ~from ~version ~offset ~len =
  if offset < 0 || len < 0 || offset + len > capacity b then
    invalid_arg "Client.read: range out of bounds";
  let t = b.service in
  let tree = fetch_tree b ~from ~version in
  if len = 0 then Payload.zero 0
  else begin
    let stripe = stripe_size b in
    let first = offset / stripe and last = (offset + len - 1) / stripe in
    let count = last - first + 1 in
    (* Metadata path: the client walks ~count leaves plus the path down. *)
    Metadata_service.fetch_nodes t.md ~to_:from (count + log2_ceil (total_chunks b));
    let chunk_indices = List.init count (fun k -> first + k) in
    let parts =
      Parallel.map_windowed t.engine ~window:t.params.read_window
        (fun i -> current_chunk_content b ~from tree i)
        chunk_indices
    in
    let whole = Payload.concat parts in
    Payload.sub whole ~pos:(offset - (first * stripe)) ~len
  end

(* [overlay base ~at patch] splices [patch] over [base] at offset [at]. *)
let overlay base ~at patch =
  let plen = Payload.length patch in
  Payload.concat
    [
      Payload.sub base ~pos:0 ~len:at;
      patch;
      Payload.sub base ~pos:(at + plen) ~len:(Payload.length base - at - plen);
    ]

type write_stats = {
  chunks_total : int;
  chunks_shipped : int;
  chunks_deduped : int;
  chunks_suppressed : int;
  bytes_shipped : int;
  bytes_deduped : int;
  bytes_suppressed : int;
}

let empty_write_stats =
  {
    chunks_total = 0;
    chunks_shipped = 0;
    chunks_deduped = 0;
    chunks_suppressed = 0;
    bytes_shipped = 0;
    bytes_deduped = 0;
    bytes_suppressed = 0;
  }

let add_write_stats a b =
  {
    chunks_total = a.chunks_total + b.chunks_total;
    chunks_shipped = a.chunks_shipped + b.chunks_shipped;
    chunks_deduped = a.chunks_deduped + b.chunks_deduped;
    chunks_suppressed = a.chunks_suppressed + b.chunks_suppressed;
    bytes_shipped = a.bytes_shipped + b.bytes_shipped;
    bytes_deduped = a.bytes_deduped + b.bytes_deduped;
    bytes_suppressed = a.bytes_suppressed + b.bytes_suppressed;
  }

(* Store [content] on every provider of [placement], replicas of one chunk
   in parallel to distinct providers. *)
let ship_replicas t ~from content placement =
  Parallel.map_windowed t.engine ~window:(List.length placement)
    (fun provider_index ->
      let provider = data_provider t provider_index in
      let chunk = Data_provider.write_chunk provider ~from content in
      ({ provider = provider_index; chunk } : Types.replica))
    placement

(* The pipelined dedup-aware write core. Each job is (chunk index, thunk
   producing the full extent-sized chunk content); jobs stream through the
   client's write window, so for one chunk the content production (e.g. a
   local-disk read on the commit path), the digest, the dedup lookup and
   the replica writes overlap with other chunks' stages. Per chunk:

   - with [suppress_clean], content whose digest equals the base version's
     descriptor (a clean rewrite) publishes nothing at all;
   - with [params.dedup], the digest is resolved at the provider manager
     in the control round trip that would otherwise allocate a placement:
     a hit references the existing replicas (zero bytes moved), a miss
     writes the placement and registers the fresh replicas, releasing the
     in-flight claim on failure so concurrent identical writers retry.

   With [hints] (chunk index → digest of the content the thunk will
   produce, carried across epochs by the mirror's digest cache), hinted
   chunks resolve suppression and dedup from the cached digest without
   producing content: clean rewrites are skipped outright, dedup lookups
   batch into a single provider-manager round trip, and only chunks that
   must physically ship run their thunk — with the produced content
   verified against the hint before it is stored. Contended digests
   ([Batch_busy]) and unhinted chunks take the blocking per-chunk path.

   Returns the minted descriptors (absent for suppressed chunks) and the
   shipped/deduped/suppressed accounting. *)
let write_chunk_core b ~from ~base_tree ~suppress_clean ~hints jobs =
  let t = b.service in
  let descs : (int, Types.chunk_desc) Hashtbl.t = Hashtbl.create (List.length jobs) in
  let shipped = ref 0 and deduped = ref 0 and suppressed = ref 0 in
  let shipped_b = ref 0 and deduped_b = ref 0 and suppressed_b = ref 0 in
  let finish_desc i ~size ~digest replicas =
    Hashtbl.replace descs i { Types.serial = fresh_serial t; size; digest; replicas }
  in
  let outcome o = Obs.Span.add_attr t.engine "outcome" (Obs.Record.Str o) in
  let note_suppressed size =
    incr suppressed;
    suppressed_b := !suppressed_b + size;
    Obs.Metrics.incr m_chunks_suppressed;
    Obs.Metrics.add m_bytes_suppressed (float_of_int size)
  in
  let note_deduped size =
    incr deduped;
    deduped_b := !deduped_b + size;
    Obs.Metrics.incr m_chunks_deduped;
    Obs.Metrics.add m_bytes_deduped (float_of_int size)
  in
  let note_shipped size =
    incr shipped;
    shipped_b := !shipped_b + size;
    Obs.Metrics.incr m_chunks_shipped;
    Obs.Metrics.add m_bytes_shipped (float_of_int size)
  in
  let clean_by_digest i ~size digest =
    suppress_clean
    &&
    match Segment_tree.get base_tree i with
    | Some (d : Types.chunk_desc) -> d.digest = digest && d.size = size
    | None -> digest = Payload.digest (Payload.zero size)
  in
  let chunk_span i body =
    Obs.Span.with_detail t.engine ~component:"blob" ~name:"blob.chunk"
      ~attrs:[ ("chunk", Obs.Record.Int i) ]
      body
  in
  (* Blocking per-chunk path. [digest], when given, is a carried hint: the
     produced content is verified against it (an O(1) memo check when the
     mirror's stored payload flows through unchanged) instead of being
     digested fresh. *)
  let one ?digest (i, produce) () =
    chunk_span i @@ fun () ->
    let content = produce () in
    let size = Payload.length content in
    if size <> chunk_extent b i then invalid_arg "Client: chunk content size mismatch";
    let digest =
      match digest with
      | Some d ->
          if Payload.digest content <> d then
            invalid_arg "Client: digest hint does not match produced content";
          note_cached t size;
          d
      | None ->
          note_digested t size;
          Payload.digest content
    in
    if clean_by_digest i ~size digest then begin
      note_suppressed size;
      outcome "clean"
    end
    else if t.params.dedup then begin
      match
        Provider_manager.resolve_or_allocate t.pm ~from ~digest ~size
          ~replication:t.params.replication
          ~allow_degraded:t.params.allow_degraded_writes ()
      with
      | Provider_manager.Dedup replicas ->
          note_deduped size;
          outcome "dedup";
          finish_desc i ~size ~digest replicas
      | Provider_manager.Fresh placement ->
          let replicas =
            try ship_replicas t ~from content placement
            with e ->
              (* Release the claim so writers waiting on this digest stop
                 blocking and retry (one of them claims). *)
              Provider_manager.abandon_dedup t.pm ~digest;
              raise e
          in
          Provider_manager.commit_dedup t.pm ~digest ~size ~replicas;
          note_shipped size;
          outcome "shipped";
          finish_desc i ~size ~digest replicas
    end
    else begin
      let placement =
        List.hd
          (Provider_manager.allocate t.pm ~from ~count:1 ~replication:t.params.replication
             ~allow_degraded:t.params.allow_degraded_writes ())
      in
      let replicas = ship_replicas t ~from content placement in
      note_shipped size;
      outcome "shipped";
      finish_desc i ~size ~digest replicas
    end
  in
  (* Hinted chunk holding a batch-claimed placement: produce, verify against
     the hint, ship. The claim is already held, so every failure path must
     release it or concurrent writers of the digest deadlock. *)
  let ship_claimed ~digest ~placement (i, produce) () =
    chunk_span i @@ fun () ->
    let content = produce () in
    let size = Payload.length content in
    if size <> chunk_extent b i || Payload.digest content <> digest then begin
      Provider_manager.abandon_dedup t.pm ~digest;
      invalid_arg "Client: digest hint does not match produced content"
    end;
    note_cached t size;
    let replicas =
      try ship_replicas t ~from content placement
      with e ->
        Provider_manager.abandon_dedup t.pm ~digest;
        raise e
    in
    Provider_manager.commit_dedup t.pm ~digest ~size ~replicas;
    note_shipped size;
    outcome "shipped";
    finish_desc i ~size ~digest replicas
  in
  let hint_tbl : (int, int64) Hashtbl.t = Hashtbl.create (List.length hints) in
  if t.params.digest_cache then List.iter (fun (i, d) -> Hashtbl.replace hint_tbl i d) hints;
  (* Phase 1 — hinted chunks: suppress clean rewrites from the hint alone
     (no produce, no digest) and collect the rest for one batched dedup
     resolution. Unhinted chunks go straight to the windowed pipeline. *)
  let pending = ref [] and lookups = ref [] in
  List.iter
    (fun ((i, _) as job) ->
      match Hashtbl.find_opt hint_tbl i with
      | None -> pending := `Plain job :: !pending
      | Some digest ->
          let size = chunk_extent b i in
          if clean_by_digest i ~size digest then
            chunk_span i (fun () ->
                note_digest_skipped t ~chunks:1 ~bytes:size;
                note_suppressed size;
                outcome "clean")
          else if t.params.dedup then lookups := (job, digest) :: !lookups
          else pending := `Hinted (job, digest) :: !pending)
    jobs;
  let lookups = List.rev !lookups in
  (* Phase 2 — one control round trip resolves every hinted digest. *)
  let outcomes =
    match lookups with
    | [] -> []
    | _ ->
        Provider_manager.resolve_many t.pm ~from
          ~chunks:(List.map (fun ((i, _), digest) -> (digest, chunk_extent b i)) lookups)
          ~replication:t.params.replication
          ~allow_degraded:t.params.allow_degraded_writes ()
  in
  List.iter2
    (fun ((i, _) as job, digest) oc ->
      match oc with
      | Provider_manager.Batch_dedup replicas ->
          (* Dedup hit on the carried digest: no produce, no payload read. *)
          let size = chunk_extent b i in
          chunk_span i (fun () ->
              note_cached t size;
              note_deduped size;
              outcome "dedup";
              finish_desc i ~size ~digest replicas)
      | Provider_manager.Batch_fresh placement ->
          pending := `Ship (job, digest, placement) :: !pending
      | Provider_manager.Batch_busy ->
          (* Contended digest: retry through the blocking per-chunk path,
             which never holds one claim while waiting on another. *)
          pending := `Hinted (job, digest) :: !pending)
    lookups outcomes;
  (* Phase 3 — everything that needs content runs through the write window:
     content production, digest verification and replica shipping of
     different chunks overlap. *)
  let work =
    List.map
      (function
        | `Plain job -> one job
        | `Hinted (job, digest) -> one ~digest job
        | `Ship (job, digest, placement) -> ship_claimed ~digest ~placement job)
      (List.rev !pending)
  in
  Parallel.windowed t.engine ~window:t.params.write_window work;
  ( descs,
    {
      chunks_total = List.length jobs;
      chunks_shipped = !shipped;
      chunks_deduped = !deduped;
      chunks_suppressed = !suppressed;
      bytes_shipped = !shipped_b;
      bytes_deduped = !deduped_b;
      bytes_suppressed = !suppressed_b;
    } )

(* Fold minted descriptors into the base tree (one set_range per contiguous
   range of touched chunks), charge the metadata commit and publish. *)
let publish_descs b ~from ~base ~base_tree descs =
  let t = b.service in
  let chunk_ids = Hashtbl.fold (fun i _ acc -> i :: acc) descs [] |> List.sort compare in
  let rec ranges = function
    | [] -> []
    | i :: rest ->
        let rec extend j = function
          | k :: more when k = j + 1 -> extend k more
          | more -> (j, more)
        in
        let j, more = extend i rest in
        (i, j) :: ranges more
  in
  let tree, created =
    List.fold_left
      (fun (tree, created) (lo, hi) ->
        let leaves = Array.init (hi - lo + 1) (fun k -> Some (Hashtbl.find descs (lo + k))) in
        let tree, c = Segment_tree.set_range tree ~start:lo leaves in
        (tree, created + c))
      (base_tree, 0) (ranges chunk_ids)
  in
  if created > 0 then
    Obs.Span.with_ t.engine ~component:"blob" ~name:"blob.meta.commit"
      ~attrs:[ ("nodes", Obs.Record.Int created) ]
      (fun () -> Metadata_service.commit_nodes t.md ~from created);
  Version_manager.publish t.vm ~from ~blob:(blob_id b) ~base tree

let write_multi b ~from ?base runs =
  let t = b.service in
  List.iter
    (fun (offset, payload) ->
      if offset < 0 || offset + Payload.length payload > capacity b then
        invalid_arg "Client.write: range out of bounds")
    runs;
  let sorted = List.sort (fun (a, _) (c, _) -> compare a c) runs in
  let rec check_overlap = function
    | (o1, p1) :: ((o2, _) :: _ as rest) ->
        if o1 + Payload.length p1 > o2 then invalid_arg "Client.write_multi: overlapping runs";
        check_overlap rest
    | _ -> ()
  in
  check_overlap sorted;
  let base = match base with Some v -> v | None -> latest_version b ~from in
  let base_tree = fetch_tree b ~from ~version:base in
  let stripe = stripe_size b in
  (* Collect, per touched chunk, the list of (chunk-relative offset, slice)
     patches across all runs. *)
  let patches : (int, (int * Payload.t) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (offset, payload) ->
      let len = Payload.length payload in
      if len > 0 then begin
        let first = offset / stripe and last = (offset + len - 1) / stripe in
        for i = first to last do
          let cstart = i * stripe in
          let extent = chunk_extent b i in
          let wstart = max cstart offset and wend = min (cstart + extent) (offset + len) in
          let slice = Payload.sub payload ~pos:(wstart - offset) ~len:(wend - wstart) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt patches i) in
          Hashtbl.replace patches i ((wstart - cstart, slice) :: prev)
        done
      end)
    sorted;
  let chunk_ids = Hashtbl.fold (fun i _ acc -> i :: acc) patches [] |> List.sort compare in
  if chunk_ids = [] then
    Version_manager.publish t.vm ~from ~blob:(blob_id b) ~base base_tree
  else begin
    let content_for i =
      let extent = chunk_extent b i in
      let segs = List.rev (Hashtbl.find patches i) in
      match segs with
      | [ (0, p) ] when Payload.length p = extent -> p
      | segs ->
          let old = current_chunk_content b ~from base_tree i in
          List.fold_left (fun acc (at, patch) -> overlay acc ~at patch) old segs
    in
    let jobs = List.map (fun i -> (i, fun () -> content_for i)) chunk_ids in
    let descs, _stats = write_chunk_core b ~from ~base_tree ~suppress_clean:false ~hints:[] jobs in
    publish_descs b ~from ~base ~base_tree descs
  end

let write_chunks b ~from ?base ?(suppress_clean = false) ?(hints = []) jobs =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= total_chunks b then invalid_arg "Client.write_chunks: chunk out of range")
    jobs;
  let rec check_dups = function
    | i :: (j :: _ as rest) ->
        if i = j then invalid_arg "Client.write_chunks: duplicate chunk";
        check_dups rest
    | _ -> ()
  in
  check_dups (List.sort compare (List.map fst jobs));
  let engine = b.service.engine in
  let base, base_tree =
    Obs.Span.with_ engine ~component:"blob" ~name:"blob.meta" (fun () ->
        let base = match base with Some v -> v | None -> latest_version b ~from in
        (base, fetch_tree b ~from ~version:base))
  in
  let descs, stats =
    Obs.Span.with_ engine ~component:"blob" ~name:"blob.write"
      ~attrs:[ ("chunks", Obs.Record.Int (List.length jobs)) ]
      (fun () ->
        let d0 = b.service.dstats in
        let ((_, stats) as r) = write_chunk_core b ~from ~base_tree ~suppress_clean ~hints jobs in
        let d1 = b.service.dstats in
        Obs.Span.add_attr engine "bytes_shipped" (Obs.Record.Bytes stats.bytes_shipped);
        Obs.Span.add_attr engine "bytes_deduped" (Obs.Record.Bytes stats.bytes_deduped);
        Obs.Span.add_attr engine "bytes_suppressed" (Obs.Record.Bytes stats.bytes_suppressed);
        Obs.Span.add_attr engine "bytes_digested"
          (Obs.Record.Bytes (d1.bytes_digested - d0.bytes_digested));
        Obs.Span.add_attr engine "bytes_digest_cached"
          (Obs.Record.Bytes (d1.bytes_cached - d0.bytes_cached));
        Obs.Span.add_attr engine "bytes_digest_skipped"
          (Obs.Record.Bytes (d1.bytes_skipped - d0.bytes_skipped));
        r)
  in
  let version =
    Obs.Span.with_ engine ~component:"blob" ~name:"blob.publish" (fun () ->
        publish_descs b ~from ~base ~base_tree descs)
  in
  (version, stats)

let write b ~from ?base ~offset payload = write_multi b ~from ?base [ (offset, payload) ]

let clone b ~from ~version =
  let t = b.service in
  let info = Version_manager.clone t.vm ~from ~blob:(blob_id b) ~version in
  { service = t; info }

(* Direct metadata access, free of simulated cost: O(1) in the number of
   live versions and blobs (this sits under the chunk_identity /
   delta_bytes / distinct_bytes hot loops). Raises [Not_found] for
   dropped or never-published versions. *)
let tree b ~version = Version_manager.peek_tree b.service.vm ~blob:(blob_id b) ~version

let merkle_root b ~version =
  with_merkle_metrics (fun () ->
      Segment_tree.merkle_digest ~digest:Types.desc_content_digest (tree b ~version))

let version_bytes b ~version =
  let tr = tree b ~version in
  Segment_tree.fold_set (fun _ (desc : Types.chunk_desc) acc -> acc + desc.size) tr 0

let read_desc b ~from desc = read_chunk_payload b ~from desc

let read_chunk b ~from ~version ~chunk =
  let t = b.service in
  if chunk < 0 || chunk >= total_chunks b then invalid_arg "Client.read_chunk";
  let tr = fetch_tree b ~from ~version in
  Metadata_service.fetch_nodes t.md ~to_:from (1 + log2_ceil (total_chunks b));
  current_chunk_content b ~from tr chunk

let chunk_identity b ~version ~chunk =
  let tr = tree b ~version in
  match Segment_tree.get tr chunk with
  | None -> None
  | Some (desc : Types.chunk_desc) -> (
      match desc.replicas with
      | { provider; chunk = id } :: _ -> Some (provider, id)
      | [] -> None)

let chunk_host b ~version ~chunk =
  match chunk_identity b ~version ~chunk with
  | None -> None
  | Some (provider, _) -> Some (Data_provider.host (data_provider b.service provider))

let delta_bytes b ~base ~version =
  let old_tree = tree b ~version:base in
  let new_tree = tree b ~version in
  List.fold_left
    (fun acc (_, _, fresh) ->
      match (fresh : Types.chunk_desc option) with
      | Some desc -> acc + desc.size
      | None -> acc)
    0
    (Segment_tree.diff_leaves old_tree new_tree)

let distinct_bytes b =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun version ->
      let tr = tree b ~version in
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) () ->
          List.iter
            (fun (r : Types.replica) -> Hashtbl.replace seen (r.provider, r.chunk) desc.size)
            desc.replicas)
        tr ())
    (versions b);
  Hashtbl.fold (fun _ size acc -> acc + size) seen 0 (* lint: allow hashtbl-order — commutative sum *)

(* ------------------------------------------------------------------ *)
(* Live-reference views shared by the GC and the compactor *)

let live_chunk_refs t =
  let refs = Hashtbl.create 1024 in
  Version_manager.iter_live_trees (version_manager t) (fun ~blob:_ ~version:_ tr ->
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) () ->
          List.iter
            (fun (r : Types.replica) ->
              let key = (r.provider, r.chunk) in
              Hashtbl.replace refs key (1 + Option.value ~default:0 (Hashtbl.find_opt refs key)))
            desc.replicas)
        tr ());
  refs

(* Live logical state per content digest: number of distinct descriptor
   serials carrying it across the surviving trees, plus the size and an
   exemplar replica set (the first encountered in sorted (blob, version)
   order, so the result is deterministic). This is the ground truth the
   dedup index is reconciled to after retention drops versions. *)
let live_digest_refs t =
  let seen : (int64 * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let acc : (int64, int * int * Types.replica list) Hashtbl.t = Hashtbl.create 1024 in
  Version_manager.iter_live_trees (version_manager t) (fun ~blob:_ ~version:_ tr ->
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) () ->
          if not (Hashtbl.mem seen (desc.digest, desc.serial)) then begin
            Hashtbl.replace seen (desc.digest, desc.serial) ();
            match Hashtbl.find_opt acc desc.digest with
            | Some (refs, size, replicas) ->
                Hashtbl.replace acc desc.digest (refs + 1, size, replicas)
            | None -> Hashtbl.replace acc desc.digest (1, desc.size, desc.replicas)
          end)
        tr ());
  Hashtbl.fold (fun digest v l -> (digest, v) :: l) acc [] (* lint: allow hashtbl-order — sorted below *)
  |> List.sort (fun (d1, _) (d2, _) -> Int64.compare d1 d2)
