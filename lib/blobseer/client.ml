open Simcore
open Netsim

type t = {
  engine : Engine.t;
  net : Net.t;
  params : Types.params;
  vm : Version_manager.t;
  pm : Provider_manager.t;
  md : Metadata_service.t;
  mutable integrity_failures : int;
}

type blob = { service : t; info : Version_manager.blob_info }

type Engine.audit_subject += Audit_client of t

let deploy engine net ?(params = Types.default_params) ~version_manager_host
    ~provider_manager_host ~metadata_hosts ~data_providers () =
  if data_providers = [] then invalid_arg "Client.deploy: no data providers";
  if params.replication > List.length data_providers then
    invalid_arg "Client.deploy: replication exceeds provider count";
  let vm =
    Version_manager.create engine net ~host:version_manager_host
      ~publish_cost:params.publish_cost ()
  in
  let pm =
    Provider_manager.create engine net ~host:provider_manager_host
      ~allocate_cost:params.allocate_cost ()
  in
  let md =
    Metadata_service.create engine net ~hosts:metadata_hosts
      ~node_bytes:params.metadata_node_bytes ~node_cost:params.metadata_node_cost ()
  in
  List.iteri
    (fun i (host, disk) ->
      Provider_manager.register pm
        (Data_provider.create engine net ~host ~disk
           ~request_overhead:params.request_overhead
           ~name:(Fmt.str "provider.%d" i) ()))
    data_providers;
  let t = { engine; net; params; vm; pm; md; integrity_failures = 0 } in
  Engine.register_audit_subject engine (Audit_client t);
  t

let engine t = t.engine
let net t = t.net
let params t = t.params
let provider_count t = Provider_manager.provider_count t.pm
let data_provider t i = Provider_manager.provider t.pm i
let data_providers t = Provider_manager.providers t.pm
let version_manager t = t.vm
let metadata_service t = t.md
let provider_manager t = t.pm
let integrity_failures t = t.integrity_failures

let repository_bytes t =
  Array.fold_left
    (fun acc p -> acc + Data_provider.stored_bytes p)
    0 (data_providers t)

let create_blob t ~from ~capacity =
  let info =
    Version_manager.create_blob t.vm ~from ~capacity ~stripe_size:t.params.stripe_size
  in
  { service = t; info }

let open_blob t ~from ~id =
  Net.message t.net ~src:from ~dst:from;
  { service = t; info = Version_manager.blob_info t.vm id }

let blob_id b = b.info.Version_manager.blob_id
let capacity b = b.info.Version_manager.capacity
let stripe_size b = b.info.Version_manager.stripe_size
let service b = b.service
let latest_version b ~from = Version_manager.latest b.service.vm ~from (blob_id b)
let versions b = Version_manager.versions b.service.vm ~blob:(blob_id b)

(* Extent of chunk [i]: the last chunk of a blob may be shorter than the
   stripe. Stored chunks are always exactly extent-sized. *)
let chunk_extent b i =
  let stripe = stripe_size b in
  min (capacity b) ((i + 1) * stripe) - (i * stripe)

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let total_chunks b = Size.div_ceil (capacity b) (stripe_size b)

let fetch_tree b ~from ~version =
  let t = b.service in
  let tree = Version_manager.get_tree t.vm ~from ~blob:(blob_id b) ~version in
  tree

(* Replica reading order: prefer one whose provider runs on the reading
   host (free network), then the remaining live ones in descriptor order. *)
let replica_order t ~from (desc : Types.chunk_desc) =
  let live =
    List.filter
      (fun (r : Types.replica) -> Data_provider.is_alive (data_provider t r.provider))
      desc.replicas
  in
  let local, remote =
    List.partition
      (fun (r : Types.replica) ->
        Data_provider.host (data_provider t r.provider) == from)
      live
  in
  local @ remote

(* Chunk reads fail over across surviving replicas: a replica whose
   provider died mid-request (or lost the chunk with its machine, or keeps
   erroring after the provider-side transient retries) is skipped and the
   next one tried. When a whole round finds no working replica the client
   backs off and re-polls liveness — a provider-manager failure report may
   still be propagating — for a bounded number of rounds. *)
let read_chunk_payload b ~from (desc : Types.chunk_desc) =
  let t = b.service in
  let try_replica (r : Types.replica) =
    let provider = data_provider t r.provider in
    match Data_provider.read_chunk provider ~to_:from r.chunk with
    | payload ->
        (* End-to-end integrity: verify against the digest the writer put
           in the descriptor. A mismatch is a silently corrupted replica —
           treated exactly like a dead one: skip and fail over. *)
        if Payload.digest payload = desc.digest then Some payload
        else begin
          t.integrity_failures <- t.integrity_failures + 1;
          Trace.emit t.engine ~component:"blobseer.client"
            "read failover: checksum mismatch at %s" (Data_provider.name provider);
          None
        end
    | exception (Types.Provider_down _ | Faults.Injected_error _ | Not_found) ->
        Trace.emit t.engine ~component:"blobseer.client" "read failover: replica at %s failed"
          (Data_provider.name provider);
        None
  in
  let rec round n =
    match List.find_map try_replica (replica_order t ~from desc) with
    | Some payload -> payload
    | None ->
        if n >= t.params.read_retries then
          raise (Types.Provider_down "all replicas failed")
        else begin
          Engine.sleep t.engine (t.params.retry_backoff *. float_of_int (1 lsl n));
          round (n + 1)
        end
  in
  round 0

(* Content that chunk [i] of [tree] currently holds (zeros if unwritten). *)
let current_chunk_content b ~from tree i =
  match Segment_tree.get tree i with
  | None -> Payload.zero (chunk_extent b i)
  | Some desc -> read_chunk_payload b ~from desc

let read b ~from ~version ~offset ~len =
  if offset < 0 || len < 0 || offset + len > capacity b then
    invalid_arg "Client.read: range out of bounds";
  let t = b.service in
  let tree = fetch_tree b ~from ~version in
  if len = 0 then Payload.zero 0
  else begin
    let stripe = stripe_size b in
    let first = offset / stripe and last = (offset + len - 1) / stripe in
    let count = last - first + 1 in
    (* Metadata path: the client walks ~count leaves plus the path down. *)
    Metadata_service.fetch_nodes t.md ~to_:from (count + log2_ceil (total_chunks b));
    let chunk_indices = List.init count (fun k -> first + k) in
    let parts =
      Parallel.map_windowed t.engine ~window:t.params.read_window
        (fun i -> current_chunk_content b ~from tree i)
        chunk_indices
    in
    let whole = Payload.concat parts in
    Payload.sub whole ~pos:(offset - (first * stripe)) ~len
  end

(* [overlay base ~at patch] splices [patch] over [base] at offset [at]. *)
let overlay base ~at patch =
  let plen = Payload.length patch in
  Payload.concat
    [
      Payload.sub base ~pos:0 ~len:at;
      patch;
      Payload.sub base ~pos:(at + plen) ~len:(Payload.length base - at - plen);
    ]

let write_multi b ~from ?base runs =
  let t = b.service in
  List.iter
    (fun (offset, payload) ->
      if offset < 0 || offset + Payload.length payload > capacity b then
        invalid_arg "Client.write: range out of bounds")
    runs;
  let sorted = List.sort (fun (a, _) (c, _) -> compare a c) runs in
  let rec check_overlap = function
    | (o1, p1) :: ((o2, _) :: _ as rest) ->
        if o1 + Payload.length p1 > o2 then invalid_arg "Client.write_multi: overlapping runs";
        check_overlap rest
    | _ -> ()
  in
  check_overlap sorted;
  let base = match base with Some v -> v | None -> latest_version b ~from in
  let base_tree = fetch_tree b ~from ~version:base in
  let stripe = stripe_size b in
  (* Collect, per touched chunk, the list of (chunk-relative offset, slice)
     patches across all runs. *)
  let patches : (int, (int * Payload.t) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (offset, payload) ->
      let len = Payload.length payload in
      if len > 0 then begin
        let first = offset / stripe and last = (offset + len - 1) / stripe in
        for i = first to last do
          let cstart = i * stripe in
          let extent = chunk_extent b i in
          let wstart = max cstart offset and wend = min (cstart + extent) (offset + len) in
          let slice = Payload.sub payload ~pos:(wstart - offset) ~len:(wend - wstart) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt patches i) in
          Hashtbl.replace patches i ((wstart - cstart, slice) :: prev)
        done
      end)
    sorted;
  let chunk_ids = Hashtbl.fold (fun i _ acc -> i :: acc) patches [] |> List.sort compare in
  if chunk_ids = [] then
    Version_manager.publish t.vm ~from ~blob:(blob_id b) ~base base_tree
  else begin
    let count = List.length chunk_ids in
    let placements =
      Provider_manager.allocate t.pm ~from ~count ~replication:t.params.replication
        ~allow_degraded:t.params.allow_degraded_writes ()
    in
    let content_for i =
      let extent = chunk_extent b i in
      let segs = List.rev (Hashtbl.find patches i) in
      match segs with
      | [ (0, p) ] when Payload.length p = extent -> p
      | segs ->
          let old = current_chunk_content b ~from base_tree i in
          List.fold_left (fun acc (at, patch) -> overlay acc ~at patch) old segs
    in
    let descs = Hashtbl.create count in
    let write_chunk i placement () =
      let content = content_for i in
      let store provider_index =
        let provider = data_provider t provider_index in
        let chunk = Data_provider.write_chunk provider ~from content in
        ({ provider = provider_index; chunk } : Types.replica)
      in
      (* Replicas of one chunk are written in parallel to distinct
         providers. *)
      let replicas =
        Parallel.map_windowed t.engine ~window:(List.length placement) store placement
      in
      Hashtbl.replace descs i
        { Types.size = Payload.length content; digest = Payload.digest content; replicas }
    in
    Parallel.windowed t.engine ~window:t.params.write_window
      (List.map2 write_chunk chunk_ids placements);
    (* Fold the descriptors into the tree, one set_range per contiguous
       range of touched chunks. *)
    let rec ranges = function
      | [] -> []
      | i :: rest ->
          let rec extend j = function
            | k :: more when k = j + 1 -> extend k more
            | more -> (j, more)
          in
          let j, more = extend i rest in
          (i, j) :: ranges more
    in
    let tree, created =
      List.fold_left
        (fun (tree, created) (lo, hi) ->
          let leaves = Array.init (hi - lo + 1) (fun k -> Some (Hashtbl.find descs (lo + k))) in
          let tree, c = Segment_tree.set_range tree ~start:lo leaves in
          (tree, created + c))
        (base_tree, 0) (ranges chunk_ids)
    in
    Metadata_service.commit_nodes t.md ~from created;
    Version_manager.publish t.vm ~from ~blob:(blob_id b) ~base tree
  end

let write b ~from ?base ~offset payload = write_multi b ~from ?base [ (offset, payload) ]

let clone b ~from ~version =
  let t = b.service in
  let info = Version_manager.clone t.vm ~from ~blob:(blob_id b) ~version in
  { service = t; info }

let tree b ~version =
  match
    List.find_opt (fun v -> v = version) (versions b)
  with
  | None -> raise Not_found
  | Some _ ->
      (* Direct metadata access, free of simulated cost. *)
      let t = b.service in
      let find () =
        let result = ref None in
        Version_manager.iter_live_trees t.vm (fun ~blob ~version:v tr ->
            if blob = blob_id b && v = version then result := Some tr);
        Option.get !result
      in
      find ()

let version_bytes b ~version =
  let tr = tree b ~version in
  Segment_tree.fold_set (fun _ (desc : Types.chunk_desc) acc -> acc + desc.size) tr 0

let read_chunk b ~from ~version ~chunk =
  let t = b.service in
  if chunk < 0 || chunk >= total_chunks b then invalid_arg "Client.read_chunk";
  let tr = fetch_tree b ~from ~version in
  Metadata_service.fetch_nodes t.md ~to_:from (1 + log2_ceil (total_chunks b));
  current_chunk_content b ~from tr chunk

let chunk_identity b ~version ~chunk =
  let tr = tree b ~version in
  match Segment_tree.get tr chunk with
  | None -> None
  | Some (desc : Types.chunk_desc) -> (
      match desc.replicas with
      | { provider; chunk = id } :: _ -> Some (provider, id)
      | [] -> None)

let chunk_host b ~version ~chunk =
  match chunk_identity b ~version ~chunk with
  | None -> None
  | Some (provider, _) -> Some (Data_provider.host (data_provider b.service provider))

let delta_bytes b ~base ~version =
  let old_tree = tree b ~version:base in
  let new_tree = tree b ~version in
  List.fold_left
    (fun acc (_, _, fresh) ->
      match (fresh : Types.chunk_desc option) with
      | Some desc -> acc + desc.size
      | None -> acc)
    0
    (Segment_tree.diff_leaves old_tree new_tree)

let distinct_bytes b =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun version ->
      let tr = tree b ~version in
      Segment_tree.fold_set
        (fun _ (desc : Types.chunk_desc) () ->
          List.iter
            (fun (r : Types.replica) -> Hashtbl.replace seen (r.provider, r.chunk) desc.size)
            desc.replicas)
        tr ())
    (versions b);
  Hashtbl.fold (fun _ size acc -> acc + size) seen 0 (* lint: allow hashtbl-order — commutative sum *)
