(** Shared BlobSeer datatypes. *)

type replica = { provider : int; chunk : Storage.Content_store.chunk_id }
(** One stored copy of a chunk: which data provider holds it, under which
    content-store id. *)

type chunk_desc = { serial : int; size : int; digest : int64; replicas : replica list }
(** Descriptor stored in segment-tree leaves: where the chunk for this
    stripe lives, how many bytes of it are meaningful, and the writer-side
    {!Simcore.Payload.digest} of the content — the end-to-end integrity
    reference readers and the scrubber verify replicas against. [serial]
    is a client-minted identity distinguishing descriptors that reference
    the same physical replicas through the dedup index; the refcount audit
    counts distinct serials per digest. *)

(** Tunable service parameters. Costs are in seconds, sizes in bytes. *)
type params = {
  stripe_size : int;  (** chunk granularity; the paper uses 256 KiB *)
  replication : int;  (** copies per chunk, on distinct providers *)
  write_window : int;  (** outstanding chunk writes per client *)
  read_window : int;  (** outstanding chunk reads per client *)
  request_overhead : float;  (** per-chunk service cost at a data provider *)
  metadata_node_bytes : int;  (** wire size of one tree node *)
  metadata_node_cost : float;  (** per-node service cost at a metadata provider *)
  publish_cost : float;  (** serialized cost of one version publication *)
  allocate_cost : float;  (** per-chunk cost at the provider manager *)
  read_retries : int;  (** failover rounds over surviving replicas *)
  retry_backoff : float;  (** base delay between failover rounds, doubled per round *)
  retry_backoff_cap : float;  (** ceiling on the per-round failover delay *)
  allow_degraded_writes : bool;
      (** place fewer than [replication] copies when live distinct hosts run
          short, leaving repair to the scrubber, instead of failing the write *)
  dedup : bool;
      (** consult the provider manager's content-addressed index before
          allocating placements: a digest hit reuses the existing replicas
          (zero data movement), a miss writes and registers the chunk *)
  digest_cache : bool;
      (** carry per-chunk content digests across commit epochs (mirror-side
          clean-rewrite skips, descriptor-digest reuse for dirty-set hints);
          off = every commit re-digests every chunk it ships, the pre-PR-9
          behavior, kept as an ablation/bench knob *)
}

val default_params : params
(** 256 KiB stripes, replication 1, window 8, strict placement, dedup
    on — overridden per experiment by the calibration layer. *)

val desc_content_digest : chunk_desc -> int64
(** Merkle leaf input of a descriptor: a hash of its logical content
    (digest, size) only — serial and replica placement excluded, so
    descriptors minted independently for identical content (dedup
    references, scrub repairs, geo-replicated copies) agree. The one leaf
    function every descriptor-tree Merkle user must share (see
    {!Segment_tree.merkle_digest}'s one-function-per-tree-family
    contract). *)

exception Provider_down of string
(** Raised when an operation needs a data provider whose machine failed and
    no live replica remains. *)

exception Service_crashed of string
(** Raised when a metadata-plane service (version manager, metadata
    provider) crashed mid-operation; the caller must run journal recovery
    ([restart]) before retrying. *)
