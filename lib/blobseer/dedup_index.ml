open Simcore

type entry = {
  size : int;
  mutable replicas : Types.replica list;
  mutable refs : int;
}

type stats = { hits : int; misses : int; bytes_saved : int; entries : int }

type t = {
  engine : Engine.t;
  entries : (int64, entry) Hashtbl.t;
  (* Digests currently being written by some client: later writers of the
     same content wait for the outcome instead of racing a duplicate copy
     into the repository. The ivar resolves to the registered entry, or
     [None] when the claimer abandoned (failed write) — waiters then retry
     and one of them claims. *)
  inflight : (int64, entry option Engine.Ivar.t) Hashtbl.t;
  (* Refcounts of entries dropped by stale validation (their replicas
     died or were corrupted) while live descriptors still carry the
     digest. A re-registration of the same content inherits this count,
     keeping index refcounts equal to live-tree references — the audited
     invariant. Cleared wholesale by [reconcile]. *)
  orphaned : (int64, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_saved : int;
}

let create engine =
  {
    engine;
    entries = Hashtbl.create 1024;
    inflight = Hashtbl.create 16;
    orphaned = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    bytes_saved = 0;
  }

type resolution =
  | Hit of Types.replica list
  | Claimed

let rec resolve t ~digest ~size ~validate =
  match Hashtbl.find_opt t.entries digest with
  | Some entry when entry.size = size && validate entry.replicas ->
      t.hits <- t.hits + 1;
      t.bytes_saved <- t.bytes_saved + size;
      Hit entry.replicas
  | Some entry ->
      (* Stale mapping: replicas died, lost the chunk, or were corrupted
         (or a 64-bit digest collision across sizes). Drop it — stashing
         its refcount for a future re-registration — and treat the write
         as a miss; GC reconciliation re-learns live content. *)
      if entry.refs > 0 then
        Hashtbl.replace t.orphaned digest
          (entry.refs + Option.value ~default:0 (Hashtbl.find_opt t.orphaned digest));
      Hashtbl.remove t.entries digest;
      resolve t ~digest ~size ~validate
  | None -> (
      match Hashtbl.find_opt t.inflight digest with
      | Some ivar ->
          (* Same content is being written right now: wait for the
             claimer's outcome, then re-resolve (hit on success, claim
             ourselves on abandonment). *)
          let _ = Engine.Ivar.read ivar in
          resolve t ~digest ~size ~validate
      | None ->
          Hashtbl.replace t.inflight digest (Engine.Ivar.create t.engine);
          t.misses <- t.misses + 1;
          Claimed)

type nowait_resolution =
  | Now_hit of Types.replica list
  | Now_claimed
  | Now_busy

let rec resolve_nowait t ~digest ~size ~validate =
  match Hashtbl.find_opt t.entries digest with
  | Some entry when entry.size = size && validate entry.replicas ->
      t.hits <- t.hits + 1;
      t.bytes_saved <- t.bytes_saved + size;
      Now_hit entry.replicas
  | Some entry ->
      (* Stale mapping: same drop-and-retry discipline as [resolve]. *)
      if entry.refs > 0 then
        Hashtbl.replace t.orphaned digest
          (entry.refs + Option.value ~default:0 (Hashtbl.find_opt t.orphaned digest));
      Hashtbl.remove t.entries digest;
      resolve_nowait t ~digest ~size ~validate
  | None ->
      if Hashtbl.mem t.inflight digest then
        (* Another writer's claim is in flight. Never block here: a batch
           caller may already hold claims on other digests, and blocking
           while holding claims can deadlock against a peer doing the same
           in the opposite order. The caller falls back to the blocking
           per-chunk path, which never holds one claim while waiting on
           another. *)
        Now_busy
      else begin
        Hashtbl.replace t.inflight digest (Engine.Ivar.create t.engine);
        t.misses <- t.misses + 1;
        Now_claimed
      end

let settle t ~digest outcome =
  match Hashtbl.find_opt t.inflight digest with
  | Some ivar ->
      Hashtbl.remove t.inflight digest;
      Engine.Ivar.fill ivar outcome
  | None -> ()

let publish t ~digest ~size ~replicas =
  let refs = Option.value ~default:0 (Hashtbl.find_opt t.orphaned digest) in
  Hashtbl.remove t.orphaned digest;
  let entry = { size; replicas; refs } in
  Hashtbl.replace t.entries digest entry;
  settle t ~digest (Some entry)

let abandon t ~digest = settle t ~digest None

let add_ref t digest =
  match Hashtbl.find_opt t.entries digest with
  | Some entry -> entry.refs <- entry.refs + 1
  | None -> ()

let release_ref t digest =
  match Hashtbl.find_opt t.entries digest with
  | Some entry -> if entry.refs > 0 then entry.refs <- entry.refs - 1
  | None -> ()

let drop_unreferenced t digest =
  match Hashtbl.find_opt t.entries digest with
  | Some entry when entry.refs <= 0 ->
      Hashtbl.remove t.entries digest;
      true
  | _ -> false

let update_replicas t ~digest ~replicas =
  match Hashtbl.find_opt t.entries digest with
  | Some entry -> entry.replicas <- replicas
  | None -> ()

let reconcile t live =
  Hashtbl.reset t.orphaned;
  let keep = Hashtbl.create (List.length live) in
  List.iter
    (fun (digest, (refs, size, replicas)) ->
      Hashtbl.replace keep digest ();
      match Hashtbl.find_opt t.entries digest with
      | Some entry -> entry.refs <- refs
      | None -> Hashtbl.replace t.entries digest { size; replicas; refs })
    live;
  let dead =
    (* lint: allow hashtbl-order — collected keys are only removed, order-insensitive *)
    Hashtbl.fold
      (fun digest _ acc -> if Hashtbl.mem keep digest then acc else digest :: acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) dead;
  List.length dead

let view t =
  (* lint: allow hashtbl-order — sorted below *)
  Hashtbl.fold
    (fun digest (entry : entry) acc ->
      (digest, entry.refs, entry.size, entry.replicas) :: acc)
    t.entries []
  |> List.sort (fun (d1, _, _, _) (d2, _, _, _) -> Int64.compare d1 d2)

let stats t : stats =
  { hits = t.hits; misses = t.misses; bytes_saved = t.bytes_saved; entries = Hashtbl.length t.entries }

let unsafe_set_refs t ~digest refs =
  match Hashtbl.find_opt t.entries digest with
  | Some entry -> entry.refs <- refs
  | None -> ()
