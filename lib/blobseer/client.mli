(** BlobSeer deployment and client-side BLOB API.

    A deployment aggregates one version manager, one provider manager, a
    pool of metadata providers and a data provider on (typically) every
    compute node. Clients manipulate BLOBs — large flat byte spaces stored
    striped across the data providers — with versioning semantics:

    - {!write} never overwrites: it stores new chunks and publishes a new
      snapshot version whose metadata shares everything untouched with its
      base ({e shadowing});
    - {!clone} forks a BLOB from any snapshot without copying data;
    - {!read} addresses any published version, forever immutable.

    All operations block the calling fiber for the simulated cost of the
    network transfers, disk I/O and service queueing they cause. *)

open Simcore
open Netsim
open Storage

type t
type blob

val deploy :
  Engine.t ->
  Net.t ->
  ?params:Types.params ->
  version_manager_host:Net.host ->
  provider_manager_host:Net.host ->
  metadata_hosts:Net.host list ->
  data_providers:(Net.host * Disk.t) list ->
  unit ->
  t
(** Stand up a BlobSeer service. [data_providers] associates each provider
    with the host it runs on and the local disk it stores chunks on. *)

val engine : t -> Engine.t
(** The engine the deployment runs on. *)

val net : t -> Net.t
(** The network the services are attached to. *)

val params : t -> Types.params
(** The parameters the deployment was stood up with. *)

val provider_count : t -> int
(** Number of data providers. *)

val data_provider : t -> int -> Data_provider.t
(** The [i]-th data provider (deployment order). *)

val data_providers : t -> Data_provider.t array
(** All data providers, in deployment order. *)

val version_manager : t -> Version_manager.t
(** The deployment's version manager. *)

val metadata_service : t -> Metadata_service.t
(** The deployment's metadata provider pool. *)

val provider_manager : t -> Provider_manager.t
(** The deployment's provider manager (placement + dedup index). *)

val integrity_failures : t -> int
(** Chunk reads whose payload digest did not match the descriptor's —
    silently corrupted replicas detected (and failed over) by clients of
    this deployment. *)

type Engine.audit_subject += Audit_client of t
(** Registered at {!deploy}; lets [Analysis.Invariants] audit replica
    placement, checksum metadata and journal quiescence at teardown. *)

val repository_bytes : t -> int
(** Physical bytes held across all data providers — the storage-space
    metric of the paper's Figures 4 and 5(b). *)

(** {1 BLOB operations} *)

val create_blob : t -> from:Net.host -> capacity:int -> blob
(** Allocate a fresh BLOB (version 0 is the empty snapshot); one
    round-trip to the version manager. *)

val open_blob : t -> from:Net.host -> id:int -> blob
(** A handle to an existing BLOB by id; one round-trip to the version
    manager. Raises [Not_found] for unknown ids. *)

val blob_id : blob -> int
(** The BLOB's deployment-unique id. *)

val capacity : blob -> int
(** The byte capacity fixed at creation. *)

val stripe_size : blob -> int
(** The chunking granularity (from {!Types.params}). *)

val service : blob -> t
(** The deployment this handle belongs to. *)

val latest_version : blob -> from:Net.host -> int
(** Most recently published version; one round-trip to the version
    manager. *)

val versions : blob -> int list
(** Every published version, ascending. Cost-free metadata peek. *)

val write : blob -> from:Net.host -> ?base:int -> offset:int -> Payload.t -> int
(** [write blob ~from ~offset payload] stores the payload (striped,
    replicated, in parallel up to the client window) as a snapshot derived
    from [base] (default: current latest) and returns the new version
    number. Partial-stripe updates read–modify–write the affected chunks.
    Raises [Invalid_argument] when the range exceeds the blob capacity. *)

val read : blob -> from:Net.host -> version:int -> offset:int -> len:int -> Payload.t
(** Never-written ranges read as zeros. Prefers a chunk replica hosted on
    [from] (a local read costs no network). Raises
    {!Types.Provider_down} when all replicas of a needed chunk are dead. *)

val write_multi : blob -> from:Net.host -> ?base:int -> (int * Payload.t) list -> int
(** [write_multi blob ~from runs] stores several discontiguous
    [(offset, payload)] runs and publishes them as a {e single} new
    version — one incremental snapshot no matter how scattered the dirty
    chunks are. Runs must not overlap.

    With [params.dedup] (the default) every chunk's content digest is
    resolved at the provider manager before placement: chunks whose
    content is already stored reference the existing replicas and ship
    zero bytes. Chunks stream through the client write window, so content
    production, digesting, dedup lookups and replica writes of different
    chunks overlap. *)

(** Per-write accounting returned by {!write_chunks}: how many chunks
    (and payload bytes) were physically shipped, satisfied by the dedup
    index, or suppressed as clean rewrites. *)
type write_stats = {
  chunks_total : int;
  chunks_shipped : int;
  chunks_deduped : int;
  chunks_suppressed : int;
  bytes_shipped : int;
  bytes_deduped : int;
  bytes_suppressed : int;
}

val empty_write_stats : write_stats
(** All counters zero. *)

val add_write_stats : write_stats -> write_stats -> write_stats
(** Field-wise sum (accumulating stats across commits). *)

val write_chunks :
  blob ->
  from:Net.host ->
  ?base:int ->
  ?suppress_clean:bool ->
  ?hints:(int * int64) list ->
  (int * (unit -> Payload.t)) list ->
  int * write_stats
(** [write_chunks blob ~from jobs] publishes one new version from
    whole-chunk jobs [(chunk index, content thunk)] — the mirroring
    module's pipelined [COMMIT] path. Thunks run {e inside} the write
    window, so per-chunk content production (e.g. the local-disk read of
    a dirty chunk) is pipelined with digesting, dedup resolution and
    replica writes of other chunks; each thunk must return exactly the
    chunk's extent. With [~suppress_clean:true], a chunk whose content
    digest equals the base version's descriptor (or all-zero content on
    an unwritten leaf) is dropped from the update entirely — a clean
    rewrite publishes no new descriptor and ships nothing. Chunk indices
    must be distinct.

    [hints] maps chunk indices to the digest of the content their thunk
    will produce (the mirror's digest cache, carried across epochs).
    Hinted chunks resolve clean-rewrite suppression and dedup from the
    digest alone: suppressed and dedup-hit chunks never run their thunk
    (no payload read, no digest), and all hinted dedup lookups share one
    batched provider-manager round trip. Only chunks that must physically
    ship produce content, which is verified against the hint
    ([Invalid_argument] on mismatch — a cache-coherence bug at the
    caller). Ignored when [params.digest_cache] is off. *)

val dedup_stats : t -> Dedup_index.stats
(** Deployment-wide dedup counters (hits, misses, bytes saved, live index
    entries). *)

(** Commit-path digest-work accounting: chunks whose digest was computed
    from content bytes (digested), reused from a carried hint (cached), or
    never needed at all (skipped — clean rewrites caught by a hint or at
    the mirror before reaching the client). *)
type digest_stats = {
  chunks_digested : int;
  chunks_cached : int;
  chunks_skipped : int;
  bytes_digested : int;
  bytes_cached : int;
  bytes_skipped : int;
}

val empty_digest_stats : digest_stats
(** All counters zero. *)

val digest_stats : t -> digest_stats
(** Deployment-lifetime digest-work counters (also mirrored into the
    [blob.digest_*] metrics). *)

val note_digest_skipped : t -> chunks:int -> bytes:int -> unit
(** Account digest work avoided {e before} the commit path — the mirror's
    write-time clean-rewrite skips, which keep chunks out of the dirty set
    entirely — so [digest_stats] and the [blob.digest_*] metrics cover the
    whole pipeline. *)

val merkle_root : blob -> version:int -> int64
(** Incremental Merkle root of the snapshot's logical content (leaf
    function {!Types.desc_content_digest}): equal across versions, sites
    and repairs iff the content agrees. Memoized on shadow-shared subtree
    nodes, so successive versions cost O(changed · log n). Free of
    simulated cost; host-side work is counted in the [blob.merkle_*]
    metrics. *)

val with_merkle_metrics : (unit -> 'a) -> 'a
(** Run [f] and fold the {!Segment_tree.merkle_counters} delta it caused
    into the [blob.merkle_node_hashes] / [blob.merkle_node_reuses]
    metrics — for Merkle users outside this module (scrubber, compactor,
    audits). *)

val read_chunk : blob -> from:Net.host -> version:int -> chunk:int -> Payload.t
(** Fetch exactly one chunk (zeros if unwritten); chunk-granular metadata
    cost. *)

val read_desc : blob -> from:Net.host -> Types.chunk_desc -> Payload.t
(** Fetch one chunk's content straight from its descriptor — provider and
    network cost only, no version-manager or metadata round trips. Same
    digest verification and replica failover as {!read_chunk}. For callers
    that already hold the descriptor (the geo-replicator, whose journal
    records carry the tree delta), so they never load the primary's
    control plane. *)

val chunk_identity : blob -> version:int -> chunk:int -> (int * int) option
(** Physical identity [(provider, chunk_id)] of the primary replica, or
    [None] for unwritten chunks. Cost-free metadata peek used to coalesce
    fetches of chunks shared between snapshots (adaptive prefetching). *)

val chunk_host : blob -> version:int -> chunk:int -> Net.host option
(** Host of the primary replica's provider. Cost-free. *)

val clone : blob -> from:Net.host -> version:int -> blob
(** Zero-copy fork (the mirroring module's [CLONE] primitive). *)

val version_bytes : blob -> version:int -> int
(** Logical bytes referenced by a snapshot (sum of its chunk sizes). *)

val delta_bytes : blob -> base:int -> version:int -> int
(** Bytes of chunks that [version] does not share with [base] — the
    incremental size of a snapshot. Cost-free metadata computation. *)

val distinct_bytes : blob -> int
(** Physical bytes consumed by all versions of this blob together,
    counting shared chunks once — what incremental snapshotting saves. *)

val tree : blob -> version:int -> Version_manager.tree
(** The snapshot's metadata root (used by the garbage collector and by
    white-box tests). Free of simulated cost. *)

val live_chunk_refs : t -> (int * int, int) Hashtbl.t
(** Mark set over the whole repository: reference count per physical
    [(provider, chunk_id)] pair across every live version tree. Cost-free
    metadata walk in deterministic (blob, version) order — the GC's and
    the compactor's sweep input. *)

val live_digest_refs : t -> (int64 * (int * int * Types.replica list)) list
(** Live logical references per content digest: distinct descriptor
    serials carrying it across the live trees, with size and an exemplar
    replica set, sorted by digest. The ground truth the dedup index is
    reconciled against after retention drops versions. Cost-free. *)
