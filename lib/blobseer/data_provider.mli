(** BlobSeer data provider: stores chunks on the local disk of a compute
    node and serves them over the network. *)

open Simcore
open Netsim
open Storage

type t

val create :
  Engine.t ->
  Net.t ->
  host:Net.host ->
  disk:Disk.t ->
  ?request_overhead:float ->
  name:string ->
  unit ->
  t
(** Stand up a provider on [host] persisting to [disk].
    [request_overhead] (default 0) is charged per served request. *)

val name : t -> string
(** The name passed at creation. *)

val host : t -> Net.host
(** The host the provider serves from. *)

val disk : t -> Disk.t
(** The local disk chunks are persisted on. *)

val store : t -> Content_store.t
(** The in-memory content plane (white-box access for tests and
    audits). *)

val is_alive : t -> bool
(** [false] between {!fail} and {!recover}. *)

val fail : t -> unit
(** Fail-stop: the provider stops serving and its locally stored data is
    considered lost (the paper's failure model). *)

val recover : t -> unit
(** Bring the provider back empty (a replacement node). *)

val write_chunk : t -> from:Net.host -> Payload.t -> Content_store.chunk_id
(** Ship the payload from [from] to the provider and persist it. Blocks for
    network transfer, service overhead and disk write.
    Raises {!Types.Provider_down} if the provider is dead. *)

val read_chunk : t -> to_:Net.host -> Content_store.chunk_id -> Payload.t
(** Fetch a chunk back to [to_]. Raises {!Types.Provider_down} if dead, and
    [Not_found] if the chunk id is unknown. *)

val corrupt_chunk : t -> salt:int -> Content_store.chunk_id -> bool
(** Silently overwrite the stored copy with deterministic garbage derived
    from [salt], leaving the recorded digest stale. Returns [false] (no-op)
    if the provider is dead or the chunk unknown. Costs nothing: it models
    media corruption, not an operation. *)

val verify_chunk : t -> Content_store.chunk_id -> bool
(** Local integrity check: recompute the stored payload's digest and compare
    to the one recorded at write time. [false] for dead providers and
    unknown chunks. Costs nothing (used by audits and the scrubber's local
    pass; network-visible verification happens in the client). *)

val delete_chunk : t -> Content_store.chunk_id -> unit
(** Drop one reference; frees disk space when the chunk dies. No service
    cost is charged (reclamation is a background activity). *)

val chunk_count : t -> int
(** Live chunks currently stored. *)

val stored_bytes : t -> int
(** Logical bytes of live chunks currently stored. *)
