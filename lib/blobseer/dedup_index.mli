(** Content-addressed chunk index: digest → replica set, with logical
    reference counts.

    Owned by the {!Provider_manager}. Before allocating placements for a
    chunk write, the client (through the provider manager) resolves the
    chunk's content digest here: a {e hit} returns the replicas of an
    already-stored identical chunk — the write ships zero bytes and the
    new descriptor simply references the existing copies; a {e miss}
    claims the digest, takes the normal write path and registers the
    fresh replicas.

    Reference counts are {e logical}: [refs d] is the number of distinct
    descriptor serials carrying digest [d] across all live (blob,
    version) segment trees. They are bumped by {!Version_manager.publish}
    after the journal commit (so rolled-back publications never count)
    and recomputed from the live trees by [Gc.collect]'s reconciliation —
    which also drops entries no live version references, making the
    physical chunk reclaimable. The invariant audit checks index
    refcounts against the live trees at teardown. *)

open Simcore

type t

type stats = {
  hits : int;  (** writes satisfied by an existing identical chunk *)
  misses : int;  (** writes that claimed a fresh digest *)
  bytes_saved : int;  (** payload bytes not shipped thanks to hits *)
  entries : int;  (** digests currently indexed *)
}

val create : Engine.t -> t
(** An empty index (the engine is used to block concurrent claimants of
    the same digest). *)

(** Outcome of {!resolve}. *)
type resolution =
  | Hit of Types.replica list
      (** Identical content is stored and validated: reference these
          replicas, move no data. *)
  | Claimed
      (** No valid copy exists; the caller now owns the digest and must
          {!publish} (after a successful write) or {!abandon} (on
          failure) — other writers of the same content are blocked on
          the outcome. *)

val resolve :
  t -> digest:int64 -> size:int -> validate:(Types.replica list -> bool) -> resolution
(** Resolve a digest prior to writing. [validate] is consulted on a
    candidate hit (with the indexed replicas); returning [false] drops
    the stale mapping and the resolution proceeds as a miss. Blocks (via
    an {!Engine.Ivar}) while another writer holds an in-flight claim on
    the same digest. Must be called from inside a fiber. *)

(** Outcome of {!resolve_nowait}. *)
type nowait_resolution =
  | Now_hit of Types.replica list  (** as {!resolution.Hit} *)
  | Now_claimed  (** as {!resolution.Claimed} *)
  | Now_busy
      (** another writer holds an in-flight claim on this digest; the
          caller must retry through the blocking {!resolve} path *)

val resolve_nowait :
  t ->
  digest:int64 ->
  size:int ->
  validate:(Types.replica list -> bool) ->
  nowait_resolution
(** Like {!resolve} but never blocks: an in-flight claim by another writer
    yields [Now_busy] instead of waiting. Batch resolvers use this so they
    never hold one claim while blocked on another — the deadlock a pair of
    clients claiming overlapping digest sets in opposite orders would
    otherwise reach. Safe to call outside a fiber. *)

val publish : t -> digest:int64 -> size:int -> replicas:Types.replica list -> unit
(** Register freshly written replicas under their digest and release the
    in-flight claim (waiters re-resolve and hit). The new entry starts at
    0 refs — references are counted at version publication — unless a
    previous entry for this digest was dropped as stale, in which case the
    refcount it carried (live descriptors still reference the content) is
    inherited. *)

val abandon : t -> digest:int64 -> unit
(** Release an in-flight claim without registering (the write failed).
    Waiters re-resolve; one of them claims. Safe to call when no claim is
    held. *)

val add_ref : t -> int64 -> unit
(** Count one live descriptor referencing the digest. No-op for unknown
    digests (e.g. descriptors written with dedup disabled). *)

val release_ref : t -> int64 -> unit
(** Uncount one live descriptor reference (compactor retire path: a
    distinct serial carrying the digest left the live trees). Clamps at
    zero; no-op for unknown digests. An entry released to zero references
    stays registered — a later write of the same content revalidates its
    replicas and either hits or re-registers. *)

val drop_unreferenced : t -> int64 -> bool
(** Remove the entry for [digest] if its refcount is zero (compactor
    reclamation path: the physical chunks are queued for deletion, so the
    entry must stop serving dedup hits). Returns whether an entry was
    dropped; no-op on referenced or unknown digests. *)

val update_replicas : t -> digest:int64 -> replicas:Types.replica list -> unit
(** Scrub repair: point the index at the repaired replica set so future
    hits reference healthy copies. No-op for unknown digests. *)

val reconcile : t -> (int64 * (int * int * Types.replica list)) list -> int
(** [reconcile t live] resets the index to exactly the live state computed
    by the GC from the surviving trees: [live] maps each digest to its
    [(refs, size, exemplar replicas)]. Existing entries get their refs
    set; missing digests are (re-)inserted; entries for digests no live
    version references are dropped and their count returned — those
    physical chunks are now reclaimable by the sweep. Callers must pass a
    deterministically ordered list. *)

val view : t -> (int64 * int * int * Types.replica list) list
(** Snapshot [(digest, refs, size, replicas)], sorted by digest — the
    audit's view. *)

val stats : t -> stats
(** Deployment-lifetime hit/miss/savings counters. *)

val unsafe_set_refs : t -> digest:int64 -> int -> unit
(** Test hook: corrupt a refcount to exercise the invariant audit. *)
