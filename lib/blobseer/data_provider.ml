open Simcore
open Netsim
open Storage

type t = {
  engine : Engine.t;
  net : Net.t;
  pname : string;
  phost : Net.host;
  pdisk : Disk.t;
  mutable pstore : Content_store.t;
  service : Rate_server.t;
  mutable alive : bool;
}

let create engine net ~host ~disk ?(request_overhead = Types.default_params.request_overhead)
    ~name () =
  {
    engine;
    net;
    pname = name;
    phost = host;
    pdisk = disk;
    pstore = Content_store.create ();
    service =
      Rate_server.create engine ~rate:1e12 ~per_op:request_overhead ~name:(name ^ ".svc") ();
    alive = true;
  }

let name t = t.pname
let host t = t.phost
let disk t = t.pdisk
let store t = t.pstore
let is_alive t = t.alive

let fail t =
  t.alive <- false;
  (* Locally stored data is lost with the machine. *)
  Disk.free t.pdisk (Content_store.total_bytes t.pstore);
  t.pstore <- Content_store.create ()

let recover t = t.alive <- true

let check_alive t =
  if not t.alive then raise (Types.Provider_down t.pname)

(* BlobSeer data providers are log-structured: every chunk is written
   out-of-place, so provider writes stay sequential no matter how many
   clients interleave — one of the reasons BlobSeer sustains heavy write
   concurrency better than an in-place file system. *)
let append_stream t = 1_000_000 + Net.host_id t.phost

(* Local disk I/O retries transient injected errors on the provider side,
   so a flaky spindle does not surface to clients that still have the
   network round-trip invested in this replica. *)
let disk_retries = 3

let write_chunk t ~from payload =
  check_alive t;
  let bytes = Payload.length payload in
  Net.transfer t.net ~src:from ~dst:t.phost bytes;
  check_alive t;
  Rate_server.process t.service 0;
  Faults.with_retries t.engine ~retries:disk_retries ~label:t.pname (fun () ->
      Disk.write t.pdisk ~stream:(append_stream t) bytes);
  check_alive t;
  Content_store.put t.pstore payload

let read_chunk t ~to_ chunk =
  check_alive t;
  let payload = Content_store.get t.pstore chunk in
  Rate_server.process t.service 0;
  Faults.with_retries t.engine ~retries:disk_retries ~label:t.pname (fun () ->
      Disk.read t.pdisk ~stream:(Net.host_id to_) (Payload.length payload));
  check_alive t;
  Net.transfer t.net ~src:t.phost ~dst:to_ (Payload.length payload);
  payload

(* Silent corruption: flip bytes of the stored copy in place. The digest
   recorded at write time is left untouched, so readers and the scrubber
   detect the damage by recomputing. [salt] seeds the replacement pattern so
   distinct corruption events produce distinct (but deterministic) garbage. *)
let corrupt_chunk t ~salt chunk =
  if t.alive && Content_store.mem t.pstore chunk then begin
    let len = Payload.length (Content_store.get t.pstore chunk) in
    let garbage = Payload.pattern ~seed:(Int64.of_int (0x5EED_0000 + salt)) (max len 1) in
    Content_store.corrupt t.pstore chunk (Payload.sub garbage ~pos:0 ~len);
    true
  end
  else false

let verify_chunk t chunk =
  t.alive
  && Content_store.mem t.pstore chunk
  && Payload.digest (Content_store.get t.pstore chunk)
     = Content_store.recorded_digest t.pstore chunk

let delete_chunk t chunk =
  if t.alive && Content_store.mem t.pstore chunk then begin
    let bytes = Payload.length (Content_store.get t.pstore chunk) in
    Content_store.decr_ref t.pstore chunk;
    if not (Content_store.mem t.pstore chunk) then Disk.free t.pdisk bytes
  end

let chunk_count t = Content_store.chunk_count t.pstore
let stored_bytes t = Content_store.total_bytes t.pstore
