open Simcore
open Netsim
open Storage

type config = {
  interval : float;
  policy : Retention.policy;
  read_retries : int;
  read_backoff : float;
  deep_verify : bool;
}

let default_config =
  {
    interval = 10.0;
    policy = Retention.Keep_last 4;
    read_retries = 3;
    read_backoff = 0.01;
    deep_verify = false;
  }

type crash_point = Before_flatten | Mid_retire | After_retire

let pp_crash_point ppf = function
  | Before_flatten -> Fmt.string ppf "before-flatten"
  | Mid_retire -> Fmt.string ppf "mid-retire"
  | After_retire -> Fmt.string ppf "after-retire"

type refusal = { rblob : int; rversion : int; rsource : string }

(* The journaled intent: appended before the first retire, committed after
   the sweep queue is updated. [retire] names the exact versions, so
   recovery can tell a transaction that never mutated (every version still
   live -> roll back) from one that did (roll forward). [boundary] is the
   youngest surviving version the flatten verified — informational, for
   journal dumps and tests. *)
type intent = Compact of { blob : int; retire : int list; boundary : int }

type event =
  | Pass_started of { at : float; pass : int }
  | Flattened of {
      at : float;
      blob : int;
      boundary : int;
      verified : int;
      shared : int;
      bytes_read : int;
      bytes_local : int;
    }
  | Flatten_failed of { at : float; blob : int; reason : string }
  | Refused of { at : float; refusal : refusal }
  | Parity_failed of { at : float; blob : int; digest : int64 }
  | Compacted of { at : float; blob : int; retired : int list }
  | Reclaimed of { at : float; chunks : int; bytes : int }
  | Crashed of { at : float; point : crash_point }
  | Recovered of { at : float; rolled_forward : int; rolled_back : int }
  | Pass_finished of { at : float; pass : int; retired : int }

let pp_event ppf = function
  | Pass_started { at; pass } -> Fmt.pf ppf "t=%.3f pass %d started" at pass
  | Flattened { at; blob; boundary; verified; shared; bytes_read; bytes_local } ->
      Fmt.pf ppf "t=%.3f flattened blob %d to v%d (%d verified, %d shared, %d B read, %d B local)"
        at blob boundary verified shared bytes_read bytes_local
  | Flatten_failed { at; blob; reason } ->
      Fmt.pf ppf "t=%.3f flatten failed blob %d (%s)" at blob reason
  | Refused { at; refusal = { rblob; rversion; rsource } } ->
      Fmt.pf ppf "t=%.3f refused blob %d v%d (pinned by %s)" at rblob rversion rsource
  | Parity_failed { at; blob; digest } ->
      Fmt.pf ppf "t=%.3f parity failed blob %d (digest %Lx)" at blob digest
  | Compacted { at; blob; retired } ->
      Fmt.pf ppf "t=%.3f compacted blob %d (retired %a)" at blob Fmt.(list ~sep:comma int)
        retired
  | Reclaimed { at; chunks; bytes } ->
      Fmt.pf ppf "t=%.3f reclaimed %d chunks (%d B)" at chunks bytes
  | Crashed { at; point } -> Fmt.pf ppf "t=%.3f crashed at %a" at pp_crash_point point
  | Recovered { at; rolled_forward; rolled_back } ->
      Fmt.pf ppf "t=%.3f recovered (%d forward, %d back)" at rolled_forward rolled_back
  | Pass_finished { at; pass; retired } ->
      Fmt.pf ppf "t=%.3f pass %d finished (%d retired)" at pass retired

type stats = {
  passes : int;
  flattens : int;
  flatten_failures : int;
  chunks_verified : int;
  chunks_shared : int;
  flatten_bytes_read : int;
  flatten_bytes_local : int;
  merkle_clean_bounds : int;
  read_retries : int;
  versions_retired : int;
  chunks_reclaimed : int;
  bytes_reclaimed : int;
  refusals : int;
  parity_failures : int;
  crashes : int;
  rolled_forward : int;
  rolled_back : int;
}

let m_retired = Obs.Metrics.counter ~component:"cmpct" ~name:"versions_retired"
let m_reclaimed = Obs.Metrics.counter ~component:"cmpct" ~name:"bytes_reclaimed"
let m_flatten_read = Obs.Metrics.counter ~component:"cmpct" ~name:"flatten_bytes_read"
let m_flatten_local = Obs.Metrics.counter ~component:"cmpct" ~name:"flatten_bytes_local"

type t = {
  service : Client.t;
  home : Net.host;
  config : config;
  journal : intent Journal.t;
  mutable pin_sources : (string * (unit -> (int * int) list)) list;
  handles : (int, Client.blob) Hashtbl.t;
  (* Deferred physical reclamation: (provider, chunk) -> pass at which the
     chunk lost its last live reference. Deletion happens one full pass
     later, and only if still unreferenced — the grace window covers any
     writer that resolved a dedup hit on the chunk before its digest entry
     was dropped but has not yet published. *)
  pending_sweep : (int * int, int) Hashtbl.t;
  mutable alive : bool;
  mutable armed : crash_point option;
  mutable passes : int;
  mutable flattens : int;
  mutable flatten_failures : int;
  mutable chunks_verified : int;
  mutable chunks_shared : int;
  mutable flatten_bytes_read : int;
  mutable flatten_bytes_local : int;
  mutable merkle_clean_bounds : int;
  mutable boundary_roots_rev : (int * int * int64) list;
  mutable read_retries : int;
  mutable versions_retired : int;
  mutable chunks_reclaimed : int;
  mutable bytes_reclaimed : int;
  mutable refusal_count : int;
  mutable parity_failures : int;
  mutable crashes : int;
  mutable rolled_forward : int;
  mutable rolled_back : int;
  mutable events_rev : event list;
  mutable refusals_rev : refusal list;
  mutable deleted_log : (int * int) list;
  mutable fiber : Engine.fiber option;
}

type Engine.audit_subject += Audit_compactor of t

let create service ~home ?(config = default_config) () =
  let t =
    {
      service;
      home;
      config;
      journal = Journal.create ~name:"compactor" ();
      pin_sources = [];
      handles = Hashtbl.create 8;
      pending_sweep = Hashtbl.create 64;
      alive = true;
      armed = None;
      passes = 0;
      flattens = 0;
      flatten_failures = 0;
      chunks_verified = 0;
      chunks_shared = 0;
      flatten_bytes_read = 0;
      flatten_bytes_local = 0;
      merkle_clean_bounds = 0;
      boundary_roots_rev = [];
      read_retries = 0;
      versions_retired = 0;
      chunks_reclaimed = 0;
      bytes_reclaimed = 0;
      refusal_count = 0;
      parity_failures = 0;
      crashes = 0;
      rolled_forward = 0;
      rolled_back = 0;
      events_rev = [];
      refusals_rev = [];
      deleted_log = [];
      fiber = None;
    }
  in
  Engine.register_audit_subject (Client.engine service) (Audit_compactor t);
  t

let service t = t.service
let engine t = Client.engine t.service
let now t = Engine.now (engine t)
let record t e = t.events_rev <- e :: t.events_rev
let is_alive t = t.alive
let journal_pending t = Journal.pending_count t.journal
let arm_crash t point = t.armed <- Some point

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.crashes <- t.crashes + 1
  end

let check_alive t = if not t.alive then raise (Types.Service_crashed "compactor")

let maybe_crash t point =
  match t.armed with
  | Some p when p = point ->
      t.armed <- None;
      t.alive <- false;
      t.crashes <- t.crashes + 1;
      record t (Crashed { at = now t; point });
      raise (Types.Service_crashed "compactor")
  | _ -> ()

let add_pin_source t ~name f = t.pin_sources <- t.pin_sources @ [ (name, f) ]

(* All pins right now, labelled by source; registration order, so the
   first source pinning a version names the refusal. *)
let gather_pins t =
  List.concat_map (fun (name, f) -> List.map (fun site -> (site, name)) (f ())) t.pin_sources

let refuse t ~blob ~version ~source =
  let refusal = { rblob = blob; rversion = version; rsource = source } in
  t.refusal_count <- t.refusal_count + 1;
  t.refusals_rev <- refusal :: t.refusals_rev;
  record t (Refused { at = now t; refusal })

let handle t blob =
  match Hashtbl.find_opt t.handles blob with
  | Some h -> h
  | None ->
      let h = Client.open_blob t.service ~from:t.home ~id:blob in
      Hashtbl.replace t.handles blob h;
      h

(* Same transient classifier as the scrubber: these abort the current
   transaction (intent rolled back) and the next pass retries; anything
   else — notably Service_crashed and Cancelled — passes through. *)
let transient = function
  | Types.Provider_down _ | Faults.Injected_error _ | Not_found | Disk.Full _ -> true
  | _ -> false

let read_desc_retrying t h desc =
  let attempts = ref 0 in
  let payload =
    Faults.with_retries (engine t) ~retries:t.config.read_retries
      ~backoff:t.config.read_backoff ~label:"compactor"
      (fun () ->
        incr attempts;
        Client.read_desc h ~from:t.home desc)
  in
  t.read_retries <- t.read_retries + (!attempts - 1);
  payload

(* Survivors whose immediately preceding live version is being retired:
   after compaction they head a flattened segment, so a restart from them
   must not depend on chunks only the retired run held. *)
let boundaries ~live ~retire =
  let rec go prev_retired = function
    | [] -> []
    | v :: rest ->
        if List.mem v retire then go true rest
        else if prev_retired then v :: go false rest
        else go false rest
  in
  go false live

(* A replica that can serve a restart: provider live, chunk present, and
   the stored bytes verify against the digest the writer published.
   Provider-local — no network, no simulated cost. *)
let replica_ok t (desc : Types.chunk_desc) (r : Types.replica) =
  let p = Client.data_provider t.service r.provider in
  Data_provider.is_alive p
  && Content_store.mem (Data_provider.store p) r.chunk
  && Content_store.recorded_digest (Data_provider.store p) r.chunk = desc.digest
  && Data_provider.verify_chunk p r.chunk

(* Flatten verification: every chunk of each boundary version that is
   {e cold} — i.e. differs from the live tip (leaves shared with the tip
   stay hot through ordinary reads and later snapshots) — must be
   restartable after the intermediates go away. By default a boundary
   version is verified wholesale by one subtree-digest compare: its
   descriptor-side Merkle root against a storage-side root whose leaf is
   the descriptor's content digest when at least one replica verifies
   provider-locally and a poisoned marker otherwise. Agreeing roots prove
   every chunk readable without a single payload read, and the
   per-flatten memo verifies shadow-shared subtrees once. On a root
   mismatch the per-chunk path runs (memoized by physical identity):
   provider-local verification first, a full remote verify-read only as
   fallback. [deep_verify] forces the remote-read path for every cold
   chunk — the pre-Merkle behavior. Returns
   (verified, shared, bytes_read, bytes_local). *)
let flatten t ~blob ~bounds =
  let vm = Client.version_manager t.service in
  let h = handle t blob in
  let latest = Version_manager.peek_latest vm blob in
  let latest_tree = Version_manager.peek_tree vm ~blob ~version:latest in
  let seen : (int64 * Types.replica list, unit) Hashtbl.t = Hashtbl.create 64 in
  let storage_memo = Hashtbl.create 64 in
  let storage_leaf (desc : Types.chunk_desc) =
    if List.exists (replica_ok t desc) desc.replicas then Types.desc_content_digest desc
    else Int64.lognot (Types.desc_content_digest desc)
  in
  let verified = ref 0 and shared = ref 0 in
  let bytes = ref 0 and local_bytes = ref 0 in
  List.iter
    (fun version ->
      let tree = Version_manager.peek_tree vm ~blob ~version in
      let occupied = Segment_tree.fold_set (fun _ _ n -> n + 1) tree 0 in
      let root = Client.merkle_root h ~version in
      let clean =
        (not t.config.deep_verify)
        && Client.with_merkle_metrics (fun () ->
               Segment_tree.merkle_digest_with ~memo:storage_memo ~digest:storage_leaf tree)
           = root
      in
      if clean then t.merkle_clean_bounds <- t.merkle_clean_bounds + 1;
      let cold = ref 0 in
      List.iter
        (fun (_, _, leaf) ->
          match (leaf : Types.chunk_desc option) with
          | None -> ()
          | Some desc ->
              incr cold;
              let key = (desc.digest, desc.replicas) in
              if Hashtbl.mem seen key then incr shared
              else begin
                Hashtbl.replace seen key ();
                incr verified;
                if
                  clean
                  || ((not t.config.deep_verify)
                     && List.exists (replica_ok t desc) desc.replicas)
                then local_bytes := !local_bytes + desc.size
                else begin
                  ignore (read_desc_retrying t h desc);
                  bytes := !bytes + desc.size
                end
              end)
        (Segment_tree.diff_leaves latest_tree tree);
      shared := !shared + (occupied - !cold);
      t.boundary_roots_rev <- (blob, version, root) :: t.boundary_roots_rev)
    bounds;
  (!verified, !shared, !bytes, !local_bytes)

(* Dedup refcount parity gate: for every digest the candidate trees
   reference, the index refcount must equal the live distinct-serial
   count. Retiring on top of a drifted index would compound the drift, so
   a mismatch vetoes the blob's compaction this pass (the audit will name
   the drift). Trivially passes with dedup disabled. *)
let parity_mismatch t ~trees =
  if not (Client.params t.service).Types.dedup then None
  else begin
    let dedup = Provider_manager.dedup_index (Client.provider_manager t.service) in
    let wanted = Hashtbl.create 32 in
    List.iter
      (fun tree ->
        Segment_tree.fold_set
          (fun _ (d : Types.chunk_desc) () -> Hashtbl.replace wanted d.digest ())
          tree ())
      trees;
    let live = Hashtbl.create 64 in
    List.iter
      (fun (digest, (refs, _, _)) -> Hashtbl.replace live digest refs)
      (Client.live_digest_refs t.service);
    let index = Hashtbl.create 64 in
    List.iter
      (fun (digest, refs, _, _) -> Hashtbl.replace index digest refs)
      (Dedup_index.view dedup);
    (* lint: allow hashtbl-order — sorted below *)
    Hashtbl.fold (fun d () acc -> d :: acc) wanted []
    |> List.sort Int64.compare
    |> List.find_opt (fun d ->
           Option.value ~default:0 (Hashtbl.find_opt live d)
           <> Option.value ~default:0 (Hashtbl.find_opt index d))
  end

(* Queue every physical chunk the retired trees referenced that no live
   tree references any more, and drop dedup entries released to zero so
   the doomed chunks stop serving hits. Runs inside the atomic (no
   simulated time) tail of the transaction. *)
let release_and_queue t ~retired_trees =
  let vm = Client.version_manager t.service in
  let dedup = Provider_manager.dedup_index (Client.provider_manager t.service) in
  (* Logical release: each (digest, serial) pair present in a retired tree
     but in no surviving live tree was one live reference. *)
  let surviving = Hashtbl.create 256 in
  Version_manager.iter_live_trees vm (fun ~blob:_ ~version:_ tree ->
      Segment_tree.fold_set
        (fun _ (d : Types.chunk_desc) () -> Hashtbl.replace surviving (d.digest, d.serial) ())
        tree ());
  let released = Hashtbl.create 64 in
  List.iter
    (fun tree ->
      Segment_tree.fold_set
        (fun _ (d : Types.chunk_desc) () ->
          let pair = (d.digest, d.serial) in
          if (not (Hashtbl.mem surviving pair)) && not (Hashtbl.mem released pair) then begin
            Hashtbl.replace released pair ();
            Dedup_index.release_ref dedup d.digest;
            ignore (Dedup_index.drop_unreferenced dedup d.digest)
          end)
        tree ())
    retired_trees;
  (* Physical queue: replicas of the retired trees that no live tree
     references go into the deferred sweep. *)
  let live = Client.live_chunk_refs t.service in
  List.iter
    (fun tree ->
      Segment_tree.fold_set
        (fun _ (d : Types.chunk_desc) () ->
          List.iter
            (fun (r : Types.replica) ->
              let key = (r.provider, r.chunk) in
              if (not (Hashtbl.mem live key)) && not (Hashtbl.mem t.pending_sweep key) then
                Hashtbl.replace t.pending_sweep key t.passes)
            d.replicas)
        tree ())
    retired_trees

(* Deferred sweep: delete every queued chunk that aged a full pass and is
   still unreferenced. A chunk that became live again (a dedup-hit holder
   published during the grace window) is spared and dequeued; one whose
   provider died or that something else already deleted is dequeued
   without being counted as reclaimed. *)
let sweep_aged t =
  let live = Client.live_chunk_refs t.service in
  let aged =
    (* lint: allow hashtbl-order — sorted below *)
    Hashtbl.fold (fun key pass acc -> if pass < t.passes then key :: acc else acc)
      t.pending_sweep []
    |> List.sort (fun (p1, c1) (p2, c2) ->
           match Int.compare p1 p2 with 0 -> Int.compare c1 c2 | n -> n)
  in
  let chunks = ref 0 and bytes = ref 0 in
  List.iter
    (fun ((provider, chunk) as key) ->
      Hashtbl.remove t.pending_sweep key;
      if Hashtbl.mem live key then () (* resurrected by a publish: spare it *)
      else begin
        let p = Client.data_provider t.service provider in
        if Data_provider.is_alive p && Content_store.mem (Data_provider.store p) chunk then begin
          let size = Payload.length (Content_store.get (Data_provider.store p) chunk) in
          Data_provider.delete_chunk p chunk;
          t.deleted_log <- key :: t.deleted_log;
          incr chunks;
          bytes := !bytes + size
        end
      end)
    aged;
  if !chunks > 0 then begin
    t.chunks_reclaimed <- t.chunks_reclaimed + !chunks;
    t.bytes_reclaimed <- t.bytes_reclaimed + !bytes;
    Obs.Metrics.add m_reclaimed (float_of_int !bytes);
    record t (Reclaimed { at = now t; chunks = !chunks; bytes = !bytes })
  end

(* One blob's compaction transaction. The flatten passes simulated time
   (network + disk reads); everything from the first retire to the journal
   commit is atomic — no sleeps, no I/O — so the only mid-transaction
   interleavings are the armed crash points themselves. *)
let compact_blob t ~blob ~(plan : Retention.plan) =
  let vm = Client.version_manager t.service in
  let retire = plan.Retention.retire in
  let live = Version_manager.versions vm ~blob in
  let bounds = boundaries ~live ~retire in
  let boundary = List.fold_left max 0 bounds in
  let jid = Journal.append t.journal (Compact { blob; retire; boundary }) in
  maybe_crash t Before_flatten;
  match flatten t ~blob ~bounds with
  | exception e when transient e ->
      Journal.abort t.journal jid;
      t.flatten_failures <- t.flatten_failures + 1;
      record t (Flatten_failed { at = now t; blob; reason = Printexc.to_string e });
      0
  | exception (Types.Service_crashed _ as e) when t.alive ->
      (* The version manager (not us) died under the flatten: nothing was
         retired, so resolve the intent now instead of at recovery. *)
      Journal.abort t.journal jid;
      t.flatten_failures <- t.flatten_failures + 1;
      record t (Flatten_failed { at = now t; blob; reason = Printexc.to_string e });
      raise e
  | verified, shared, bytes_read, bytes_local -> (
      t.flattens <- t.flattens + 1;
      t.chunks_verified <- t.chunks_verified + verified;
      t.chunks_shared <- t.chunks_shared + shared;
      t.flatten_bytes_read <- t.flatten_bytes_read + bytes_read;
      t.flatten_bytes_local <- t.flatten_bytes_local + bytes_local;
      Obs.Metrics.add m_flatten_read (float_of_int bytes_read);
      Obs.Metrics.add m_flatten_local (float_of_int bytes_local);
      record t
        (Flattened { at = now t; blob; boundary; verified; shared; bytes_read; bytes_local });
      match parity_mismatch t ~trees:(List.filter_map
                                        (fun v ->
                                          match Version_manager.peek_tree vm ~blob ~version:v with
                                          | tree -> Some tree
                                          | exception Not_found -> None)
                                        retire)
      with
      | Some digest ->
          Journal.abort t.journal jid;
          t.parity_failures <- t.parity_failures + 1;
          record t (Parity_failed { at = now t; blob; digest });
          0
      | None ->
          (* Atomic from here to the commit. *)
          let retired_trees = ref [] in
          let retired = ref [] in
          let first = ref true in
          (try
             List.iter
               (fun version ->
                 (* The flatten passed simulated time: re-gather pins so a
                    version pinned since planning gets a typed refusal, and
                    skip versions a concurrent GC already dropped. *)
                 match List.assoc_opt (blob, version) (gather_pins t) with
                 | Some source -> refuse t ~blob ~version ~source
                 | None ->
                     if List.mem version (Version_manager.versions vm ~blob) then begin
                       let tree = Version_manager.retire_version vm ~blob ~version in
                       retired_trees := tree :: !retired_trees;
                       retired := version :: !retired;
                       if !first then begin
                         first := false;
                         maybe_crash t Mid_retire
                       end
                     end)
               retire
           with (Types.Service_crashed _ as e) when t.alive && !retired = [] ->
             (* Version manager down at the first retire: nothing mutated,
                resolve the intent here. *)
             Journal.abort t.journal jid;
             record t
               (Flatten_failed { at = now t; blob; reason = "version manager down at retire" });
             raise e);
          maybe_crash t After_retire;
          let retired = List.rev !retired in
          if retired = [] then Journal.abort t.journal jid
          else begin
            release_and_queue t ~retired_trees:(List.rev !retired_trees);
            t.versions_retired <- t.versions_retired + List.length retired;
            Obs.Metrics.incr ~by:(List.length retired) m_retired;
            Journal.commit t.journal jid;
            record t (Compacted { at = now t; blob; retired })
          end;
          List.length retired)

let scan t =
  check_alive t;
  let vm = Client.version_manager t.service in
  t.passes <- t.passes + 1;
  let pass = t.passes in
  record t (Pass_started { at = now t; pass });
  sweep_aged t;
  let retired_total = ref 0 in
  List.iter
    (fun blob ->
      let plan =
        Version_manager.retention_plan vm ~blob ~policy:t.config.policy ~pins:(gather_pins t)
      in
      List.iter
        (fun (version, source) -> refuse t ~blob ~version ~source)
        plan.Retention.pinned_kept;
      if plan.Retention.retire <> [] then
        retired_total := !retired_total + compact_blob t ~blob ~plan)
    (Version_manager.blob_ids vm);
  record t (Pass_finished { at = now t; pass; retired = !retired_total });
  Trace.emit (engine t) ~component:"compactor" "pass %d: %d retired, %d queued" pass
    !retired_total (Hashtbl.length t.pending_sweep)

(* Recovery. A pending intent whose every named version is still live
   never mutated: roll back. One that already lost versions from the live
   set rolls forward — retire the rest (honouring pins that appeared since
   with typed refusals), then reconcile the dedup index against the live
   trees and queue every unreferenced chunk for the deferred sweep: the
   crash destroyed the precise per-tree bookkeeping, so recovery reclaims
   by mark-sweep instead. *)
let restart t =
  let vm = Client.version_manager t.service in
  let forward = ref 0 and back = ref 0 in
  List.iter
    (fun (jid, Compact { blob; retire; _ }) ->
      let live = Version_manager.versions vm ~blob in
      let still_live = List.filter (fun v -> List.mem v live) retire in
      if List.length still_live = List.length retire then begin
        Journal.abort t.journal jid;
        incr back
      end
      else begin
        List.iter
          (fun version ->
            match List.assoc_opt (blob, version) (gather_pins t) with
            | Some source -> refuse t ~blob ~version ~source
            | None ->
                ignore (Version_manager.retire_version vm ~blob ~version);
                t.versions_retired <- t.versions_retired + 1;
                Obs.Metrics.incr m_retired)
          still_live;
        let dedup = Provider_manager.dedup_index (Client.provider_manager t.service) in
        ignore (Dedup_index.reconcile dedup (Client.live_digest_refs t.service));
        let live_refs = Client.live_chunk_refs t.service in
        Array.iteri
          (fun provider p ->
            if Data_provider.is_alive p then
              List.iter
                (fun chunk ->
                  let key = (provider, chunk) in
                  if (not (Hashtbl.mem live_refs key)) && not (Hashtbl.mem t.pending_sweep key)
                  then Hashtbl.replace t.pending_sweep key t.passes)
                (Content_store.ids (Data_provider.store p)))
          (Client.data_providers t.service);
        Journal.commit t.journal jid;
        incr forward
      end)
    (Journal.pending t.journal);
  t.rolled_forward <- t.rolled_forward + !forward;
  t.rolled_back <- t.rolled_back + !back;
  if !forward > 0 || !back > 0 then
    record t (Recovered { at = now t; rolled_forward = !forward; rolled_back = !back });
  t.armed <- None;
  t.alive <- true

let start t =
  match t.fiber with
  | Some _ -> ()
  | None ->
      let body () =
        try
          while true do
            Engine.sleep (engine t) t.config.interval;
            try
              if not t.alive then restart t;
              scan t
            with Types.Service_crashed _ ->
              (* Either our own armed crash fired (recovered on the next
                 tick) or the version manager is down (retried then). *)
              ()
          done
        with Engine.Cancelled -> ()
      in
      t.fiber <- Some (Engine.Fiber.spawn (engine t) ~name:"compactor" body)

let stop t =
  match t.fiber with
  | None -> ()
  | Some fiber ->
      t.fiber <- None;
      Engine.Fiber.cancel fiber

let stats t =
  {
    passes = t.passes;
    flattens = t.flattens;
    flatten_failures = t.flatten_failures;
    chunks_verified = t.chunks_verified;
    chunks_shared = t.chunks_shared;
    flatten_bytes_read = t.flatten_bytes_read;
    flatten_bytes_local = t.flatten_bytes_local;
    merkle_clean_bounds = t.merkle_clean_bounds;
    read_retries = t.read_retries;
    versions_retired = t.versions_retired;
    chunks_reclaimed = t.chunks_reclaimed;
    bytes_reclaimed = t.bytes_reclaimed;
    refusals = t.refusal_count;
    parity_failures = t.parity_failures;
    crashes = t.crashes;
    rolled_forward = t.rolled_forward;
    rolled_back = t.rolled_back;
  }

let events t = List.rev t.events_rev
let refusals t = List.rev t.refusals_rev
let boundary_roots t = List.rev t.boundary_roots_rev
let reclaimed_chunks t = t.deleted_log
let pending_reclaim t = Hashtbl.length t.pending_sweep
