(** CM1-like atmospheric stencil workload (Section 4.4).

    A three-dimensional, iterative numerical model reduced to its
    checkpoint-relevant behaviour: the spatial domain is decomposed into
    per-process subdomains (50×50 points each — weak scaling); at every
    iteration each MPI process computes over its subdomain and exchanges
    halo values with its grid neighbours; every few iterations each process
    appends summary output to its own file; application-level checkpoints
    dump each subdomain into a per-process file.

    Instances host [procs_per_vm] MPI processes each (the paper's quad-core
    VMs host 4). *)

open Blobcr

type t

type config = {
  procs_per_vm : int;
  subdomain_state_bytes : int;  (** per-process application state *)
  process_mem_factor : float;
      (** total allocated memory / useful state — what blcr pays for *)
  halo_bytes : int;  (** per-neighbour exchange per iteration *)
  compute_per_iteration : float;  (** seconds of computation per step *)
  summary_every : int;  (** iterations between summary-file appends *)
  summary_bytes : int;
}

val default_config : config
(** Calibrated to Table 1: ~9.7 MB of state per process (52 MB snapshots
    for 4-process VMs including OS noise), blcr dumps ≈ 2.9× more. *)

val setup : Cluster.t -> instances:Approach.instance list -> config -> t
(** Attach a communicator across all instances and register the MPI
    processes. *)

val config : t -> config
(** The configuration given to {!setup}. *)

val process_count : t -> int
(** Total MPI ranks ([vms * procs_per_vm]). *)

val iterate : t -> int -> unit
(** Run iterations: compute + halo exchange on every process in parallel,
    plus periodic summary output. *)

val iterate_result : t -> int -> [ `Done | `Gang_down ]
(** Like {!iterate}, but a rank whose VM fail-stops mid-run does not kill
    the engine: its siblings are cancelled and the call reports
    [`Gang_down] so a supervisor can recover. *)

val set_steps : t -> int -> unit
(** Rewind every rank's iteration counter to [n] — restart restores
    subdomain content but the step count lives in the driver; resuming
    from a checkpoint must reposition it to keep state deterministic. *)

val dump_app : t -> Approach.instance -> unit
(** CM1's own checkpointing: drain channels, then every local process
    writes its subdomain file; ends with a sync. Collective — the global
    checkpoint must invoke it on every instance in parallel. *)

val dump_blcr : t -> Approach.instance -> unit
(** Process-level alternative: drain, blcr-dump all local processes,
    sync. *)

val restore_app : t -> Approach.instance -> unit
(** Read every local subdomain file back. Raises [Failure] when files are
    missing. *)

val restore_blcr : t -> Approach.instance -> unit
(** Reload the blcr dumps of {!dump_blcr}. Raises [Failure] when files are
    missing. *)

val subdomain_digests : t -> Approach.instance -> int64 list
(** Digests of the locally held subdomain states (restart verification). *)

val supervised_workload : Cluster.t -> config -> iters_per_unit:int -> Supervisor.workload
(** Package CM1 for {!Supervisor.run}: one work unit = [iters_per_unit]
    iterations with application-level dumps; [setup] rebinds to each new
    gang, [resumed n] rewinds to step [n * iters_per_unit]. *)
