open Simcore
open Blobcr
open Vmsim

let app_dir = "/ckpt/app"

(* Filling memory with random data is memory-bandwidth bound: ~2 GiB/s. *)
let fill_rate = 2.0 *. float_of_int Size.gib

type t = {
  inst : Approach.instance;
  proc : Process.t;
  buffer_bytes : int;
  mutable content : Payload.t;
  mutable epoch : int;
}

let buffer_seed inst epoch = Int64.of_int (Hashtbl.hash (inst.Approach.id, epoch))

let fill t =
  let engine = Vm.engine t.inst.Approach.vm in
  Engine.sleep engine (float_of_int t.buffer_bytes /. fill_rate);
  t.content <- Payload.pattern ~seed:(buffer_seed t.inst t.epoch) t.buffer_bytes

let start inst ~buffer_bytes =
  let proc = Vm.register_process inst.Approach.vm ~name:"bench" ~mem:buffer_bytes in
  let t = { inst; proc; buffer_bytes; content = Payload.zero buffer_bytes; epoch = 0 } in
  fill t;
  t

let instance t = t.inst
let buffer t = t.content
let epoch t = t.epoch

let refill t =
  t.epoch <- t.epoch + 1;
  fill t

let app_path epoch = Fmt.str "%s/buffer.%d" app_dir epoch

let dump_app ?retain t =
  let fs = Vm.fs t.inst.Approach.vm in
  Guest_fs.write_file fs ~path:(app_path t.epoch) t.content;
  (match retain with
  | Some keep ->
      List.iter
        (fun epoch ->
          let path = app_path epoch in
          if Guest_fs.exists fs ~path then Guest_fs.delete_file fs ~path)
        (List.init (max 0 (t.epoch - keep + 1)) Fun.id)
  | None -> ());
  Guest_fs.sync fs

let dump_blcr t =
  (* The buffer is (most of) the process memory; blcr dumps it all. *)
  Process.set_mem t.proc t.buffer_bytes;
  ignore (Blcr.dump t.inst.Approach.vm)

let newest_app_file fs =
  let prefix = app_dir ^ "/buffer." in
  let epochs =
    List.filter_map
      (fun path ->
        if String.length path > String.length prefix
           && String.sub path 0 (String.length prefix) = prefix
        then
          int_of_string_opt
            (String.sub path (String.length prefix) (String.length path - String.length prefix))
        else None)
      (Guest_fs.list_files fs)
  in
  match List.sort Int.compare epochs with
  | [] -> failwith "Synthetic.restore_app: no checkpoint file"
  | epochs -> List.nth epochs (List.length epochs - 1)

let restore_app inst =
  let fs = Vm.fs inst.Approach.vm in
  let epoch = newest_app_file fs in
  let content = Guest_fs.read_file fs ~path:(app_path epoch) in
  let proc =
    Vm.register_process inst.Approach.vm ~name:"bench" ~mem:(Payload.length content)
  in
  { inst; proc; buffer_bytes = Payload.length content; content; epoch }

let restore_blcr inst =
  ignore (Blcr.restore inst.Approach.vm);
  let content = Blcr.newest_dump inst.Approach.vm ~name:"bench" in
  let proc =
    match Vm.processes inst.Approach.vm with
    | proc :: _ -> proc
    | [] -> assert false
  in
  { inst; proc; buffer_bytes = Payload.length content; content; epoch = 0 }

let resume_in_memory inst =
  match
    List.find_opt (fun p -> Process.name p = "bench") (Vm.processes inst.Approach.vm)
  with
  | None -> failwith "Synthetic.resume_in_memory: no restored process"
  | Some proc ->
      let bytes = Process.mem proc in
      { inst; proc; buffer_bytes = bytes; content = Payload.zero bytes; epoch = 0 }
