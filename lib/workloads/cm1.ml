open Simcore
open Blobcr
open Vmsim
open Mpisim

type config = {
  procs_per_vm : int;
  subdomain_state_bytes : int;
  process_mem_factor : float;
  halo_bytes : int;
  compute_per_iteration : float;
  summary_every : int;
  summary_bytes : int;
}

let default_config =
  {
    procs_per_vm = 4;
    subdomain_state_bytes = 9_750 * Size.kib;
    process_mem_factor = 2.9;
    halo_bytes = 50 * 8 * 2 * 4; (* 50-point edge, 8-byte doubles, 2 ghost layers, 4 fields *)
    compute_per_iteration = 0.05;
    summary_every = 20;
    summary_bytes = 16 * Size.kib;
  }

type rank_state = {
  rank : int;
  inst : Approach.instance;
  endpoint : Comm.endpoint;
  proc : Process.t;
  mutable content : Payload.t;
  mutable step : int;
}

type t = {
  cluster : Cluster.t;
  cfg : config;
  comm : Comm.t;
  ranks : rank_state array;
  grid_w : int;
  grid_h : int;
}

let state_seed rank step = Int64.of_int ((rank * 1_000_003) + step)

let near_square n =
  let rec best w = if n mod w = 0 then w else best (w - 1) in
  let w = best (int_of_float (sqrt (float_of_int n))) in
  (w, n / w)

let setup (cluster : Cluster.t) ~instances cfg =
  let nprocs = List.length instances * cfg.procs_per_vm in
  let comm = Comm.create cluster.Cluster.engine cluster.Cluster.net ~size:nprocs in
  let mem =
    int_of_float (float_of_int cfg.subdomain_state_bytes *. cfg.process_mem_factor)
  in
  let ranks =
    List.concat_map
      (fun (i, inst) ->
        List.init cfg.procs_per_vm (fun j ->
            let rank = (i * cfg.procs_per_vm) + j in
            let endpoint = Comm.attach comm ~rank ~vm:inst.Approach.vm in
            let proc =
              Vm.register_process inst.Approach.vm ~name:(Fmt.str "cm1.%d" rank) ~mem
            in
            {
              rank;
              inst;
              endpoint;
              proc;
              content = Payload.pattern ~seed:(state_seed rank 0) cfg.subdomain_state_bytes;
              step = 0;
            }))
      (List.mapi (fun i inst -> (i, inst)) instances)
  in
  let grid_w, grid_h = near_square nprocs in
  { cluster; cfg; comm; ranks = Array.of_list ranks; grid_w; grid_h }

let config t = t.cfg
let process_count t = Array.length t.ranks

let neighbours t rank =
  let x = rank mod t.grid_w and y = rank / t.grid_w in
  List.filter_map
    (fun (dx, dy) ->
      let nx = x + dx and ny = y + dy in
      if nx >= 0 && nx < t.grid_w && ny >= 0 && ny < t.grid_h then Some ((ny * t.grid_w) + nx)
      else None)
    [ (-1, 0); (1, 0); (0, -1); (0, 1) ]

let iterate t n =
  let engine = t.cluster.Cluster.engine in
  let run_rank rs () =
    for _ = 1 to n do
      Vm.pause_point rs.inst.Approach.vm;
      Engine.sleep engine t.cfg.compute_per_iteration;
      let ns = neighbours t rs.rank in
      List.iter (fun dst -> Comm.send rs.endpoint ~dst ~bytes:t.cfg.halo_bytes) ns;
      List.iter (fun src -> ignore (Comm.recv rs.endpoint ~src)) ns;
      rs.step <- rs.step + 1;
      rs.content <- Payload.pattern ~seed:(state_seed rs.rank rs.step) t.cfg.subdomain_state_bytes;
      if rs.step mod t.cfg.summary_every = 0 then
        Guest_fs.append_file
          (Vm.fs rs.inst.Approach.vm)
          ~path:(Fmt.str "/out/summary.%d" rs.rank)
          (Payload.pattern ~seed:(state_seed rs.rank (-rs.step)) t.cfg.summary_bytes);
      Comm.barrier rs.endpoint
    done
  in
  Engine.all engine ~name:"cm1-iterate"
    (Array.to_list (Array.map run_rank t.ranks))

(* Like {!iterate}, but survives gang failure: each rank body catches the
   [Cancelled] its dead VM raises at the next pause point; the first rank
   to notice cancels its siblings (they may be blocked on a receive from
   the dead rank and would otherwise never wake), and the join reports
   the gang down instead of killing the run. *)
let iterate_result t n =
  let engine = t.cluster.Cluster.engine in
  let down = ref false in
  let fibers = ref [] in
  let body rs () =
    try
      for _ = 1 to n do
        Vm.pause_point rs.inst.Approach.vm;
        Engine.sleep engine t.cfg.compute_per_iteration;
        let ns = neighbours t rs.rank in
        List.iter (fun dst -> Comm.send rs.endpoint ~dst ~bytes:t.cfg.halo_bytes) ns;
        List.iter (fun src -> ignore (Comm.recv rs.endpoint ~src)) ns;
        rs.step <- rs.step + 1;
        rs.content <-
          Payload.pattern ~seed:(state_seed rs.rank rs.step) t.cfg.subdomain_state_bytes;
        if rs.step mod t.cfg.summary_every = 0 then
          Guest_fs.append_file
            (Vm.fs rs.inst.Approach.vm)
            ~path:(Fmt.str "/out/summary.%d" rs.rank)
            (Payload.pattern ~seed:(state_seed rs.rank (-rs.step)) t.cfg.summary_bytes);
        Comm.barrier rs.endpoint
      done
    with Engine.Cancelled ->
      if not !down then begin
        down := true;
        List.iter Engine.Fiber.cancel !fibers
      end
  in
  fibers :=
    Array.to_list
      (Array.map
         (fun rs ->
           Engine.Fiber.spawn engine ~name:(Fmt.str "cm1-iterate.%d" rs.rank) (body rs))
         t.ranks);
  List.iter (fun f -> ignore (Engine.Fiber.await f)) !fibers;
  if !down then `Gang_down else `Done

(* Reposition every rank's step counter — restart paths restore subdomain
   {e content} from the checkpoint files but the iteration count lives in
   the driver, so resuming from a snapshot must rewind it explicitly to
   keep the state pattern deterministic. *)
let set_steps t n = Array.iter (fun rs -> rs.step <- n) t.ranks

let local_ranks t inst =
  Array.to_list t.ranks |> List.filter (fun rs -> rs.inst == inst)

let subdomain_path rank = Fmt.str "/ckpt/cm1/subdomain.%d" rank

let dump_app t inst =
  let locals = local_ranks t inst in
  let fs = Vm.fs inst.Approach.vm in
  Engine.all t.cluster.Cluster.engine
    (List.map
       (fun rs () ->
         Comm.drain_channels rs.endpoint;
         Guest_fs.write_file fs ~path:(subdomain_path rs.rank) rs.content)
       locals);
  Guest_fs.sync fs

let dump_blcr t inst =
  let locals = local_ranks t inst in
  Engine.all t.cluster.Cluster.engine
    (List.map (fun rs () -> Comm.drain_channels rs.endpoint) locals);
  ignore (Blcr.dump inst.Approach.vm)

let restore_app t inst =
  let fs = Vm.fs inst.Approach.vm in
  List.iter
    (fun rs ->
      match Guest_fs.read_file fs ~path:(subdomain_path rs.rank) with
      | content -> rs.content <- content
      | exception Not_found ->
          failwith (Fmt.str "Cm1.restore_app: missing subdomain file for rank %d" rs.rank))
    (local_ranks t inst)

let restore_blcr t inst =
  List.iter
    (fun rs ->
      match Blcr.newest_dump inst.Approach.vm ~name:(Fmt.str "cm1.%d" rs.rank) with
      | dump -> Process.set_mem rs.proc (Payload.length dump)
      | exception Not_found ->
          failwith (Fmt.str "Cm1.restore_blcr: missing dump for rank %d" rs.rank))
    (local_ranks t inst)

let subdomain_digests t inst =
  List.map (fun rs -> Payload.digest rs.content) (local_ranks t inst)

(* Package CM1 as a supervised workload: one work unit = [iters_per_unit]
   iterations, application-level dumps. The instance binding is rebuilt on
   every (re)setup — a restart gang gets a fresh communicator — and resume
   rewinds the step counters to the checkpointed unit. *)
let supervised_workload (cluster : Cluster.t) cfg ~iters_per_unit =
  if iters_per_unit < 1 then invalid_arg "Cm1.supervised_workload";
  let current = ref None in
  let get () =
    match !current with
    | Some t -> t
    | None -> failwith "Cm1.supervised_workload: setup has not run"
  in
  {
    Supervisor.setup = (fun instances -> current := Some (setup cluster ~instances cfg));
    iterate = (fun () -> iterate_result (get ()) iters_per_unit);
    dump = (fun inst -> dump_app (get ()) inst);
    restore = (fun inst -> restore_app (get ()) inst);
    resumed = (fun units -> set_steps (get ()) (units * iters_per_unit));
  }
