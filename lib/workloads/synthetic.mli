(** The paper's synthetic benchmarking application (Section 4.3).

    One process per VM instance allocates a data buffer and fills it with
    random data. A global application-level checkpoint dumps each buffer
    into a file in the instance's local file system; restart reads it back.
    Process-level checkpointing instead lets blcr dump the whole process
    memory.

    Each refill produces fresh content, and each application-level dump
    writes a new epoch-stamped checkpoint file — which is what makes
    successive snapshots grow for approaches without incremental support
    (Figure 5). *)

open Simcore
open Blobcr

type t

val start : Approach.instance -> buffer_bytes:int -> t
(** Allocate the buffer (registering the guest process) and fill it. *)

val instance : t -> Approach.instance
(** The instance this benchmark runs on. *)

val buffer : t -> Payload.t
(** The live data buffer (mutated by {!refill}). *)

val epoch : t -> int
(** Number of application-level dumps taken so far. *)

val refill : t -> unit
(** Fill the buffer with fresh random data (charges memory-bandwidth-bound
    CPU time). *)

val dump_app : ?retain:int -> t -> unit
(** Application-level checkpoint: write the buffer to a fresh checkpoint
    file and sync the file system. [retain] keeps only that many newest
    checkpoint files (deleting older ones lets the snapshot garbage
    collector reclaim their chunks); default: keep all. *)

val dump_blcr : t -> unit
(** Process-level checkpoint: blcr dumps all process memory, then sync. *)

val restore_app : Approach.instance -> t
(** Read the newest application checkpoint file back into a buffer.
    Raises [Failure] if the instance holds no checkpoint. *)

val restore_blcr : Approach.instance -> t
(** Process-level restart: blcr reloads the dumped process image. *)

val resume_in_memory : Approach.instance -> t
(** qcow2-full restart path: the buffer is already in the restored RAM; no
    file reads. Raises [Failure] if the snapshot carried no process. *)
