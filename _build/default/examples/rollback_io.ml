(* Rolling back I/O: the paper's headline semantic feature.

   Conventional checkpoint-restart cannot undo file-system side effects —
   "lines appended to a log file between the last checkpoint and the
   failure are difficult to detect and delete on restart" (Section 2.2).
   Because BlobCR checkpoints the whole virtual disk, restart implicitly
   rolls every file back to the snapshot.

   This example writes a results file, checkpoints, then simulates a bug
   that corrupts the results and appends garbage to the log before the
   crash. After restart the corruption is gone.

     dune exec examples/rollback_io.exe *)

open Simcore
open Blobcr
open Vmsim

let () =
  let cluster = Cluster.build Calibration.quick_test in
  Cluster.run cluster (fun () ->
      let say fmt = Fmt.pr ("  " ^^ fmt ^^ "@.") in
      let inst =
        Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"vm0"
      in
      let fs = Vm.fs inst.Approach.vm in

      Guest_fs.write_file fs ~path:"/results/energy.dat"
        (Payload.of_string "E(0)=1.000\nE(1)=0.998\n");
      Guest_fs.write_file fs ~path:"/results/run.log" (Payload.of_string "step 0 ok\nstep 1 ok\n");
      Guest_fs.sync fs;
      say "wrote results and log, took a checkpoint";
      let snapshot = Approach.request_checkpoint cluster inst in

      (* The application goes haywire after the checkpoint. *)
      Guest_fs.write_file fs ~path:"/results/energy.dat" (Payload.of_string "E=NaN NaN NaN\n");
      Guest_fs.append_file fs ~path:"/results/run.log"
        (Payload.of_string "step 2 CORRUPTED\nstep 2 CORRUPTED\n");
      Guest_fs.write_file fs ~path:"/results/core.dump" (Payload.zero 4096);
      Guest_fs.sync fs;
      say "post-checkpoint corruption written (energy.dat clobbered, log polluted)";
      say "  energy.dat now: %S"
        (Payload.to_string (Guest_fs.read_file fs ~path:"/results/energy.dat"));

      Approach.kill inst;
      let inst' =
        Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0-reborn" snapshot
      in
      let fs' = Vm.fs inst'.Approach.vm in
      say "restarted from the disk snapshot on another node";
      say "  energy.dat : %S" (Payload.to_string (Guest_fs.read_file fs' ~path:"/results/energy.dat"));
      say "  run.log    : %S" (Payload.to_string (Guest_fs.read_file fs' ~path:"/results/run.log"));
      say "  core.dump  : %s"
        (if Guest_fs.exists fs' ~path:"/results/core.dump" then "still there (BUG)"
         else "rolled back (gone)");
      let intact =
        Payload.to_string (Guest_fs.read_file fs' ~path:"/results/energy.dat")
        = "E(0)=1.000\nE(1)=0.998\n"
        && not (Guest_fs.exists fs' ~path:"/results/core.dump")
      in
      say "rollback verification: %s" (if intact then "OK" else "FAILED");
      if not intact then exit 1)
