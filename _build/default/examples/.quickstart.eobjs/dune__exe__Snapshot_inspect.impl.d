examples/snapshot_inspect.ml: Approach Blobcr Blobseer Calibration Cluster Fmt Gc List Netsim Simcore Size String Synthetic Vdisk Vmsim Workloads
