examples/rollback_io.mli:
