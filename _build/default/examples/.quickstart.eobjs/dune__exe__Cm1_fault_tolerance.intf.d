examples/cm1_fault_tolerance.mli:
