examples/quickstart.ml: Approach Blobcr Calibration Cluster Fmt List Payload Protocol Simcore Size Synthetic Workloads
