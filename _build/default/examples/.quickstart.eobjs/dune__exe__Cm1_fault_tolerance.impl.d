examples/cm1_fault_tolerance.ml: Approach Blobcr Calibration Cluster Cm1 Fmt List Option Protocol Simcore Size Stats Workloads
