examples/quickstart.mli:
