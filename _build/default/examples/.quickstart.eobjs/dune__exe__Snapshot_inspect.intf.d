examples/snapshot_inspect.mli:
