examples/rollback_io.ml: Approach Blobcr Calibration Cluster Fmt Guest_fs Payload Simcore Vm Vmsim
