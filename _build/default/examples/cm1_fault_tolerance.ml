(* Fault-tolerant CM1: the paper's motivating scenario end to end.

   A CM1-like atmospheric simulation runs across several quad-core VM
   instances with periodic BlobCR checkpoints. Mid-run, a machine failure
   takes the whole tightly-coupled application down (one process dying
   kills the computation); the driver rolls the deployment back to the
   last global checkpoint on fresh nodes and the run continues — losing
   only the iterations since that checkpoint, with all file-system output
   rolled back to a consistent state.

     dune exec examples/cm1_fault_tolerance.exe *)

open Simcore
open Blobcr
open Workloads

let vms = 2
let checkpoint_every = 4 (* iterations *)
let total_iterations = 12

let cm1_config =
  {
    Cm1.default_config with
    procs_per_vm = 2;
    subdomain_state_bytes = Size.mib_n 1;
    compute_per_iteration = 2.0;
    summary_every = 2;
  }

let () =
  let cluster = Cluster.build Calibration.quick_test in
  Cluster.run cluster (fun () ->
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in

      let deploy ids =
        List.map
          (fun (node, id) ->
            Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster node) ~id)
          ids
      in
      let instances = deploy [ (0, "cm1-a"); (1, "cm1-b") ] in
      let cm1 = Cm1.setup cluster ~instances cm1_config in
      let say2 fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say2 "CM1 deployed: %d MPI processes on %d VMs" (Cm1.process_count cm1) vms;
      ignore say;

      let last_snapshot = ref None in
      let completed = ref 0 in
      (* Run with periodic coordinated checkpoints. *)
      let checkpoint () =
        let snapshots = Protocol.global_checkpoint cluster ~instances ~dump:(Cm1.dump_app cm1) in
        last_snapshot := Some snapshots;
        let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
        say "global checkpoint at iteration %d (%a per VM)" !completed Size.pp
          (int_of_float
             (Stats.mean
                (List.map (fun s -> float_of_int (Approach.snapshot_bytes s)) snapshots)))
      in
      (try
         while !completed < total_iterations do
           Cm1.iterate cm1 1;
           incr completed;
           if !completed mod checkpoint_every = 0 then checkpoint ();
           (* Fail-stop strikes after iteration 9. *)
           if !completed = 9 then begin
             let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
             say "MACHINE FAILURE: killing all instances at iteration %d" !completed;
             Protocol.kill_all instances;
             raise Exit
           end
         done
       with Exit -> ());

      (* Recovery: redeploy from the last global checkpoint on new nodes. *)
      let snapshots = Option.get !last_snapshot in
      let plan =
        List.mapi
          (fun i s -> (Cluster.node cluster (2 + i), Fmt.str "cm1-r%d" i, s))
          snapshots
      in
      let new_instances = Protocol.global_restart cluster ~plan ~restore:(fun _ -> ()) in
      let cm1' = Cm1.setup cluster ~instances:new_instances cm1_config in
      List.iter (Cm1.restore_app cm1') new_instances;
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say "recovered from checkpoint at iteration %d; resuming" (8 : int);

      (* Finish the remaining iterations (9..12 re-run from iteration 8). *)
      Cm1.iterate cm1' (total_iterations - 8);
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say "simulation complete: %d iterations (4 re-computed after the failure)"
        total_iterations;
      say "storage used for checkpoints: %a" Size.pp (Approach.storage_total cluster))
