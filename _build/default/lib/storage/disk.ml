open Simcore

type t = {
  dname : string;
  server : Rate_server.t;
  capacity : int;
  mutable used : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let default_rate = 55.0 *. float_of_int Size.mib
let default_per_op = 5e-4
let default_seek = 8e-3

let create engine ?(rate = default_rate) ?(per_op = default_per_op) ?(seek = default_seek)
    ?(capacity = Size.gib_n 278) ?(name = "disk") () =
  {
    dname = name;
    server = Rate_server.create engine ~rate ~per_op ~seek ~name ();
    capacity;
    used = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let read t ?stream bytes =
  Rate_server.process t.server ?stream bytes;
  t.bytes_read <- t.bytes_read + bytes

let write t ?stream bytes =
  if t.used + bytes > t.capacity then
    failwith (Fmt.str "Disk.write: %s full (%a used of %a)" t.dname Size.pp t.used
                Size.pp t.capacity);
  Rate_server.process t.server ?stream bytes;
  t.used <- t.used + bytes;
  t.bytes_written <- t.bytes_written + bytes

let free t bytes =
  if bytes < 0 || bytes > t.used then invalid_arg "Disk.free";
  t.used <- t.used - bytes

let reserve t bytes =
  if bytes < 0 then invalid_arg "Disk.reserve";
  if t.used + bytes > t.capacity then
    failwith (Fmt.str "Disk.reserve: %s full" t.dname);
  t.used <- t.used + bytes

let name t = t.dname
let capacity t = t.capacity
let used t = t.used
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let busy_time t = Rate_server.busy_time t.server
