lib/storage/content_store.mli: Payload Simcore
