lib/storage/disk.mli: Engine Simcore
