lib/storage/content_store.ml: Hashtbl List Payload Simcore
