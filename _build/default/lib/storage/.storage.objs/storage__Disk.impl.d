lib/storage/disk.ml: Fmt Rate_server Simcore Size
