lib/netsim/net.ml: Engine Fun List Option Rate_server Simcore Size
