lib/netsim/net.mli: Engine Simcore
