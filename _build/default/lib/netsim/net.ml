open Simcore

type host = {
  hid : int;
  hname : string;
  uplink : Rate_server.t;
  downlink : Rate_server.t;
  mutable sent : int;
  mutable received : int;
}

type config = {
  bandwidth : float;
  latency : float;
  segment_size : int;
  fabric_bandwidth : float option;
}

type t = {
  engine : Engine.t;
  cfg : config;
  fabric : Rate_server.t option;
  mutable host_list : host list; (* newest first *)
  mutable next_id : int;
}

let default_config =
  {
    bandwidth = 117.5 *. float_of_int Size.mib;
    latency = 1e-4;
    segment_size = 256 * Size.kib;
    fabric_bandwidth = None;
  }

let create engine cfg =
  if cfg.bandwidth <= 0.0 then invalid_arg "Net.create: bandwidth";
  if cfg.segment_size <= 0 then invalid_arg "Net.create: segment_size";
  let fabric =
    Option.map
      (fun rate -> Rate_server.create engine ~rate ~name:"fabric" ())
      cfg.fabric_bandwidth
  in
  { engine; cfg; fabric; host_list = []; next_id = 0 }

let engine t = t.engine
let config t = t.cfg

let add_host t ~name =
  let host =
    {
      hid = t.next_id;
      hname = name;
      uplink = Rate_server.create t.engine ~rate:t.cfg.bandwidth ~name:(name ^ ".up") ();
      downlink = Rate_server.create t.engine ~rate:t.cfg.bandwidth ~name:(name ^ ".down") ();
      sent = 0;
      received = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.host_list <- host :: t.host_list;
  host

let host_name h = h.hname
let host_id h = h.hid
let hosts t = List.rev t.host_list
let bytes_sent h = h.sent
let bytes_received h = h.received

type segment = Seg of int | Eof

(* Segments are pushed through the source uplink, then handed to a forwarder
   fiber that pushes them through the fabric (if any) and the destination
   downlink — a two-stage pipeline, so a transfer between two idle hosts
   runs at NIC rate, not half of it. *)
let transfer t ~src ~dst bytes =
  if bytes < 0 then invalid_arg "Net.transfer: negative size";
  if src != dst && bytes > 0 then begin
    Engine.sleep t.engine t.cfg.latency;
    let mb = Engine.Mailbox.create t.engine in
    let finished = Engine.Ivar.create t.engine in
    let _ =
      Engine.Fiber.spawn t.engine ~name:"net.forwarder" (fun () ->
          let rec drain () =
            match Engine.Mailbox.recv mb with
            | Eof -> ()
            | Seg seg ->
                Option.iter (fun fabric -> Rate_server.process fabric seg) t.fabric;
                Rate_server.process dst.downlink seg;
                dst.received <- dst.received + seg;
                drain ()
          in
          drain ();
          Engine.Ivar.fill finished ())
    in
    Fun.protect
      ~finally:(fun () -> Engine.Mailbox.send mb Eof)
      (fun () ->
        let remaining = ref bytes in
        while !remaining > 0 do
          let seg = min t.cfg.segment_size !remaining in
          Rate_server.process src.uplink seg;
          src.sent <- src.sent + seg;
          Engine.Mailbox.send mb (Seg seg);
          remaining := !remaining - seg
        done);
    Engine.Ivar.read finished
  end

let message t ~src ~dst =
  if src != dst then Engine.sleep t.engine t.cfg.latency
