lib/mpisim/comm.ml: Array Engine Fmt Hashtbl Net Netsim Simcore Vmsim
