lib/mpisim/comm.mli: Engine Net Netsim Simcore Vmsim
