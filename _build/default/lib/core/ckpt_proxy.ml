open Simcore

exception Not_local

type t = {
  cluster : Cluster.t;
  pnode : Cluster.node;
  mutable served : int;
  mutable failed : int;
}

let create cluster ~node = { cluster; pnode = node; served = 0; failed = 0 }
let node t = t.pnode

let request_checkpoint t ~vm ~snapshot =
  (* Authentication: only VM instances hosted on this compute node may
     request checkpoints. *)
  if not (Vmsim.Vm.host vm == t.pnode.Cluster.host) then raise Not_local;
  (* Local REST round-trip. *)
  Engine.sleep t.cluster.Cluster.engine t.cluster.Cluster.cal.Calibration.proxy_request_cost;
  Vmsim.Vm.suspend vm;
  let result =
    try Ok (snapshot ()) with
    | Engine.Cancelled as exn -> raise exn
    | exn -> Error exn
  in
  (* The proxy resumes the VM regardless of the outcome and notifies the
     guest of the result. *)
  Vmsim.Vm.resume vm;
  match result with
  | Ok value ->
      t.served <- t.served + 1;
      Trace.emit t.cluster.Cluster.engine
        ~component:(Fmt.str "proxy@%s" (Netsim.Net.host_name t.pnode.Cluster.host))
        "checkpoint request served for %s" (Vmsim.Vm.name vm);
      value
  | Error exn ->
      t.failed <- t.failed + 1;
      raise exn

let requests_served t = t.served
let failures t = t.failed
