open Simcore

let global_checkpoint (cluster : Cluster.t) ~instances ~dump =
  let snapshots = Array.make (List.length instances) None in
  let checkpoint_one i inst () =
    dump inst;
    snapshots.(i) <- Some (Approach.request_checkpoint cluster inst)
  in
  Engine.all cluster.engine ~name:"global-checkpoint" (List.mapi checkpoint_one instances);
  Array.to_list (Array.map Option.get snapshots)

let global_restart (cluster : Cluster.t) ~plan ~restore =
  let instances = Array.make (List.length plan) None in
  let restart_one i (node, id, snapshot) () =
    let inst = Approach.restart cluster ~node ~id snapshot in
    restore inst;
    instances.(i) <- Some inst
  in
  Engine.all cluster.engine ~name:"global-restart" (List.mapi restart_one plan);
  Array.to_list (Array.map Option.get instances)

let kill_all instances = List.iter Approach.kill instances
