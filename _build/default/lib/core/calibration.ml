open Simcore

type t = {
  compute_nodes : int;
  disk_rate : float;
  disk_per_op : float;
  disk_capacity : int;
  net_bandwidth : float;
  net_latency : float;
  net_segment : int;
  image_capacity : int;
  guest_ram : int;
  os_ram_overhead : int;
  boot : Vmsim.Vm.boot_profile;
  blobseer : Blobseer.Types.params;
  metadata_providers : int;
  pvfs : Pvfs.params;
  proxy_request_cost : float;
  loadvm_record : int;
  savevm_rate : float;
  prefetch_enabled : bool;
}

let default =
  {
    compute_nodes = 120;
    disk_rate = 55.0 *. float_of_int Size.mib;
    disk_per_op = 5e-4;
    disk_capacity = Size.gib_n 278;
    net_bandwidth = 117.5 *. float_of_int Size.mib;
    net_latency = 1e-4;
    net_segment = 256 * Size.kib;
    image_capacity = Size.gib_n 2;
    guest_ram = Size.gib_n 2;
    os_ram_overhead = 118 * Size.mib;
    boot = Vmsim.Vm.default_boot_profile;
    blobseer = Blobseer.Types.default_params;
    metadata_providers = 20;
    pvfs = Pvfs.default_params;
    proxy_request_cost = 5e-4;
    loadvm_record = 8 * Size.kib;
    savevm_rate = 32.0 *. float_of_int Size.mib;
    prefetch_enabled = true;
  }

let quick_test =
  {
    default with
    compute_nodes = 4;
    image_capacity = Size.mib_n 64;
    guest_ram = Size.mib_n 256;
    os_ram_overhead = Size.mib_n 8;
    boot =
      {
        Vmsim.Vm.boot_read_bytes = Size.mib_n 4;
        boot_read_chunk = Size.mib;
        boot_cpu_time = 1.0;
        boot_jitter = 0.2;
        noise_files = 4;
        noise_file_bytes = 64 * Size.kib;
        scattered_touches = 6;
        touch_bytes = 16 * Size.kib;
      };
    metadata_providers = 2;
    loadvm_record = 64 * Size.kib;
  }

let scale_image t image_capacity = { t with image_capacity }
