lib/core/calibration.mli: Blobseer Pvfs Vmsim
