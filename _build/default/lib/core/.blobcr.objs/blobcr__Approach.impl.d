lib/core/approach.ml: Blobseer Bytes Calibration Ckpt_proxy Client Cluster Engine Fmt Int64 List Marshal Mirror Option Payload Process Pvfs Qcow2 Simcore String Vdisk Vm Vmsim
