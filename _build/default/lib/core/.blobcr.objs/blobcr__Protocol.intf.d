lib/core/protocol.mli: Approach Cluster
