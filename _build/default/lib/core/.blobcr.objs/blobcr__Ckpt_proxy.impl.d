lib/core/ckpt_proxy.ml: Calibration Cluster Engine Fmt Netsim Simcore Trace Vmsim
