lib/core/calibration.ml: Blobseer Pvfs Simcore Size Vmsim
