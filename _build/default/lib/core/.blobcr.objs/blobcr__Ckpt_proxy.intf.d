lib/core/ckpt_proxy.mli: Cluster Vmsim
