lib/core/cluster.ml: Array Blobseer Calibration Client Disk Engine Fmt List Net Netsim Option Payload Prefetch Pvfs Simcore Storage Vdisk
