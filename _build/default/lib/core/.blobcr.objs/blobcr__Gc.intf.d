lib/core/gc.mli: Blobseer Client Hashtbl
