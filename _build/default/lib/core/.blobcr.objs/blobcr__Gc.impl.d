lib/core/gc.ml: Array Blobseer Client Content_store Data_provider Hashtbl List Option Segment_tree Simcore Storage Types Version_manager
