lib/core/cluster.mli: Blobseer Calibration Client Disk Engine Net Netsim Prefetch Pvfs Simcore Storage Vdisk
