lib/core/protocol.ml: Approach Array Cluster Engine List Option Simcore
