lib/core/approach.mli: Blobseer Ckpt_proxy Client Cluster Mirror Payload Qcow2 Simcore Vdisk Vm Vmsim
