(** Global checkpoint-restart orchestration.

    A {e global checkpoint} runs the two-stage procedure of Section 3.1.2
    on every instance in parallel: first the guest dumps its state into the
    local file system (application-level files or blcr process dumps — the
    caller-supplied [dump] action, which must end with a file-system sync),
    then each instance asks its local proxy for a disk snapshot. The global
    checkpoint completes when every snapshot is persistent; the resulting
    set of per-instance snapshots forms a globally consistent state because
    channels were drained before dumping.

    A {e global restart} re-deploys every instance from its snapshot, in
    parallel, on a caller-chosen set of nodes (disjoint from the original
    ones in the paper's experiments, to rule out caching effects). *)

val global_checkpoint :
  Cluster.t ->
  instances:Approach.instance list ->
  dump:(Approach.instance -> unit) ->
  Approach.snapshot list
(** Returns snapshots in instance order. Blocks until all are persistent. *)

val global_restart :
  Cluster.t ->
  plan:(Cluster.node * string * Approach.snapshot) list ->
  restore:(Approach.instance -> unit) ->
  Approach.instance list
(** [plan] gives, per instance: target node, instance id, snapshot.
    [restore] re-reads application state from the mounted file system
    (empty for qcow2-full resumes, which carry state in RAM). *)

val kill_all : Approach.instance list -> unit
(** Simulated global failure: fail-stop every instance. *)
