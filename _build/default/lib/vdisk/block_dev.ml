open Simcore

type t = {
  capacity : int;
  read : offset:int -> len:int -> Payload.t;
  write : offset:int -> Payload.t -> unit;
  flush : unit -> unit;
}

let check t offset len =
  if offset < 0 || len < 0 || offset + len > t.capacity then
    invalid_arg
      (Fmt.str "Block_dev: range [%d, %d) exceeds capacity %d" offset (offset + len)
         t.capacity)

let read t ~offset ~len =
  check t offset len;
  t.read ~offset ~len

let write t ~offset payload =
  check t offset (Payload.length payload);
  t.write ~offset payload

let flush t = t.flush ()

let in_memory ~capacity =
  let space = Sparse_bytes.create () in
  {
    capacity;
    read = (fun ~offset ~len -> Sparse_bytes.read space ~offset ~len);
    write = (fun ~offset payload -> Sparse_bytes.write space ~offset payload);
    flush = (fun () -> ());
  }
