lib/vdisk/block_dev.mli: Simcore
