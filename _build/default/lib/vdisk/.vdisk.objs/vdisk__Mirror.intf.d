lib/vdisk/mirror.mli: Blobseer Block_dev Client Disk Engine Net Netsim Payload Prefetch Simcore Storage
