lib/vdisk/qcow2.ml: Block_dev Disk Engine Fmt Hashtbl List Net Netsim Option Payload Pvfs Simcore Size Storage
