lib/vdisk/block_dev.ml: Fmt Payload Simcore Sparse_bytes
