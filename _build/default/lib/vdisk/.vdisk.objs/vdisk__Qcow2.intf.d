lib/vdisk/qcow2.mli: Block_dev Disk Engine Net Netsim Payload Pvfs Simcore Storage
