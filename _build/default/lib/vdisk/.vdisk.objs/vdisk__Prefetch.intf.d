lib/vdisk/prefetch.mli: Engine Net Netsim Payload Simcore
