lib/vdisk/mirror.ml: Blobseer Block_dev Client Disk Engine Hashtbl List Net Netsim Option Payload Prefetch Simcore Sparse_bytes Storage Trace
