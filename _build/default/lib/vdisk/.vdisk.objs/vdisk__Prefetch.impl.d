lib/vdisk/prefetch.ml: Engine Hashtbl Net Netsim Payload Simcore
