lib/workloads/synthetic.ml: Approach Blcr Blobcr Engine Fmt Fun Guest_fs Hashtbl Int64 List Payload Process Simcore Size String Vm Vmsim
