lib/workloads/cm1.ml: Approach Array Blcr Blobcr Cluster Comm Engine Fmt Guest_fs Int64 List Mpisim Payload Process Simcore Size Vm Vmsim
