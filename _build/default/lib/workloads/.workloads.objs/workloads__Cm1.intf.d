lib/workloads/cm1.mli: Approach Blobcr Cluster
