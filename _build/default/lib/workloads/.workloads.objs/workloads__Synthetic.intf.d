lib/workloads/synthetic.mli: Approach Blobcr Payload Simcore
