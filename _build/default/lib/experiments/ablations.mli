(** Ablation studies of BlobCR's design choices.

    The paper motivates several mechanisms qualitatively; these experiments
    isolate each one by toggling a single knob at a fixed workload:

    - {!prefetch}: restart time with and without adaptive prefetching /
      fetch coalescing (design principle 3.1.4);
    - {!stripe_size}: the access-contention vs fragmentation trade-off the
      paper resolved at 256 KiB (Section 4.2.1);
    - {!replication}: checkpoint cost of surviving data-provider failures
      (replicated chunks, design principle 3.1.1);
    - {!incremental}: incremental COMMIT vs re-uploading the full dirty
      image every checkpoint (what qcow2-disk effectively does), isolating
      the value of shadowing. *)

open Simcore

val prefetch : Scale.t -> ?progress:(string -> unit) -> unit -> Stats.table
(** Restart completion time vs instance count, prefetcher enabled/disabled,
    BlobCR-app. *)

val stripe_size : Scale.t -> ?progress:(string -> unit) -> unit -> Stats.table
(** Checkpoint and restart time at a fixed instance count across stripe
    sizes (64 KiB … 1 MiB). *)

val replication : Scale.t -> ?progress:(string -> unit) -> unit -> Stats.table
(** Checkpoint time and storage at replication factor 1–3. *)

val incremental : Scale.t -> ?progress:(string -> unit) -> unit -> Stats.table
(** Successive-checkpoint times with incremental commits vs whole-image
    re-commit. *)
