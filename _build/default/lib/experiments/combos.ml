open Blobcr
open Workloads

type dump_method = App | Blcr | Full_vm

type t = { label : string; kind : Approach.kind; dump : dump_method }

let all =
  [
    { label = "BlobCR-app"; kind = Approach.Blobcr; dump = App };
    { label = "qcow2-disk-app"; kind = Approach.Qcow2_disk; dump = App };
    { label = "BlobCR-blcr"; kind = Approach.Blobcr; dump = Blcr };
    { label = "qcow2-disk-blcr"; kind = Approach.Qcow2_disk; dump = Blcr };
    { label = "qcow2-full"; kind = Approach.Qcow2_full; dump = Full_vm };
  ]

let disk_only = List.filter (fun c -> c.dump <> Full_vm) all
let find label = List.find_opt (fun c -> c.label = label) all

let dump combo bench =
  match combo.dump with
  | App -> Synthetic.dump_app bench
  | Blcr -> Synthetic.dump_blcr bench
  | Full_vm -> ()

let restore combo inst =
  match combo.dump with
  | App -> Synthetic.restore_app inst
  | Blcr -> Synthetic.restore_blcr inst
  | Full_vm -> Synthetic.resume_in_memory inst
