lib/experiments/figures.mli: Scale Simcore Stats
