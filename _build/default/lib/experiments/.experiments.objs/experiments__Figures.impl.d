lib/experiments/figures.ml: Cm1_sweep Combos Fmt Fun Hashtbl List Scale Simcore Size Stats String Synthetic_sweep Workloads
