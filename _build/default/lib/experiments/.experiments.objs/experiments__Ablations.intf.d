lib/experiments/ablations.mli: Scale Simcore Stats
