lib/experiments/synthetic_sweep.mli: Approach Blobcr Cluster Combos Scale
