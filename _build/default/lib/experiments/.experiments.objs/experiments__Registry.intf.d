lib/experiments/registry.mli: Scale Simcore Stats
