lib/experiments/cm1_sweep.mli: Combos Scale
