lib/experiments/scale.ml: Blobcr Calibration Simcore Size Workloads
