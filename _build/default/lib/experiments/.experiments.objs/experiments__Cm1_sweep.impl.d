lib/experiments/cm1_sweep.ml: Approach Blobcr Cluster Cm1 Combos List Protocol Scale Simcore Synthetic_sweep Workloads
