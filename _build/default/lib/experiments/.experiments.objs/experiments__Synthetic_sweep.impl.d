lib/experiments/synthetic_sweep.ml: Approach Array Blobcr Cluster Combos Engine Fmt Hashtbl List Option Protocol Scale Simcore Stats Synthetic Workloads
