lib/experiments/scale.mli: Blobcr Calibration Workloads
