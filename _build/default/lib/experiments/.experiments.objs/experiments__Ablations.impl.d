lib/experiments/ablations.ml: Approach Blobcr Blobseer Calibration Cluster Combos Fmt List Option Scale Simcore Size Stats Synthetic Synthetic_sweep Vdisk Workloads
