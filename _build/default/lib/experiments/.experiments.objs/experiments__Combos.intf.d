lib/experiments/combos.mli: Approach Blobcr Synthetic Workloads
