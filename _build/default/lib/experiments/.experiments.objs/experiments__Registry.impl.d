lib/experiments/registry.ml: Ablations Buffer Figures Fmt List Scale Simcore Stats
