lib/experiments/combos.ml: Approach Blobcr List Synthetic Workloads
