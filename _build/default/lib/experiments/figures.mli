(** Table builders for every figure and table of the paper's evaluation.

    Each function runs the underlying experiment(s) at the given scale and
    returns render-ready {!Simcore.Stats.table}s whose rows/series are the
    ones the paper plots. [progress] (default: silent) receives one line
    per completed measurement point. *)

open Simcore

type progress = string -> unit

val fig2_3 :
  Scale.t -> buffer:int -> tag:string -> ?progress:progress -> unit ->
  Stats.table * Stats.table
(** One synthetic sweep at the given buffer size; returns
    (Figure 2: checkpoint time vs #instances,
     Figure 3: restart time vs #instances). [tag] is "a"/"b". *)

val fig4 : Scale.t -> ?progress:progress -> unit -> Stats.table
(** Snapshot size per VM instance for both buffer sizes, all five
    approaches (single-instance runs). *)

val fig5 : Scale.t -> ?progress:progress -> unit -> Stats.table * Stats.table
(** Four successive checkpoints of one instance, 200 MB buffer:
    (5a: per-checkpoint completion time, 5b: cumulative storage). *)

val fig6 : Scale.t -> ?progress:progress -> unit -> Stats.table
(** CM1 checkpoint completion time vs number of processes. *)

val table1 : Scale.t -> ?progress:progress -> unit -> Stats.table
(** CM1 per-disk-snapshot size for the four disk-snapshot approaches. *)
