open Simcore

type progress = string -> unit

let mib = float_of_int Size.mib

let series_of_points points ~x ~y =
  let by_combo = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun p ->
      let label = (Synthetic_sweep.(p.combo)).Combos.label in
      let s =
        match Hashtbl.find_opt by_combo label with
        | Some s -> s
        | None ->
            let s = Stats.series label in
            Hashtbl.replace by_combo label s;
            order := label :: !order;
            s
      in
      Stats.add s ~x:(x p) ~y:(y p))
    points;
  List.rev_map (Hashtbl.find by_combo) !order

let pp_point (p : Synthetic_sweep.point) =
  Fmt.str "%-16s n=%3d  checkpoint=%7.2fs  restart=%7.2fs  snapshot=%s"
    p.combo.Combos.label p.n p.checkpoint_time p.restart_time
    (Size.to_string (int_of_float p.snapshot_bytes))

let fig2_3 scale ~buffer ~tag ?(progress = fun _ -> ()) () =
  let points =
    Synthetic_sweep.sweep scale ~buffer
      ~progress:(fun p -> progress (pp_point p))
      ()
  in
  let buffer_label = Size.to_string buffer in
  let ckpt =
    Stats.table
      ~title:(Fmt.str "Figure 2(%s): checkpoint completion time, %s buffer" tag buffer_label)
      ~x_label:"instances" ~y_label:"time (s)"
      (series_of_points points ~x:(fun p -> float_of_int p.Synthetic_sweep.n)
         ~y:(fun p -> p.Synthetic_sweep.checkpoint_time))
  in
  let restart =
    Stats.table
      ~title:(Fmt.str "Figure 3(%s): restart completion time, %s buffer" tag buffer_label)
      ~x_label:"hosts" ~y_label:"time (s)"
      (series_of_points points ~x:(fun p -> float_of_int p.Synthetic_sweep.n)
         ~y:(fun p -> p.Synthetic_sweep.restart_time))
  in
  (ckpt, restart)

let fig4 (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let points =
    List.concat_map
      (fun buffer ->
        List.map
          (fun combo ->
            let p = Synthetic_sweep.run_point scale ~combo ~n:1 ~buffer in
            progress (pp_point p);
            (buffer, p))
          Combos.all)
      [ scale.Scale.buffer_small; scale.Scale.buffer_large ]
  in
  let columns =
    List.map
      (fun (combo : Combos.t) ->
        let s = Stats.series combo.label in
        List.iter
          (fun (buffer, (p : Synthetic_sweep.point)) ->
            if p.combo.Combos.label = combo.label then
              Stats.add s ~x:(float_of_int buffer /. mib) ~y:(p.snapshot_bytes /. mib))
          points;
        s)
      Combos.all
  in
  Stats.table ~title:"Figure 4: snapshot size per VM instance" ~x_label:"buffer (MB)"
    ~y_label:"snapshot size (MB)" columns

let fig5 (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let rounds = scale.Scale.successive_checkpoints in
  let results =
    List.map
      (fun (combo : Combos.t) ->
        let r =
          Synthetic_sweep.run_successive scale ~combo ~rounds
            ~buffer:scale.Scale.buffer_large
        in
        progress
          (Fmt.str "%-16s times=[%s] storage=[%s]" combo.label
             (String.concat "; "
                (List.map (Fmt.str "%.2f") r.Synthetic_sweep.round_times))
             (String.concat "; "
                (List.map
                   (fun b -> Fmt.str "%.0fMB" (float_of_int b /. mib))
                   r.Synthetic_sweep.cumulative_storage)));
        (combo, r))
      Combos.all
  in
  let mk ~title ~y_label extract scale_y =
    Stats.table ~title ~x_label:"checkpoint #" ~y_label
      (List.map
         (fun ((combo : Combos.t), r) ->
           let s = Stats.series combo.label in
           List.iteri
             (fun i v -> Stats.add s ~x:(float_of_int (i + 1)) ~y:(scale_y v))
             (extract r);
           s)
         results)
  in
  let times =
    mk ~title:"Figure 5(a): successive checkpoints, completion time" ~y_label:"time (s)"
      (fun r -> r.Synthetic_sweep.round_times)
      Fun.id
  in
  let storage =
    mk ~title:"Figure 5(b): successive checkpoints, total storage" ~y_label:"storage (MB)"
      (fun r -> List.map float_of_int r.Synthetic_sweep.cumulative_storage)
      (fun b -> b /. mib)
  in
  (times, storage)

let pp_cm1_point (p : Cm1_sweep.point) =
  Fmt.str "%-16s vms=%3d procs=%4d  checkpoint=%7.2fs  snapshot=%s"
    p.combo.Combos.label p.vms p.processes p.checkpoint_time
    (Size.to_string (int_of_float p.snapshot_bytes))

let fig6 scale ?(progress = fun _ -> ()) () =
  let points = Cm1_sweep.sweep scale ~progress:(fun p -> progress (pp_cm1_point p)) () in
  let columns =
    List.map
      (fun (combo : Combos.t) ->
        let s = Stats.series combo.label in
        List.iter
          (fun (p : Cm1_sweep.point) ->
            if p.combo.Combos.label = combo.label then
              Stats.add s ~x:(float_of_int p.processes) ~y:p.checkpoint_time)
          points;
        s)
      Combos.disk_only
  in
  Stats.table ~title:"Figure 6: CM1 checkpoint performance" ~x_label:"processes"
    ~y_label:"time (s)" columns

let table1 (scale : Scale.t) ?(progress = fun _ -> ()) () =
  let vms = List.hd scale.Scale.cm1_vm_counts in
  let columns =
    List.map
      (fun (combo : Combos.t) ->
        let p = Cm1_sweep.run_point scale ~combo ~vms in
        progress (pp_cm1_point p);
        let s = Stats.series combo.label in
        Stats.add s
          ~x:(float_of_int scale.Scale.cm1_config.Workloads.Cm1.procs_per_vm)
          ~y:(p.snapshot_bytes /. mib);
        s)
      Combos.disk_only
  in
  Stats.table ~title:"Table 1: CM1 per disk snapshot size" ~x_label:"procs/VM"
    ~y_label:"snapshot size (MB)" columns
