lib/blobseer/metadata_service.ml: Array Engine Fmt Fun List Net Netsim Rate_server Simcore Types
