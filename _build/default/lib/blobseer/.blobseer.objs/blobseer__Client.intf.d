lib/blobseer/client.mli: Data_provider Disk Engine Net Netsim Payload Simcore Storage Types Version_manager
