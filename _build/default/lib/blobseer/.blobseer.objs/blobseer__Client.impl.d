lib/blobseer/client.ml: Array Data_provider Engine Fmt Hashtbl List Metadata_service Net Netsim Option Parallel Payload Provider_manager Segment_tree Simcore Size Types Version_manager
