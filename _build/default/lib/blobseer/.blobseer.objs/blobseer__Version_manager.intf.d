lib/blobseer/version_manager.mli: Engine Net Netsim Segment_tree Simcore Types
