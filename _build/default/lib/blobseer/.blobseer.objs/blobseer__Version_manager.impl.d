lib/blobseer/version_manager.ml: Engine Hashtbl List Net Netsim Rate_server Segment_tree Simcore Size Types
