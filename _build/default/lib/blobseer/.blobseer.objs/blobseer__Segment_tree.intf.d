lib/blobseer/segment_tree.mli:
