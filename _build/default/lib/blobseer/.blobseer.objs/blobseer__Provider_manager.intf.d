lib/blobseer/provider_manager.mli: Data_provider Engine Net Netsim Simcore
