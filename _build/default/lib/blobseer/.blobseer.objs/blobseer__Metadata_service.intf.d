lib/blobseer/metadata_service.mli: Engine Net Netsim Simcore
