lib/blobseer/data_provider.ml: Content_store Disk Engine Net Netsim Payload Rate_server Simcore Storage Types
