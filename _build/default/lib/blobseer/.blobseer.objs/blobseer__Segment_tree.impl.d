lib/blobseer/segment_tree.ml: Array Hashtbl List Obj
