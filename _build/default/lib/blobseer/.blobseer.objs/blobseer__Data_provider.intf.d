lib/blobseer/data_provider.mli: Content_store Disk Engine Net Netsim Payload Simcore Storage
