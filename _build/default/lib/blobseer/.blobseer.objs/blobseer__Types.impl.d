lib/blobseer/types.ml: Simcore Storage
