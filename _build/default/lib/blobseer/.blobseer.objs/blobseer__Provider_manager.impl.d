lib/blobseer/provider_manager.ml: Array Data_provider Engine List Net Netsim Rate_server Simcore Types
