open Simcore
open Netsim

type t = {
  engine : Engine.t;
  net : Net.t;
  host : Net.host;
  server : Rate_server.t;
  mutable provider_list : Data_provider.t list; (* newest first *)
  mutable table : Data_provider.t array;
  mutable cursor : int;
}

let create engine net ~host ?(allocate_cost = Types.default_params.allocate_cost) () =
  {
    engine;
    net;
    host;
    server = Rate_server.create engine ~rate:1e12 ~per_op:allocate_cost ~name:"pmanager" ();
    provider_list = [];
    table = [||];
    cursor = 0;
  }

let register t provider =
  t.provider_list <- provider :: t.provider_list;
  t.table <- Array.of_list (List.rev t.provider_list)

let provider_count t = Array.length t.table
let providers t = t.table
let provider t i = t.table.(i)

let index_of t provider =
  let rec find i =
    if i >= Array.length t.table then raise Not_found
    else if t.table.(i) == provider then i
    else find (i + 1)
  in
  find 0

let allocate t ~from ~count ~replication =
  if count < 0 || replication < 1 then invalid_arg "Provider_manager.allocate";
  Net.message t.net ~src:from ~dst:t.host;
  Rate_server.process_many t.server ~ops:count 0;
  let n = Array.length t.table in
  let live = Array.to_list t.table |> List.filter Data_provider.is_alive |> List.length in
  if live < replication then raise (Types.Provider_down "not enough live providers");
  let next_live () =
    let rec go tries =
      if tries > n then raise (Types.Provider_down "no live provider")
      else begin
        let i = t.cursor in
        t.cursor <- (t.cursor + 1) mod n;
        if Data_provider.is_alive t.table.(i) then i else go (tries + 1)
      end
    in
    go 0
  in
  let placement_for_chunk () =
    let rec pick acc k =
      if k = 0 then List.rev acc
      else
        let i = next_live () in
        if List.mem i acc then pick acc k else pick (i :: acc) (k - 1)
    in
    pick [] replication
  in
  let placements = List.init count (fun _ -> placement_for_chunk ()) in
  Net.message t.net ~src:t.host ~dst:from;
  placements
