(** Guest process descriptor: name plus tracked memory footprint.

    The footprint is what process-level checkpointing (BLCR) dumps —
    indiscriminately, the paper notes, which is why blcr snapshots are
    larger than application-level ones. *)

type t

val create : name:string -> mem:int -> t
val name : t -> string
val mem : t -> int
val set_mem : t -> int -> unit
(** Update the tracked footprint as the application allocates. *)
