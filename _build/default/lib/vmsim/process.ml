type t = { pname : string; mutable pmem : int }

let create ~name ~mem = { pname = name; pmem = mem }
let name t = t.pname
let mem t = t.pmem
let set_mem t mem = t.pmem <- mem
