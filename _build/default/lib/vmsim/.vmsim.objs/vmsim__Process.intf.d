lib/vmsim/process.mli:
