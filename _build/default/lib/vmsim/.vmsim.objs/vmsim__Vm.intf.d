lib/vmsim/vm.mli: Block_dev Engine Guest_fs Net Netsim Process Simcore Vdisk
