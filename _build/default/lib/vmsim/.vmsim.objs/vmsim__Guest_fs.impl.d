lib/vmsim/guest_fs.ml: Block_dev Bytes Hashtbl Int64 List Marshal Payload Simcore Size String Vdisk
