lib/vmsim/blcr.mli: Payload Simcore Vm
