lib/vmsim/vm.ml: Block_dev Engine Fmt Guest_fs Int64 List Net Netsim Payload Process Rng Simcore Size Trace Vdisk
