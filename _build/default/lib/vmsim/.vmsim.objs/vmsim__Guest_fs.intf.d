lib/vmsim/guest_fs.mli: Block_dev Payload Simcore Vdisk
