lib/vmsim/blcr.ml: Engine Filename Fmt Guest_fs Hashtbl Int64 List Option Payload Process Simcore Size String Vm
