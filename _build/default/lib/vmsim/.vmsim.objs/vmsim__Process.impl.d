lib/vmsim/process.ml:
