type t = {
  engine : Engine.t;
  sname : string;
  rate : float;
  per_op : float;
  seek : float;
  lock : Engine.Semaphore.t;
  mutable last_stream : int option;
  mutable busy : float;
  mutable ops : int;
  mutable bytes : int;
  mutable seek_count : int;
}

let create engine ~rate ?(per_op = 0.0) ?(seek = 0.0) ?(name = "rate-server") () =
  if rate <= 0.0 then invalid_arg "Rate_server.create: rate must be positive";
  if per_op < 0.0 || seek < 0.0 then invalid_arg "Rate_server.create: negative cost";
  {
    engine;
    sname = name;
    rate;
    per_op;
    seek;
    lock = Engine.Semaphore.create engine 1;
    last_stream = None;
    busy = 0.0;
    ops = 0;
    bytes = 0;
    seek_count = 0;
  }

let process_many t ?stream ~ops bytes =
  if bytes < 0 then invalid_arg "Rate_server.process: negative size";
  if ops < 0 then invalid_arg "Rate_server.process: negative ops";
  Engine.Semaphore.with_held t.lock (fun () ->
      let seek_time =
        match stream with
        | Some s when t.last_stream <> Some s ->
            t.last_stream <- Some s;
            t.seek_count <- t.seek_count + 1;
            t.seek
        | Some _ | None -> 0.0
      in
      let service =
        seek_time +. (float_of_int ops *. t.per_op) +. (float_of_int bytes /. t.rate)
      in
      Engine.sleep t.engine service;
      t.busy <- t.busy +. service;
      t.ops <- t.ops + ops;
      t.bytes <- t.bytes + bytes)

let process t ?stream bytes = process_many t ?stream ~ops:1 bytes

let name t = t.sname
let rate t = t.rate
let busy_time t = t.busy
let ops t = t.ops
let bytes_served t = t.bytes
let seeks t = t.seek_count

let utilization t =
  let now = Engine.now t.engine in
  if now <= 0.0 then 0.0 else t.busy /. now
