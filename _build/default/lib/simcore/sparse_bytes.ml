type t = {
  block_size : int;
  blocks : (int, Payload.t) Hashtbl.t; (* block index -> exactly block_size bytes *)
}

let create ?(block_size = 64 * 1024) () =
  if block_size <= 0 then invalid_arg "Sparse_bytes.create";
  { block_size; blocks = Hashtbl.create 256 }

let block_content t index =
  match Hashtbl.find_opt t.blocks index with
  | Some p -> p
  | None -> Payload.zero t.block_size

let write t ~offset payload =
  if offset < 0 then invalid_arg "Sparse_bytes.write";
  let len = Payload.length payload in
  if len > 0 then begin
    let bs = t.block_size in
    let first = offset / bs and last = (offset + len - 1) / bs in
    for index = first to last do
      let bstart = index * bs in
      let wstart = max bstart offset and wend = min (bstart + bs) (offset + len) in
      let content =
        if wstart = bstart && wend = bstart + bs then
          Payload.sub payload ~pos:(bstart - offset) ~len:bs
        else
          let old = block_content t index in
          Payload.concat
            [
              Payload.sub old ~pos:0 ~len:(wstart - bstart);
              Payload.sub payload ~pos:(wstart - offset) ~len:(wend - wstart);
              Payload.sub old ~pos:(wend - bstart) ~len:(bstart + bs - wend);
            ]
      in
      Hashtbl.replace t.blocks index content
    done
  end

let read t ~offset ~len =
  if offset < 0 || len < 0 then invalid_arg "Sparse_bytes.read";
  if len = 0 then Payload.zero 0
  else begin
    let bs = t.block_size in
    let first = offset / bs and last = (offset + len - 1) / bs in
    let parts = List.init (last - first + 1) (fun k -> block_content t (first + k)) in
    Payload.sub (Payload.concat parts) ~pos:(offset - (first * bs)) ~len
  end

let written_bytes t = Hashtbl.length t.blocks * t.block_size
let clear t = Hashtbl.reset t.blocks
