type sink = time:float -> component:string -> string -> unit

let current_sink : sink option ref = ref None
let set_sink s = current_sink := s
let enabled () = !current_sink <> None

let emit engine ~component fmt =
  match !current_sink with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some sink ->
      Format.kasprintf (fun msg -> sink ~time:(Engine.now engine) ~component msg) fmt

let capture f =
  let saved = !current_sink in
  let lines = ref [] in
  let sink ~time ~component msg =
    lines := Fmt.str "t=%.6fs [%s] %s" time component msg :: !lines
  in
  set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> set_sink saved)
    (fun () ->
      let result = f () in
      (result, List.rev !lines))
