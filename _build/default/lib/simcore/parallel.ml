let windowed engine ~window tasks =
  if window <= 0 then invalid_arg "Parallel.windowed: window must be positive";
  let gate = Engine.Semaphore.create engine window in
  let first_error = ref None in
  let guarded task () =
    Engine.Semaphore.with_held gate (fun () ->
        (* A task exception must surface in the caller, not kill the
           engine, so fork–join behaves like sequential code. *)
        try task ()
        with Engine.Cancelled as exn -> raise exn
        | exn -> if !first_error = None then first_error := Some exn)
  in
  Engine.all engine ~name:"windowed" (List.map guarded tasks);
  match !first_error with Some exn -> raise exn | None -> ()

let map_windowed engine ~window f xs =
  let results = Array.make (List.length xs) None in
  let tasks = List.mapi (fun i x () -> results.(i) <- Some (f x)) xs in
  windowed engine ~window tasks;
  Array.to_list (Array.map Option.get results)
