type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* heap.(0) is unused padding until first add; [size] tracks live items *)
  mutable size : int;
  mutable seq : int;
}

let create () = { heap = [||]; size = 0; seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && earlier t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && earlier t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let add t ~time value =
  let entry = { time; seq = t.seq; value } in
  t.seq <- t.seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
