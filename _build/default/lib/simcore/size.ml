let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let kib_n n = n * kib
let mib_n n = n * mib
let gib_n n = n * gib
let to_mib bytes = float_of_int bytes /. float_of_int mib

let pp ppf bytes =
  let b = float_of_int bytes in
  if bytes >= gib then Fmt.pf ppf "%.1f GB" (b /. float_of_int gib)
  else if bytes >= mib then Fmt.pf ppf "%.1f MB" (b /. float_of_int mib)
  else if bytes >= kib then Fmt.pf ppf "%.1f KB" (b /. float_of_int kib)
  else Fmt.pf ppf "%d B" bytes

let to_string bytes = Fmt.str "%a" pp bytes

let div_ceil a b =
  assert (b > 0 && a >= 0);
  (a + b - 1) / b

let round_up a b = div_ceil a b * b
