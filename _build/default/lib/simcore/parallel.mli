(** Windowed fork–join helpers for fibers. *)

val windowed : Engine.t -> window:int -> (unit -> unit) list -> unit
(** [windowed e ~window tasks] runs every task in its own fiber with at most
    [window] in flight simultaneously, and blocks until all have finished.
    This models client-side request pipelining (e.g. a bounded number of
    outstanding chunk writes). Must be called from inside a fiber. *)

val map_windowed : Engine.t -> window:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!windowed} but collects results, in input order. *)
