(** Byte-size constants and formatting helpers.

    All data quantities in the simulator are expressed in bytes as plain
    [int] values (63-bit on every supported platform, so sizes up to
    exabytes are representable). *)

val kib : int
(** 1 KiB = 1024 bytes. *)

val mib : int
(** 1 MiB = 1024 KiB. *)

val gib : int
(** 1 GiB = 1024 MiB. *)

val kib_n : int -> int
(** [kib_n n] is [n] KiB. *)

val mib_n : int -> int
(** [mib_n n] is [n] MiB. *)

val gib_n : int -> int
(** [gib_n n] is [n] GiB. *)

val to_mib : int -> float
(** [to_mib bytes] is the size in MiB as a float. *)

val pp : Format.formatter -> int -> unit
(** Human-readable size, e.g. ["52.0 MB"]. *)

val to_string : int -> string
(** [to_string bytes] is [Fmt.str "%a" pp bytes]. *)

val div_ceil : int -> int -> int
(** [div_ceil a b] is [a / b] rounded towards positive infinity.
    Requires [b > 0] and [a >= 0]. *)

val round_up : int -> int -> int
(** [round_up a b] is the smallest multiple of [b] that is [>= a]. *)
