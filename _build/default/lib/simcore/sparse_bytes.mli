(** Mutable sparse byte space.

    A growable address space where unwritten ranges read as zeros, backed by
    fixed-size blocks of {!Payload.t}. Used as the in-memory content plane
    of disk images and caches (timing is charged by their owners; this
    structure is free of simulated cost). *)

type t

val create : ?block_size:int -> unit -> t
(** Default block size 64 KiB. *)

val write : t -> offset:int -> Payload.t -> unit
val read : t -> offset:int -> len:int -> Payload.t

val written_bytes : t -> int
(** Number of bytes covered by materialized blocks (block-granular). *)

val clear : t -> unit
