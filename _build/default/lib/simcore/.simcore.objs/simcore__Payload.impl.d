lib/simcore/payload.ml: Array Bytes Char Fmt Hashtbl Int64 List Printf Rng
