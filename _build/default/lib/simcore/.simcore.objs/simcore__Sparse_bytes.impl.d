lib/simcore/sparse_bytes.ml: Hashtbl List Payload
