lib/simcore/rate_server.mli: Engine
