lib/simcore/event_queue.mli:
