lib/simcore/parallel.mli: Engine
