lib/simcore/parallel.ml: Array Engine List Option
