lib/simcore/rng.mli:
