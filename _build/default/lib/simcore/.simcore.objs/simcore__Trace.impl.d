lib/simcore/trace.ml: Engine Fmt Format Fun List
