lib/simcore/engine.mli: Rng
