lib/simcore/size.mli: Format
