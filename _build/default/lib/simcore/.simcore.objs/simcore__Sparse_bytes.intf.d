lib/simcore/sparse_bytes.mli: Payload
