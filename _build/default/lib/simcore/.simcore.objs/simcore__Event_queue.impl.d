lib/simcore/event_queue.ml: Array
