lib/simcore/size.ml: Fmt
