lib/simcore/rng.ml: Array Char Int64
