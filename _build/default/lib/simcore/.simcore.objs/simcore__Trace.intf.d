lib/simcore/trace.mli: Engine Format
