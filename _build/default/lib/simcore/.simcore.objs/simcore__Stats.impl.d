lib/simcore/stats.ml: Buffer Filename Float Fmt Fun List String Sys
