lib/simcore/engine.ml: Effect Event_queue Fmt Fun List Printexc Printf Queue Rng
