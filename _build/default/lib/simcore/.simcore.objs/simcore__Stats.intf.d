lib/simcore/stats.mli:
