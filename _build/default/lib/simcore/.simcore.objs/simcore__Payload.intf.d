lib/simcore/payload.mli: Format
