lib/simcore/rate_server.ml: Engine
