(* blobcr-cli: drive the reproduction from the command line.

     blobcr_cli list                         available experiments
     blobcr_cli run fig2a --scale quick      run one experiment
     blobcr_cli run all --csv results/       run everything, write CSVs
     blobcr_cli calibration                  show the simulated testbed *)

open Cmdliner

let scale_arg =
  let parse s =
    match Experiments.Scale.find s with
    | Some scale -> Ok (s, scale)
    | None -> Error (`Msg (Fmt.str "unknown scale %S (expected: paper, quick)" s))
  in
  let print ppf (name, _) = Fmt.string ppf name in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg ("paper", Experiments.Scale.paper)
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: $(b,paper) (published testbed shape) or $(b,quick) (smoke run).")

let csv_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each output table as CSV under $(docv).")

let quiet_term =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-point progress lines.")

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Fmt.pr "%-8s %-28s %s@." e.Experiments.Registry.id e.Experiments.Registry.paper_ref
          e.Experiments.Registry.description)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible experiments (one per paper figure/table).")
    Term.(const run $ const ())

let run_one (_, scale) csv_dir quiet id =
  match Experiments.Registry.find id with
  | None -> Fmt.epr "unknown experiment %S; try `blobcr_cli list'@." id
  | Some e ->
      let progress line = if not quiet then Fmt.epr "    %s@." line in
      Fmt.pr "### %s — %s@.@." e.Experiments.Registry.id e.Experiments.Registry.paper_ref;
      Fmt.pr "%s@."
        (Experiments.Registry.run_and_render e scale ?csv_dir:csv_dir ~progress ())

let run_cmd =
  let ids_term =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment ids (see $(b,list)), or $(b,all) for every one.")
  in
  let run scale csv quiet ids =
    let ids =
      if List.mem "all" ids then Experiments.Registry.ids else ids
    in
    List.iter (run_one scale csv quiet) ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print the paper-figure tables.")
    Term.(const run $ scale_term $ csv_term $ quiet_term $ ids_term)

let calibration_cmd =
  let run () =
    let c = Blobcr.Calibration.default in
    let mb v = v /. float_of_int Simcore.Size.mib in
    Fmt.pr "Simulated testbed (defaults follow Section 4.1 of the paper):@.";
    Fmt.pr "  compute nodes        %d@." c.compute_nodes;
    Fmt.pr "  local disk           %.1f MB/s, %.1f ms/op, %.0f ms seek@." (mb c.disk_rate)
      (c.disk_per_op *. 1e3)
      (8.0);
    Fmt.pr "  network              %.1f MB/s, %.2f ms latency@." (mb c.net_bandwidth)
      (c.net_latency *. 1e3);
    Fmt.pr "  disk image           %a@." Simcore.Size.pp c.image_capacity;
    Fmt.pr "  guest RAM            %a (+%a full-snapshot overhead)@." Simcore.Size.pp
      c.guest_ram Simcore.Size.pp c.os_ram_overhead;
    Fmt.pr "  BlobSeer             stripe %a, %d metadata providers, window %d@."
      Simcore.Size.pp c.blobseer.Blobseer.Types.stripe_size c.metadata_providers
      c.blobseer.Blobseer.Types.write_window;
    Fmt.pr "  PVFS                 stripe %a, %.0f ms metadata op, window %d@."
      Simcore.Size.pp c.pvfs.Pvfs.stripe_size
      (c.pvfs.Pvfs.metadata_op_cost *. 1e3)
      c.pvfs.Pvfs.write_window;
    Fmt.pr "  savevm rate          %.0f MB/s; loadvm record %a@." (mb c.savevm_rate)
      Simcore.Size.pp c.loadvm_record
  in
  Cmd.v
    (Cmd.info "calibration" ~doc:"Print the simulated testbed constants.")
    Term.(const run $ const ())

let () =
  let doc = "BlobCR (SC'11) reproduction: experiments and tools" in
  let info = Cmd.info "blobcr_cli" ~doc ~version:"1.0.0" in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; calibration_cmd ]))
