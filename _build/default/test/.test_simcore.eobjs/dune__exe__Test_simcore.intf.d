test/test_simcore.mli:
