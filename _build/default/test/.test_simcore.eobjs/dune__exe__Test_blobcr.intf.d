test/test_blobcr.mli:
