test/test_blobcr.ml: Alcotest Approach Blobcr Blobseer Calibration Ckpt_proxy Cluster Cm1 Engine Fmt Gc Guest_fs List Payload Protocol Simcore Size String Synthetic Trace Vdisk Vm Vmsim Workloads
