test/test_mpisim.mli:
