test/test_mpisim.ml: Alcotest Blcr Comm Engine Fmt Guest_fs List Mpisim Net Netsim Option Process Simcore Size String Vdisk Vm Vmsim
