test/test_experiments.ml: Alcotest Blobcr Cm1_sweep Combos Experiments Fmt Lazy List Option Registry Scale Simcore Stats String Synthetic_sweep
