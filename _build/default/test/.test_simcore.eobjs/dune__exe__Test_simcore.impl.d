test/test_simcore.ml: Alcotest Array Bytes Engine Event_queue Fmt Fun Gen List Option Payload QCheck QCheck_alcotest Rng Simcore Size Stats String Trace
