test/test_blobseer.mli:
