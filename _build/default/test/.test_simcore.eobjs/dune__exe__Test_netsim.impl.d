test/test_netsim.ml: Alcotest Content_store Disk Engine Fmt List Net Netsim Option Payload Rate_server Simcore Size Storage
