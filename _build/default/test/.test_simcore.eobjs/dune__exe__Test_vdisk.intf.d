test/test_vdisk.mli:
