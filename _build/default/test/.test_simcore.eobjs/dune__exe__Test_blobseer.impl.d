test/test_blobseer.ml: Alcotest Array Blobseer Bytes Char Client Data_provider Disk Engine Fmt Fun List Net Netsim Option Payload QCheck QCheck_alcotest Segment_tree Simcore Size Storage String Types
