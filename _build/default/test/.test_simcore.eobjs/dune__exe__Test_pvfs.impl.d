test/test_pvfs.ml: Alcotest Bytes Disk Engine Fmt List Net Netsim Option Payload Pvfs QCheck QCheck_alcotest Simcore Storage String
