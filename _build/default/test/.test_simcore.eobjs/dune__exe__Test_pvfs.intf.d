test/test_pvfs.mli:
