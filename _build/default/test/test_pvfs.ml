(* Tests for the PVFS baseline: striping, namespace, in-place mutation,
   metadata serialization. *)

open Simcore
open Netsim
open Storage

type rig = {
  engine : Engine.t;
  fs : Pvfs.t;
  client : Net.host;
  disks : Disk.t list;
}

let make_rig ?(servers = 4) ?(params = { Pvfs.default_params with stripe_size = 100 }) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let metadata_host = Net.add_host net ~name:"pvfs-md" in
  let io =
    List.init servers (fun i ->
        ( Net.add_host net ~name:(Fmt.str "io%d" i),
          Disk.create engine ~name:(Fmt.str "iodisk%d" i) () ))
  in
  let client = Net.add_host net ~name:"client" in
  let fs = Pvfs.deploy engine net ~params ~metadata_host ~io_servers:io () in
  { engine; fs; client; disks = List.map snd io }

let run rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

let test_create_write_read () =
  let rig = make_rig () in
  let from = rig.client in
  let back =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/ckpt/rank0" in
        Pvfs.write f ~from ~offset:0 (Payload.of_string (String.make 450 'd'));
        Payload.to_string (Pvfs.read f ~from ~offset:0 ~len:450))
  in
  Alcotest.(check string) "roundtrip" (String.make 450 'd') back

let test_overwrite_in_place () =
  let rig = make_rig () in
  let from = rig.client in
  let content, total =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/f" in
        Pvfs.write f ~from ~offset:0 (Payload.of_string (String.make 200 'a'));
        Pvfs.write f ~from ~offset:50 (Payload.of_string (String.make 100 'b'));
        ( Payload.to_string (Pvfs.read f ~from ~offset:0 ~len:200),
          Pvfs.total_bytes rig.fs ))
  in
  Alcotest.(check string) "overwritten"
    (String.make 50 'a' ^ String.make 100 'b' ^ String.make 50 'a')
    content;
  (* In-place: no versioning, storage stays at the file size. *)
  Alcotest.(check int) "no extra copies" 200 total

let test_file_extension_and_size () =
  let rig = make_rig () in
  let from = rig.client in
  let size =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/grow" in
        Pvfs.write f ~from ~offset:0 (Payload.of_string "xx");
        Pvfs.write f ~from ~offset:350 (Payload.of_string "yy");
        Pvfs.size f)
  in
  Alcotest.(check int) "grown" 352 size

let test_sparse_holes_read_zero () =
  let rig = make_rig () in
  let from = rig.client in
  let hole =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/sparse" in
        Pvfs.write f ~from ~offset:250 (Payload.of_string "z");
        Payload.to_string (Pvfs.read f ~from ~offset:100 ~len:50))
  in
  Alcotest.(check string) "zeros" (String.make 50 '\000') hole

let test_namespace_operations () =
  let rig = make_rig () in
  let from = rig.client in
  let exists_before, exists_after, reopened =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/a" in
        Pvfs.write f ~from ~offset:0 (Payload.of_string "data");
        let exists_before = Pvfs.exists rig.fs ~path:"/a" in
        let g = Pvfs.open_file rig.fs ~from ~path:"/a" in
        let reopened = Payload.to_string (Pvfs.read g ~from ~offset:0 ~len:4) in
        Pvfs.delete rig.fs ~from ~path:"/a";
        (exists_before, Pvfs.exists rig.fs ~path:"/a", reopened))
  in
  Alcotest.(check bool) "exists" true exists_before;
  Alcotest.(check bool) "deleted" false exists_after;
  Alcotest.(check string) "reopen" "data" reopened

let test_create_duplicate_rejected () =
  let rig = make_rig () in
  let from = rig.client in
  let raised =
    run rig (fun () ->
        let _ = Pvfs.create rig.fs ~from ~path:"/dup" in
        try
          let _ = Pvfs.create rig.fs ~from ~path:"/dup" in
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "duplicate rejected" true raised

let test_open_missing_raises () =
  let rig = make_rig () in
  let from = rig.client in
  let raised =
    run rig (fun () ->
        try
          let _ = Pvfs.open_file rig.fs ~from ~path:"/nope" in
          false
        with Not_found -> true)
  in
  Alcotest.(check bool) "not found" true raised

let test_read_past_eof_rejected () =
  let rig = make_rig () in
  let from = rig.client in
  let raised =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/short" in
        Pvfs.write f ~from ~offset:0 (Payload.of_string "abc");
        try
          let _ = Pvfs.read f ~from ~offset:0 ~len:10 in
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "eof" true raised

let test_striping_spreads_data () =
  let rig = make_rig ~servers:4 () in
  let from = rig.client in
  let usages =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/big" in
        Pvfs.write f ~from ~offset:0 (Payload.pattern ~seed:1L 800);
        List.map Disk.used rig.disks)
  in
  Alcotest.(check (list int)) "even stripes" [ 200; 200; 200; 200 ] usages

let test_delete_frees_disks () =
  let rig = make_rig () in
  let from = rig.client in
  let after =
    run rig (fun () ->
        let f = Pvfs.create rig.fs ~from ~path:"/tmp" in
        Pvfs.write f ~from ~offset:0 (Payload.pattern ~seed:2L 400);
        Pvfs.delete rig.fs ~from ~path:"/tmp";
        List.fold_left (fun acc d -> acc + Disk.used d) 0 rig.disks)
  in
  Alcotest.(check int) "all freed" 0 after

let test_metadata_serializes_creates () =
  (* 10 concurrent creates must take at least 10 × metadata_op_cost. *)
  let params = { Pvfs.default_params with stripe_size = 100; metadata_op_cost = 0.01 } in
  let rig = make_rig ~params () in
  let from = rig.client in
  let elapsed =
    run rig (fun () ->
        let t0 = Engine.now rig.engine in
        Engine.all rig.engine
          (List.init 10 (fun i () ->
               ignore (Pvfs.create rig.fs ~from ~path:(Fmt.str "/c%d" i))));
        Engine.now rig.engine -. t0)
  in
  Alcotest.(check bool) (Fmt.str "serialized (%.3fs)" elapsed) true (elapsed >= 0.1)

let prop_pvfs_matches_reference =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (let* offset = int_range 0 900 in
         let* len = int_range 1 100 in
         let* ch = printable in
         return (offset, len, ch)))
  in
  QCheck.Test.make ~name:"pvfs: random writes match reference array" ~count:30
    (QCheck.make gen)
    (fun ops ->
      let rig = make_rig () in
      let from = rig.client in
      run rig (fun () ->
          let f = Pvfs.create rig.fs ~from ~path:"/prop" in
          let reference = Bytes.make 1000 '\000' in
          let high = ref 0 in
          List.iter
            (fun (offset, len, ch) ->
              Bytes.fill reference offset len ch;
              high := max !high (offset + len);
              Pvfs.write f ~from ~offset (Payload.of_string (String.make len ch)))
            ops;
          let back = Pvfs.read f ~from ~offset:0 ~len:!high in
          Payload.to_string back = Bytes.sub_string reference 0 !high))

let () =
  Alcotest.run "pvfs"
    [
      ( "pvfs",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "overwrite in place" `Quick test_overwrite_in_place;
          Alcotest.test_case "file extension" `Quick test_file_extension_and_size;
          Alcotest.test_case "sparse holes" `Quick test_sparse_holes_read_zero;
          Alcotest.test_case "namespace ops" `Quick test_namespace_operations;
          Alcotest.test_case "duplicate create rejected" `Quick test_create_duplicate_rejected;
          Alcotest.test_case "open missing" `Quick test_open_missing_raises;
          Alcotest.test_case "read past eof" `Quick test_read_past_eof_rejected;
          Alcotest.test_case "striping spreads data" `Quick test_striping_spreads_data;
          Alcotest.test_case "delete frees disks" `Quick test_delete_frees_disks;
          Alcotest.test_case "metadata serializes creates" `Quick
            test_metadata_serializes_creates;
          QCheck_alcotest.to_alcotest ~verbose:false prop_pvfs_matches_reference;
        ] );
    ]
