(* Cross-cutting property tests: each image/FS stack is driven with random
   operation sequences and compared against a trivial reference model. These
   are the strongest correctness guarantees in the repository — any
   divergence between the COW machinery and plain byte arrays fails here. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk
open Vmsim

(* ------------------------------------------------------------------ *)
(* Shared rig *)

type rig = {
  engine : Engine.t;
  net : Net.t;
  fs : Pvfs.t;
  service : Client.t;
  nodes : (Net.host * Disk.t) array;
}

let make_rig ?(stripe = 512) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 0.0 } in
  let md = Net.add_host net ~name:"md" in
  let vmh = Net.add_host net ~name:"vm" in
  let pmh = Net.add_host net ~name:"pm" in
  let meta = [ Net.add_host net ~name:"meta" ] in
  let nodes =
    Array.init 3 (fun i ->
        ( Net.add_host net ~name:(Fmt.str "n%d" i),
          Disk.create engine ~rate:1e12 ~per_op:0.0 ~seek:0.0
            ~name:(Fmt.str "d%d" i) () ))
  in
  let fs =
    Pvfs.deploy engine net
      ~params:{ Pvfs.default_params with stripe_size = stripe }
      ~metadata_host:md ~io_servers:(Array.to_list nodes) ()
  in
  let service =
    Client.deploy engine net
      ~params:{ Types.default_params with stripe_size = stripe }
      ~version_manager_host:vmh ~provider_manager_host:pmh ~metadata_hosts:meta
      ~data_providers:(Array.to_list nodes) ()
  in
  { engine; net; fs; service; nodes }

let run rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

let writes_gen ~ops ~space ~max_len =
  QCheck.Gen.(
    list_size (int_range 1 ops)
      (let* offset = int_range 0 (space - 2) in
       let* len = int_range 1 (min max_len (space - offset)) in
       let* ch = printable in
       return (offset, len, ch)))

(* ------------------------------------------------------------------ *)
(* qcow2 vs reference, including a backing file *)

let prop_qcow2_matches_reference =
  QCheck.Test.make ~name:"qcow2 over raw backing matches reference array" ~count:40
    (QCheck.make (writes_gen ~ops:10 ~space:4000 ~max_len:800))
    (fun ops ->
      let rig = make_rig () in
      let host, disk = rig.nodes.(0) in
      run rig (fun () ->
          (* Backing raw image full of 'B'. *)
          let base = Pvfs.create rig.fs ~from:host ~path:"/base" in
          Pvfs.write base ~from:host ~offset:0 (Payload.of_string (String.make 4000 'B'));
          let reference = Bytes.make 4000 'B' in
          let q =
            Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:4000
              ~backing:(Qcow2.Raw_pvfs base) ~name:"q" ()
          in
          List.iter
            (fun (offset, len, ch) ->
              Bytes.fill reference offset len ch;
              Qcow2.write q ~offset (Payload.of_string (String.make len ch)))
            ops;
          Payload.to_string (Qcow2.read q ~offset:0 ~len:4000) = Bytes.to_string reference))

let prop_qcow2_snapshot_immutable =
  QCheck.Test.make ~name:"qcow2 internal snapshot view is immutable under later writes"
    ~count:40
    (QCheck.make
       QCheck.Gen.(pair (writes_gen ~ops:6 ~space:2000 ~max_len:500)
                     (writes_gen ~ops:6 ~space:2000 ~max_len:500)))
    (fun (before, after) ->
      let rig = make_rig () in
      let host, disk = rig.nodes.(0) in
      let host2, disk2 = rig.nodes.(1) in
      run rig (fun () ->
          let reference = Bytes.make 2000 '\000' in
          let q =
            Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:128 ~capacity:2000
              ~backing:Qcow2.No_backing ~name:"q" ()
          in
          List.iter
            (fun (offset, len, ch) ->
              Bytes.fill reference offset len ch;
              Qcow2.write q ~offset (Payload.of_string (String.make len ch)))
            before;
          let frozen = Bytes.to_string reference in
          Qcow2.savevm q ~snapshot_name:"s" ~vm_state:(Payload.zero 64);
          List.iter
            (fun (offset, len, ch) ->
              Qcow2.write q ~offset (Payload.of_string (String.make len ch)))
            after;
          (* Export and view the snapshot from another node. *)
          let remote = Qcow2.export q rig.fs ~from:host ~path:"/exp" in
          let view = Qcow2.remote_table_of_snapshot remote ~snapshot_name:"s" in
          let q2 =
            Qcow2.create rig.engine ~host:host2 ~local_disk:disk2 ~cluster_size:128
              ~capacity:2000 ~backing:(Qcow2.Qcow2_remote view) ~name:"q2" ()
          in
          Payload.to_string (Qcow2.read q2 ~offset:0 ~len:2000) = frozen))

(* ------------------------------------------------------------------ *)
(* Mirror: random writes + commit + remirror equals reference *)

let prop_mirror_commit_restores_reference =
  QCheck.Test.make ~name:"mirror: writes + COMMIT + fresh mirror = reference" ~count:40
    (QCheck.make (writes_gen ~ops:8 ~space:3000 ~max_len:700))
    (fun ops ->
      let rig = make_rig () in
      let host0, disk0 = rig.nodes.(0) in
      let host1, disk1 = rig.nodes.(1) in
      run rig (fun () ->
          let base = Client.create_blob rig.service ~from:host0 ~capacity:3000 in
          let v0 = Client.write base ~from:host0 ~offset:0 (Payload.of_string (String.make 3000 'O')) in
          let reference = Bytes.make 3000 'O' in
          let m =
            Mirror.create rig.engine ~host:host0 ~local_disk:disk0 ~base ~base_version:v0
              ~name:"m" ()
          in
          List.iter
            (fun (offset, len, ch) ->
              Bytes.fill reference offset len ch;
              Mirror.write m ~offset (Payload.of_string (String.make len ch)))
            ops;
          let version = Mirror.commit m in
          let ckpt = Option.get (Mirror.checkpoint_image m) in
          let m2 =
            Mirror.create rig.engine ~host:host1 ~local_disk:disk1 ~base:ckpt
              ~base_version:version ~name:"m2" ()
          in
          Payload.to_string (Mirror.read m2 ~offset:0 ~len:3000) = Bytes.to_string reference))

let prop_mirror_uncommitted_writes_roll_back =
  QCheck.Test.make ~name:"mirror: uncommitted writes never reach the snapshot" ~count:40
    (QCheck.make
       QCheck.Gen.(pair (writes_gen ~ops:5 ~space:2000 ~max_len:400)
                     (writes_gen ~ops:5 ~space:2000 ~max_len:400)))
    (fun (committed, stray) ->
      let rig = make_rig () in
      let host0, disk0 = rig.nodes.(0) in
      let host1, disk1 = rig.nodes.(1) in
      run rig (fun () ->
          let base = Client.create_blob rig.service ~from:host0 ~capacity:2000 in
          let v0 = Client.write base ~from:host0 ~offset:0 (Payload.zero 2000) in
          let reference = Bytes.make 2000 '\000' in
          let m =
            Mirror.create rig.engine ~host:host0 ~local_disk:disk0 ~base ~base_version:v0
              ~name:"m" ()
          in
          List.iter
            (fun (offset, len, ch) ->
              Bytes.fill reference offset len ch;
              Mirror.write m ~offset (Payload.of_string (String.make len ch)))
            committed;
          let version = Mirror.commit m in
          List.iter
            (fun (offset, len, ch) ->
              Mirror.write m ~offset (Payload.of_string (String.make len ch)))
            stray;
          let ckpt = Option.get (Mirror.checkpoint_image m) in
          let m2 =
            Mirror.create rig.engine ~host:host1 ~local_disk:disk1 ~base:ckpt
              ~base_version:version ~name:"m2" ()
          in
          Payload.to_string (Mirror.read m2 ~offset:0 ~len:2000) = Bytes.to_string reference))

(* ------------------------------------------------------------------ *)
(* Guest FS: random op sequences vs a reference map, across remounts *)

type fs_op =
  | Write of int * int * char (* file index, len, fill *)
  | Append of int * int * char
  | Delete of int
  | Sync
  | Remount

let fs_op_gen =
  QCheck.Gen.(
    let* tag = int_range 0 9 in
    let* file = int_range 0 3 in
    let* len = int_range 1 5000 in
    let* ch = printable in
    return
      (match tag with
      | 0 | 1 | 2 -> Write (file, len, ch)
      | 3 | 4 -> Append (file, len, ch)
      | 5 -> Delete file
      | 6 | 7 | 8 -> Sync
      | _ -> Remount))

let pp_fs_op = function
  | Write (f, l, c) -> Fmt.str "write f%d %d %c" f l c
  | Append (f, l, c) -> Fmt.str "append f%d %d %c" f l c
  | Delete f -> Fmt.str "delete f%d" f
  | Sync -> "sync"
  | Remount -> "remount"

let prop_guest_fs_matches_reference =
  let gen = QCheck.Gen.(list_size (int_range 1 25) fs_op_gen) in
  QCheck.Test.make ~name:"guest fs: random ops match reference across remounts" ~count:60
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_fs_op ops)) gen)
    (fun ops ->
      let dev = Block_dev.in_memory ~capacity:(Size.mib_n 8) in
      let fs = ref (Guest_fs.format dev ~meta_region:(Size.mib_n 1) ()) in
      Guest_fs.sync !fs;
      (* [synced] is what a remount must see; [live] is the page-cache
         view. *)
      let live : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let synced = ref [] in
      let path i = Fmt.str "/f%d" i in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Write (f, len, ch) ->
              Hashtbl.replace live (path f) (String.make len ch);
              Guest_fs.write_file !fs ~path:(path f) (Payload.of_string (String.make len ch))
          | Append (f, len, ch) ->
              let prev = Option.value ~default:"" (Hashtbl.find_opt live (path f)) in
              Hashtbl.replace live (path f) (prev ^ String.make len ch);
              Guest_fs.append_file !fs ~path:(path f) (Payload.of_string (String.make len ch))
          | Delete f ->
              if Hashtbl.mem live (path f) then begin
                Hashtbl.remove live (path f);
                Guest_fs.delete_file !fs ~path:(path f)
              end
          | Sync ->
              Guest_fs.sync !fs;
              synced := Hashtbl.fold (fun k v acc -> (k, v) :: acc) live []
          | Remount ->
              (* Unsynced changes are lost, like a crash + snapshot. *)
              fs := Guest_fs.mount dev;
              Hashtbl.reset live;
              List.iter (fun (k, v) -> Hashtbl.replace live k v) !synced)
        ops;
      (* Final check: every live file reads back exactly. *)
      Hashtbl.iter
        (fun path content ->
          let got = Payload.to_string (Guest_fs.read_file !fs ~path) in
          if got <> content then ok := false)
        live;
      Alcotest.(check bool) "files match" true !ok;
      !ok)

(* ------------------------------------------------------------------ *)
(* BlobSeer invariant: repository bytes equal the sum of distinct chunks
   referenced by all live versions (conservation of storage). *)

let prop_repository_conservation =
  QCheck.Test.make ~name:"blobseer: repository bytes = distinct referenced chunk bytes"
    ~count:30
    (QCheck.make (writes_gen ~ops:10 ~space:4000 ~max_len:1000))
    (fun ops ->
      let rig = make_rig ~stripe:256 () in
      let host, _ = rig.nodes.(0) in
      run rig (fun () ->
          let blob = Client.create_blob rig.service ~from:host ~capacity:4000 in
          List.iter
            (fun (offset, len, ch) ->
              ignore (Client.write blob ~from:host ~offset (Payload.of_string (String.make len ch))))
            ops;
          Client.repository_bytes rig.service = Client.distinct_bytes blob))

let () =
  Alcotest.run "properties"
    [
      ( "oracles",
        List.map
          (QCheck_alcotest.to_alcotest ~verbose:false)
          [
            prop_qcow2_matches_reference;
            prop_qcow2_snapshot_immutable;
            prop_mirror_commit_restores_reference;
            prop_mirror_uncommitted_writes_roll_back;
            prop_guest_fs_matches_reference;
            prop_repository_conservation;
          ] );
    ]
