(* Fault-tolerant CM1: the paper's motivating scenario end to end.

   A CM1-like atmospheric simulation runs across several VM instances
   under the supervisor, with periodic BlobCR checkpoints. A deterministic
   fault injector crash-stops one compute node mid-run — taking the whole
   tightly-coupled application down — and later fail-stops a data
   provider. The supervisor detects the failure through its heartbeat
   prober, rolls the gang back to the last global checkpoint, re-deploys
   on spare nodes and resumes; replicated chunks let snapshot reads fail
   over around the lost provider. Only the iterations since the last
   checkpoint are lost.

     dune exec examples/cm1_fault_tolerance.exe *)

open Simcore
open Blobcr
open Workloads

let gang = 2
let checkpoint_every = 4 (* work units (= iterations) *)
let total_units = 12

let cm1_config =
  {
    Cm1.default_config with
    procs_per_vm = 2;
    subdomain_state_bytes = Size.mib_n 1;
    compute_per_iteration = 2.0;
    summary_every = 2;
  }

(* Scripted failures: crash the node hosting the first instance shortly
   after the second checkpoint lands, then fail-stop a surviving data
   provider while recovery is re-reading the snapshot — the restart rides
   on replica failover. Times are relative to injector start. *)
let script =
  [
    { Faults.at = 18.0; action = Faults.Crash_host 0 };
    { Faults.at = 19.2; action = Faults.Fail_provider 2 };
  ]

let () =
  (* Replicated chunks so snapshots survive a co-located provider loss. *)
  let cal =
    {
      Calibration.quick_test with
      blobseer =
        { Calibration.quick_test.Calibration.blobseer with Blobseer.Types.replication = 2 };
    }
  in
  let cluster = Cluster.build cal in
  Cluster.run cluster (fun () ->
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say "deploying %d supervised CM1 instances" gang;
      let workload = Cm1.supervised_workload cluster cm1_config ~iters_per_unit:1 in
      let policy =
        { Supervisor.default_policy with checkpoint_interval = checkpoint_every }
      in
      let injector = ref None in
      let report =
        Supervisor.run cluster ~kind:Approach.Blobcr ~policy
          ~on_ready:(fun sup ->
            injector :=
              Some
                (Faults.start cluster.Cluster.engine ~script
                   ~handlers:(Supervisor.fault_handlers sup)))
          ~id:"cm1" ~gang ~units:total_units ~workload ()
      in
      (match !injector with Some inj -> Faults.stop inj | None -> ());
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      List.iter
        (fun event ->
          match event with
          | Supervisor.Deployed { at; ids } ->
              Fmt.pr "[t=%7.2fs] deployed: %s@." at (String.concat ", " ids)
          | Supervisor.Checkpoint_committed { at; units; _ } ->
              Fmt.pr "[t=%7.2fs] global checkpoint committed at %d units@." at units
          | Supervisor.Checkpoint_degraded { at; units; reason } ->
              Fmt.pr "[t=%7.2fs] checkpoint degraded at %d units (%s)@." at units reason
          | Supervisor.Failure_detected { at; dead } ->
              Fmt.pr "[t=%7.2fs] MACHINE FAILURE detected: %s@." at (String.concat ", " dead)
          | Supervisor.Recovered { at; attempt; resumed_units } ->
              Fmt.pr "[t=%7.2fs] recovery #%d complete: resumed from %d units@." at attempt
                resumed_units
          | Supervisor.Abandoned { at; ids } ->
              Fmt.pr "[t=%7.2fs] abandoned: %s@." at (String.concat ", " ids)
          | Supervisor.Journal_recovered { at; intents } ->
              Fmt.pr "[t=%7.2fs] journal recovery: %d intent(s) rolled back@." at intents
          | Supervisor.Scrubbed { at; repaired; unrepairable } ->
              Fmt.pr "[t=%7.2fs] scrub: %d repaired, %d unrepairable@." at repaired
                unrepairable
          | Supervisor.Rollback_demoted { at; from_units; to_units } ->
              Fmt.pr "[t=%7.2fs] rollback target demoted: %d -> %d units@." at from_units
                to_units
          | Supervisor.Failed_over { at; rpo_versions; rpo_bytes; rpo_units; rto } ->
              Fmt.pr
                "[t=%7.2fs] SITE FAILOVER: standby promoted, lost %d version(s) / %d bytes, \
                 rolled back %d unit(s), RTO %.2fs@."
                at rpo_versions rpo_bytes rpo_units rto)
        report.Supervisor.events;
      say "simulation %s: %d/%d units, %d checkpoints, %d recoveries"
        (if report.Supervisor.finished then "complete" else "ABANDONED")
        report.Supervisor.units_completed total_units report.Supervisor.checkpoints
        report.Supervisor.recoveries;
      say "useful %.1fs, wasted (rolled back) %.1fs, mean recovery latency %.2fs"
        report.Supervisor.useful_time report.Supervisor.wasted_time
        (match report.Supervisor.recovery_latencies with
        | [] -> 0.0
        | ls -> Stats.mean ls);
      say "storage used for checkpoints: %a" Size.pp (Approach.storage_total cluster))
