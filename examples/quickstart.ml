(* Quickstart: the BlobCR lifecycle in one page.

   Builds a small simulated IaaS cloud, deploys two VM instances backed by
   the BlobCR mirroring module, runs the synthetic application, takes a
   global checkpoint, fail-stops everything, restarts on different nodes
   and verifies the state came back byte-for-byte.

     dune exec examples/quickstart.exe *)

open Simcore
open Blobcr
open Workloads

let () =
  (* A 4-node cloud with a small disk image so the example runs in a
     blink; swap in [Calibration.default] for the paper's 120-node shape. *)
  let cluster = Cluster.build Calibration.quick_test in
  Cluster.run cluster (fun () ->
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say "cloud is up: %d compute nodes, base image %a"
        (Cluster.node_count cluster)
        Size.pp cluster.cal.Calibration.image_capacity;

      (* Deploy two instances from the base image (lazy transfer: only the
         boot hot-set is fetched from the repository). *)
      let instances =
        List.map
          (fun i ->
            Approach.deploy cluster Approach.Blobcr
              ~node:(Cluster.node cluster i)
              ~id:(Fmt.str "vm%d" i))
          [ 0; 1 ]
      in
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say "%d instances booted and running" (List.length instances);

      (* Each instance runs one process with a 4 MiB in-memory buffer. *)
      let benches =
        List.map (fun inst -> Synthetic.start inst ~buffer_bytes:(Size.mib_n 4)) instances
      in
      let digests = List.map (fun b -> Payload.digest (Synthetic.buffer b)) benches in

      (* Global checkpoint: every process dumps its buffer into the guest
         file system, syncs, and asks the local proxy to snapshot the
         virtual disk (CLONE + COMMIT into the checkpoint repository). *)
      let pairs = List.combine instances benches in
      let snapshots =
        Protocol.global_checkpoint_exn cluster ~instances ~dump:(fun inst ->
            Synthetic.dump_app (List.assq inst pairs))
      in
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      List.iter
        (fun s -> say "snapshot taken: %a incremental" Size.pp (Approach.snapshot_bytes s))
        snapshots;

      (* Disaster: every machine hosting the application fail-stops. *)
      Protocol.kill_all instances;
      say "all instances fail-stopped; local disk state lost";

      (* Restart on the other two nodes, straight from the disk-image
         snapshots, and reload the buffers from the checkpoint files. *)
      let plan =
        List.mapi
          (fun i snapshot ->
            (Cluster.node cluster (2 + i), Fmt.str "vm%d-reborn" i, snapshot))
          snapshots
      in
      let restored = ref [] in
      let _ =
        Protocol.global_restart_exn cluster ~plan ~restore:(fun inst ->
            let bench = Synthetic.restore_app inst in
            restored := Payload.digest (Synthetic.buffer bench) :: !restored)
      in
      let say fmt = Fmt.pr ("[t=%7.2fs] " ^^ fmt ^^ "@.") (Cluster.now cluster) in
      say "instances rebooted from snapshots on fresh nodes";

      let ok = List.sort compare digests = List.sort compare !restored in
      say "state verification: %s" (if ok then "byte-for-byte identical" else "MISMATCH");
      if not ok then exit 1)
