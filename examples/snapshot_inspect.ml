(* Snapshot inspection, shadowing and garbage collection.

   Shows the repository-side features of BlobCR: incremental snapshots
   that share unmodified content (shadowing), checkpoint images that look
   like standalone disk images a cloud client can open and read directly
   (the paper's "inspect and even manually modify" scenario), and the
   garbage collector reclaiming obsoleted snapshots.

     dune exec examples/snapshot_inspect.exe *)

open Simcore
open Blobcr
open Workloads

let () =
  let cluster = Cluster.build Calibration.quick_test in
  Cluster.run cluster (fun () ->
      let say fmt = Fmt.pr ("  " ^^ fmt ^^ "@.") in
      let inst =
        Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"vm0"
      in
      let bench = Synthetic.start inst ~buffer_bytes:(Size.mib_n 2) in

      Fmt.pr "== Incremental snapshots and shadowing ==@.";
      let take i =
        Synthetic.refill bench;
        Synthetic.dump_app ~retain:1 bench;
        let s = Approach.request_checkpoint cluster inst in
        say "checkpoint %d: %a incremental (checkpoint storage now %a)" (i + 1) Size.pp
          (Approach.snapshot_bytes s) Size.pp
          (Approach.storage_total cluster);
        s
      in
      let _snapshots = List.init 3 take in

      (match Approach.request_checkpoint cluster inst with
      | Approach.Blobcr_snapshot { image; version } ->
          let v1 = 1 and v2 = version in
          let t1 = Blobseer.Client.tree image ~version:v1 in
          let t2 = Blobseer.Client.tree image ~version:v2 in
          say "metadata sharing between snapshot v%d and v%d: %d shared tree nodes" v1 v2
            (Blobseer.Segment_tree.shared_nodes t1 t2);

          Fmt.pr "@.== Downloading a checkpoint image as a standalone entity ==@.";
          (* The cloud client host reads the checkpoint image directly from
             the repository — no VM involved — e.g. to inspect files. *)
          let client = (Cluster.node cluster 3).Cluster.host in
          let dev =
            {
              Vdisk.Block_dev.capacity = Blobseer.Client.capacity image;
              read =
                (fun ~offset ~len ->
                  Blobseer.Client.read image ~from:client ~version:v2 ~offset ~len);
              write = (fun ~offset:_ _ -> failwith "read-only inspection");
              flush = (fun () -> ());
            }
          in
          let fs = Vmsim.Guest_fs.mount dev in
          say "mounted snapshot v%d read-only from host %s" v2 (Netsim.Net.host_name client);
          List.iter
            (fun path ->
              if String.length path >= 5 && String.sub path 0 5 = "/ckpt" then
                say "  %s (%a)" path Size.pp (Vmsim.Guest_fs.file_size fs ~path))
            (Vmsim.Guest_fs.list_files fs)
      | _ -> assert false);

      Fmt.pr "@.== Garbage collection ==@.";
      let before = Blobseer.Client.repository_bytes cluster.Cluster.service in
      let report = Gc.collect cluster.Cluster.service ~keep_last:1 () in
      let after = Blobseer.Client.repository_bytes cluster.Cluster.service in
      say "dropped %d obsolete versions, deleted %d chunks" report.Gc.versions_dropped
        report.Gc.chunks_deleted;
      say "repository: %a -> %a (reclaimed %a)" Size.pp before Size.pp after Size.pp
        report.Gc.bytes_reclaimed)
