(* Benchmark harness.

   Usage:
     bench/main.exe                  regenerate every paper figure/table
                                     (paper scale) then run microbenchmarks
     bench/main.exe fig2a fig5a      run selected experiments
     bench/main.exe ablations        the four design-choice ablations
     bench/main.exe availability     MTBF x checkpoint-interval chaos sweep
     bench/main.exe micro            only the Bechamel microbenchmarks
     bench/main.exe --scale quick    fast smoke run of everything
     bench/main.exe --csv DIR        also write CSV outputs
     bench/main.exe --obs            also print the metrics table and the
                                     per-phase checkpoint/restart breakdown,
                                     and write a Chrome-trace timeline per
                                     experiment (OBS_<id>.trace.json)

   Each experiment prints the same rows/series the corresponding paper
   figure plots (see EXPERIMENTS.md for the paper-vs-measured record). *)

open Simcore
open Netsim

let progress line = Printf.eprintf "    %s\n%!" line

let run_experiment scale csv_dir obs id =
  match Experiments.Registry.find id with
  | None ->
      Printf.eprintf "unknown experiment %S (known: %s)\n%!" id
        (String.concat ", " Experiments.Registry.ids);
      exit 2
  | Some e ->
      Printf.printf "### %s — %s\n    %s\n\n%!" e.Experiments.Registry.id
        e.Experiments.Registry.paper_ref e.Experiments.Registry.description;
      let t0 = Unix.gettimeofday () in (* lint: allow wall-clock — bench measures real elapsed time *)
      if obs then begin
        let rendered, run = Experiments.Registry.run_observed e scale ?csv_dir ~progress () in
        print_string rendered;
        print_string (Experiments.Registry.render_observability run);
        let json = Obs.Export.chrome_trace run in
        (match Obs.Export.validate_json json with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "internal error: timeline JSON invalid (%s)\n%!" msg;
            exit 1);
        let path = Printf.sprintf "OBS_%s.trace.json" id in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "(timeline written to %s)\n%!" path
      end
      else
        print_string (Experiments.Registry.run_and_render e scale ?csv_dir ~progress ());
      (* lint: allow wall-clock — bench measures real elapsed time *)
      Printf.printf "(experiment wall time: %.1fs)\n\n%!" (Unix.gettimeofday () -. t0)

(* The dedup experiment additionally persists its raw points as
   BENCH_dedup.json at the repo root, so the numbers (bytes shipped,
   repository growth, commit latency, dup-heavy vs unique) are tracked
   alongside the code. *)
let run_dedup scale scale_name csv_dir =
  let e = Option.get (Experiments.Registry.find "dedup") in
  Printf.printf "### %s — %s\n    %s\n\n%!" e.Experiments.Registry.id
    e.Experiments.Registry.paper_ref e.Experiments.Registry.description;
  let t0 = Unix.gettimeofday () in (* lint: allow wall-clock — bench measures real elapsed time *)
  let points = Experiments.Dedup_bench.run scale ~progress () in
  List.iter
    (fun (name, table) ->
      print_string (Stats.render table);
      print_newline ();
      match csv_dir with
      | Some dir ->
          let path = Stats.write_csv ~dir ~name table in
          Printf.printf "(csv written to %s)\n\n%!" path
      | None -> ())
    (Experiments.Dedup_bench.tables_of points);
  let oc = open_out "BENCH_dedup.json" in
  output_string oc (Experiments.Dedup_bench.json_of ~scale_name points);
  close_out oc;
  Printf.printf "(points written to BENCH_dedup.json)\n";
  (* lint: allow wall-clock — bench measures real elapsed time *)
  Printf.printf "(experiment wall time: %.1fs)\n\n%!" (Unix.gettimeofday () -. t0)

(* The digest experiment likewise persists its raw points as
   BENCH_digest.json at the repo root: the commit-path digest tax (bytes
   digested during COMMIT vs over the whole epoch) across dirty
   fractions, with and without the dirty-region digest cache. *)
let run_digest scale scale_name csv_dir =
  let e = Option.get (Experiments.Registry.find "digest") in
  Printf.printf "### %s — %s\n    %s\n\n%!" e.Experiments.Registry.id
    e.Experiments.Registry.paper_ref e.Experiments.Registry.description;
  let t0 = Unix.gettimeofday () in (* lint: allow wall-clock — bench measures real elapsed time *)
  let points = Experiments.Digest_bench.run scale ~progress () in
  List.iter
    (fun (name, table) ->
      print_string (Stats.render table);
      print_newline ();
      match csv_dir with
      | Some dir ->
          let path = Stats.write_csv ~dir ~name table in
          Printf.printf "(csv written to %s)\n\n%!" path
      | None -> ())
    (Experiments.Digest_bench.tables_of points);
  let oc = open_out "BENCH_digest.json" in
  output_string oc (Experiments.Digest_bench.json_of ~scale_name points);
  close_out oc;
  Printf.printf "(points written to BENCH_digest.json)\n";
  (* lint: allow wall-clock — bench measures real elapsed time *)
  Printf.printf "(experiment wall time: %.1fs)\n\n%!" (Unix.gettimeofday () -. t0)

(* The precopy experiment persists its raw points as BENCH_precopy.json
   at the repo root: guest-observed suspend window, checkpoint latency,
   shipped/COW bytes and achieved writer throughput for stop-the-world vs
   live (pre-copy + background commit) checkpoints. *)
let run_precopy scale scale_name csv_dir =
  let e = Option.get (Experiments.Registry.find "precopy") in
  Printf.printf "### %s — %s\n    %s\n\n%!" e.Experiments.Registry.id
    e.Experiments.Registry.paper_ref e.Experiments.Registry.description;
  let t0 = Unix.gettimeofday () in (* lint: allow wall-clock — bench measures real elapsed time *)
  let points = Experiments.Precopy.run scale ~progress () in
  List.iter
    (fun (name, table) ->
      print_string (Stats.render table);
      print_newline ();
      match csv_dir with
      | Some dir ->
          let path = Stats.write_csv ~dir ~name table in
          Printf.printf "(csv written to %s)\n\n%!" path
      | None -> ())
    (Experiments.Precopy.tables_of points);
  let oc = open_out "BENCH_precopy.json" in
  output_string oc (Experiments.Precopy.json_of ~scale_name points);
  close_out oc;
  Printf.printf "(points written to BENCH_precopy.json)\n";
  (* lint: allow wall-clock — bench measures real elapsed time *)
  Printf.printf "(experiment wall time: %.1fs)\n\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core data structures *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let seg_tree_update =
    Test.make ~name:"segment-tree: single-leaf update (8192 chunks)"
      (Staged.stage (fun () ->
           let tree = Blobseer.Segment_tree.create ~chunks:8192 in
           let tree, _ = Blobseer.Segment_tree.set_range tree ~start:0 [| Some 1 |] in
           ignore (Blobseer.Segment_tree.set_range tree ~start:4096 [| Some 2 |])))
  in
  let seg_tree_bulk =
    Test.make ~name:"segment-tree: 256-leaf bulk update"
      (Staged.stage (fun () ->
           let tree = Blobseer.Segment_tree.create ~chunks:8192 in
           ignore
             (Blobseer.Segment_tree.set_range tree ~start:1024
                (Array.init 256 (fun i -> Some i)))))
  in
  let payload_slice =
    Test.make ~name:"payload: slice + digest of a 64 MiB pattern"
      (Staged.stage (fun () ->
           let p = Payload.pattern ~seed:1L (Size.mib_n 64) in
           ignore (Payload.length (Payload.sub p ~pos:12345 ~len:4096))))
  in
  let event_queue =
    Test.make ~name:"event-queue: 1k add+pop"
      (Staged.stage (fun () ->
           let q = Event_queue.create () in
           for i = 0 to 999 do
             Event_queue.add q ~time:(float_of_int ((i * 7919) mod 997)) i
           done;
           while not (Event_queue.is_empty q) do
             ignore (Event_queue.pop q)
           done))
  in
  let engine_fibers =
    Test.make ~name:"engine: 100 fibers x 10 sleeps"
      (Staged.stage (fun () ->
           let e = Engine.create () in
           for i = 0 to 99 do
             ignore
               (Engine.Fiber.spawn e ~name:(string_of_int i) (fun () ->
                    for _ = 1 to 10 do
                      Engine.sleep e 1.0
                    done))
           done;
           Engine.run e))
  in
  let qcow2_cow =
    Test.make ~name:"qcow2: 64 cluster COW writes (in-sim)"
      (Staged.stage (fun () ->
           let e = Engine.create () in
           let net = Net.create e { Net.default_config with latency = 0.0 } in
           let host = Net.add_host net ~name:"h" in
           let disk = Storage.Disk.create e ~rate:1e12 ~seek:0.0 () in
           let _ =
             Engine.Fiber.spawn e (fun () ->
                 let q =
                   Vdisk.Qcow2.create e ~host ~local_disk:disk ~cluster_size:(64 * Size.kib)
                     ~capacity:(Size.mib_n 64) ~backing:Vdisk.Qcow2.No_backing ~name:"q" ()
                 in
                 for i = 0 to 63 do
                   Vdisk.Qcow2.write q ~offset:(i * 64 * Size.kib)
                     (Payload.pattern ~seed:(Int64.of_int i) (64 * Size.kib))
                 done)
           in
           Engine.run e))
  in
  let tests =
    Test.make_grouped ~name:"blobcr-core"
      [ seg_tree_update; seg_tree_bulk; payload_slice; event_queue; engine_fibers; qcow2_cow ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Printf.printf "### Microbenchmarks (Bechamel, monotonic clock)\n\n%!";
  let results = analyze (benchmark ()) in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Bechamel.Analyze.OLS.estimates ols with
         | Some [ time ] -> Printf.printf "%-55s %12.1f ns/run\n%!" name time
         | _ -> Printf.printf "%-55s (no estimate)\n%!" name);
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse named csv obs ids = function
    | "--scale" :: s :: rest -> (
        match Experiments.Scale.find s with
        | Some scale -> parse (s, scale) csv obs ids rest
        | None ->
            Printf.eprintf "unknown scale %S (paper|quick)\n" s;
            exit 2)
    | "--csv" :: dir :: rest -> parse named (Some dir) obs ids rest
    | "--obs" :: rest -> parse named csv true ids rest
    | id :: rest -> parse named csv obs (id :: ids) rest
    | [] -> (named, csv, obs, List.rev ids)
  in
  let (scale_name, scale), csv_dir, obs, ids =
    parse ("paper", Experiments.Scale.paper) None false [] args
  in
  let experiment_ids = [ "fig2a"; "fig2b"; "fig4"; "fig5a"; "fig6"; "table1" ] in
  let ablation_ids = [ "abl-prefetch"; "abl-stripe"; "abl-replication"; "abl-incremental" ] in
  let expand = function "ablations" -> ablation_ids | id -> [ id ] in
  let ids = List.concat_map expand ids in
  let run_one = function
    | "dedup" -> run_dedup scale scale_name csv_dir
    | "digest" -> run_digest scale scale_name csv_dir
    | "precopy" -> run_precopy scale scale_name csv_dir
    | "micro" -> micro ()
    | id -> run_experiment scale csv_dir obs id
  in
  match ids with
  | [] ->
      (* Full regeneration: fig2a/fig2b emit fig3a/fig3b too, fig5a emits
         fig5b, so the six runs below cover all nine paper artifacts. *)
      List.iter (run_experiment scale csv_dir obs) experiment_ids;
      micro ()
  | ids -> List.iter run_one ids
