(* Tests for the virtual disk stack: sparse bytes, block devices, qcow2
   (COW, backing chains, internal snapshots, export), prefetcher and the
   BlobCR mirroring module. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

(* ------------------------------------------------------------------ *)
(* Sparse_bytes *)

let test_sparse_bytes_roundtrip () =
  let s = Sparse_bytes.create ~block_size:16 () in
  Sparse_bytes.write s ~offset:10 (Payload.of_string "hello");
  Alcotest.(check string) "read back" "hello"
    (Payload.to_string (Sparse_bytes.read s ~offset:10 ~len:5));
  Alcotest.(check string) "hole before" "\000\000" (Payload.to_string (Sparse_bytes.read s ~offset:8 ~len:2))

let test_sparse_bytes_overwrite () =
  let s = Sparse_bytes.create ~block_size:8 () in
  Sparse_bytes.write s ~offset:0 (Payload.of_string "aaaaaaaaaa");
  Sparse_bytes.write s ~offset:4 (Payload.of_string "bb");
  Alcotest.(check string) "spliced" "aaaabbaaaa"
    (Payload.to_string (Sparse_bytes.read s ~offset:0 ~len:10))

let prop_sparse_bytes_matches_reference =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (let* offset = int_range 0 200 in
         let* len = int_range 1 60 in
         let* ch = printable in
         return (offset, len, ch)))
  in
  QCheck.Test.make ~name:"sparse bytes match reference" ~count:100 (QCheck.make gen)
    (fun ops ->
      let s = Sparse_bytes.create ~block_size:13 () in
      let reference = Bytes.make 300 '\000' in
      List.iter
        (fun (offset, len, ch) ->
          Bytes.fill reference offset len ch;
          Sparse_bytes.write s ~offset (Payload.of_string (String.make len ch)))
        ops;
      Payload.to_string (Sparse_bytes.read s ~offset:0 ~len:300) = Bytes.to_string reference)

(* ------------------------------------------------------------------ *)
(* Block_dev *)

let test_block_dev_bounds () =
  let dev = Block_dev.in_memory ~capacity:100 in
  Block_dev.write dev ~offset:90 (Payload.of_string "0123456789");
  Alcotest.check_raises "overflow"
    (Invalid_argument "Block_dev: range [95, 105) exceeds capacity 100") (fun () ->
      ignore (Block_dev.write dev ~offset:95 (Payload.of_string "0123456789")))

let test_block_dev_in_memory () =
  let dev = Block_dev.in_memory ~capacity:100 in
  Block_dev.write dev ~offset:5 (Payload.of_string "xyz");
  Block_dev.flush dev;
  Alcotest.(check string) "read" "xyz" (Payload.to_string (Block_dev.read dev ~offset:5 ~len:3))

(* ------------------------------------------------------------------ *)
(* Test rig with PVFS + BlobSeer + compute nodes *)

type rig = {
  engine : Engine.t;
  net : Net.t;
  fs : Pvfs.t;
  service : Client.t;
  nodes : (Net.host * Disk.t) array; (* compute nodes *)
}

let make_rig ?(nodes = 3) ?(stripe = 1024) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let md_host = Net.add_host net ~name:"pvfs-md" in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let meta = [ Net.add_host net ~name:"meta0" ] in
  let compute =
    Array.init nodes (fun i ->
        ( Net.add_host net ~name:(Fmt.str "node%d" i),
          Disk.create engine ~name:(Fmt.str "nodedisk%d" i) () ))
  in
  let fs =
    Pvfs.deploy engine net
      ~params:{ Pvfs.default_params with stripe_size = stripe }
      ~metadata_host:md_host
      ~io_servers:(Array.to_list compute) ()
  in
  let service =
    Client.deploy engine net
      ~params:{ Types.default_params with stripe_size = stripe }
      ~version_manager_host:vm_host ~provider_manager_host:pm_host ~metadata_hosts:meta
      ~data_providers:(Array.to_list compute) ()
  in
  { engine; net; fs; service; nodes = compute }

let run rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Qcow2 *)

let test_qcow2_cow_read_write () =
  let rig = make_rig () in
  let host, disk = rig.nodes.(0) in
  let back, after =
    run rig (fun () ->
        let q =
          Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:4096
            ~backing:Qcow2.No_backing ~name:"q" ()
        in
        let before = Payload.to_string (Qcow2.read q ~offset:0 ~len:8) in
        Qcow2.write q ~offset:100 (Payload.of_string "cowdata!");
        (before, Payload.to_string (Qcow2.read q ~offset:100 ~len:8)))
  in
  Alcotest.(check string) "zeros before" (String.make 8 '\000') back;
  Alcotest.(check string) "data after" "cowdata!" after

let test_qcow2_backing_raw_pvfs () =
  let rig = make_rig () in
  let host, disk = rig.nodes.(0) in
  let through, overlaid =
    run rig (fun () ->
        let base = Pvfs.create rig.fs ~from:host ~path:"/base.raw" in
        Pvfs.write base ~from:host ~offset:0 (Payload.of_string (String.make 4096 'B'));
        let q =
          Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:4096
            ~backing:(Qcow2.Raw_pvfs base) ~name:"q" ()
        in
        let through = Payload.to_string (Qcow2.read q ~offset:1000 ~len:4) in
        Qcow2.write q ~offset:1000 (Payload.of_string "local");
        (through, Payload.to_string (Qcow2.read q ~offset:998 ~len:9)))
  in
  Alcotest.(check string) "falls through to base" "BBBB" through;
  Alcotest.(check string) "partial COW merges base" "BBlocalBB" overlaid

let test_qcow2_grows_only_on_allocation () =
  let rig = make_rig () in
  let host, disk = rig.nodes.(0) in
  let size0, size1, size2 =
    run rig (fun () ->
        let q =
          Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:65536
            ~backing:Qcow2.No_backing ~name:"q" ()
        in
        let size0 = Qcow2.file_size q in
        Qcow2.write q ~offset:0 (Payload.pattern ~seed:1L 256);
        let size1 = Qcow2.file_size q in
        Qcow2.write q ~offset:0 (Payload.pattern ~seed:2L 256);
        (size0, size1, Qcow2.file_size q))
  in
  Alcotest.(check int) "one cluster" (size0 + 256) size1;
  Alcotest.(check int) "overwrite in place" size1 size2

let test_qcow2_savevm_freezes_clusters () =
  let rig = make_rig () in
  let host, disk = rig.nodes.(0) in
  let size_before, size_after_snap, size_after_write, names =
    run rig (fun () ->
        let q =
          Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:65536
            ~backing:Qcow2.No_backing ~name:"q" ()
        in
        Qcow2.write q ~offset:0 (Payload.pattern ~seed:1L 256);
        let size_before = Qcow2.file_size q in
        Qcow2.savevm q ~snapshot_name:"s1" ~vm_state:(Payload.pattern ~seed:9L 1000);
        let size_after_snap = Qcow2.file_size q in
        (* Writing a frozen cluster must allocate a new one. *)
        Qcow2.write q ~offset:0 (Payload.pattern ~seed:2L 256);
        (size_before, size_after_snap, Qcow2.file_size q, Qcow2.snapshot_names q))
  in
  Alcotest.(check bool) "snapshot adds vm state" true (size_after_snap >= size_before + 1000);
  Alcotest.(check int) "COW after snapshot" (size_after_snap + 256) size_after_write;
  Alcotest.(check (list string)) "names" [ "s1" ] names

let test_qcow2_export_and_remote_backing () =
  let rig = make_rig () in
  let host0, disk0 = rig.nodes.(0) in
  let host1, disk1 = rig.nodes.(1) in
  let restored =
    run rig (fun () ->
        let base = Pvfs.create rig.fs ~from:host0 ~path:"/base.raw" in
        Pvfs.write base ~from:host0 ~offset:0 (Payload.of_string (String.make 4096 'B'));
        let q =
          Qcow2.create rig.engine ~host:host0 ~local_disk:disk0 ~cluster_size:256
            ~capacity:4096 ~backing:(Qcow2.Raw_pvfs base) ~name:"q0" ()
        in
        Qcow2.write q ~offset:512 (Payload.of_string (String.make 256 'L'));
        (* Take a disk snapshot: copy the image to PVFS. *)
        let remote = Qcow2.export q rig.fs ~from:host0 ~path:"/snap/q0" in
        (* Redeploy on another node, backed by the snapshot. *)
        let q' =
          Qcow2.create rig.engine ~host:host1 ~local_disk:disk1 ~cluster_size:256
            ~capacity:4096 ~backing:(Qcow2.Qcow2_remote remote) ~name:"q1" ()
        in
        Payload.to_string (Qcow2.read q' ~offset:500 ~len:300))
  in
  let expected = String.make 12 'B' ^ String.make 256 'L' ^ String.make 32 'B' in
  Alcotest.(check string) "snapshot content via chain" expected restored

let test_qcow2_export_vm_state_roundtrip () =
  let rig = make_rig () in
  let host, disk = rig.nodes.(0) in
  let state =
    run rig (fun () ->
        let q =
          Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:4096
            ~backing:Qcow2.No_backing ~name:"q" ()
        in
        Qcow2.write q ~offset:0 (Payload.of_string (String.make 256 'd'));
        Qcow2.savevm q ~snapshot_name:"full" ~vm_state:(Payload.of_string "RAMSTATE");
        let remote = Qcow2.export q rig.fs ~from:host ~path:"/snap/full" in
        Payload.to_string (Qcow2.remote_vm_state remote ~from:host ~snapshot_name:"full"))
  in
  Alcotest.(check string) "vm state preserved" "RAMSTATE" state

let test_qcow2_snapshot_table_view () =
  let rig = make_rig () in
  let host, disk = rig.nodes.(0) in
  let host1, disk1 = rig.nodes.(1) in
  let at_snapshot =
    run rig (fun () ->
        let q =
          Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:4096
            ~backing:Qcow2.No_backing ~name:"q" ()
        in
        Qcow2.write q ~offset:0 (Payload.of_string (String.make 256 'x'));
        Qcow2.savevm q ~snapshot_name:"s" ~vm_state:(Payload.zero 10);
        Qcow2.write q ~offset:0 (Payload.of_string (String.make 256 'y'));
        let remote = Qcow2.export q rig.fs ~from:host ~path:"/snap/v" in
        let view = Qcow2.remote_table_of_snapshot remote ~snapshot_name:"s" in
        let q' =
          Qcow2.create rig.engine ~host:host1 ~local_disk:disk1 ~cluster_size:256
            ~capacity:4096 ~backing:(Qcow2.Qcow2_remote view) ~name:"q1" ()
        in
        Payload.to_string (Qcow2.read q' ~offset:0 ~len:4))
  in
  Alcotest.(check string) "pre-snapshot content" "xxxx" at_snapshot

(* ------------------------------------------------------------------ *)
(* Prefetch *)

let test_prefetch_coalesces_concurrent_fetches () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 0.0 } in
  let provider = Net.add_host net ~name:"provider" in
  let clients = List.init 4 (fun i -> Net.add_host net ~name:(Fmt.str "c%d" i)) in
  let prefetch = Prefetch.create engine net () in
  let real_fetches = ref 0 in
  List.iter
    (fun self ->
      ignore
        (Engine.Fiber.spawn engine (fun () ->
             let p =
               Prefetch.fetch prefetch ~self ~key:(0, 7) ~provider_host:provider
                 ~fetch_fn:(fun () ->
                   incr real_fetches;
                   Engine.sleep engine 0.5;
                   Payload.of_string "chunk")
             in
             assert (Payload.to_string p = "chunk"))))
    clients;
  Engine.run engine;
  Alcotest.(check int) "single real fetch" 1 !real_fetches;
  Alcotest.(check int) "distinct" 1 (Prefetch.distinct_fetches prefetch);
  Alcotest.(check int) "coalesced" 3 (Prefetch.coalesced_fetches prefetch)

let test_prefetch_late_fetch_served_cached () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 0.0 } in
  let provider = Net.add_host net ~name:"provider" in
  let a = Net.add_host net ~name:"a" and b = Net.add_host net ~name:"b" in
  let prefetch = Prefetch.create engine net () in
  let fetches = ref 0 in
  let fetch self delay =
    ignore
      (Engine.Fiber.spawn engine (fun () ->
           Engine.sleep engine delay;
           ignore
             (Prefetch.fetch prefetch ~self ~key:(1, 1) ~provider_host:provider
                ~fetch_fn:(fun () ->
                  incr fetches;
                  Payload.of_string "x"))))
  in
  fetch a 0.0;
  fetch b 10.0;
  Engine.run engine;
  Alcotest.(check int) "one real fetch" 1 !fetches

let test_prefetch_failed_fetch_retried_by_waiter () =
  (* The fetching instance dies mid-read: its waiters must not be stuck
     with the failure — the entry is dropped and the first waiter redoes
     the fetch itself. *)
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 0.0 } in
  let provider = Net.add_host net ~name:"provider" in
  let a = Net.add_host net ~name:"a" and b = Net.add_host net ~name:"b" in
  let prefetch = Prefetch.create engine net () in
  let attempts = ref 0 in
  let fetch_fn () =
    incr attempts;
    Engine.sleep engine 0.5;
    if !attempts = 1 then raise (Faults.Injected_error "fetcher died");
    Payload.of_string "chunk"
  in
  let first_failed = ref false and waiter_got = ref "" in
  ignore
    (Engine.Fiber.spawn engine (fun () ->
         try ignore (Prefetch.fetch prefetch ~self:a ~key:(0, 9) ~provider_host:provider ~fetch_fn)
         with Faults.Injected_error _ -> first_failed := true));
  ignore
    (Engine.Fiber.spawn engine (fun () ->
         Engine.sleep engine 0.1;
         let p = Prefetch.fetch prefetch ~self:b ~key:(0, 9) ~provider_host:provider ~fetch_fn in
         waiter_got := Payload.to_string p));
  Engine.run engine;
  Alcotest.(check bool) "original fetcher saw the error" true !first_failed;
  Alcotest.(check string) "waiter retried and succeeded" "chunk" !waiter_got;
  Alcotest.(check int) "two real attempts" 2 !attempts;
  Alcotest.(check int) "both counted as distinct fetches" 2
    (Prefetch.distinct_fetches prefetch)

let test_prefetch_failed_entry_removed_for_late_callers () =
  (* A failure with no waiters leaves no poisoned cache entry behind: a
     later caller starts a fresh fetch. *)
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 0.0 } in
  let provider = Net.add_host net ~name:"provider" in
  let a = Net.add_host net ~name:"a" in
  let prefetch = Prefetch.create engine net () in
  let attempts = ref 0 in
  let fetch_fn () =
    incr attempts;
    if !attempts = 1 then raise (Faults.Injected_error "fetcher died");
    Payload.of_string "fresh"
  in
  let got = ref "" in
  ignore
    (Engine.Fiber.spawn engine (fun () ->
         (try
            ignore
              (Prefetch.fetch prefetch ~self:a ~key:(2, 2) ~provider_host:provider ~fetch_fn)
          with Faults.Injected_error _ -> ());
         Engine.sleep engine 1.0;
         let p = Prefetch.fetch prefetch ~self:a ~key:(2, 2) ~provider_host:provider ~fetch_fn in
         got := Payload.to_string p));
  Engine.run engine;
  Alcotest.(check string) "second call refetches" "fresh" !got;
  Alcotest.(check int) "fresh fetch after failure" 2 !attempts

(* ------------------------------------------------------------------ *)
(* Mirror *)

let setup_base rig ~content =
  let client_host, _ = rig.nodes.(0) in
  let base = Client.create_blob rig.service ~from:client_host ~capacity:(String.length content) in
  let v = Client.write base ~from:client_host ~offset:0 (Payload.of_string content) in
  (base, v)

let test_mirror_reads_base_lazily () =
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let first, cached =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 2048 'Z') in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        let first = Payload.to_string (Mirror.read m ~offset:100 ~len:4) in
        (first, Mirror.cached_chunks m))
  in
  Alcotest.(check string) "base content" "ZZZZ" first;
  Alcotest.(check int) "only touched chunk cached" 1 cached

let test_mirror_write_is_local_cow () =
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let repo_before, repo_after, dirty =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 2048 'Z') in
        let repo_before = Client.repository_bytes rig.service in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        Mirror.write m ~offset:0 (Payload.of_string (String.make 512 'w'));
        (repo_before, Client.repository_bytes rig.service, Mirror.dirty_bytes m))
  in
  Alcotest.(check int) "repository untouched by guest writes" repo_before repo_after;
  Alcotest.(check int) "two dirty chunks" 512 dirty

let test_mirror_commit_publishes_incremental () =
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let committed, repo_growth, dirty_after =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 2048 'Z') in
        let repo0 = Client.repository_bytes rig.service in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        Mirror.write m ~offset:256 (Payload.of_string (String.make 256 'w'));
        let version = Mirror.commit m in
        let ckpt = Option.get (Mirror.checkpoint_image m) in
        let committed =
          Payload.to_string
            (Client.read ckpt ~from:host ~version ~offset:200 ~len:112)
        in
        (committed, Client.repository_bytes rig.service - repo0, Mirror.dirty_bytes m))
  in
  Alcotest.(check string) "ckpt image = base + diff"
    (String.make 56 'Z' ^ String.make 56 'w')
    committed;
  Alcotest.(check int) "repository grew by diff only" 256 repo_growth;
  Alcotest.(check int) "dirty cleared" 0 dirty_after

let test_mirror_successive_commits_are_incremental () =
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let growths =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 4096 'Z') in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        List.map
          (fun round ->
            let before = Client.repository_bytes rig.service in
            (* Distinct content per round: identical chunks would dedup
               instead of growing the repository. *)
            Mirror.write m ~offset:(round * 256)
              (Payload.of_string (String.make 256 (Char.chr (Char.code 'w' + round))));
            let _ = Mirror.commit m in
            Client.repository_bytes rig.service - before)
          [ 0; 1; 2 ])
  in
  Alcotest.(check (list int)) "constant per-commit growth" [ 256; 256; 256 ] growths

let test_mirror_commit_without_dirty_publishes_empty () =
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let v1, v2 =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 1024 'Z') in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        let v1 = Mirror.commit m in
        (v1, Mirror.commit m))
  in
  Alcotest.(check int) "first" 1 v1;
  Alcotest.(check int) "second" 2 v2

let test_mirror_rollback_via_new_mirror () =
  (* The headline feature: file-system changes after a checkpoint are
     rolled back by re-mirroring the snapshot version. *)
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let host2, disk2 = rig.nodes.(2) in
  let restored =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 1024 'Z') in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'G'));
        let good = Mirror.commit m in
        (* Post-checkpoint corruption that must disappear on rollback. *)
        Mirror.write m ~offset:0 (Payload.of_string (String.make 512 '!'));
        let ckpt = Option.get (Mirror.checkpoint_image m) in
        let m' =
          Mirror.create rig.engine ~host:host2 ~local_disk:disk2 ~base:ckpt
            ~base_version:good ~name:"m'" ()
        in
        Payload.to_string (Mirror.read m' ~offset:0 ~len:512))
  in
  Alcotest.(check string) "rolled back" (String.make 256 'G' ^ String.make 256 'Z') restored

let test_mirror_shared_chunks_prefetched_once () =
  let rig = make_rig ~stripe:256 () in
  let prefetch = Prefetch.create rig.engine rig.net () in
  let distinct, coalesced =
    run rig (fun () ->
        (* Per-chunk-distinct base content: identical chunks would dedup
           into one stored copy and collapse the fetch counts. *)
        let base, v =
          setup_base rig ~content:(String.init 1024 (fun i -> Char.chr (i mod 251)))
        in
        (* Two instances on different nodes mirror the same snapshot and
           read the same range concurrently. *)
        let mk i =
          let host, disk = rig.nodes.(i) in
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~prefetch
            ~name:(Fmt.str "m%d" i) ()
        in
        let m1 = mk 1 and m2 = mk 2 in
        Engine.all rig.engine
          [
            (fun () -> ignore (Mirror.read m1 ~offset:0 ~len:1024));
            (fun () -> ignore (Mirror.read m2 ~offset:0 ~len:1024));
          ];
        (Prefetch.distinct_fetches prefetch, Prefetch.coalesced_fetches prefetch))
  in
  Alcotest.(check int) "each chunk fetched once" 4 distinct;
  Alcotest.(check int) "other instance coalesced" 4 coalesced

let test_mirror_local_footprint_and_drop () =
  let rig = make_rig ~stripe:256 () in
  let host, disk = rig.nodes.(1) in
  let during, after =
    run rig (fun () ->
        let base, v = setup_base rig ~content:(String.make 1024 'Z') in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name:"m" ()
        in
        ignore (Mirror.read m ~offset:0 ~len:512);
        Mirror.write m ~offset:512 (Payload.of_string (String.make 256 'w'));
        let during = Mirror.local_bytes m in
        Mirror.drop_local_state m;
        (during, Mirror.local_bytes m))
  in
  Alcotest.(check int) "cache + cow" 768 during;
  Alcotest.(check int) "released" 0 after

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "vdisk"
    [
      ( "sparse_bytes",
        [
          Alcotest.test_case "roundtrip" `Quick test_sparse_bytes_roundtrip;
          Alcotest.test_case "overwrite" `Quick test_sparse_bytes_overwrite;
        ]
        @ qsuite [ prop_sparse_bytes_matches_reference ] );
      ( "block_dev",
        [
          Alcotest.test_case "bounds" `Quick test_block_dev_bounds;
          Alcotest.test_case "in-memory" `Quick test_block_dev_in_memory;
        ] );
      ( "qcow2",
        [
          Alcotest.test_case "COW read/write" `Quick test_qcow2_cow_read_write;
          Alcotest.test_case "raw PVFS backing" `Quick test_qcow2_backing_raw_pvfs;
          Alcotest.test_case "grows only on allocation" `Quick
            test_qcow2_grows_only_on_allocation;
          Alcotest.test_case "savevm freezes clusters" `Quick test_qcow2_savevm_freezes_clusters;
          Alcotest.test_case "export + remote backing" `Quick
            test_qcow2_export_and_remote_backing;
          Alcotest.test_case "vm state roundtrip" `Quick test_qcow2_export_vm_state_roundtrip;
          Alcotest.test_case "snapshot table view" `Quick test_qcow2_snapshot_table_view;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "coalesces concurrent fetches" `Quick
            test_prefetch_coalesces_concurrent_fetches;
          Alcotest.test_case "late fetch served cached" `Quick
            test_prefetch_late_fetch_served_cached;
          Alcotest.test_case "failed fetch retried by waiter" `Quick
            test_prefetch_failed_fetch_retried_by_waiter;
          Alcotest.test_case "failed entry removed for late callers" `Quick
            test_prefetch_failed_entry_removed_for_late_callers;
        ] );
      ( "mirror",
        [
          Alcotest.test_case "lazy base reads" `Quick test_mirror_reads_base_lazily;
          Alcotest.test_case "writes are local COW" `Quick test_mirror_write_is_local_cow;
          Alcotest.test_case "commit publishes incremental" `Quick
            test_mirror_commit_publishes_incremental;
          Alcotest.test_case "successive commits incremental" `Quick
            test_mirror_successive_commits_are_incremental;
          Alcotest.test_case "empty commit still publishes" `Quick
            test_mirror_commit_without_dirty_publishes_empty;
          Alcotest.test_case "rollback via new mirror" `Quick test_mirror_rollback_via_new_mirror;
          Alcotest.test_case "shared chunks prefetched once" `Quick
            test_mirror_shared_chunks_prefetched_once;
          Alcotest.test_case "local footprint and drop" `Quick
            test_mirror_local_footprint_and_drop;
        ] );
    ]
